//! System configuration.
//!
//! Table I of the paper ("Component overview of the Frontier supercomputer")
//! plus the generalisation of §V: "we determined to use a number of JSON
//! files for input specification, to minimize the level of code changes
//! that must be made to model a particular system". [`SystemConfig`] is
//! that JSON schema; [`FrontierSpec`] is the built-in default matching
//! Table I exactly.

use serde::{Deserialize, Serialize};

/// Frontier constants straight from Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontierSpec;

impl FrontierSpec {
    /// Number of cooling distribution units.
    pub const NUM_CDUS: usize = 25;
    /// Compute racks served per CDU.
    pub const RACKS_PER_CDU: usize = 3;
    /// Total compute racks (the paper quotes 74 racks served by 25 CDUs;
    /// 25 × 3 = 75 plumbing positions with one spare — we model the 74
    /// populated racks and leave the last CDU with two racks).
    pub const TOTAL_RACKS: usize = 74;
    /// Chassis per rack.
    pub const CHASSIS_PER_RACK: usize = 8;
    /// Rectifiers per rack (4 per chassis).
    pub const RECTIFIERS_PER_RACK: usize = 32;
    /// Compute blades per rack.
    pub const BLADES_PER_RACK: usize = 64;
    /// Nodes per rack (two per blade).
    pub const NODES_PER_RACK: usize = 128;
    /// SIVOC DC-DC converters per rack.
    pub const SIVOCS_PER_RACK: usize = 128;
    /// Slingshot switches per rack.
    pub const SWITCHES_PER_RACK: usize = 32;
    /// Total compute nodes.
    pub const TOTAL_NODES: usize = 9472;

    /// GPU idle power, W.
    pub const GPU_IDLE_W: f64 = 88.0;
    /// GPU max power, W.
    pub const GPU_MAX_W: f64 = 560.0;
    /// CPU idle power, W.
    pub const CPU_IDLE_W: f64 = 90.0;
    /// CPU max power, W.
    pub const CPU_MAX_W: f64 = 280.0;
    /// Mean RAM power per node, W.
    pub const RAM_AVG_W: f64 = 74.0;
    /// Mean NVMe power (per device), W; two per node.
    pub const NVME_EACH_W: f64 = 15.0;
    /// Mean NIC power (per device), W; four per node.
    pub const NIC_EACH_W: f64 = 20.0;
    /// Mean switch power, W.
    pub const SWITCH_AVG_W: f64 = 250.0;
    /// Mean CDU pump power, W.
    pub const CDU_AVG_W: f64 = 8_700.0;

    /// GPUs per node.
    pub const GPUS_PER_NODE: usize = 4;
    /// NICs per node.
    pub const NICS_PER_NODE: usize = 4;
    /// NVMe devices per node.
    pub const NVMES_PER_NODE: usize = 2;
}

/// One schedulable partition (§V: "multi-partition systems, such as
/// Setonix, which have separate partitions for CPU-only nodes and CPU+GPU
/// nodes").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Partition name, e.g. `batch` or `gpu`.
    pub name: String,
    /// Number of nodes in the partition.
    pub nodes: usize,
    /// GPUs per node (0 for CPU-only partitions).
    pub gpus_per_node: usize,
}

/// Per-component power envelope (Table I right column).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodePowerConfig {
    /// CPU idle power, W.
    pub cpu_idle_w: f64,
    /// CPU max power, W.
    pub cpu_max_w: f64,
    /// GPU idle power, W.
    pub gpu_idle_w: f64,
    /// GPU max power, W.
    pub gpu_max_w: f64,
    /// Mean RAM power per node, W.
    pub ram_w: f64,
    /// Mean power of one NVMe device, W.
    pub nvme_each_w: f64,
    /// NVMe devices per node.
    pub nvmes_per_node: usize,
    /// Mean power of one NIC, W.
    pub nic_each_w: f64,
    /// NICs per node.
    pub nics_per_node: usize,
}

/// Power-conversion chain parameters (Fig. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConversionConfig {
    /// Rectifiers per rack sharing the rack DC bus.
    pub rectifiers_per_rack: usize,
    /// Rectifier peak efficiency (paper: 96.3 %).
    pub rectifier_peak_efficiency: f64,
    /// Per-rectifier output power at peak efficiency, W (paper: 7.5 kW).
    pub rectifier_optimal_load_w: f64,
    /// Efficiency droop coefficient below the optimum, 1/W².
    pub rectifier_droop_low: f64,
    /// Efficiency droop coefficient above the optimum, 1/W².
    pub rectifier_droop_high: f64,
    /// SIVOC efficiency at full load (paper: ~0.98).
    pub sivoc_full_load_efficiency: f64,
    /// SIVOC efficiency droop at idle (subtracted fraction at zero load).
    pub sivoc_idle_droop: f64,
    /// SIVOC load at which full-load efficiency is reached, W.
    pub sivoc_full_load_w: f64,
    /// Efficiency of direct 380 V DC distribution replacing rectification
    /// in the what-if variant.
    pub dc380_distribution_efficiency: f64,
}

impl Default for ConversionConfig {
    fn default() -> Self {
        // Calibrated so Table III reproduces: idle 7.24 MW, HPL 22.3 MW,
        // peak 28.2 MW (see DESIGN.md §5 for the derivation).
        ConversionConfig {
            rectifiers_per_rack: FrontierSpec::RECTIFIERS_PER_RACK,
            rectifier_peak_efficiency: 0.963,
            rectifier_optimal_load_w: 7_500.0,
            rectifier_droop_low: 6.72e-4 / 1e6,  // per W²
            rectifier_droop_high: 8.08e-4 / 1e6, // per W²
            sivoc_full_load_efficiency: 0.98,
            sivoc_idle_droop: 0.008,
            sivoc_full_load_w: 2_000.0,
            dc380_distribution_efficiency: 0.993,
        }
    }
}

/// Rack-level layout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackConfig {
    /// Nodes per rack.
    pub nodes_per_rack: usize,
    /// Network switches per rack.
    pub switches_per_rack: usize,
    /// Mean switch power, W.
    pub switch_power_w: f64,
}

/// Cooling-interface parameters used on the RAPS side of the FMI boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolingInterfaceConfig {
    /// Number of CDUs (power aggregation groups fed to the cooling model).
    pub num_cdus: usize,
    /// Racks per CDU.
    pub racks_per_cdu: usize,
    /// Constant CDU pump power, W (paper: 8.7 kW).
    pub cdu_pump_power_w: f64,
    /// Fraction of rack power appearing as heat in the liquid loop
    /// (paper: 0.945, computed from telemetry as heat removed / power).
    pub cooling_efficiency: f64,
}

/// Economics and emissions constants (§III-B5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostConfig {
    /// Electricity price, USD per MWh. The paper never states the tariff;
    /// 90 $/MWh makes its "1.14 MW average loss ≈ $900k/yr" hold.
    pub usd_per_mwh: f64,
    /// Emission intensity, lbs CO₂ per MWh (paper: 852.3, EPA eGRID).
    pub emission_lbs_per_mwh: f64,
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig { usd_per_mwh: 90.0, emission_lbs_per_mwh: 852.3 }
    }
}

/// The full system configuration — the JSON schema of §V.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// System name, e.g. `frontier`.
    pub name: String,
    /// Schedulable partitions.
    pub partitions: Vec<PartitionConfig>,
    /// Rack layout.
    pub rack: RackConfig,
    /// Node power envelope.
    pub node_power: NodePowerConfig,
    /// Conversion chain.
    pub conversion: ConversionConfig,
    /// Cooling interface.
    pub cooling: CoolingInterfaceConfig,
    /// Costs and emissions.
    pub costs: CostConfig,
}

impl SystemConfig {
    /// The built-in Frontier description (Table I).
    pub fn frontier() -> Self {
        SystemConfig {
            name: "frontier".to_string(),
            partitions: vec![PartitionConfig {
                name: "batch".to_string(),
                nodes: FrontierSpec::TOTAL_NODES,
                gpus_per_node: FrontierSpec::GPUS_PER_NODE,
            }],
            rack: RackConfig {
                nodes_per_rack: FrontierSpec::NODES_PER_RACK,
                switches_per_rack: FrontierSpec::SWITCHES_PER_RACK,
                switch_power_w: FrontierSpec::SWITCH_AVG_W,
            },
            node_power: NodePowerConfig {
                cpu_idle_w: FrontierSpec::CPU_IDLE_W,
                cpu_max_w: FrontierSpec::CPU_MAX_W,
                gpu_idle_w: FrontierSpec::GPU_IDLE_W,
                gpu_max_w: FrontierSpec::GPU_MAX_W,
                ram_w: FrontierSpec::RAM_AVG_W,
                nvme_each_w: FrontierSpec::NVME_EACH_W,
                nvmes_per_node: FrontierSpec::NVMES_PER_NODE,
                nic_each_w: FrontierSpec::NIC_EACH_W,
                nics_per_node: FrontierSpec::NICS_PER_NODE,
            },
            conversion: ConversionConfig::default(),
            cooling: CoolingInterfaceConfig {
                num_cdus: FrontierSpec::NUM_CDUS,
                racks_per_cdu: FrontierSpec::RACKS_PER_CDU,
                cdu_pump_power_w: FrontierSpec::CDU_AVG_W,
                cooling_efficiency: 0.945,
            },
            costs: CostConfig::default(),
        }
    }

    /// A Setonix-like multi-partition system (§V): CPU-only plus GPU
    /// partitions sharing one scheduler.
    pub fn setonix_like() -> Self {
        let mut cfg = SystemConfig::frontier();
        cfg.name = "setonix-like".to_string();
        cfg.partitions = vec![
            PartitionConfig { name: "work".to_string(), nodes: 1_592, gpus_per_node: 0 },
            PartitionConfig { name: "gpu".to_string(), nodes: 192, gpus_per_node: 8 },
        ];
        cfg.cooling.num_cdus = 8;
        cfg.cooling.racks_per_cdu = 2;
        cfg
    }

    /// A Marconi100-like system (§V / PM100 dataset): ~980 nodes, 4 GPUs.
    pub fn marconi100_like() -> Self {
        let mut cfg = SystemConfig::frontier();
        cfg.name = "marconi100-like".to_string();
        cfg.partitions =
            vec![PartitionConfig { name: "m100".to_string(), nodes: 980, gpus_per_node: 4 }];
        cfg.rack.nodes_per_rack = 20;
        cfg.cooling.num_cdus = 5;
        cfg.cooling.racks_per_cdu = 10;
        cfg
    }

    /// Total nodes across partitions.
    pub fn total_nodes(&self) -> usize {
        self.partitions.iter().map(|p| p.nodes).sum()
    }

    /// Total racks (ceiling of nodes over rack capacity).
    pub fn total_racks(&self) -> usize {
        self.total_nodes().div_ceil(self.rack.nodes_per_rack)
    }

    /// Serialise to pretty JSON (the §V exchange format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serialises")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        // The component-overview rows of Table I.
        assert_eq!(FrontierSpec::NUM_CDUS, 25);
        assert_eq!(FrontierSpec::RACKS_PER_CDU, 3);
        assert_eq!(FrontierSpec::CHASSIS_PER_RACK, 8);
        assert_eq!(FrontierSpec::RECTIFIERS_PER_RACK, 32);
        assert_eq!(FrontierSpec::BLADES_PER_RACK, 64);
        assert_eq!(FrontierSpec::NODES_PER_RACK, 128);
        assert_eq!(FrontierSpec::SIVOCS_PER_RACK, 128);
        assert_eq!(FrontierSpec::SWITCHES_PER_RACK, 32);
        assert_eq!(FrontierSpec::TOTAL_NODES, 9472);
    }

    #[test]
    fn frontier_rack_math_consistent() {
        // 9472 nodes over 128-node racks = 74 racks.
        let cfg = SystemConfig::frontier();
        assert_eq!(cfg.total_racks(), 74);
        assert_eq!(cfg.total_nodes(), 9472);
    }

    #[test]
    fn node_idle_and_peak_powers() {
        // Idle: 90 + 4·88 + 4·20 + 74 + 2·15 = 626 W.
        // Peak: 280 + 4·560 + 4·20 + 74 + 2·15 = 2704 W.
        let p = SystemConfig::frontier().node_power;
        let idle = p.cpu_idle_w
            + 4.0 * p.gpu_idle_w
            + p.nics_per_node as f64 * p.nic_each_w
            + p.ram_w
            + p.nvmes_per_node as f64 * p.nvme_each_w;
        let peak = p.cpu_max_w
            + 4.0 * p.gpu_max_w
            + p.nics_per_node as f64 * p.nic_each_w
            + p.ram_w
            + p.nvmes_per_node as f64 * p.nvme_each_w;
        assert_eq!(idle, 626.0);
        assert_eq!(peak, 2704.0);
    }

    #[test]
    fn json_round_trip() {
        let cfg = SystemConfig::frontier();
        let json = cfg.to_json();
        let back = SystemConfig::from_json(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn setonix_like_is_multi_partition() {
        let cfg = SystemConfig::setonix_like();
        assert_eq!(cfg.partitions.len(), 2);
        assert_eq!(cfg.partitions[0].gpus_per_node, 0);
        assert!(cfg.partitions[1].gpus_per_node > 0);
    }

    #[test]
    fn invalid_json_rejected() {
        assert!(SystemConfig::from_json("{not json").is_err());
    }
}
