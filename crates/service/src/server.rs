//! The protocol-agnostic twin service.
//!
//! [`TwinService`] is the core the serving tier (see [`crate::pool`])
//! schedules requests onto: one live twin fed by a [`TelemetryFeed`], a
//! [`SnapshotStore`], and a [`QueryCache`], all behind locks so
//! [`TwinService::handle`] is callable from any worker thread. The
//! locking is deliberately asymmetric: ingest ([`Request::Advance`])
//! serialises on the live-twin mutex, while what-if queries only take
//! that lock long enough to resolve a snapshot `Arc` — the fork and the
//! horizon run execute lock-free, which is what makes *concurrent*
//! scenario queries concurrent in practice. No method holds two of the
//! three locks at once ([`Request::Status`] copies the live fields out
//! before reading the cache and snapshot stores), so a long `Advance`
//! can never wedge requests that don't need the live twin.

use crate::cache::{scenario_fingerprint, QueryCache};
use crate::metrics::{request_kind, ServiceObs};
use crate::persist::{checkpoint_path, read_json, write_json};
use crate::protocol::{
    BatchOutcome, CounterSample, GaugeSample, HistogramSample, MetricsReport, Request, Response,
    ServerStatus, SlowQueryEntry, TraceEntry,
};
use crate::query::{run_whatif, WhatIfOutcome, WhatIfSpec};
use crate::snapshot::{SnapshotStore, TwinSnapshot};
use exadigit_obs::MetricValue;
use exadigit_core::config::TwinConfig;
use exadigit_core::twin::DigitalTwin;
use exadigit_sim::ensemble::EnsembleRunner;
use exadigit_telemetry::replay::TelemetryFeed;
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::Arc;

/// The live twin plus its telemetry feed (one lock, one writer at a
/// time: ingest is inherently serial).
struct LiveState {
    twin: DigitalTwin,
    feed: TelemetryFeed,
    jobs_ingested: u64,
    /// Successful `Advance` batches since the last checkpoint (manual
    /// or automatic); drives the opt-in auto-checkpoint cadence.
    batches_since_checkpoint: u64,
}

/// On-disk form of the live-twin checkpoint (`live.json`): the twin's
/// versioned state blob plus everything else [`TwinService::recover`]
/// needs to resume ingest exactly where it stopped — the telemetry
/// feed's cursor and the ingest counter.
#[derive(serde::Serialize, serde::Deserialize)]
struct PersistedCheckpoint {
    now_s: u64,
    jobs_ingested: u64,
    feed: TelemetryFeed,
    twin: serde::Value,
}

/// The persistent twin service: live twin, snapshots, query cache.
pub struct TwinService {
    live: Mutex<LiveState>,
    snapshots: Mutex<SnapshotStore>,
    cache: Mutex<QueryCache>,
    /// Pool width for query fan-out (`None` = process default).
    threads: Option<usize>,
    /// Checkpoint the live twin after every N successful ingest batches
    /// (`None` = checkpoints stay explicit-only).
    auto_checkpoint_every: Option<u64>,
    /// The observability hub: one registry every layer feeds, plus the
    /// trace ring and slow-query log. Shared with the worker pool.
    obs: Arc<ServiceObs>,
}

impl TwinService {
    /// Build the service: construct the live twin from `config`, wire the
    /// feed's wet-bulb forcing into it, and derive all snapshot RNG
    /// streams from `seed`. Defaults: 32 snapshots, 1024 cached outcomes,
    /// process-default pool width (see the `with_*` builders).
    pub fn new(config: TwinConfig, feed: TelemetryFeed, seed: u64) -> Result<Self, String> {
        let obs = Arc::new(ServiceObs::new());
        let mut twin = DigitalTwin::new(config)?;
        twin.set_wet_bulb(feed.wet_bulb().clone());
        // Route the kernel's, cache's and store's instruments through
        // the shared registry so one namespace observes every layer.
        twin.set_kernel_metrics(obs.kernel.clone());
        let mut store = SnapshotStore::new(32, seed);
        store.set_metrics(obs.store.clone());
        let mut cache = QueryCache::new(1024);
        cache.set_metrics(obs.cache.clone());
        Ok(TwinService {
            live: Mutex::new(LiveState {
                twin,
                feed,
                jobs_ingested: 0,
                batches_since_checkpoint: 0,
            }),
            snapshots: Mutex::new(store),
            cache: Mutex::new(cache),
            threads: None,
            auto_checkpoint_every: None,
            obs,
        })
    }

    /// Cap the snapshot store (builder style). Errs once any snapshot
    /// has been taken: the cap is serving configuration, not a runtime
    /// control, and re-capping the store would drop live snapshot ids.
    pub fn with_max_snapshots(self, max_snapshots: usize) -> Result<Self, String> {
        {
            let mut store = self.snapshots.lock();
            if !store.is_empty() {
                return Err(format!(
                    "snapshot cap must be configured before serving ({} snapshots already taken)",
                    store.len()
                ));
            }
            store.set_max_snapshots(max_snapshots)?;
        }
        Ok(self)
    }

    /// Enable the durable tier (builder style): every snapshot taken
    /// from now on is also written under `dir`, capacity evictions spill
    /// to disk instead of erroring, and [`Request::Checkpoint`] /
    /// [`TwinService::recover`] become available. Must be configured
    /// before any snapshot is taken, and refuses a directory that
    /// already holds a manifest (recover that instead).
    pub fn with_persist_dir(self, dir: impl Into<PathBuf>) -> Result<Self, String> {
        let store = self.snapshots.into_inner().with_persist_dir(dir)?;
        Ok(TwinService { snapshots: Mutex::new(store), ..self })
    }

    /// Restore a service from a persist directory: the snapshot store's
    /// identity and every persisted snapshot come back from the manifest
    /// (spilled — rehydrated lazily on first use), and the live twin,
    /// feed cursor, and ingest counter come back from the last
    /// [`Request::Checkpoint`]. The query cache starts cold: entries are
    /// keyed by `(snapshot id, fingerprint)` and ids are never reused
    /// across recoveries, so a cold cache recomputes identical answers
    /// rather than risking stale ones. Damaged manifest lines are
    /// reported via [`TwinService::recovery_warnings`], not silently
    /// dropped; a missing or torn checkpoint is a typed error.
    pub fn recover(dir: impl Into<PathBuf>) -> Result<Self, String> {
        let obs = Arc::new(ServiceObs::new());
        let dir = dir.into();
        let mut store = SnapshotStore::recover(&dir).map_err(|e| e.to_string())?;
        store.set_metrics(obs.store.clone());
        let checkpoint: PersistedCheckpoint =
            read_json(&checkpoint_path(&dir)).map_err(|e| e.to_string())?;
        let mut twin = DigitalTwin::from_state(&checkpoint.twin)?;
        if twin.now() != checkpoint.now_s {
            return Err(format!(
                "checkpoint claims t = {} s but the restored twin is at t = {} s",
                checkpoint.now_s,
                twin.now()
            ));
        }
        // Instruments are diagnostics, not state: a recovered service
        // starts them at zero (the checkpoint never carried them).
        twin.set_kernel_metrics(obs.kernel.clone());
        let mut cache = QueryCache::new(1024);
        cache.set_metrics(obs.cache.clone());
        Ok(TwinService {
            live: Mutex::new(LiveState {
                twin,
                feed: checkpoint.feed,
                jobs_ingested: checkpoint.jobs_ingested,
                batches_since_checkpoint: 0,
            }),
            snapshots: Mutex::new(store),
            cache: Mutex::new(cache),
            threads: None,
            auto_checkpoint_every: None,
            obs,
        })
    }

    /// Damage reports collected while recovering the snapshot manifest
    /// (empty for a clean recovery or a service that was never
    /// recovered).
    pub fn recovery_warnings(&self) -> Vec<String> {
        self.snapshots.lock().recovery_warnings().to_vec()
    }

    /// Cap the query cache's entry count (builder style); the byte
    /// budget is preserved.
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        let bytes = self.cache.lock().byte_budget();
        let mut cache = QueryCache::new(capacity).with_byte_budget(bytes);
        cache.set_metrics(self.obs.cache.clone());
        TwinService { cache: Mutex::new(cache), ..self }
    }

    /// Cap the query cache's resident bytes (builder style); the entry
    /// cap is preserved.
    pub fn with_cache_bytes(self, bytes: usize) -> Self {
        let capacity = self.cache.lock().capacity();
        let mut cache = QueryCache::new(capacity).with_byte_budget(bytes);
        cache.set_metrics(self.obs.cache.clone());
        TwinService { cache: Mutex::new(cache), ..self }
    }

    /// Turn the hot-path instrumentation on or off (builder style; on by
    /// default). Off skips request timing, tracing and counting — the
    /// arm the overhead benchmark compares against. Exposition keeps
    /// working either way; counters simply stop moving.
    pub fn with_observability(self, enabled: bool) -> Self {
        self.obs.set_enabled(enabled);
        self
    }

    /// Runtime form of [`Self::with_observability`]: flip the
    /// instrumentation on a live service (one relaxed atomic store).
    /// Lets an operator silence a hot twin without restarting it, and
    /// lets the overhead benchmark interleave instrumented and
    /// uninstrumented work on the *same* service instance.
    pub fn set_observability(&self, enabled: bool) {
        self.obs.set_enabled(enabled);
    }

    /// Set the slow-query threshold (builder style): a request whose
    /// queue + handle time reaches `micros` is recorded in the
    /// slow-query log surfaced by [`Request::Metrics`]. Default 250 ms.
    pub fn with_slow_query_threshold_us(self, micros: u64) -> Self {
        self.obs.slowlog.set_threshold_us(micros);
        self
    }

    /// Pin the pool width query fan-out uses (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Opt in to automatic checkpoints (builder style): after every
    /// `batches` successful `Advance` requests the live twin is
    /// checkpointed exactly as [`Request::Checkpoint`] would, bounding
    /// how much ingest a crash can lose without any client discipline.
    /// Requires the durable tier ([`TwinService::with_persist_dir`] or
    /// [`TwinService::recover`]) to be configured first — an
    /// auto-checkpoint with nowhere to write would turn every Nth
    /// advance into an error.
    pub fn with_auto_checkpoint_every(mut self, batches: u64) -> Result<Self, String> {
        if batches == 0 {
            return Err("auto-checkpoint cadence must be at least 1 batch".to_string());
        }
        if self.snapshots.lock().persist_dir().is_none() {
            return Err(
                "auto-checkpoint needs a persist directory; call with_persist_dir first"
                    .to_string(),
            );
        }
        self.auto_checkpoint_every = Some(batches);
        Ok(self)
    }

    /// Handle one request. Thread-safe: ingest serialises on the live
    /// twin, queries run lock-free after resolving their snapshot.
    /// Every call lands in `exadigit_requests_total{type}` and the
    /// per-type latency histogram (unless observability is off).
    pub fn handle(&self, request: &Request) -> Response {
        if !self.obs.on() {
            return self.dispatch(request);
        }
        let started = std::time::Instant::now();
        let response = self.dispatch(request);
        let kind = request_kind(request);
        self.obs.requests_total[kind].inc();
        self.obs.handle_seconds[kind].observe_duration(started.elapsed());
        response
    }

    fn dispatch(&self, request: &Request) -> Response {
        match request {
            Request::Status => Response::Status(self.server_status()),
            Request::Advance { seconds } => self.advance(*seconds),
            Request::Snapshot { label } => self.take_snapshot(label.clone()),
            Request::ListSnapshots => Response::Snapshots(self.snapshots.lock().list()),
            Request::DropSnapshot { snapshot_id } => self.drop_snapshot(*snapshot_id),
            Request::Query { snapshot_id, spec } => self.query(*snapshot_id, spec),
            Request::QueryBatch { snapshot_id, specs } => self.query_batch(*snapshot_id, specs),
            Request::Checkpoint => self.checkpoint(),
            Request::Persist { snapshot_id } => self.persist(*snapshot_id),
            Request::Shutdown => Response::ShuttingDown,
            Request::Metrics => Response::Metrics(self.metrics_report()),
        }
    }

    /// The observability hub (shared with the worker pool, which feeds
    /// the queue/wakeup instruments and the trace ring).
    pub(crate) fn obs(&self) -> &Arc<ServiceObs> {
        &self.obs
    }

    /// Render the whole registry in Prometheus text exposition format
    /// 0.0.4, refreshing the live-state gauges first. This is what the
    /// optional HTTP sidecar (`TwinServer::with_metrics_http`) serves on
    /// `GET /metrics`.
    pub fn render_prometheus(&self) -> String {
        let _ = self.server_status();
        self.obs.registry.render_prometheus()
    }

    /// Assemble the typed [`MetricsReport`] the `Metrics` verb answers
    /// with: every registry sample (live gauges refreshed first), the
    /// trace ring, the slow-query log, and any recovery warnings.
    pub fn metrics_report(&self) -> MetricsReport {
        let _ = self.server_status();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for sample in self.obs.registry.samples() {
            match sample.value {
                MetricValue::Counter(value) => counters.push(CounterSample {
                    name: sample.name,
                    labels: sample.labels,
                    value,
                }),
                MetricValue::Gauge(value) => gauges.push(GaugeSample {
                    name: sample.name,
                    labels: sample.labels,
                    value,
                }),
                MetricValue::Histogram(h) => histograms.push(HistogramSample {
                    name: sample.name,
                    labels: sample.labels,
                    count: h.count,
                    sum: h.sum,
                    p50: h.quantile(0.50),
                    p90: h.quantile(0.90),
                    p99: h.quantile(0.99),
                }),
            }
        }
        let slow_queries = self
            .obs
            .slowlog
            .entries()
            .into_iter()
            .map(|s| SlowQueryEntry {
                at_us: s.at_us,
                request: s.request.to_string(),
                detail: s.detail,
                queue_us: s.queue_us,
                handle_us: s.handle_us,
            })
            .collect();
        let trace = self
            .obs
            .trace
            .recent(usize::MAX)
            .into_iter()
            .map(|e| TraceEntry {
                at_us: e.at_us,
                conn: e.conn,
                seq: e.seq,
                request: e.request.to_string(),
                stage: e.stage.name().to_string(),
                stage_us: e.stage_us,
            })
            .collect();
        MetricsReport {
            counters,
            gauges,
            histograms,
            slow_queries,
            trace,
            recovery_warnings: self.recovery_warnings(),
        }
    }

    /// Build the `Status` payload and mirror it into the registry's
    /// live-state gauges, so both exposition surfaces and the `Status`
    /// verb always report the same numbers.
    fn server_status(&self) -> ServerStatus {
        // Copy the live fields out and release the lock before touching
        // the cache and snapshot stores: holding live across the other
        // locks would let a long Advance wedge every Status probe that
        // queued behind it on those stores.
        let (
            now_s,
            running_jobs,
            pending_jobs,
            jobs_ingested,
            feed_pending_jobs,
            pue,
            surrogate_extrapolations,
            online_l3_steps,
            online_l4_steps,
            online_trusted_regimes,
            online_fallback_steps,
        ) = {
            let live = self.live.lock();
            let (running, pending) = live.twin.queue_state();
            // Fidelity diagnostics ride the same FMI locals every other
            // probe uses; backends that don't expose a counter simply
            // answer None and the field stays absent.
            let counter =
                |name: &str| live.twin.cooling_output(name).map(|v| v as u64);
            (
                live.twin.now(),
                running as u64,
                pending as u64,
                live.jobs_ingested,
                live.feed.pending_jobs() as u64,
                live.twin.cooling_output("pue"),
                counter("surrogate.extrapolation_count"),
                counter("online.l3_steps"),
                counter("online.l4_steps"),
                counter("online.trusted_regimes"),
                counter("online.fallback_steps"),
            )
        };
        let (cache_entries, cache_hits, cache_misses) = {
            let cache = self.cache.lock();
            let (hits, misses) = cache.stats();
            (cache.len() as u64, hits, misses)
        };
        let (snapshots, memory) = {
            let store = self.snapshots.lock();
            (store.len() as u64, store.memory_stats())
        };
        let status = ServerStatus {
            now_s,
            running_jobs,
            pending_jobs,
            jobs_ingested,
            feed_pending_jobs,
            snapshots,
            cache_entries,
            cache_hits,
            cache_misses,
            pue,
            surrogate_extrapolations,
            online_l3_steps,
            online_l4_steps,
            online_trusted_regimes,
            snapshots_resident: memory.resident as u64,
            snapshots_spilled: memory.spilled as u64,
            snapshot_shared_bytes: memory.shared_bytes as u64,
            snapshot_owned_bytes: memory.owned_bytes as u64,
        };
        // Mirror into the registry so a Prometheus scrape and a Status
        // probe taken back to back agree. `online.fallback_steps` rides
        // only the exposition: ServerStatus's wire shape is frozen.
        if self.obs.on() {
            self.obs.set_status_gauges(&status, online_fallback_steps);
        }
        status
    }

    fn advance(&self, seconds: u64) -> Response {
        // Bound the request before taking the ingest lock: an absurd
        // horizon would hold the live-twin mutex for an unbounded run
        // (and overflow the target arithmetic), wedging every client.
        const MAX_ADVANCE_S: u64 = 366 * 86_400;
        if seconds > MAX_ADVANCE_S {
            return Response::Error {
                message: format!(
                    "advance of {seconds} s exceeds the {MAX_ADVANCE_S} s (1 year) per-request cap"
                ),
            };
        }
        let (now_s, ingested, checkpoint_due) = {
            let mut live = self.live.lock();
            let target = live.twin.now() + seconds;
            let batch = live.feed.poll(target);
            let ingested = batch.len() as u64;
            live.jobs_ingested += ingested;
            if !batch.is_empty() {
                live.twin.submit(batch);
            }
            if let Err(e) = live.twin.run(seconds) {
                return Response::Error { message: format!("advance failed: {e}") };
            }
            live.batches_since_checkpoint += 1;
            let due = self
                .auto_checkpoint_every
                .is_some_and(|n| live.batches_since_checkpoint >= n);
            if due {
                live.batches_since_checkpoint = 0;
            }
            (live.twin.now(), ingested, due)
        };
        // The auto-checkpoint runs outside the live lock (checkpoint()
        // re-takes it), so a slow disk delays this one response but
        // never wedges concurrent requests behind the ingest mutex.
        if checkpoint_due {
            if let Response::Error { message } = self.checkpoint() {
                return Response::Error {
                    message: format!(
                        "advance succeeded (t = {now_s} s) but the auto-checkpoint failed: {message}"
                    ),
                };
            }
        }
        Response::Advanced { now_s, jobs_ingested: ingested }
    }

    fn take_snapshot(&self, label: String) -> Response {
        // Clone under the live lock so the frozen state is a consistent
        // instant — O(state), not O(elapsed) — then register it outside.
        let frozen = {
            let live = self.live.lock();
            live.twin.fork()
        };
        match frozen.and_then(|twin| self.snapshots.lock().adopt(twin, label)) {
            Ok(snapshot) => Response::SnapshotTaken(snapshot.info()),
            Err(message) => Response::Error { message },
        }
    }

    fn drop_snapshot(&self, snapshot_id: u64) -> Response {
        if self.snapshots.lock().drop_snapshot(snapshot_id) {
            self.cache.lock().invalidate_snapshot(snapshot_id);
            Response::Dropped { snapshot_id }
        } else {
            Response::Error { message: format!("unknown snapshot {snapshot_id}") }
        }
    }

    /// Capture the live twin to `live.json` so [`TwinService::recover`]
    /// can resume from it. The state is cloned under the live lock (a
    /// consistent instant, O(state)); the disk write happens under the
    /// store lock instead, so a slow disk never wedges ingest and
    /// concurrent checkpoints serialise on the file.
    fn checkpoint(&self) -> Response {
        let checkpoint = {
            let live = self.live.lock();
            match live.twin.save_state() {
                Ok(twin) => PersistedCheckpoint {
                    now_s: live.twin.now(),
                    jobs_ingested: live.jobs_ingested,
                    feed: live.feed.clone(),
                    twin,
                },
                Err(e) => {
                    return Response::Error { message: format!("checkpoint failed: {e}") }
                }
            }
        };
        let store = self.snapshots.lock();
        let Some(dir) = store.persist_dir() else {
            return Response::Error {
                message: "no persist directory configured; checkpoint needs a durable tier"
                    .to_string(),
            };
        };
        match write_json(&checkpoint_path(dir), &checkpoint) {
            Ok(bytes) => {
                // A durable checkpoint restarts the auto-cadence clock
                // whether it was manual or automatic: the crash-loss
                // bound is "batches since last durable write".
                drop(store);
                self.live.lock().batches_since_checkpoint = 0;
                Response::Checkpointed { now_s: checkpoint.now_s, bytes }
            }
            Err(e) => Response::Error { message: format!("checkpoint failed: {e}") },
        }
    }

    fn persist(&self, snapshot_id: u64) -> Response {
        match self.snapshots.lock().persist(snapshot_id) {
            Ok(bytes) => Response::Persisted { snapshot_id, bytes },
            Err(message) => Response::Error { message },
        }
    }

    fn resolve(&self, snapshot_id: u64) -> Result<Arc<TwinSnapshot>, String> {
        match self.snapshots.lock().get(snapshot_id) {
            Ok(Some(snapshot)) => Ok(snapshot),
            Ok(None) => Err(format!("unknown snapshot {snapshot_id}")),
            // A spilled snapshot whose file is torn or corrupt degrades
            // to a per-request typed error, never a panic.
            Err(e) => Err(format!("snapshot {snapshot_id} failed to load: {e}")),
        }
    }

    fn query(&self, snapshot_id: u64, spec: &WhatIfSpec) -> Response {
        let snapshot = match self.resolve(snapshot_id) {
            Ok(s) => s,
            Err(message) => return Response::Error { message },
        };
        let fingerprint = scenario_fingerprint(spec);
        if let Some(outcome) = self.cache.lock().get(snapshot_id, fingerprint) {
            return Response::Answer { cached: true, outcome };
        }
        // Lock-free from here: the Arc keeps the frozen state alive and
        // `run_whatif` is pure, so concurrent identical queries at worst
        // compute the same answer twice.
        match run_whatif(&snapshot, spec, self.threads) {
            Ok(outcome) => {
                self.cache.lock().insert(snapshot_id, fingerprint, outcome.clone());
                Response::Answer { cached: false, outcome }
            }
            Err(message) => Response::Error { message },
        }
    }

    fn query_batch(&self, snapshot_id: u64, specs: &[WhatIfSpec]) -> Response {
        let snapshot = match self.resolve(snapshot_id) {
            Ok(s) => s,
            Err(message) => return Response::Error { message },
        };
        let fingerprints: Vec<u64> = specs.iter().map(scenario_fingerprint).collect();
        let mut slots: Vec<Option<BatchOutcome>> = {
            let mut cache = self.cache.lock();
            fingerprints
                .iter()
                .map(|&fp| cache.get(snapshot_id, fp).map(BatchOutcome::Ok))
                .collect()
        };
        let cached_hits = slots.iter().filter(|s| s.is_some()).count() as u64;

        // One pool pass over the misses, outcomes gathered in spec order.
        // Each miss gets the service pool width too: a spec with
        // draws > 1 fans its own forks, and when the batch has fewer
        // misses than workers those draws fill the idle slots (nested
        // calls from an occupied pool simply run inline). Outcomes are
        // width-invariant either way, so cache coherence is unaffected.
        let misses: Vec<usize> = (0..specs.len()).filter(|&i| slots[i].is_none()).collect();
        if !misses.is_empty() {
            let mut runner = EnsembleRunner::new(0);
            if let Some(n) = self.threads {
                runner = runner.threads(n);
            }
            let computed: Vec<(usize, Result<WhatIfOutcome, String>)> = runner
                .map(misses, |_ctx, i| (i, run_whatif(&snapshot, &specs[i], self.threads)));
            // Every success is cached and reported; a failed spec fills
            // only its own slot with its error — siblings keep their
            // computed outcomes instead of being discarded wholesale.
            let mut cache = self.cache.lock();
            for (i, result) in computed {
                slots[i] = Some(match result {
                    Ok(outcome) => {
                        cache.insert(snapshot_id, fingerprints[i], outcome.clone());
                        BatchOutcome::Ok(outcome)
                    }
                    Err(message) => BatchOutcome::Err {
                        message: format!("spec {i} ({}): {message}", specs[i].label),
                    },
                });
            }
        }
        Response::Answers {
            cached_hits,
            outcomes: slots.into_iter().map(|s| s.expect("filled above")).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exadigit_raps::job::Job;

    fn service() -> TwinService {
        TwinService::new(
            TwinConfig::frontier_power_only(),
            TelemetryFeed::synthetic(7, 1),
            7,
        )
        .unwrap()
        .with_threads(2)
    }

    #[test]
    fn advance_ingests_the_feed() {
        let svc = service();
        let r = svc.handle(&Request::Advance { seconds: 1_800 });
        let Response::Advanced { now_s, jobs_ingested } = r else {
            panic!("unexpected {r:?}");
        };
        assert_eq!(now_s, 1_800);
        assert!(jobs_ingested > 0, "a synthetic half hour has arrivals");
        let Response::Status(status) = svc.handle(&Request::Status) else { panic!() };
        assert_eq!(status.now_s, 1_800);
        assert_eq!(status.jobs_ingested, jobs_ingested);
        // Power-only twin: no cooling backend, so every fidelity
        // diagnostic is absent rather than zero.
        assert_eq!(status.pue, None);
        assert_eq!(status.surrogate_extrapolations, None);
        assert_eq!(status.online_l3_steps, None);
        assert_eq!(status.online_l4_steps, None);
        assert_eq!(status.online_trusted_regimes, None);
    }

    #[test]
    fn status_surfaces_online_fidelity_counters() {
        let config = TwinConfig::marconi100_like()
            .with_backend(exadigit_core::config::CoolingBackend::Online(
                exadigit_core::online::OnlineSurrogateConfig::default(),
            ));
        let svc =
            TwinService::new(config, TelemetryFeed::synthetic(5, 1), 5).unwrap().with_threads(2);
        svc.handle(&Request::Advance { seconds: 1_800 });
        let Response::Status(status) = svc.handle(&Request::Status) else { panic!() };
        // Every cooling quantum was answered by exactly one of the two
        // fidelities, and the counters say so through the wire protocol.
        let l4 = status.online_l4_steps.expect("online backend exposes online.l4_steps");
        let l3 = status.online_l3_steps.expect("online backend exposes online.l3_steps");
        assert_eq!(l4 + l3, 1_800 / 15, "every quantum is either L3 or L4");
        assert!(l4 > 0, "an untrained start must pay L4 first");
        assert!(status.online_trusted_regimes.is_some());
        assert!(status.pue.is_some(), "online backend serves pue like any other");
        // The offline-surrogate extrapolation counter belongs to the
        // Surrogate backend only.
        assert_eq!(status.surrogate_extrapolations, None);
    }

    #[test]
    fn snapshot_query_cache_flow() {
        let svc = service();
        svc.handle(&Request::Advance { seconds: 900 });
        let Response::SnapshotTaken(info) =
            svc.handle(&Request::Snapshot { label: "t900".into() })
        else {
            panic!()
        };
        assert_eq!(info.taken_at_s, 900);

        let spec = WhatIfSpec { horizon_s: 600, ..WhatIfSpec::default() };
        let q = Request::Query { snapshot_id: info.id, spec };
        let Response::Answer { cached: false, outcome: first } = svc.handle(&q) else {
            panic!("first ask must compute");
        };
        let Response::Answer { cached: true, outcome: second } = svc.handle(&q) else {
            panic!("second ask must hit the cache");
        };
        assert_eq!(first, second);

        // The live twin keeps moving; the snapshot's answers don't.
        svc.handle(&Request::Advance { seconds: 900 });
        let Response::Answer { cached: true, outcome: third } = svc.handle(&q) else {
            panic!()
        };
        assert_eq!(first, third);
    }

    #[test]
    fn batch_returns_in_spec_order_with_cache_hits() {
        let svc = service();
        svc.handle(&Request::Advance { seconds: 600 });
        let Response::SnapshotTaken(info) =
            svc.handle(&Request::Snapshot { label: "base".into() })
        else {
            panic!()
        };
        let specs = vec![
            WhatIfSpec { label: "a".into(), horizon_s: 300, ..WhatIfSpec::default() },
            WhatIfSpec { label: "b".into(), horizon_s: 600, ..WhatIfSpec::default() },
            WhatIfSpec { label: "c".into(), horizon_s: 900, ..WhatIfSpec::default() },
        ];
        // Warm one spec through the single-query path.
        svc.handle(&Request::Query { snapshot_id: info.id, spec: specs[1].clone() });
        let Response::Answers { cached_hits, outcomes } =
            svc.handle(&Request::QueryBatch { snapshot_id: info.id, specs: specs.clone() })
        else {
            panic!()
        };
        assert_eq!(cached_hits, 1);
        let outcomes: Vec<_> = outcomes.iter().map(|o| o.ok().expect("all succeed")).collect();
        assert_eq!(
            outcomes.iter().map(|o| o.label.as_str()).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
        assert!(outcomes[0].to_s < outcomes[2].to_s);
    }

    #[test]
    fn batch_reports_per_spec_errors_and_keeps_sibling_outcomes() {
        let svc = service();
        svc.handle(&Request::Advance { seconds: 600 });
        let Response::SnapshotTaken(info) =
            svc.handle(&Request::Snapshot { label: "base".into() })
        else {
            panic!()
        };
        let good = WhatIfSpec { label: "good".into(), horizon_s: 300, ..WhatIfSpec::default() };
        let bad =
            WhatIfSpec { label: "bad".into(), horizon_s: u64::MAX, ..WhatIfSpec::default() };
        let tail = WhatIfSpec { label: "tail".into(), horizon_s: 600, ..WhatIfSpec::default() };
        let Response::Answers { cached_hits, outcomes } = svc.handle(&Request::QueryBatch {
            snapshot_id: info.id,
            specs: vec![good.clone(), bad, tail],
        }) else {
            panic!()
        };
        assert_eq!(cached_hits, 0);
        assert!(outcomes[0].is_ok() && outcomes[2].is_ok(), "siblings survive the bad spec");
        let BatchOutcome::Err { message } = &outcomes[1] else {
            panic!("bad spec must report its own error")
        };
        assert!(message.contains("spec 1") && message.contains("bad"), "{message}");
        // The successes were cached despite the failure.
        let Response::Answer { cached: true, .. } =
            svc.handle(&Request::Query { snapshot_id: info.id, spec: good })
        else {
            panic!("sibling success must have been cached")
        };
    }

    #[test]
    fn absurd_advance_is_rejected_before_taking_the_lock() {
        let svc = service();
        let r = svc.handle(&Request::Advance { seconds: u64::MAX });
        assert!(matches!(r, Response::Error { .. }), "{r:?}");
        // The live twin is untouched and the service still works.
        let Response::Status(s) = svc.handle(&Request::Status) else { panic!() };
        assert_eq!(s.now_s, 0);
        assert!(matches!(
            svc.handle(&Request::Advance { seconds: 60 }),
            Response::Advanced { now_s: 60, .. }
        ));
    }

    #[test]
    fn unknown_snapshot_is_an_error_not_a_panic() {
        let svc = service();
        let r = svc.handle(&Request::Query {
            snapshot_id: 404,
            spec: WhatIfSpec::default(),
        });
        assert!(matches!(r, Response::Error { .. }));
        let r = svc.handle(&Request::DropSnapshot { snapshot_id: 404 });
        assert!(matches!(r, Response::Error { .. }));
    }

    #[test]
    fn dropped_snapshot_invalidates_its_cache_entries() {
        let svc = service();
        svc.handle(&Request::Advance { seconds: 300 });
        let Response::SnapshotTaken(info) =
            svc.handle(&Request::Snapshot { label: "x".into() })
        else {
            panic!()
        };
        let q = Request::Query {
            snapshot_id: info.id,
            spec: WhatIfSpec { horizon_s: 120, ..WhatIfSpec::default() },
        };
        svc.handle(&q);
        let Response::Status(s) = svc.handle(&Request::Status) else { panic!() };
        assert_eq!(s.cache_entries, 1);
        svc.handle(&Request::DropSnapshot { snapshot_id: info.id });
        let Response::Status(s) = svc.handle(&Request::Status) else { panic!() };
        assert_eq!(s.cache_entries, 0);
        assert!(matches!(svc.handle(&q), Response::Error { .. }));
    }

    #[test]
    fn late_snapshot_cap_is_an_error_not_a_panic() {
        let svc = service();
        svc.handle(&Request::Advance { seconds: 300 });
        svc.handle(&Request::Snapshot { label: "taken".into() });
        let err = svc.with_max_snapshots(4).err().expect("late cap must be refused");
        assert!(err.contains("before serving"), "{err}");
        // Before any snapshot, the cap applies cleanly.
        let svc = service().with_max_snapshots(1).unwrap();
        svc.handle(&Request::Snapshot { label: "only".into() });
        let r = svc.handle(&Request::Snapshot { label: "one too many".into() });
        assert!(matches!(r, Response::Error { .. }), "{r:?}");
    }

    #[test]
    fn live_twin_accepts_out_of_band_jobs_via_feed_exhaustion() {
        // An exhausted feed still advances (idle power accrues).
        let svc = TwinService::new(
            TwinConfig::frontier_power_only(),
            TelemetryFeed::new(
                vec![Job::new(1, "only", 64, 60, 5, 0.5, 0.5)],
                exadigit_sim::TimeSeries::from_values(0.0, 3_600.0, vec![15.0, 15.0]),
                120,
            ),
            1,
        )
        .unwrap();
        svc.handle(&Request::Advance { seconds: 300 });
        let Response::Status(s) = svc.handle(&Request::Status) else { panic!() };
        assert_eq!(s.jobs_ingested, 1);
        assert_eq!(s.feed_pending_jobs, 0);
        assert_eq!(s.now_s, 300);
    }
}
