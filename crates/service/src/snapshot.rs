//! Snapshot lifecycle: freeze the live twin, fork what-ifs from it.
//!
//! A [`TwinSnapshot`] is a full, immutable copy of the simulation state
//! at the second it was taken — RAPS queues and allocations, the event
//! calendar, accumulated outputs, and the cooling backend's internal
//! state (thermal volumes, PID integrators, staging hysteresis for the
//! L4 plant). Taking one costs a state clone, O(running + pending
//! jobs + plant state), *not* O(elapsed time); forking one hands back an
//! independent [`DigitalTwin`] that advances exactly as the original
//! would have (`DigitalTwin::fork` determinism contract).
//!
//! Each snapshot also carries an RNG stream base derived from the
//! service seed and snapshot id, so stochastic queries (UQ draws) are
//! reproducible per snapshot: fork *i* of a query always draws from
//! `Rng::new(snapshot.seed ^ fingerprint).split(i)` regardless of pool
//! width or arrival order.

use exadigit_core::twin::DigitalTwin;
use exadigit_sim::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A frozen copy of the live twin at one simulated second.
pub struct TwinSnapshot {
    /// Snapshot id (unique per service, ascending).
    pub id: u64,
    /// Caller-supplied label, e.g. `"noon"`.
    pub label: String,
    /// Simulated second (clock-elapsed) the snapshot was taken at.
    pub taken_at_s: u64,
    /// RNG stream base for stochastic queries branched from this
    /// snapshot: `service_seed` split by snapshot id.
    pub seed: u64,
    twin: DigitalTwin,
}

impl TwinSnapshot {
    /// Fork an independent twin from the frozen state. Advancing the
    /// fork is bit-identical to advancing the original from the snapshot
    /// second (the crate's determinism contract).
    pub fn fork(&self) -> Result<DigitalTwin, String> {
        self.twin.fork()
    }

    /// Read-only access to the frozen twin (reports, outputs).
    pub fn twin(&self) -> &DigitalTwin {
        &self.twin
    }

    /// The wire-facing summary of this snapshot.
    pub fn info(&self) -> SnapshotInfo {
        let (running, pending) = self.twin.queue_state();
        SnapshotInfo {
            id: self.id,
            label: self.label.clone(),
            taken_at_s: self.taken_at_s,
            running_jobs: running as u64,
            pending_jobs: pending as u64,
        }
    }
}

/// Wire-facing snapshot summary (the `Snapshot` / `ListSnapshots`
/// response payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotInfo {
    /// Snapshot id queries branch from.
    pub id: u64,
    /// Caller-supplied label.
    pub label: String,
    /// Simulated second the snapshot was taken at.
    pub taken_at_s: u64,
    /// Jobs running at the snapshot second.
    pub running_jobs: u64,
    /// Jobs queued at the snapshot second.
    pub pending_jobs: u64,
}

/// The service's snapshot registry: id-keyed, capacity-bounded.
pub struct SnapshotStore {
    snapshots: BTreeMap<u64, Arc<TwinSnapshot>>,
    next_id: u64,
    max_snapshots: usize,
    seed: u64,
}

impl SnapshotStore {
    /// Empty store holding at most `max_snapshots` snapshots, deriving
    /// per-snapshot RNG bases from `seed`.
    pub fn new(max_snapshots: usize, seed: u64) -> Self {
        SnapshotStore {
            snapshots: BTreeMap::new(),
            next_id: 1,
            max_snapshots: max_snapshots.max(1),
            seed,
        }
    }

    /// Freeze `live` into a new snapshot. Fails when the store is full
    /// (drop one first — eviction must be an explicit client decision,
    /// because a snapshot may be the base of in-flight queries) or when
    /// the twin's cooling backend cannot capture its state.
    pub fn take(&mut self, live: &DigitalTwin, label: String) -> Result<Arc<TwinSnapshot>, String> {
        self.adopt(live.fork()?, label)
    }

    /// Register an already-frozen twin as a new snapshot. Lets the
    /// caller clone under its own lock and register outside it (the
    /// service never holds the live-twin and store locks together).
    /// Same capacity rule as [`SnapshotStore::take`].
    pub fn adopt(&mut self, twin: DigitalTwin, label: String) -> Result<Arc<TwinSnapshot>, String> {
        if self.snapshots.len() >= self.max_snapshots {
            return Err(format!(
                "snapshot store is full ({} of {}); drop one first",
                self.snapshots.len(),
                self.max_snapshots
            ));
        }
        let id = self.next_id;
        let snapshot = Arc::new(TwinSnapshot {
            id,
            label,
            taken_at_s: twin.now(),
            seed: {
                let mut base = Rng::new(self.seed).split(id);
                base.next_u64()
            },
            twin,
        });
        self.next_id += 1;
        self.snapshots.insert(id, Arc::clone(&snapshot));
        Ok(snapshot)
    }

    /// Look up a snapshot by id (an `Arc` clone, so queries keep the
    /// frozen state alive even across a concurrent drop).
    pub fn get(&self, id: u64) -> Option<Arc<TwinSnapshot>> {
        self.snapshots.get(&id).cloned()
    }

    /// Drop a snapshot. In-flight queries holding the `Arc` finish
    /// unaffected; the id simply stops resolving.
    pub fn drop_snapshot(&mut self, id: u64) -> bool {
        self.snapshots.remove(&id).is_some()
    }

    /// Summaries of every held snapshot, ascending id.
    pub fn list(&self) -> Vec<SnapshotInfo> {
        self.snapshots.values().map(|s| s.info()).collect()
    }

    /// Number of held snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True when no snapshot is held.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The service seed snapshot RNG bases derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exadigit_core::config::TwinConfig;

    fn live_twin() -> DigitalTwin {
        let mut twin = DigitalTwin::new(TwinConfig::frontier_power_only()).unwrap();
        twin.submit(vec![exadigit_raps::job::Job::new(1, "j", 128, 600, 5, 0.6, 0.6)]);
        twin.run(60).unwrap();
        twin
    }

    #[test]
    fn take_fork_drop_lifecycle() {
        let mut store = SnapshotStore::new(4, 7);
        let live = live_twin();
        let snap = store.take(&live, "t60".into()).unwrap();
        assert_eq!(snap.id, 1);
        assert_eq!(snap.taken_at_s, 60);
        assert_eq!(snap.info().running_jobs, 1);
        let mut fork = snap.fork().unwrap();
        fork.run(600).unwrap();
        assert_eq!(fork.report().jobs_completed, 1);
        // The frozen state is unaffected by the fork's progress.
        assert_eq!(snap.twin().now(), 60);
        assert!(store.drop_snapshot(1));
        assert!(!store.drop_snapshot(1));
        assert!(store.get(1).is_none());
    }

    #[test]
    fn store_capacity_is_enforced() {
        let mut store = SnapshotStore::new(2, 0);
        let live = live_twin();
        store.take(&live, "a".into()).unwrap();
        store.take(&live, "b".into()).unwrap();
        let err = match store.take(&live, "c".into()) {
            Err(e) => e,
            Ok(_) => panic!("store must refuse a third snapshot"),
        };
        assert!(err.contains("full"), "{err}");
        store.drop_snapshot(1);
        // Ids keep ascending after a drop.
        assert_eq!(store.take(&live, "c".into()).unwrap().id, 3);
        assert_eq!(store.list().iter().map(|s| s.id).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn snapshot_seeds_differ_but_are_reproducible() {
        let mut s1 = SnapshotStore::new(8, 42);
        let mut s2 = SnapshotStore::new(8, 42);
        let live = live_twin();
        let a1 = s1.take(&live, "a".into()).unwrap();
        let b1 = s1.take(&live, "b".into()).unwrap();
        let a2 = s2.take(&live, "a".into()).unwrap();
        assert_eq!(a1.seed, a2.seed, "same service seed + id ⇒ same stream base");
        assert_ne!(a1.seed, b1.seed, "snapshots get distinct stream bases");
    }
}
