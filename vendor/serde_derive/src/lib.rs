//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize` / `Deserialize` impls against the vendored
//! `serde` crate's `Value` model. Because `syn`/`quote` are unavailable,
//! the derive input is parsed directly from `proc_macro::TokenStream`.
//!
//! Supported shapes (everything the workspace uses):
//! * structs with named fields → JSON objects;
//! * newtype structs (`struct X(T)`) → transparent (the inner value);
//! * tuple structs with ≥ 2 fields → JSON arrays;
//! * unit structs → `null`;
//! * enums with unit / newtype / tuple / struct variants → externally
//!   tagged, exactly like real serde (`"Variant"`,
//!   `{"Variant": payload}`).
//!
//! Generics and `#[serde(...)]` attributes are not supported and produce
//! a compile error rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive input.
enum Input {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Tuple struct with `n` unnamed fields.
    TupleStruct { name: String, arity: usize },
    /// Unit struct.
    UnitStruct { name: String },
    /// Enum; each variant is (name, shape).
    Enum { name: String, variants: Vec<(String, VariantShape)> },
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Split a delimited group's tokens at top-level commas. Parenthesised /
/// bracketed groups arrive as single `TokenTree`s, but generic arguments
/// do not — `<` and `>` are plain puncts — so angle-bracket depth must be
/// tracked or a field like `map: HashMap<String, u64>` splits in two.
/// A `>` completing a `->` arrow (fn-pointer field types) is not a close.
fn split_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0usize;
    for t in tokens {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => {
                    let after_dash = matches!(cur.last(),
                        Some(TokenTree::Punct(prev)) if prev.as_char() == '-');
                    if !after_dash {
                        angle_depth = angle_depth.saturating_sub(1);
                    }
                }
                ',' if angle_depth == 0 => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strip leading attributes (`#[...]`) and visibility (`pub`, `pub(...)`)
/// from a token slice, returning the rest.
fn strip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // '#' + [ ... ]
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

/// Extract named-field identifiers from the tokens of a brace group.
fn parse_named_fields(tokens: Vec<TokenTree>) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for chunk in split_commas(tokens) {
        let rest = strip_attrs_and_vis(&chunk);
        match rest.first() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            _ => return Err("unsupported field syntax".into()),
        }
    }
    Ok(fields)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility before the `struct` / `enum` keyword.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id))
                if matches!(id.to_string().as_str(), "pub" | "crate" | "in") =>
            {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
                break
            }
            Some(_) => i += 1,
            None => return Err("expected `struct` or `enum`".into()),
        }
    }
    let kind = tokens[i].to_string();
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("generic type `{name}` is not supported by the vendored serde_derive"));
    }
    if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream().into_iter().collect())?;
                Ok(Input::Struct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = split_commas(g.stream().into_iter().collect()).len();
                Ok(Input::TupleStruct { name, arity })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input::UnitStruct { name }),
            None => Ok(Input::UnitStruct { name }),
            _ => Err("unsupported struct body".into()),
        }
    } else {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            _ => return Err("expected enum body".into()),
        };
        let mut variants = Vec::new();
        for chunk in split_commas(body.into_iter().collect()) {
            let rest = strip_attrs_and_vis(&chunk);
            let vname = match rest.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return Err("unsupported variant syntax".into()),
            };
            let shape = match rest.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Struct(parse_named_fields(g.stream().into_iter().collect())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(split_commas(g.stream().into_iter().collect()).len())
                }
                _ => VariantShape::Unit, // unit variant, possibly `= discr`
            };
            variants.push((vname, shape));
        }
        Ok(Input::Enum { name, variants })
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let body = match &parsed {
        Input::Struct { fields, .. } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Input::TupleStruct { arity: 1, .. } => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Input::TupleStruct { arity, .. } => {
            let items: Vec<String> =
                (0..*arity).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Input::UnitStruct { .. } => "::serde::Value::Null".to_string(),
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => format!(
                        "{name}::{v} => ::serde::Value::String({v:?}.to_string()),"
                    ),
                    VariantShape::Tuple(1) => format!(
                        "{name}::{v}(x0) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                         ::serde::Serialize::to_value(x0))]),"
                    ),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({b}) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                             ::serde::Value::Array(vec![{it}]))]),",
                            b = binds.join(", "),
                            it = items.join(", ")
                        )
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![\
                             ({v:?}.to_string(), ::serde::Value::Object(vec![{p}]))]),",
                            p = pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let name = match &parsed {
        Input::Struct { name, .. }
        | Input::TupleStruct { name, .. }
        | Input::UnitStruct { name }
        | Input::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let (name, body) = match &parsed {
        Input::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         __v.get({f:?}).unwrap_or(&::serde::Value::Null)).map_err(|e| \
                         ::serde::Error::msg(format!(\"{name}.{f}: {{e}}\")))?"
                    )
                })
                .collect();
            (
                name,
                format!(
                    "match __v {{\n\
                         ::serde::Value::Object(_) => Ok({name} {{ {init} }}),\n\
                         other => Err(::serde::Error::msg(format!(\
                             \"expected object for {name}, found {{other:?}}\"))),\n\
                     }}",
                    init = inits.join(", ")
                ),
            )
        }
        Input::TupleStruct { name, arity: 1 } => (
            name,
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        ),
        Input::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            (
                name,
                format!(
                    "match __v {{\n\
                         ::serde::Value::Array(__a) if __a.len() == {arity} => \
                             Ok({name}({init})),\n\
                         other => Err(::serde::Error::msg(format!(\
                             \"expected {arity}-element array for {name}, found {{other:?}}\"))),\n\
                     }}",
                    init = inits.join(", ")
                ),
            )
        }
        Input::UnitStruct { name } => (name, format!("Ok({name})")),
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, s)| matches!(s, VariantShape::Unit))
                .map(|(v, _)| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, shape)| match shape {
                    VariantShape::Unit => None,
                    VariantShape::Tuple(1) => Some(format!(
                        "{v:?} => Ok({name}::{v}(::serde::Deserialize::from_value(__payload)?)),"
                    )),
                    VariantShape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        Some(format!(
                            "{v:?} => match __payload {{\n\
                                 ::serde::Value::Array(__a) if __a.len() == {n} => \
                                     Ok({name}::{v}({init})),\n\
                                 other => Err(::serde::Error::msg(format!(\
                                     \"bad payload for {name}::{v}: {{other:?}}\"))),\n\
                             }},",
                            init = inits.join(", ")
                        ))
                    }
                    VariantShape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     __payload.get({f:?}).unwrap_or(&::serde::Value::Null))?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "{v:?} => Ok({name}::{v} {{ {init} }}),",
                            init = inits.join(", ")
                        ))
                    }
                })
                .collect();
            (
                name,
                format!(
                    "match __v {{\n\
                         ::serde::Value::String(__s) => match __s.as_str() {{\n\
                             {units}\n\
                             other => Err(::serde::Error::msg(format!(\
                                 \"unknown {name} variant {{other:?}}\"))),\n\
                         }},\n\
                         ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                             let (__tag, __payload) = &__o[0];\n\
                             match __tag.as_str() {{\n\
                                 {tagged}\n\
                                 other => Err(::serde::Error::msg(format!(\
                                     \"unknown {name} variant {{other:?}}\"))),\n\
                             }}\n\
                         }},\n\
                         other => Err(::serde::Error::msg(format!(\
                             \"expected {name} variant, found {{other:?}}\"))),\n\
                     }}",
                    units = unit_arms.join("\n"),
                    tagged = tagged_arms.join("\n")
                ),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> \
             {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
