//! Event-kernel observability: shared counters for what `run_until`
//! actually did.
//!
//! A [`KernelMetrics`] is a bundle of [`exadigit_obs::Counter`] handles
//! the simulation increments as it works: events stepped (by kind),
//! constant-power gaps absorbed in closed form, cooled quanta collapsed
//! through `repeat_step`, and record samples materialised by bulk
//! backfill instead of being visited second-by-second. Together they
//! answer "is the lazy path actually engaging?" for a *live* serving
//! twin, where previously only the `day_replay` bench could tell.
//!
//! The counters are **not** simulation state: they are absent from the
//! serialized `RapsState` (snapshot format untouched), `from_state`
//! starts them fresh, and `fork` *shares* the parent's handles by
//! refcount — a service attaches one set and every snapshot fork and
//! what-if run feeds the same totals. Incrementing an atomic counter
//! never feeds back into simulation arithmetic, so attached, detached,
//! or contended metrics leave every simulated f64 bit-identical (the
//! workspace `observability` tests pin this).

use exadigit_obs::Counter;
use exadigit_sim::events::{Event, EventKind};

/// Shared counter handles for the event kernel (cheap to clone: each
/// field is an `Arc`'d atomic).
#[derive(Clone, Debug, Default)]
pub struct KernelMetrics {
    /// Job arrivals stepped as events.
    pub job_arrivals: Counter,
    /// Job completions stepped as events.
    pub job_completions: Counter,
    /// Wet-bulb forcing breakpoints stepped as events.
    pub wet_bulb_breakpoints: Counter,
    /// Cooling/trace quanta stepped eagerly (each paid a real
    /// co-simulation step or a per-quantum recompute check).
    pub cooling_quanta: Counter,
    /// Off-grid record boundaries stepped eagerly.
    pub record_boundaries: Counter,
    /// Constant-power gaps absorbed in closed form (`account_steady`
    /// with a non-empty gap): each one is seconds of simulated time that
    /// cost O(1).
    pub gaps_batched: Counter,
    /// Cooling quanta collapsed through `CoSimModel::repeat_step`
    /// instead of being stepped individually.
    pub cooled_quanta_batched: Counter,
    /// Output-series samples materialised by closed-form backfill
    /// (`TimeSeries::push_n`) rather than recorded at a visited second.
    pub samples_backfilled: Counter,
}

impl KernelMetrics {
    /// Fresh, unregistered counters (all zero). A service wires
    /// registry-backed handles in via `DigitalTwin::set_kernel_metrics`;
    /// unattached simulations count into these harmlessly.
    pub fn new() -> Self {
        KernelMetrics::default()
    }

    /// Count drained due events by kind (called at each of the kernel's
    /// drain sites just before the scratch buffer is cleared).
    #[inline]
    pub fn note_events(&self, events: &[Event]) {
        for e in events {
            match e.kind {
                EventKind::JobArrival => self.job_arrivals.inc(),
                EventKind::JobCompletion => self.job_completions.inc(),
                EventKind::WetBulbBreakpoint => self.wet_bulb_breakpoints.inc(),
                EventKind::CoolingQuantum => self.cooling_quanta.inc(),
                EventKind::RecordBoundary => self.record_boundaries.inc(),
            }
        }
    }

    /// Total events stepped across every kind.
    pub fn events_total(&self) -> u64 {
        self.job_arrivals.get()
            + self.job_completions.get()
            + self.wet_bulb_breakpoints.get()
            + self.cooling_quanta.get()
            + self.record_boundaries.get()
    }
}
