//! Umbrella crate for ExaDigiT-rs: re-exports the façade crate so that
//! `exadigit::DigitalTwin` works, and hosts the workspace-level
//! integration tests (`tests/`) and examples (`examples/`).

#![warn(missing_docs)]

pub use exadigit_core::*;
