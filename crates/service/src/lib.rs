//! Twin-as-a-service: a persistent scenario server with snapshot/fork
//! state.
//!
//! The paper's framework is not a batch simulator: ExaDigiT runs as a
//! *live* digital twin that tracks the real system and answers what-if
//! queries on demand. This crate is that service layer. A
//! [`TwinService`] keeps one **live twin** advancing through ingested
//! telemetry (a [`TelemetryFeed`] stands in for the real stream), takes
//! cheap deterministic **snapshots** of the full simulation state —
//! clock, queues, event calendar, accumulated outputs, cooling-model
//! internals — and answers **concurrent what-if queries** by *forking*
//! those snapshots instead of replaying from t = 0: a query branched
//! from "now" costs O(horizon), not O(elapsed + horizon), and a fork's
//! continuation is bit-identical to the original's (the `service_fork`
//! golden + property tests).
//!
//! Queries arrive over a newline-delimited-JSON protocol on plain TCP
//! ([`TwinServer`] / [`ServiceClient`]; grammar in `docs/SERVICE.md`),
//! are scheduled by a **bounded worker pool** (fixed reader set
//! multiplexing the sockets, a depth-limited request queue with
//! [`Response::Busy`] backpressure, per-connection in-flight caps —
//! no thread-per-connection, see [`ServerConfig`]), fan out across the
//! workspace thread pool (UQ draws and query batches in one pool
//! pass), and are memoised in a size-aware LRU [`QueryCache`] keyed by
//! `(snapshot id, scenario fingerprint)` — asking the same question of
//! the same frozen state twice costs one hash lookup. Shutdown is a
//! drain: admitted requests finish and every server thread is joined
//! before [`ServerHandle::shutdown`] returns.
//!
//! The service also **survives restarts**: built with
//! [`TwinService::with_persist_dir`], every snapshot is written to disk
//! as it is taken (length-prefixed JSON, atomic tmp + rename — see
//! [`PersistError`] for the typed failure modes), capacity evictions
//! spill instead of vanishing, [`Request::Checkpoint`] captures the
//! live twin, and [`TwinService::recover`] brings the whole service
//! back from the directory alone with bit-identical answers
//! (`crates/service/tests/recovery.rs`, `docs/SERVICE.md` § 6).
//!
//! ```no_run
//! use exadigit_core::config::TwinConfig;
//! use exadigit_service::{Request, ServiceClient, TwinServer, TwinService, WhatIfSpec};
//! use exadigit_telemetry::replay::TelemetryFeed;
//!
//! let service = TwinService::new(
//!     TwinConfig::frontier_power_only(),
//!     TelemetryFeed::synthetic(42, 1),
//!     42,
//! )
//! .unwrap();
//! let handle = TwinServer::bind(service, "127.0.0.1:0").unwrap().spawn();
//! let mut client = ServiceClient::connect(handle.addr()).unwrap();
//! client.request(&Request::Advance { seconds: 43_200 }).unwrap();
//! let snap = client.request(&Request::Snapshot { label: "noon".into() }).unwrap();
//! # let _ = snap;
//! client
//!     .request(&Request::Query {
//!         snapshot_id: 1,
//!         spec: WhatIfSpec { horizon_s: 3_600, ..WhatIfSpec::default() },
//!     })
//!     .unwrap();
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

mod cache;
mod client;
mod metrics;
mod persist;
mod pool;
mod protocol;
mod query;
mod server;
mod snapshot;

pub use cache::{outcome_bytes, scenario_fingerprint, QueryCache};
pub use client::ServiceClient;
pub use persist::{ManifestEntry, ManifestHeader, PersistError, MANIFEST_FORMAT_VERSION};
pub use pool::{ServerConfig, ServerHandle, TwinServer};
pub use protocol::{
    read_message, write_message, BatchOutcome, CounterSample, GaugeSample, HistogramSample,
    MetricsReport, Request, Response, ServerStatus, SlowQueryEntry, TraceEntry, MAX_LINE_BYTES,
};
pub use query::{run_whatif, WhatIfOutcome, WhatIfSpec};
pub use server::TwinService;
pub use snapshot::{SnapshotInfo, SnapshotStore, StoreMemoryStats, TwinSnapshot};

// Re-exported so service consumers can build feeds without naming the
// telemetry crate.
pub use exadigit_telemetry::replay::TelemetryFeed;
