//! Scene graph — the descriptive (L1) twin.
//!
//! "The mimicking structure refers to the 3D modeling of the physical
//! assets (racks, servers, pumps, etc.)" (§I of the paper). The scene
//! graph carries positions, levels of detail and telemetry bindings; the
//! JSON export is the hand-off point to any renderer (the paper uses UE5;
//! §V plans "dynamic asset generation based on JSON configuration files",
//! which is exactly what [`SceneGraph::frontier`] does).

use serde::{Deserialize, Serialize};

/// Kinds of physical assets in the scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssetKind {
    /// Machine-room compute rack.
    Rack,
    /// Cooling distribution unit.
    Cdu,
    /// Circulation pump (HTWP/CTWP).
    Pump,
    /// Evaporative cooling tower cell.
    TowerCell,
    /// Plate heat exchanger.
    HeatExchanger,
    /// Piping run.
    Pipe,
    /// Room/building shell.
    Room,
}

/// Level-of-detail band, the paper's key to keeping the UE5 model
/// "performant and responsive" (Finding 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LodLevel {
    /// Far: a bounding box with an aggregate color.
    Far,
    /// Mid: the asset shell with summary telemetry.
    Mid,
    /// Near: full detail down to blades/components.
    Near,
}

/// One node of the scene graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneNode {
    /// Stable id, e.g. `rack-17` or `cdu-03`.
    pub id: String,
    /// Display name.
    pub name: String,
    /// Asset kind.
    pub kind: AssetKind,
    /// Position in metres (machine-room frame).
    pub position: [f64; 3],
    /// Axis-aligned size in metres.
    pub size: [f64; 3],
    /// Coarsest LOD at which the node becomes visible (containers
    /// render from `Far`; component detail only from `Near`).
    pub min_lod: LodLevel,
    /// Telemetry channels bound to this asset (model output names).
    pub bindings: Vec<String>,
    /// Child nodes.
    pub children: Vec<SceneNode>,
}

impl SceneNode {
    /// Leaf node helper.
    pub fn leaf(
        id: impl Into<String>,
        name: impl Into<String>,
        kind: AssetKind,
        position: [f64; 3],
        size: [f64; 3],
    ) -> Self {
        SceneNode {
            id: id.into(),
            name: name.into(),
            kind,
            position,
            size,
            min_lod: LodLevel::Near,
            bindings: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Bind a telemetry channel to this asset.
    pub fn bind(mut self, channel: impl Into<String>) -> Self {
        self.bindings.push(channel.into());
        self
    }

    /// Count nodes in this subtree (including self).
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(SceneNode::count).sum::<usize>()
    }
}

/// The scene graph root plus generation metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneGraph {
    /// Generator name/version for provenance.
    pub generator: String,
    /// Root node (the site).
    pub root: SceneNode,
}

/// Round a generated coordinate to millimetres: keeps the exported JSON
/// clean and immune to float-parsing ULP differences.
fn mm(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

impl SceneGraph {
    /// Build the Frontier machine room + CEP scene: 74 racks in rows of
    /// up to 16, one CDU per three racks, four HTWPs, four CTWPs, five
    /// EHX and five towers of four cells.
    pub fn frontier() -> Self {
        let mut room = SceneNode::leaf("room", "Frontier data hall", AssetKind::Room, [0.0; 3], [60.0, 5.0, 30.0]);
        room.min_lod = LodLevel::Far;

        // Racks: rows of 16, 0.8 m pitch, 1.5 m aisle.
        for rack in 0..74usize {
            let row = rack / 16;
            let col = rack % 16;
            let node = SceneNode::leaf(
                format!("rack-{:02}", rack + 1),
                format!("Rack {}", rack + 1),
                AssetKind::Rack,
                [mm(2.0 + col as f64 * 0.8), 0.0, mm(2.0 + row as f64 * 3.0)],
                [0.6, 2.2, 1.4],
            )
            .bind(format!("cdu_heat[{}]", rack / 3 + 1));
            room.children.push(node);
        }
        // CDUs at the row ends.
        for cdu in 0..25usize {
            let node = SceneNode::leaf(
                format!("cdu-{:02}", cdu + 1),
                format!("CDU {}", cdu + 1),
                AssetKind::Cdu,
                [0.5, 0.0, mm(2.0 + cdu as f64 * 1.1)],
                [0.9, 2.2, 1.0],
            )
            .bind(format!("cdu[{}].secondary_supply_temp", cdu + 1))
            .bind(format!("cdu[{}].primary_flow", cdu + 1))
            .bind(format!("cdu[{}].pump_power", cdu + 1));
            room.children.push(node);
        }

        let mut cep = SceneNode::leaf("cep", "Central energy plant", AssetKind::Room, [70.0, 0.0, 0.0], [25.0, 8.0, 20.0]);
        cep.min_lod = LodLevel::Far;
        for i in 0..4usize {
            cep.children.push(
                SceneNode::leaf(
                    format!("htwp-{}", i + 1),
                    format!("HTWP{}", i + 1),
                    AssetKind::Pump,
                    [mm(72.0 + i as f64 * 2.0), 0.0, 4.0],
                    [1.2, 1.2, 2.0],
                )
                .bind(format!("htwp[{}].power", i + 1))
                .bind(format!("htwp[{}].speed", i + 1)),
            );
            cep.children.push(
                SceneNode::leaf(
                    format!("ctwp-{}", i + 1),
                    format!("CTWP{}", i + 1),
                    AssetKind::Pump,
                    [mm(72.0 + i as f64 * 2.0), 0.0, 8.0],
                    [1.4, 1.4, 2.2],
                )
                .bind(format!("ctwp[{}].power", i + 1)),
            );
        }
        for i in 0..5usize {
            cep.children.push(
                SceneNode::leaf(
                    format!("ehx-{}", i + 1),
                    format!("EHX{}", i + 1),
                    AssetKind::HeatExchanger,
                    [82.0, 0.0, mm(3.0 + i as f64 * 2.5)],
                    [1.0, 2.0, 1.8],
                )
                .bind("primary.num_ehx_staged".to_string()),
            );
        }
        for tower in 0..5usize {
            for cell in 0..4usize {
                let idx = tower * 4 + cell;
                let mut node = SceneNode::leaf(
                    format!("ct-{}-{}", tower + 1, cell + 1),
                    format!("CT{} cell {}", tower + 1, cell + 1),
                    AssetKind::TowerCell,
                    [mm(90.0 + tower as f64 * 4.5), 0.0, mm(2.0 + cell as f64 * 4.5)],
                    [4.0, 4.0, 4.0],
                );
                if idx < 16 {
                    node = node.bind(format!("ct_fan[{}].power", idx + 1));
                }
                cep.children.push(node);
            }
        }
        // Site piping between the two buildings.
        let supply = SceneNode::leaf("pipe-htws", "HTW supply", AssetKind::Pipe, [60.0, 0.0, 10.0], [10.0, 0.5, 0.5])
            .bind("facility.htw_supply_temp".to_string())
            .bind("facility.htw_supply_pressure".to_string());
        let ret = SceneNode::leaf("pipe-htwr", "HTW return", AssetKind::Pipe, [60.0, 0.0, 12.0], [10.0, 0.5, 0.5])
            .bind("facility.htw_return_temp".to_string());

        let mut root = SceneNode::leaf("site", "ORNL site", AssetKind::Room, [0.0; 3], [120.0, 10.0, 40.0]);
        root.min_lod = LodLevel::Far;
        root.children = vec![room, cep, supply, ret];
        SceneGraph { generator: "exadigit-rs scene generator".to_string(), root }
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.root.count()
    }

    /// Nodes visible at a given LOD (Far shows only containers).
    pub fn visible_at(&self, lod: LodLevel) -> usize {
        fn walk(node: &SceneNode, lod: LodLevel, acc: &mut usize) {
            // A node renders once the view zooms in at least to the
            // node's coarsest visibility level.
            if lod >= node.min_lod {
                *acc += 1;
            }
            for c in &node.children {
                walk(c, lod, acc);
            }
        }
        let mut n = 0;
        walk(&self.root, lod, &mut n);
        n
    }

    /// Export to pretty JSON for an external renderer.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scene serialises")
    }

    /// Parse a scene from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// All telemetry bindings referenced anywhere in the scene.
    pub fn all_bindings(&self) -> Vec<&str> {
        fn walk<'a>(node: &'a SceneNode, out: &mut Vec<&'a str>) {
            for b in &node.bindings {
                out.push(b);
            }
            for c in &node.children {
                walk(c, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_scene_has_expected_assets() {
        let scene = SceneGraph::frontier();
        let room = &scene.root.children[0];
        let racks = room.children.iter().filter(|n| n.kind == AssetKind::Rack).count();
        let cdus = room.children.iter().filter(|n| n.kind == AssetKind::Cdu).count();
        assert_eq!(racks, 74);
        assert_eq!(cdus, 25);
        let cep = &scene.root.children[1];
        let pumps = cep.children.iter().filter(|n| n.kind == AssetKind::Pump).count();
        let cells = cep.children.iter().filter(|n| n.kind == AssetKind::TowerCell).count();
        assert_eq!(pumps, 8); // 4 HTWP + 4 CTWP
        assert_eq!(cells, 20); // 5 towers × 4 cells
    }

    #[test]
    fn json_round_trip() {
        let scene = SceneGraph::frontier();
        let back = SceneGraph::from_json(&scene.to_json()).unwrap();
        assert_eq!(scene, back);
    }

    #[test]
    fn lod_filtering_reduces_node_count() {
        let scene = SceneGraph::frontier();
        let near = scene.visible_at(LodLevel::Near);
        let far = scene.visible_at(LodLevel::Far);
        assert!(far < near, "far {far} vs near {near}");
        // Far LOD: just the containers.
        assert!(far <= 4, "far={far}");
    }

    #[test]
    fn bindings_reference_model_outputs() {
        // Every binding must resolve against the Frontier cooling model's
        // registry (or be a heat input).
        let scene = SceneGraph::frontier();
        let model = exadigit_cooling::CoolingModel::frontier();
        use exadigit_sim::fmi::CoSimModel;
        for b in scene.all_bindings() {
            assert!(model.var_by_name(b).is_some(), "binding {b} unresolved");
        }
    }

    #[test]
    fn node_count_consistent() {
        let scene = SceneGraph::frontier();
        // site + room(1+74+25) + cep(1+8+5+20) + 2 pipes = 137
        assert_eq!(scene.node_count(), 1 + 100 + 34 + 2);
    }
}
