//! Online surrogate training with L4 fallback — adaptive cooling fidelity.
//!
//! The L4 transient plant is the honest answer and the reason
//! cooling-attached replays were ~80× slower than power-only ones: it
//! grinds a differential solve every 15 s quantum. The pre-trained L3
//! surrogate is ~1e5× faster but needs an offline training sweep, and its
//! single global quadratic "cannot track staging cliffs" (the PR 3
//! caveat): staging a cooling-tower cell steps fan power discontinuously,
//! so one polynomial over the whole operating plane smears the cliff.
//!
//! [`OnlineCoolingModel`] removes both compromises with a
//! train-while-you-serve loop behind the same FMI boundary:
//!
//! 1. **Watch.** Every step that runs the L4 plant also observes it: at
//!    quasi-steady operating points (same staging regime, near-constant
//!    load and wet-bulb for several consecutive quanta) the observed
//!    `(load, wet_bulb) → (PUE, cooling power)` tuple is recorded under
//!    the plant's current *staging regime* key
//!    ([`CoolingModel::staging_key`]).
//! 2. **Fit per regime.** Each regime periodically refits its own
//!    [`Surrogate`] over its own samples. Within one regime the PUE
//!    surface is smooth, so the quadratic fits tightly; the cliffs fall
//!    *between* regimes and are never interpolated across.
//! 3. **Serve L3 inside the trusted envelope.** Once a regime's fit
//!    error is inside tolerance, queries landing inside the envelope of
//!    the regime the plant is *currently staged in* are answered by the
//!    polynomial — the plant is not stepped at all. Staging is
//!    hysteretic, so overlapping envelopes are disambiguated by the
//!    plant's own staging key, never guessed. Anything else — untrained
//!    territory, an excursion past the envelope edge, a staging
//!    cliff — falls back to the L4 plant automatically. Answers
//!    therefore never extrapolate: they are either a trusted
//!    interpolation or the comprehensive model itself.
//!
//! Because the plant freezes while L3 serves, a fallback first re-settles
//! it at the current operating point ([`CoolingModel::settle`]) so the
//! transient solve resumes from auto-operation rather than a stale state.
//!
//! The practical effect: a long-lived `TwinService` with the
//! [`crate::CoolingBackend::Online`] backend *gets faster as it
//! ingests* — early advances pay L4 to learn the day's operating
//! regimes, later advances coast on the per-regime fits, and an
//! excursion into new weather transparently pays L4 again while the
//! trainer extends its envelope. Operators can watch the split through
//! the `online.*` local variables (surfaced in the service `Status`).

use crate::surrogate::{Sample, Surrogate};
use exadigit_cooling::{CoolingModel, PlantSpec};
use exadigit_sim::fmi::{
    Causality, CoSimModel, FmiError, VarRef, VariableDescriptor, VariableRegistry,
};
use serde::{Deserialize, Serialize};

/// Tuning knobs of the online trainer. The defaults are deliberately
/// conservative: trust is earned slowly and withdrawn implicitly (a
/// query outside the observed envelope always pays L4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineSurrogateConfig {
    /// Trust a regime's fit once its training RMSE on the PUE channel is
    /// at or below this (absolute PUE units).
    pub pue_tolerance: f64,
    /// Observations a regime needs before its first fit attempt.
    pub min_samples: usize,
    /// Per-regime sample cap; once full, only envelope-extending
    /// observations are kept (overwriting round-robin).
    pub max_samples: usize,
    /// Consecutive same-regime, near-constant-input quanta before an
    /// operating point counts as quasi-steady and gets recorded.
    pub steady_steps: u32,
    /// Record every k-th quasi-steady quantum (1 = all of them); thins
    /// long steady plateaus so the sample cap buys envelope coverage.
    pub sample_stride: u32,
    /// Plant settle steps (15 s each) on a fallback after the plant went
    /// stale serving L3, so the transient solve resumes from
    /// auto-operation at the current operating point.
    pub fallback_settle_steps: usize,
    /// Refit a regime after this many new samples since its last fit.
    pub refit_every: usize,
}

impl Default for OnlineSurrogateConfig {
    fn default() -> Self {
        OnlineSurrogateConfig {
            pue_tolerance: 0.002,
            min_samples: 12,
            max_samples: 2_048,
            steady_steps: 8,
            sample_stride: 4,
            fallback_settle_steps: 40,
            refit_every: 16,
        }
    }
}

/// A discrete staging regime: the (tower cells, HTW pumps, EHXs) staged
/// triple [`CoolingModel::staging_key`] reports. Serialized as a struct
/// (not a map key) so the vendored serde round-trips it verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct RegimeKey {
    cells: u32,
    pumps: u32,
    ehx: u32,
}

impl RegimeKey {
    fn of(key: (u32, u32, u32)) -> Self {
        RegimeKey { cells: key.0, pumps: key.1, ehx: key.2 }
    }
}

/// One staging regime's training state: its observations, its current
/// fit (when trusted), and the bookkeeping deciding when to refit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RegimeFit {
    key: RegimeKey,
    samples: Vec<Sample>,
    /// Present only while the last fit's RMSE is inside tolerance.
    surrogate: Option<Surrogate>,
    /// Samples recorded since the last fit attempt.
    since_fit: usize,
    /// Round-robin overwrite cursor once `samples` is at capacity.
    overwrite_at: usize,
}

impl RegimeFit {
    fn new(key: RegimeKey) -> Self {
        RegimeFit { key, samples: Vec::new(), surrogate: None, since_fit: 0, overwrite_at: 0 }
    }

    /// True when `sample` widens this regime's observed envelope.
    fn extends_envelope(&self, sample: &Sample) -> bool {
        self.samples.iter().all(|s| s.load_fraction < sample.load_fraction)
            || self.samples.iter().all(|s| s.load_fraction > sample.load_fraction)
            || self.samples.iter().all(|s| s.wet_bulb_c < sample.wet_bulb_c)
            || self.samples.iter().all(|s| s.wet_bulb_c > sample.wet_bulb_c)
    }

    fn record(&mut self, sample: Sample, cfg: &OnlineSurrogateConfig) {
        if self.samples.len() < cfg.max_samples {
            self.samples.push(sample);
        } else if self.extends_envelope(&sample) {
            // At capacity only envelope growth is worth keeping; plateau
            // repeats are overwritten round-robin, deterministically.
            self.overwrite_at = (self.overwrite_at + 1) % self.samples.len();
            self.samples[self.overwrite_at] = sample;
        } else {
            return;
        }
        self.since_fit += 1;
        if self.samples.len() >= cfg.min_samples && self.since_fit >= cfg.refit_every {
            self.since_fit = 0;
            self.surrogate = Surrogate::fit(&self.samples)
                .ok()
                .filter(|fit| fit.pue_train_rmse <= cfg.pue_tolerance);
        }
    }
}

/// Adaptive L3/L4 cooling backend: an embedded L4 [`CoolingModel`] plus
/// the per-regime surrogates trained from watching it. Exposes the same
/// `cooling_vars` contract as every other backend, so the simulation
/// loop cannot tell (and does not care) which fidelity answered a step.
///
/// Local variables readable across the boundary:
/// `online.l3_steps` (quanta served by a trusted fit),
/// `online.l4_steps` (quanta that stepped the plant),
/// `online.fallback_steps` (L4 quanta taken *after* trust existed — the
/// envelope-miss count), `online.trusted_regimes`, and
/// `online.load_fraction`.
#[derive(Clone, Serialize, Deserialize)]
pub struct OnlineCoolingModel {
    plant: CoolingModel,
    config: OnlineSurrogateConfig,
    /// Immutable after construction; forks share it by refcount.
    vars: std::sync::Arc<Vec<VariableDescriptor>>,
    values: Vec<f64>,
    /// Design heat of one input at load fraction 1, W.
    design_heat_per_cdu_w: f64,
    cdu_heat_w: Vec<f64>,
    wet_bulb_c: f64,
    it_power_w: f64,
    regimes: Vec<RegimeFit>,
    /// The plant was frozen by L3 serving and must re-settle before its
    /// next transient step.
    plant_stale: bool,
    /// Quasi-steady detector: the previous L4 step's regime and inputs.
    /// `last_load`/`last_wb` are only meaningful while `last_key` is
    /// `Some` (kept finite so snapshots survive the lossy NaN→null JSON
    /// mapping).
    last_key: Option<RegimeKey>,
    last_load: f64,
    last_wb: f64,
    steady_run: u32,
    l3_steps: u64,
    l4_steps: u64,
    fallback_steps: u64,
}

/// Load-fraction change per quantum below which an operating point still
/// counts as steady (job events break steadiness by far more).
const STEADY_LOAD_EPS: f64 = 0.02;
/// Wet-bulb change per quantum below which weather counts as steady
/// (telemetry ramps move ~0.01 °C per 15 s).
const STEADY_WB_EPS: f64 = 0.25;

impl OnlineCoolingModel {
    /// Build the trainer around a freshly constructed L4 plant for
    /// `spec`. The heat inputs map 1:1 onto the plant's CDUs (the
    /// backend attaches the plant, so the system/plant CDU counts are
    /// validated to agree).
    pub fn new(spec: &PlantSpec, config: OnlineSurrogateConfig) -> Result<Self, String> {
        let plant = CoolingModel::new(spec.clone())?;
        let num_cdus = spec.num_cdus;
        let mut reg = VariableRegistry::new();
        for i in 1..=num_cdus {
            reg.register(
                format!("cdu_heat[{i}]"),
                "W",
                Causality::Input,
                format!("Heat extracted into CDU {i}'s liquid loop"),
            );
        }
        reg.register("wet_bulb", "degC", Causality::Input, "Outdoor wet-bulb temperature");
        reg.register("it_power", "W", Causality::Input, "Total IT power for the PUE sub-module");
        reg.register("pue", "1", Causality::Output, "PUE (trusted fit or L4 plant)");
        reg.register("cooling_power", "W", Causality::Output, "Cooling auxiliary power (trusted fit or L4 plant)");
        reg.register("online.l3_steps", "1", Causality::Local, "Quanta served by a trusted per-regime fit");
        reg.register("online.l4_steps", "1", Causality::Local, "Quanta that stepped the L4 plant");
        reg.register(
            "online.fallback_steps",
            "1",
            Causality::Local,
            "L4 quanta taken after trust existed — queries outside every trusted envelope",
        );
        reg.register("online.trusted_regimes", "1", Causality::Local, "Staging regimes whose fit is currently trusted");
        reg.register("online.load_fraction", "1", Causality::Local, "Load fraction of plant design heat at the last step");
        let mut values = vec![0.0; reg.len()];
        values[num_cdus] = 15.0; // mirror the default wet-bulb state
        Ok(OnlineCoolingModel {
            plant,
            config,
            vars: std::sync::Arc::new(reg.into_vec()),
            values,
            design_heat_per_cdu_w: spec.heat_per_cdu_w(),
            cdu_heat_w: vec![0.0; num_cdus],
            wet_bulb_c: 15.0,
            it_power_w: 0.0,
            regimes: Vec::new(),
            plant_stale: false,
            last_key: None,
            last_load: 0.0,
            last_wb: 0.0,
            steady_run: 0,
            l3_steps: 0,
            l4_steps: 0,
            fallback_steps: 0,
        })
    }

    /// Quanta answered by a trusted per-regime fit so far.
    pub fn l3_steps(&self) -> u64 {
        self.l3_steps
    }

    /// Quanta that stepped the embedded L4 plant so far.
    pub fn l4_steps(&self) -> u64 {
        self.l4_steps
    }

    /// L4 quanta taken after at least one regime was trusted — the count
    /// of queries that left every trusted envelope.
    pub fn fallback_steps(&self) -> u64 {
        self.fallback_steps
    }

    /// Staging regimes whose current fit is inside tolerance.
    pub fn trusted_regimes(&self) -> usize {
        self.regimes.iter().filter(|r| r.surrogate.is_some()).count()
    }

    /// The embedded L4 plant (tests/diagnostics).
    pub fn plant(&self) -> &CoolingModel {
        &self.plant
    }

    fn load_fraction(&self) -> f64 {
        let total: f64 = self.cdu_heat_w.iter().sum();
        total / (self.design_heat_per_cdu_w * self.cdu_heat_w.len() as f64)
    }

    /// The trusted fit for the regime the plant is *currently staged
    /// in*, if its envelope contains the query. Staging is hysteretic,
    /// so two regimes' envelopes overlap wherever the plant can hold
    /// either staging at the same operating point — the plant's own
    /// staging key (frozen while fits serve, updated by every L4 step)
    /// is the only correct disambiguator. A query outside the current
    /// regime's envelope falls back to L4 even if some *other* regime
    /// has seen the point: reaching it from here may restage the plant,
    /// and only the transient model knows.
    fn trusted_match(&self, load: f64, wb: f64) -> Option<&Surrogate> {
        let key = RegimeKey::of(self.plant.staging_key());
        self.regimes
            .iter()
            .find(|r| r.key == key)
            .and_then(|r| r.surrogate.as_ref())
            .filter(|sur| sur.in_domain(load, wb))
    }

    fn refresh_counters(&mut self, load: f64) {
        let n = self.cdu_heat_w.len();
        self.values[n + 4] = self.l3_steps as f64;
        self.values[n + 5] = self.l4_steps as f64;
        self.values[n + 6] = self.fallback_steps as f64;
        self.values[n + 7] = self.trusted_regimes() as f64;
        self.values[n + 8] = load;
    }

    /// Step the L4 plant with the staged inputs and observe the result.
    fn step_l4(&mut self, current_time: f64, step_size: f64) -> Result<(), FmiError> {
        if self.plant_stale {
            // The plant froze while L3 served; re-settle it at the
            // current operating point before trusting its transients.
            // Settle in small chunks and stop once PUE has converged —
            // a fallback just past the envelope edge starts from a
            // near-steady state and needs a fraction of the cap.
            let load = self.load_fraction();
            let mut remaining = self.config.fallback_settle_steps;
            let mut last_pue = self.plant.output_by_name("pue").unwrap_or(f64::NAN);
            while remaining > 0 {
                let chunk = remaining.min(5);
                self.plant.settle(load, self.wet_bulb_c, chunk);
                remaining -= chunk;
                let pue = self.plant.output_by_name("pue").unwrap_or(f64::NAN);
                if (pue - last_pue).abs() <= 1e-6 {
                    break;
                }
                last_pue = pue;
            }
            self.plant_stale = false;
            self.last_key = None;
            self.steady_run = 0;
        }
        for (i, &heat) in self.cdu_heat_w.iter().enumerate() {
            self.plant.set_real(VarRef(i as u32), heat)?;
        }
        let n = self.cdu_heat_w.len();
        self.plant.set_real(VarRef(n as u32), self.wet_bulb_c)?;
        self.plant.set_real(VarRef((n + 1) as u32), self.it_power_w)?;
        self.plant.do_step(current_time, step_size)?;
        self.l4_steps += 1;

        let pue = self.plant.output_by_name("pue").unwrap_or(f64::NAN);
        let cooling_power = self.plant.output_by_name("cooling_power").unwrap_or(f64::NAN);
        self.values[n + 2] = pue;
        self.values[n + 3] = cooling_power;

        // Quasi-steady detection: same staging regime and near-constant
        // inputs for `steady_steps` consecutive quanta. Only then is the
        // observation close enough to steady state to train on — the
        // settle protocol the offline sweep uses, discovered online.
        let load = self.load_fraction();
        let key = RegimeKey::of(self.plant.staging_key());
        let steady = self.last_key == Some(key)
            && (load - self.last_load).abs() <= STEADY_LOAD_EPS
            && (self.wet_bulb_c - self.last_wb).abs() <= STEADY_WB_EPS;
        self.steady_run = if steady { self.steady_run + 1 } else { 1 };
        self.last_key = Some(key);
        self.last_load = load;
        self.last_wb = self.wet_bulb_c;
        if self.steady_run >= self.config.steady_steps
            && (self.steady_run - self.config.steady_steps)
                .is_multiple_of(self.config.sample_stride.max(1))
            && pue.is_finite()
        {
            let sample = Sample {
                load_fraction: load,
                wet_bulb_c: self.wet_bulb_c,
                pue,
                cooling_power_w: cooling_power,
            };
            let config = self.config.clone();
            match self.regimes.iter_mut().find(|r| r.key == key) {
                Some(r) => r.record(sample, &config),
                None => {
                    let mut r = RegimeFit::new(key);
                    r.record(sample, &config);
                    self.regimes.push(r);
                }
            }
        }
        Ok(())
    }
}

impl CoSimModel for OnlineCoolingModel {
    fn instance_name(&self) -> &str {
        "online_surrogate"
    }

    fn variables(&self) -> &[VariableDescriptor] {
        &self.vars
    }

    fn setup(&mut self, start_time: f64) {
        self.plant.setup(start_time);
        self.regimes.clear();
        self.plant_stale = false;
        self.last_key = None;
        self.steady_run = 0;
        self.l3_steps = 0;
        self.l4_steps = 0;
        self.fallback_steps = 0;
        self.refresh_counters(self.load_fraction());
    }

    fn set_real(&mut self, vr: VarRef, value: f64) -> Result<(), FmiError> {
        let idx = vr.0 as usize;
        match self.vars.get(idx) {
            None => Err(FmiError::UnknownVariable(vr)),
            Some(v) if v.causality == Causality::Input => {
                let n = self.cdu_heat_w.len();
                let stored = if idx < n {
                    self.cdu_heat_w[idx] = value.max(0.0);
                    self.cdu_heat_w[idx]
                } else if idx == n {
                    self.wet_bulb_c = value;
                    value
                } else {
                    self.it_power_w = value.max(0.0);
                    self.it_power_w
                };
                self.values[idx] = stored;
                Ok(())
            }
            Some(_) => Err(FmiError::WrongCausality { vr, expected: Causality::Input }),
        }
    }

    fn get_real(&self, vr: VarRef) -> Result<f64, FmiError> {
        self.values.get(vr.0 as usize).copied().ok_or(FmiError::UnknownVariable(vr))
    }

    fn do_step(&mut self, current_time: f64, step_size: f64) -> Result<(), FmiError> {
        if step_size <= 0.0 {
            return Err(FmiError::InvalidStep(format!("non-positive step {step_size}")));
        }
        let load = self.load_fraction();
        let n = self.cdu_heat_w.len();
        if let Some((pue, cooling_power)) = self
            .trusted_match(load, self.wet_bulb_c)
            .map(|s| (s.predict_pue(load, self.wet_bulb_c), s.predict_cooling_power(load, self.wet_bulb_c)))
        {
            // Inside the current regime's trusted envelope: serve the
            // fit, leave the plant untouched (it is now stale until the
            // next L4 step re-settles it).
            self.values[n + 2] = pue;
            self.values[n + 3] = cooling_power;
            self.l3_steps += 1;
            self.plant_stale = true;
        } else {
            let trusted_before = self.regimes.iter().any(|r| r.surrogate.is_some());
            self.step_l4(current_time, step_size)?;
            if trusted_before {
                self.fallback_steps += 1;
            }
        }
        self.refresh_counters(load);
        Ok(())
    }

    fn reset(&mut self) {
        self.plant.reset();
        self.cdu_heat_w.iter_mut().for_each(|v| *v = 0.0);
        self.wet_bulb_c = 15.0;
        self.it_power_w = 0.0;
        self.regimes.clear();
        self.plant_stale = false;
        self.last_key = None;
        self.last_load = 0.0;
        self.last_wb = 0.0;
        self.steady_run = 0;
        self.l3_steps = 0;
        self.l4_steps = 0;
        self.fallback_steps = 0;
        self.values.iter_mut().for_each(|v| *v = 0.0);
        self.values[self.cdu_heat_w.len()] = self.wet_bulb_c;
        self.refresh_counters(0.0);
    }

    fn fork(&self) -> Option<Box<dyn CoSimModel>> {
        Some(Box::new(self.clone()))
    }

    fn save_state(&self) -> Option<serde::Value> {
        Some(serde::Serialize::to_value(self))
    }

    fn quasi_static(&self) -> bool {
        // While a trusted fit would serve the held inputs, repeated
        // steps change nothing but the L3 counter: the plant is frozen,
        // the regimes only learn from L4 steps, and the fit is a pure
        // function of (load, wet_bulb).
        self.trusted_match(self.load_fraction(), self.wet_bulb_c).is_some()
    }

    fn repeat_step(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        let load = self.load_fraction();
        // Re-serve rather than re-use `values`: if the previous step was
        // the L4 step that earned trust, the outputs currently hold the
        // plant's answer and the next `do_step` would switch to the
        // fit's — `repeat_step` must land on exactly that.
        if let Some((pue, cooling_power)) = self
            .trusted_match(load, self.wet_bulb_c)
            .map(|s| (s.predict_pue(load, self.wet_bulb_c), s.predict_cooling_power(load, self.wet_bulb_c)))
        {
            let v = self.cdu_heat_w.len();
            self.values[v + 2] = pue;
            self.values[v + 3] = cooling_power;
            self.l3_steps += n;
            self.plant_stale = true;
            self.refresh_counters(load);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> OnlineSurrogateConfig {
        // Test-speed knobs: trust quickly, settle briefly.
        OnlineSurrogateConfig {
            min_samples: 10,
            steady_steps: 4,
            sample_stride: 1,
            refit_every: 10,
            fallback_settle_steps: 10,
            ..OnlineSurrogateConfig::default()
        }
    }

    fn drive(m: &mut OnlineCoolingModel, load: f64, wb: f64, quanta: usize) {
        let n = m.cdu_heat_w.len();
        let heat = m.design_heat_per_cdu_w * load;
        for i in 0..n {
            m.set_real(VarRef(i as u32), heat).unwrap();
        }
        m.set_real(VarRef(n as u32), wb).unwrap();
        m.set_real(VarRef((n + 1) as u32), heat * n as f64 / 0.945).unwrap();
        for k in 0..quanta {
            m.do_step(k as f64 * 15.0, 15.0).unwrap();
        }
    }

    #[test]
    fn exposes_the_coupling_contract() {
        let spec = PlantSpec::marconi100_like();
        let m = OnlineCoolingModel::new(&spec, OnlineSurrogateConfig::default()).unwrap();
        for i in 1..=spec.num_cdus {
            assert!(m.var_by_name(&format!("cdu_heat[{i}]")).is_some());
        }
        for name in ["wet_bulb", "it_power", "pue", "cooling_power"] {
            assert!(m.var_by_name(name).is_some(), "missing {name}");
        }
        for name in [
            "online.l3_steps",
            "online.l4_steps",
            "online.fallback_steps",
            "online.trusted_regimes",
        ] {
            assert!(m.var_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn trains_then_serves_l3_at_a_steady_point() {
        let spec = PlantSpec::marconi100_like();
        let mut m = OnlineCoolingModel::new(&spec, fast_config()).unwrap();
        m.setup(0.0);
        // A steady plateau: the trainer must collect samples, earn trust,
        // and switch to serving the fit.
        drive(&mut m, 0.6, 15.0, 120);
        assert!(m.trusted_regimes() >= 1, "no regime earned trust");
        assert!(m.l3_steps() > 0, "never served L3");
        // Once trusted, repeat queries at the same point are pure fits:
        // the plant step count stops advancing.
        let l4_before = m.l4_steps();
        drive(&mut m, 0.6, 15.0, 20);
        assert_eq!(m.l4_steps(), l4_before, "L4 stepped inside the trusted envelope");
    }

    #[test]
    fn untrained_territory_falls_back_to_l4() {
        let spec = PlantSpec::marconi100_like();
        let mut m = OnlineCoolingModel::new(&spec, fast_config()).unwrap();
        m.setup(0.0);
        drive(&mut m, 0.6, 15.0, 120);
        assert!(m.l3_steps() > 0);
        // A far-away operating point: outside every trusted envelope,
        // every quantum must pay L4 and count as a fallback.
        let (l4_before, fb_before) = (m.l4_steps(), m.fallback_steps());
        drive(&mut m, 0.25, 15.0, 5);
        assert_eq!(m.l4_steps() - l4_before, 5, "untrained queries must step the plant");
        assert_eq!(m.fallback_steps() - fb_before, 5);
        // The fallback answers are the plant's own outputs.
        let pue = m.get_real(m.var_by_name("pue").unwrap().vr).unwrap();
        assert_eq!(pue, m.plant.output_by_name("pue").unwrap());
    }

    #[test]
    fn state_round_trips_through_serde() {
        let spec = PlantSpec::marconi100_like();
        let mut m = OnlineCoolingModel::new(&spec, fast_config()).unwrap();
        m.setup(0.0);
        drive(&mut m, 0.6, 15.0, 80);
        let state = m.save_state().unwrap();
        let back = <OnlineCoolingModel as serde::Deserialize>::from_value(&state).unwrap();
        assert_eq!(back.l3_steps(), m.l3_steps());
        assert_eq!(back.l4_steps(), m.l4_steps());
        assert_eq!(back.trusted_regimes(), m.trusted_regimes());
        assert_eq!(back.regimes, m.regimes);
        // The restored model answers the next step identically.
        let mut a = m.clone();
        let mut b = back;
        a.do_step(2000.0 * 15.0, 15.0).unwrap();
        b.do_step(2000.0 * 15.0, 15.0).unwrap();
        let vr = a.var_by_name("pue").unwrap().vr;
        assert_eq!(
            a.get_real(vr).unwrap().to_bits(),
            b.get_real(vr).unwrap().to_bits()
        );
    }

    #[test]
    fn rejects_bad_boundary_use() {
        let spec = PlantSpec::marconi100_like();
        let mut m = OnlineCoolingModel::new(&spec, OnlineSurrogateConfig::default()).unwrap();
        m.setup(0.0);
        let pue_vr = m.var_by_name("pue").unwrap().vr;
        assert!(matches!(m.set_real(pue_vr, 1.0), Err(FmiError::WrongCausality { .. })));
        assert!(matches!(m.get_real(VarRef(9999)), Err(FmiError::UnknownVariable(_))));
        assert!(m.do_step(0.0, -1.0).is_err());
        m.reset();
        assert_eq!(m.l3_steps(), 0);
        assert_eq!(m.l4_steps(), 0);
    }
}
