//! Telemetry writers: CSV for job records and time series, JSON for
//! whole datasets. Counterparts to the [`crate::reader`] plug-ins.

use crate::schema::JobRecord;
use exadigit_sim::TimeSeries;
use std::fmt::Write as _;

/// Serialise job records to the native CSV format (see
/// [`crate::reader::CsvJobReader`] for the schema).
pub fn jobs_to_csv(jobs: &[JobRecord]) -> String {
    let mut out = String::with_capacity(jobs.len() * 128 + 64);
    out.push_str("job_id,name,node_count,submit,start,wall,cpu_trace,gpu_trace\n");
    for j in jobs {
        let cpu = join_trace(&j.cpu_power_w);
        let gpu = join_trace(&j.gpu_power_w);
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            j.job_id,
            sanitize(&j.job_name),
            j.node_count,
            j.submit_time_s,
            j.start_time_s,
            j.wall_time_s,
            cpu,
            gpu
        );
    }
    out
}

/// Serialise a time series to two-column CSV (`time_s,value`).
pub fn series_to_csv(series: &TimeSeries, header: &str) -> String {
    let mut out = String::with_capacity(series.len() * 24 + header.len() + 16);
    let _ = writeln!(out, "time_s,{header}");
    for (t, v) in series.iter() {
        let _ = writeln!(out, "{t},{v}");
    }
    out
}

/// Parse a two-column CSV back into a time series (assumes a uniform step,
/// taken from the first two rows).
pub fn series_from_csv(content: &str) -> Option<TimeSeries> {
    let mut times = Vec::new();
    let mut values = Vec::new();
    for (i, line) in content.lines().enumerate() {
        if i == 0 || line.trim().is_empty() {
            continue;
        }
        let (t, v) = line.split_once(',')?;
        times.push(t.trim().parse::<f64>().ok()?);
        values.push(v.trim().parse::<f64>().ok()?);
    }
    if times.len() < 2 {
        return None;
    }
    let dt = times[1] - times[0];
    if dt <= 0.0 {
        return None;
    }
    Some(TimeSeries::from_values(times[0], dt, values))
}

fn join_trace(trace: &[f32]) -> String {
    let mut s = String::with_capacity(trace.len() * 8);
    for (i, v) in trace.iter().enumerate() {
        if i > 0 {
            s.push(';');
        }
        let _ = write!(s, "{v}");
    }
    s
}

fn sanitize(name: &str) -> String {
    name.replace([',', '\n', ';'], "_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::TelemetryReader;

    #[test]
    fn csv_has_header_and_rows() {
        let rec = JobRecord {
            job_id: 1,
            job_name: "test".into(),
            node_count: 2,
            submit_time_s: 0,
            start_time_s: 0,
            wall_time_s: 30,
            cpu_power_w: vec![100.0],
            gpu_power_w: vec![400.0],
        };
        let csv = jobs_to_csv(&[rec]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("job_id"));
        assert!(lines[1].starts_with("1,test,2,"));
    }

    #[test]
    fn names_with_commas_sanitised() {
        let rec = JobRecord {
            job_id: 1,
            job_name: "bad,name;x".into(),
            node_count: 1,
            submit_time_s: 0,
            start_time_s: 0,
            wall_time_s: 30,
            cpu_power_w: vec![],
            gpu_power_w: vec![],
        };
        let csv = jobs_to_csv(&[rec]);
        let parsed = crate::reader::CsvJobReader.read_jobs(&csv).unwrap();
        assert_eq!(parsed[0].job_name, "bad_name_x");
    }

    #[test]
    fn series_round_trip() {
        let s = TimeSeries::from_values(0.0, 15.0, vec![1.5, 2.5, 3.5]);
        let csv = series_to_csv(&s, "power_w");
        let back = series_from_csv(&csv).unwrap();
        assert_eq!(back.dt, 15.0);
        assert_eq!(back.to_vec(), s.to_vec());
    }

    #[test]
    fn series_from_garbage_is_none() {
        assert!(series_from_csv("").is_none());
        assert!(series_from_csv("time_s,v\n1,abc\n2,3").is_none());
    }
}
