//! Deterministic random number generation.
//!
//! The simulator must be exactly reproducible across runs and platforms so
//! that telemetry replays and what-if studies can be compared apples to
//! apples (the paper replays the *same* 183 days under different power
//! delivery variants). We therefore carry our own small, well-known
//! generator — xoshiro256\*\* (Blackman & Vigna) seeded through splitmix64 —
//! instead of relying on `rand`'s unspecified default engine.
//!
//! The distribution helpers mirror what RAPS needs:
//!
//! * [`Rng::exponential`] implements eq. (5) of the paper,
//!   `τ = -ln(1 - U) / λ`, for Poisson job arrivals;
//! * [`Rng::normal`] / [`Rng::lognormal`] synthesize job sizes and runtimes
//!   from telemetry-derived moments (§III-B3);
//! * truncated variants clamp to physical ranges (no negative runtimes,
//!   utilizations in `[0, 1]`).

/// Splitmix64: used to expand a single `u64` seed into the 256-bit xoshiro
/// state. This is the seeding procedure recommended by the xoshiro authors.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256\*\* generator with distribution helpers.
///
/// Cloning an `Rng` forks the exact state; use [`Rng::split`] to derive an
/// independent stream (e.g. one stream per simulated day in the 183-day
/// replay so days can be generated in parallel yet stay reproducible).
///
/// Serialization captures the full 256-bit state plus the Box–Muller
/// cache, so a deserialized generator continues the *same* stream: the
/// n-th draw after a save/load round trip is bit-identical to the n-th
/// draw without one (the durable-snapshot contract).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second normal deviate from the Box–Muller pair.
    cached_normal: Option<u64>,
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s, cached_normal: None }
    }

    /// Derive an independent stream keyed by `stream_id`.
    ///
    /// Streams derived from the same parent with different ids are
    /// statistically independent; the parent is left untouched.
    pub fn split(&self, stream_id: u64) -> Self {
        // Mix the full parent state with the stream id through splitmix64.
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(34)
            ^ self.s[3].rotate_left(51)
            ^ stream_id.wrapping_mul(0xA076_1D64_78BD_642F);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s, cached_normal: None }
    }

    /// Next raw 64-bit value (xoshiro256\*\* step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` (unbiased via rejection).
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_usize needs n > 0");
        let n = n as u64;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Exponential inter-arrival time, eq. (5) of the paper:
    /// `τ = -ln(1 - U) / λ` where `λ = 1 / t_avg`.
    #[inline]
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0);
        let u = self.uniform();
        -(1.0 - u).ln() / lambda
    }

    /// Standard normal deviate (Box–Muller, pair-cached).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(bits) = self.cached_normal.take() {
            return f64::from_bits(bits);
        }
        // Box–Muller: generate a pair, cache the second.
        let u1 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        let z0 = r * theta.cos();
        let z1 = r * theta.sin();
        self.cached_normal = Some(z1.to_bits());
        z0
    }

    /// Normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.standard_normal()
    }

    /// Normal deviate clamped to `[lo, hi]`.
    pub fn normal_clamped(&mut self, mean: f64, std: f64, lo: f64, hi: f64) -> f64 {
        self.normal(mean, std).clamp(lo, hi)
    }

    /// Lognormal deviate parameterised by the mean/std of the *underlying*
    /// normal (i.e. `exp(N(mu, sigma))`).
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Lognormal deviate parameterised by the desired mean and standard
    /// deviation of the lognormal itself (moment matching). Handy because
    /// the paper reports telemetry moments, not log-space parameters.
    pub fn lognormal_from_moments(&mut self, mean: f64, std: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let cv2 = (std / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        self.lognormal(mu, sigma2.sqrt())
    }

    /// Pick a reference uniformly from a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.uniform_usize(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let parent = Rng::new(7);
        let mut s1 = parent.split(1);
        let mut s1b = parent.split(1);
        let mut s2 = parent.split(2);
        assert_eq!(s1.next_u64(), s1b.next_u64());
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = Rng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn exponential_matches_rate() {
        let mut rng = Rng::new(5);
        let lambda = 1.0 / 138.0; // paper Table IV: average arrival time 138 s
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(lambda)).sum::<f64>() / n as f64;
        assert!((mean - 138.0).abs() < 2.0, "mean={mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(9);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean={mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std={}", var.sqrt());
    }

    #[test]
    fn lognormal_from_moments_matches() {
        let mut rng = Rng::new(13);
        let n = 400_000;
        let (target_mean, target_std) = (268.0, 626.0); // nodes-per-job moments, Table IV
        let samples: Vec<f64> = (0..n)
            .map(|_| rng.lognormal_from_moments(target_mean, target_std))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        // Heavy-tailed, so allow a generous band on the mean.
        assert!((mean - target_mean).abs() / target_mean < 0.05, "mean={mean}");
    }

    #[test]
    fn uniform_usize_covers_range_without_bias() {
        let mut rng = Rng::new(17);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.uniform_usize(7)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts={counts:?}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let mut rng = Rng::new(29);
        for _ in 0..10_000 {
            let x = rng.normal_clamped(0.5, 1.0, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }
}
