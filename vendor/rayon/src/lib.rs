//! Offline stand-in for the `rayon` crate, backed by a real thread pool.
//!
//! `par_iter()` / `into_par_iter()` return a [`ParIter`] whose combinators
//! (`map`, `sum`, `collect`, `for_each`) execute on the process-global
//! executor in [`pool`]: persistent worker threads claim items from a
//! shared atomic counter (self-scheduling — dynamic load balancing at item
//! granularity), while the calling thread participates so progress is
//! always guaranteed.
//!
//! **Determinism contract:** every result lands in the slot of its source
//! index and every reduction folds those slots sequentially in index
//! order, so all outputs — including floating-point sums and first-`Err`
//! selection — are bit-identical to a single-threaded run. Threading only
//! changes wall-clock time, never a single output bit.
//!
//! Beyond the rayon API subset the workspace uses, the crate exposes two
//! façade-specific controls (real rayon spells these `ThreadPoolBuilder` /
//! `ThreadPool::install`): [`with_threads`] scopes an exact pool width
//! over a closure, and `EXADIGIT_THREADS` / `RAYON_NUM_THREADS` set the
//! process default. Swapping in real rayon remains a manifest-only change
//! for code that sticks to the rayon-compatible subset.

#![warn(missing_docs)]

pub mod pool;

pub use pool::{current_num_threads, with_threads};

use std::iter::Sum;

// ---------------------------------------------------------------------
// Index-ordered parallel map (the one primitive everything reduces to)
// ---------------------------------------------------------------------

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;

/// A write-once result slot. Each index of a parallel loop is claimed by
/// exactly one thread, which is the only writer of slot `i`; the caller
/// reads the slots only after the loop has fully completed.
struct Slot<T>(UnsafeCell<MaybeUninit<T>>);

// SAFETY: disjoint indices are accessed by disjoint threads (claim counter
// hands out each index once), and the caller's read happens after the
// executor's completion barrier.
unsafe impl<T: Send> Sync for Slot<T> {}

/// Apply `f` to every item on the pool and return results in source order.
///
/// On the panic path (an item panicking cancels the loop and re-raises on
/// the caller), unclaimed inputs and already-computed outputs held in
/// `MaybeUninit` slots are leaked rather than dropped — memory itself is
/// still freed with the vectors. Acceptable for a propagating-panic path.
fn parallel_map_ordered<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if !pool::would_parallelize(items.len()) {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let input: Vec<Slot<T>> =
        items.into_iter().map(|x| Slot(UnsafeCell::new(MaybeUninit::new(x)))).collect();
    let output: Vec<Slot<R>> =
        (0..n).map(|_| Slot(UnsafeCell::new(MaybeUninit::uninit()))).collect();
    pool::run(n, |i| {
        // SAFETY: index i is claimed exactly once, so this thread is the
        // sole reader of input[i] and sole writer of output[i].
        let item = unsafe { (*input[i].0.get()).assume_init_read() };
        let r = f(item);
        unsafe { (*output[i].0.get()).write(r) };
    });
    // pool::run returned normally ⇒ every item ran ⇒ every slot is filled.
    output.into_iter().map(|s| unsafe { s.0.into_inner().assume_init() }).collect()
}

// ---------------------------------------------------------------------
// Parallel iterator types
// ---------------------------------------------------------------------

/// A collection of items marked for parallel consumption. Produced by
/// [`IntoParallelIterator::into_par_iter`] / [`IntoParallelRefIterator::par_iter`];
/// consumed through [`ParIter::map`] and the reductions on [`ParMap`].
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel. Lazy: execution happens at the
    /// consuming reduction (`collect`, `sum`, `for_each`).
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Number of items behind this parallel iterator.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of [`ParIter::map`]: a pending parallel map with
/// index-order-deterministic reductions.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Execute the map on the pool, results in source order.
    fn run_ordered(self) -> Vec<R> {
        parallel_map_ordered(self.items, &self.f)
    }

    /// Execute and gather into `C` in source-index order (`Vec<R>`, or
    /// `Result<Vec<T>, E>` taking the lowest-index `Err`).
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_ordered_results(self.run_ordered())
    }

    /// Execute and sum in source-index order — a sequential left fold over
    /// the gathered results, bit-identical to `Iterator::sum`.
    pub fn sum<S: Sum<R>>(self) -> S {
        self.run_ordered().into_iter().sum()
    }

    /// Execute and reduce with `op` in source-index order, starting from
    /// `identity()` — the ordered analogue of rayon's `reduce`.
    pub fn reduce(self, identity: impl Fn() -> R, op: impl Fn(R, R) -> R) -> R {
        self.run_ordered().into_iter().fold(identity(), op)
    }
}

/// Gathering half of a parallel reduction: build `Self` from per-item
/// results delivered in source-index order.
pub trait FromParallelIterator<T>: Sized {
    /// Assemble from results already ordered by source index.
    fn from_ordered_results(results: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_results(results: Vec<T>) -> Self {
        results
    }
}

/// Like sequential `collect::<Result<_, _>>`, the error returned is the
/// lowest-index one — deterministic even though, unlike the sequential
/// path, later items have already been computed.
impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered_results(results: Vec<Result<T, E>>) -> Self {
        results.into_iter().collect()
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<(), E> {
    fn from_ordered_results(results: Vec<Result<T, E>>) -> Self {
        results.into_iter().try_for_each(|r| r.map(|_| ()))
    }
}

// ---------------------------------------------------------------------
// Entry traits
// ---------------------------------------------------------------------

/// `rayon::iter::IntoParallelIterator` equivalent.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Mark this collection for parallel consumption.
    fn into_par_iter(self) -> ParIter<Self::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

impl<T: IntoIterator> IntoParallelIterator for T {}

/// `rayon::iter::IntoParallelRefIterator` equivalent (`.par_iter()` on
/// slices, `Vec`s, maps, …).
pub trait IntoParallelRefIterator<'a> {
    /// Item yielded by reference.
    type Item: 'a;

    /// Mark this collection's elements (by reference) for parallel
    /// consumption.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: ?Sized> IntoParallelRefIterator<'a> for T
where
    &'a T: IntoIterator,
    T: 'a,
{
    type Item = <&'a T as IntoIterator>::Item;

    fn par_iter(&'a self) -> ParIter<Self::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// Glob-import target mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap,
    };
}

/// Path-compatibility alias for `rayon::iter`.
pub mod iter {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::with_threads;

    #[test]
    fn range_map_sum() {
        let total: u64 = (0..10u64).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(total, 90);
    }

    #[test]
    fn slice_par_iter_collect() {
        let xs = [1.0f64, 2.0, 3.0];
        let doubled: Vec<f64> = xs.par_iter().map(|&x| x * 2.0).collect();
        assert_eq!(doubled, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn result_collect_takes_lowest_index_error() {
        let r: Result<Vec<u32>, String> = (0..5u32)
            .into_par_iter()
            .map(|x| if x < 3 { Ok(x) } else { Err(format!("boom {x}")) })
            .collect();
        assert_eq!(r, Err("boom 3".to_string()));
    }

    #[test]
    fn collect_preserves_source_order_across_threads() {
        let v: Vec<usize> = with_threads(8, || {
            (0..1000usize)
                .into_par_iter()
                .map(|i| {
                    if i % 97 == 0 {
                        std::thread::yield_now(); // scramble completion order
                    }
                    i * 3
                })
                .collect()
        });
        assert_eq!(v, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn float_sum_is_bit_identical_across_widths() {
        // A sum whose value depends on association order: catches any
        // tree/partial reduction creeping in.
        let terms: Vec<f64> = (1..=4096u64).map(|i| 1.0 / i as f64).collect();
        let seq: f64 = with_threads(1, || terms.par_iter().map(|&x| x).sum());
        for width in [2usize, 4, 8] {
            let par: f64 = with_threads(width, || terms.par_iter().map(|&x| x).sum());
            assert_eq!(seq.to_bits(), par.to_bits(), "width {width} drifted");
        }
    }

    #[test]
    fn ordered_reduce_folds_left() {
        let joined = with_threads(4, || {
            (0..6u32)
                .into_par_iter()
                .map(|i| i.to_string())
                .reduce(String::new, |acc, x| acc + &x)
        });
        assert_eq!(joined, "012345");
    }

    #[test]
    fn owning_map_moves_non_copy_items() {
        let items: Vec<String> = (0..64).map(|i| format!("item-{i}")).collect();
        let lens: Vec<usize> =
            with_threads(4, || items.into_par_iter().map(|s| s.len()).collect());
        assert_eq!(lens.len(), 64);
        assert_eq!(lens[0], "item-0".len());
        assert_eq!(lens[63], "item-63".len());
    }
}
