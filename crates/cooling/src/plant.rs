//! The assembled cooling plant.
//!
//! Implements the thermo-fluid physics of Fig. 5: three coupled loops —
//! the cooling-tower loop (towers → CTWP1-4 → EHX cold side), the primary
//! high-temperature-water loop (EHX hot side → HTWP1-4 → 25 CDU heat
//! exchangers), and the 25 CDU-rack secondary loops (CDU pump → 3 racks →
//! HEX-1600). Each 15 s macro step performs: control update → steady
//! hydraulic solve of each loop → thermal sub-stepping through volumes,
//! exchangers, transport delays and tower cells.

use crate::controls::ControlCommands;
use crate::spec::PlantSpec;
use exadigit_network::hydraulic::{
    BranchElement, BranchId, HydraulicNetwork, NodeId, SolverError,
};
use exadigit_network::thermal::{mass_flow, mix_streams, temperature_rise};
use exadigit_thermo::fluid::Fluid;
use exadigit_thermo::hx::HeatExchanger;
use exadigit_thermo::pipe::{ThermalVolume, TransportDelay};
use exadigit_thermo::pump::Pump;
use exadigit_thermo::tower::CoolingTowerCell;
use exadigit_thermo::valve::ControlValve;
use exadigit_thermo::HydraulicResistance;

const G: f64 = 9.806_65;

/// Per-CDU observable state — the 11 outputs per CDU of §III-C4.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct CduState {
    /// CDU pump electrical power, W (station 14).
    pub pump_power_w: f64,
    /// CDU pump relative speed.
    pub pump_speed: f64,
    /// Primary-side flow, m³/s (station 12).
    pub primary_flow_m3s: f64,
    /// Secondary-side flow, m³/s (station 14).
    pub secondary_flow_m3s: f64,
    /// Primary supply temperature at the CDU, °C (station 12).
    pub primary_supply_temp_c: f64,
    /// Primary return temperature, °C (station 13).
    pub primary_return_temp_c: f64,
    /// Secondary supply temperature (to racks), °C (station 14).
    pub secondary_supply_temp_c: f64,
    /// Secondary return temperature (from racks), °C (station 15).
    pub secondary_return_temp_c: f64,
    /// Primary supply pressure, Pa.
    pub primary_supply_pressure_pa: f64,
    /// Primary return pressure, Pa.
    pub primary_return_pressure_pa: f64,
    /// Secondary supply pressure, Pa.
    pub secondary_supply_pressure_pa: f64,
    /// Secondary return pressure, Pa.
    pub secondary_return_pressure_pa: f64,
    /// Valve opening commanded by the control system.
    pub valve_opening: f64,
    /// Heat moved across the HEX-1600, W.
    pub hex_heat_w: f64,
}

/// Whole-plant observable state after a step.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct PlantState {
    /// Per-CDU states.
    pub cdus: Vec<CduState>,
    /// HTWP relative speed (shared by staged pumps).
    pub htwp_speed: f64,
    /// HTWPs staged on.
    pub htwp_staged: u32,
    /// Per-HTWP electrical power, W.
    pub htwp_power_w: Vec<f64>,
    /// CTWP relative speed.
    pub ctwp_speed: f64,
    /// CTWPs staged on.
    pub ctwp_staged: u32,
    /// Per-CTWP electrical power, W.
    pub ctwp_power_w: Vec<f64>,
    /// Intermediate heat exchangers staged.
    pub ehx_staged: u32,
    /// Tower cells staged.
    pub cells_staged: u32,
    /// Shared tower fan speed.
    pub fan_speed: f64,
    /// Per-cell fan power, W (length = spec.towers.cells).
    pub fan_power_w: Vec<f64>,
    /// HTW supply temperature at the data hall, °C (station 10).
    pub htws_temp_c: f64,
    /// HTW return temperature at the CEP, °C.
    pub htwr_temp_c: f64,
    /// Tower basin (cold CT water) temperature, °C.
    pub basin_temp_c: f64,
    /// Primary supply header pressure, Pa (station 10).
    pub primary_supply_pressure_pa: f64,
    /// Primary return header pressure, Pa.
    pub primary_return_pressure_pa: f64,
    /// Tower-loop supply header pressure, Pa.
    pub tower_header_pressure_pa: f64,
    /// Total primary flow, m³/s.
    pub primary_flow_m3s: f64,
    /// Total tower-loop flow, m³/s.
    pub tower_flow_m3s: f64,
    /// Total heat rejected by the towers, W.
    pub heat_rejected_w: f64,
    /// Auxiliary power: HTWPs + CTWPs + fans, W.
    pub aux_power_w: f64,
    /// CDU pump power total, W.
    pub cdu_pump_power_w: f64,
}

/// The plant: hydraulics + thermal state + component models.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct Plant {
    /// The generating specification.
    pub spec: PlantSpec,

    // Primary loop network.
    primary_net: HydraulicNetwork,
    primary_pump_branches: Vec<BranchId>,
    cdu_primary_branches: Vec<BranchId>,
    primary_ehx_branch: BranchId,
    primary_supply_node: NodeId,
    primary_return_node: NodeId,
    k_ehx_primary_single: f64,

    // Tower loop network.
    tower_net: HydraulicNetwork,
    tower_pump_branches: Vec<BranchId>,
    tower_ehx_branch: BranchId,
    tower_cells_branch: BranchId,
    tower_header_node: NodeId,
    k_ehx_tower_single: f64,
    k_tower_cell: f64,

    // Component models.
    primary_pump: Pump,
    tower_pump: Pump,
    cdu_pump: Pump,
    cdu_hex: HeatExchanger,
    ehx_total: HeatExchanger,
    tower_cell: CoolingTowerCell,
    /// Secondary-loop system resistance per CDU, Pa/(m³/s)².
    k_cdu_secondary: f64,

    /// Per-CDU secondary-loop blockage factor (≥ 1; multiplies the loop's
    /// hydraulic resistance). Models the biological-growth blockages of
    /// the §III-A water-quality use case.
    blockage_factor: Vec<f64>,

    // Thermal state.
    cdu_sec_supply: Vec<ThermalVolume>,
    cdu_sec_return: Vec<ThermalVolume>,
    supply_delay: TransportDelay,
    return_delay: TransportDelay,
    cep_supply_vol: ThermalVolume,
    basin: ThermalVolume,

    /// Latest observable state.
    pub state: PlantState,
}

impl Plant {
    /// Build the plant from a specification — the AutoCSM generation step.
    pub fn new(spec: PlantSpec) -> Result<Self, String> {
        spec.validate()?;
        let n_cdu = spec.num_cdus;

        // ----- Component sizing from the design point -----
        let q_prim_total = spec.primary_pumps.total_design_flow_m3s;
        let q_prim_per_pump = q_prim_total / spec.primary_pumps.count as f64;
        let primary_pump =
            Pump::from_design_point("HTWP", q_prim_per_pump, spec.primary_pumps.design_head_m, 0.84);

        let q_ct_total = spec.tower_pumps.total_design_flow_m3s;
        let q_ct_per_pump = q_ct_total / spec.tower_pumps.count as f64;
        let tower_pump =
            Pump::from_design_point("CTWP", q_ct_per_pump, spec.tower_pumps.design_head_m, 0.84);

        let cdu_pump = Pump::from_design_point(
            "CDUP",
            spec.cdu.secondary_design_flow_m3s,
            spec.cdu.secondary_design_head_m,
            0.75,
        );

        // CDU HEX sized at the mean of its two side flows.
        let mdot_sec = mass_flow(Fluid::Water, spec.cdu.secondary_design_flow_m3s, 30.0);
        let mdot_prim_cdu = mass_flow(Fluid::Water, spec.cdu.primary_design_flow_m3s, 30.0);
        let cdu_hex = HeatExchanger::from_design(
            "HEX-1600",
            spec.cdu.hex_effectiveness,
            0.5 * (mdot_sec + mdot_prim_cdu),
            Fluid::Water,
            Fluid::Water,
        );

        // Aggregate EHX bank at total loop flows.
        let mdot_prim_total = mass_flow(Fluid::Water, q_prim_total, 32.0);
        let mdot_ct_total = mass_flow(Fluid::Water, q_ct_total, 26.0);
        let ehx_total = HeatExchanger::from_design(
            "EHX-bank",
            spec.ehx.effectiveness,
            0.5 * (mdot_prim_total + mdot_ct_total),
            Fluid::Water,
            Fluid::Water,
        );

        let per_cell_mdot = mdot_ct_total / spec.towers.cells as f64;
        let tower_cell =
            CoolingTowerCell::from_design("CT-cell", per_cell_mdot, spec.towers.fan_power_rated_w);

        // ----- Primary network -----
        // Nodes: EHX outlet header -> (pumps) -> supply header -> (CDUs) ->
        // return header -> (EHX hot side, aggregate) -> EHX outlet header.
        let rho_g = 998.0 * G;
        let head_pa = spec.primary_pumps.design_head_m * rho_g;
        let dp_ehx_prim = 0.30 * head_pa;
        let dp_cdu_branch = 0.70 * head_pa;
        let q_cdu_prim = spec.cdu.primary_design_flow_m3s;

        let mut primary_net = HydraulicNetwork::new();
        let ehx_out = primary_net.add_node("ehx_outlet_header");
        let supply = primary_net.add_node("htw_supply_header");
        let ret = primary_net.add_node("htw_return_header");
        primary_net.set_reference(ehx_out, 120_000.0); // loop static pressure

        let mut primary_pump_branches = Vec::with_capacity(spec.primary_pumps.count);
        for i in 0..spec.primary_pumps.count {
            let speed = if (i as u32) < spec.primary_pumps.initial_staged { 0.85 } else { 0.0 };
            let b = primary_net.add_branch(
                format!("HTWP{}", i + 1),
                ehx_out,
                supply,
                vec![
                    BranchElement::Pump { pump: primary_pump.clone(), speed },
                    BranchElement::CheckValve { k_forward: 0.02 * head_pa / (q_prim_per_pump * q_prim_per_pump), k_reverse: 1e13 },
                ],
            );
            primary_net.set_initial_flow(b, q_prim_per_pump * 0.8);
            primary_pump_branches.push(b);
        }
        let mut cdu_primary_branches = Vec::with_capacity(n_cdu);
        for i in 0..n_cdu {
            // 40 % of the branch budget across the control valve at design,
            // the rest in the HEX primary side and piping.
            let valve = ControlValve::from_design(
                format!("CDU{}.valve", i + 1),
                q_cdu_prim,
                0.4 * dp_cdu_branch,
            );
            let fixed = HydraulicResistance::from_design(q_cdu_prim, 0.6 * dp_cdu_branch);
            let b = primary_net.add_branch(
                format!("CDU{}.primary", i + 1),
                supply,
                ret,
                vec![BranchElement::Valve(valve), BranchElement::Resistance(fixed)],
            );
            primary_net.set_initial_flow(b, q_cdu_prim);
            cdu_primary_branches.push(b);
        }
        let k_ehx_primary_single = {
            let q_unit = q_prim_total / spec.ehx.count as f64;
            dp_ehx_prim / (q_unit * q_unit)
        };
        let initial_ehx = spec.ehx.count as f64; // all staged at start
        let primary_ehx_branch = primary_net.add_branch(
            "EHX.hot_side",
            ret,
            ehx_out,
            vec![BranchElement::Resistance(HydraulicResistance {
                k: k_ehx_primary_single / (initial_ehx * initial_ehx),
            })],
        );
        primary_net.set_initial_flow(primary_ehx_branch, q_prim_total * 0.8);

        // ----- Tower network -----
        // Nodes: basin header -> (pumps) -> tower supply header -> (EHX
        // cold side) -> hot header -> (tower cells) -> basin header.
        let head_ct_pa = spec.tower_pumps.design_head_m * rho_g;
        let dp_ehx_ct = 0.40 * head_ct_pa;
        let dp_cells = 0.60 * head_ct_pa;

        let mut tower_net = HydraulicNetwork::new();
        let basin_node = tower_net.add_node("basin_header");
        let ct_supply = tower_net.add_node("ctw_supply_header");
        let ct_hot = tower_net.add_node("ctw_hot_header");
        tower_net.set_reference(basin_node, 110_000.0);

        let mut tower_pump_branches = Vec::with_capacity(spec.tower_pumps.count);
        for i in 0..spec.tower_pumps.count {
            let speed = if (i as u32) < spec.tower_pumps.initial_staged { 0.85 } else { 0.0 };
            let b = tower_net.add_branch(
                format!("CTWP{}", i + 1),
                basin_node,
                ct_supply,
                vec![
                    BranchElement::Pump { pump: tower_pump.clone(), speed },
                    BranchElement::CheckValve { k_forward: 0.02 * head_ct_pa / (q_ct_per_pump * q_ct_per_pump), k_reverse: 1e13 },
                ],
            );
            tower_net.set_initial_flow(b, q_ct_per_pump * 0.8);
            tower_pump_branches.push(b);
        }
        let k_ehx_tower_single = {
            let q_unit = q_ct_total / spec.ehx.count as f64;
            dp_ehx_ct / (q_unit * q_unit)
        };
        let tower_ehx_branch = tower_net.add_branch(
            "EHX.cold_side",
            ct_supply,
            ct_hot,
            vec![BranchElement::Resistance(HydraulicResistance {
                k: k_ehx_tower_single / (initial_ehx * initial_ehx),
            })],
        );
        tower_net.set_initial_flow(tower_ehx_branch, q_ct_total * 0.8);
        let k_tower_cell = {
            let q_cell = q_ct_total / spec.towers.cells as f64;
            dp_cells / (q_cell * q_cell)
        };
        let n0 = spec.towers.initial_staged as f64;
        let tower_cells_branch = tower_net.add_branch(
            "CT.cells",
            ct_hot,
            basin_node,
            vec![BranchElement::Resistance(HydraulicResistance {
                k: k_tower_cell / (n0 * n0),
            })],
        );
        tower_net.set_initial_flow(tower_cells_branch, q_ct_total * 0.8);

        // ----- Secondary loop resistance -----
        let q_sec = spec.cdu.secondary_design_flow_m3s;
        let k_cdu_secondary = spec.cdu.secondary_design_head_m * rho_g / (q_sec * q_sec);

        // ----- Thermal state -----
        let t_sec0 = spec.cdu.supply_setpoint_c;
        let t_prim0 = t_sec0 - 3.0;
        let t_ct0 = spec.towers.basin_setpoint_c;
        let cdu_sec_supply = (0..n_cdu)
            .map(|_| ThermalVolume::new(spec.cdu.loop_volume_kg * 0.5, Fluid::Water, t_sec0))
            .collect();
        let cdu_sec_return = (0..n_cdu)
            .map(|_| ThermalVolume::new(spec.cdu.loop_volume_kg * 0.5, Fluid::Water, t_sec0 + 6.0))
            .collect();
        let supply_delay = TransportDelay::new(spec.piping.supply_volume_m3, t_prim0);
        let return_delay = TransportDelay::new(spec.piping.return_volume_m3, t_prim0 + 8.0);
        let cep_supply_vol = ThermalVolume::new(4_000.0, Fluid::Water, t_prim0);
        let basin =
            ThermalVolume::new(spec.piping.basin_volume_m3 * 998.0, Fluid::Water, t_ct0);

        let mut state = PlantState {
            cdus: vec![CduState::default(); n_cdu],
            htwp_speed: 0.85,
            htwp_staged: spec.primary_pumps.initial_staged,
            htwp_power_w: vec![0.0; spec.primary_pumps.count],
            ctwp_speed: 0.85,
            ctwp_staged: spec.tower_pumps.initial_staged,
            ctwp_power_w: vec![0.0; spec.tower_pumps.count],
            ehx_staged: spec.ehx.count as u32,
            cells_staged: spec.towers.initial_staged,
            fan_speed: 0.6,
            fan_power_w: vec![0.0; spec.towers.cells],
            htws_temp_c: t_prim0,
            htwr_temp_c: t_prim0 + 8.0,
            basin_temp_c: t_ct0,
            primary_supply_pressure_pa: spec.primary_pressure_setpoint_pa,
            tower_header_pressure_pa: spec.tower_pressure_setpoint_pa,
            ..Default::default()
        };
        for (i, cdu) in state.cdus.iter_mut().enumerate() {
            let _ = i;
            cdu.pump_speed = 0.9;
            cdu.valve_opening = 0.7;
            cdu.secondary_supply_temp_c = t_sec0;
            cdu.secondary_return_temp_c = t_sec0 + 6.0;
            cdu.primary_supply_temp_c = t_prim0;
            cdu.primary_return_temp_c = t_prim0 + 8.0;
        }

        Ok(Plant {
            spec,
            primary_net,
            primary_pump_branches,
            cdu_primary_branches,
            primary_ehx_branch,
            primary_supply_node: supply,
            primary_return_node: ret,
            k_ehx_primary_single,
            tower_net,
            tower_pump_branches,
            tower_ehx_branch,
            tower_cells_branch,
            tower_header_node: ct_supply,
            k_ehx_tower_single,
            k_tower_cell,
            primary_pump,
            tower_pump,
            cdu_pump,
            cdu_hex,
            ehx_total,
            tower_cell,
            k_cdu_secondary,
            blockage_factor: vec![1.0; n_cdu],
            cdu_sec_supply,
            cdu_sec_return,
            supply_delay,
            return_delay,
            cep_supply_vol,
            basin,
            state,
        })
    }

    /// Set the secondary-loop blockage factor of one CDU (1 = clean;
    /// larger values model fouling/biological growth restricting flow).
    pub fn set_blockage(&mut self, cdu: usize, factor: f64) {
        self.blockage_factor[cdu] = factor.max(1.0);
    }

    /// Current blockage factor of a CDU.
    pub fn blockage(&self, cdu: usize) -> f64 {
        self.blockage_factor[cdu]
    }

    /// Apply the control commands to the hydraulic elements.
    pub fn apply_commands(&mut self, cmd: &ControlCommands) {
        // Primary pumps: staged pumps share a speed, the rest stop.
        for (i, &b) in self.primary_pump_branches.iter().enumerate() {
            let speed = if (i as u32) < cmd.htwp_staged { cmd.htwp_speed } else { 0.0 };
            self.primary_net.set_pump_speed(b, speed);
        }
        // CDU valves.
        for (i, &b) in self.cdu_primary_branches.iter().enumerate() {
            self.primary_net.set_valve_opening(b, cmd.cdu_valve_opening[i]);
        }
        // EHX aggregate resistance on both loops.
        let n_ehx = cmd.ehx_staged.max(1) as f64;
        self.primary_net
            .set_resistance(self.primary_ehx_branch, self.k_ehx_primary_single / (n_ehx * n_ehx));
        self.tower_net
            .set_resistance(self.tower_ehx_branch, self.k_ehx_tower_single / (n_ehx * n_ehx));
        // Tower pumps and cells.
        for (i, &b) in self.tower_pump_branches.iter().enumerate() {
            let speed = if (i as u32) < cmd.ctwp_staged { cmd.ctwp_speed } else { 0.0 };
            self.tower_net.set_pump_speed(b, speed);
        }
        let n_cells = cmd.cells_staged.max(1) as f64;
        self.tower_net
            .set_resistance(self.tower_cells_branch, self.k_tower_cell / (n_cells * n_cells));

        self.state.htwp_speed = cmd.htwp_speed;
        self.state.htwp_staged = cmd.htwp_staged;
        self.state.ctwp_speed = cmd.ctwp_speed;
        self.state.ctwp_staged = cmd.ctwp_staged;
        self.state.ehx_staged = cmd.ehx_staged;
        self.state.cells_staged = cmd.cells_staged;
        self.state.fan_speed = cmd.fan_speed;
        for (i, cdu) in self.state.cdus.iter_mut().enumerate() {
            cdu.valve_opening = cmd.cdu_valve_opening[i];
            cdu.pump_speed = cmd.cdu_pump_speed[i];
        }
    }

    /// Advance the plant by `dt_s` (the 15 s macro step) under the given
    /// per-CDU heat inputs (W) and wet-bulb temperature (°C).
    pub fn step(&mut self, cdu_heat_w: &[f64], wet_bulb_c: f64, dt_s: f64) -> Result<(), SolverError> {
        assert_eq!(cdu_heat_w.len(), self.spec.num_cdus);

        // --- Hydraulic solves (steady per step) ---
        let prim_sol = self.primary_net.solve(32.0)?;
        let ct_sol = self.tower_net.solve(26.0)?;

        let q_prim_total: f64 =
            self.cdu_primary_branches.iter().map(|&b| prim_sol.flow(b)).sum();
        let q_ct_total = ct_sol.flow(self.tower_ehx_branch);
        let p_supply = prim_sol.pressure(self.primary_supply_node);
        let p_return = prim_sol.pressure(self.primary_return_node);
        let p_ct_header = ct_sol.pressure(self.tower_header_node);

        // Pump powers.
        for (i, &b) in self.primary_pump_branches.iter().enumerate() {
            let speed = if (i as u32) < self.state.htwp_staged { self.state.htwp_speed } else { 0.0 };
            self.state.htwp_power_w[i] =
                self.primary_pump.electrical_power(prim_sol.flow(b).max(0.0), speed, 32.0);
        }
        for (i, &b) in self.tower_pump_branches.iter().enumerate() {
            let speed = if (i as u32) < self.state.ctwp_staged { self.state.ctwp_speed } else { 0.0 };
            self.state.ctwp_power_w[i] =
                self.tower_pump.electrical_power(ct_sol.flow(b).max(0.0), speed, 26.0);
        }

        // CDU secondary loops: analytic pump/system operating point.
        let mut sec_flows = Vec::with_capacity(self.spec.num_cdus);
        let mut cdu_pump_total = 0.0;
        for i in 0..self.spec.num_cdus {
            let speed = self.state.cdus[i].pump_speed;
            let k_eff = self.k_cdu_secondary * self.blockage_factor[i];
            let q = self.cdu_pump.operating_flow(k_eff, speed, 32.0);
            let power = self.cdu_pump.electrical_power(q, speed, 32.0);
            sec_flows.push(q);
            cdu_pump_total += power;
            let cdu = &mut self.state.cdus[i];
            cdu.secondary_flow_m3s = q;
            cdu.pump_power_w = power;
            cdu.primary_flow_m3s = prim_sol.flow(self.cdu_primary_branches[i]).max(0.0);
            cdu.primary_supply_pressure_pa = p_supply;
            cdu.primary_return_pressure_pa = p_return;
            // Secondary gauge pressures: discharge = loop drop + static.
            cdu.secondary_supply_pressure_pa = 150_000.0 + k_eff * q * q;
            cdu.secondary_return_pressure_pa = 150_000.0;
        }

        // --- Thermal sub-stepping ---
        let substeps = (dt_s / self.spec.thermal_substep_s).ceil().max(1.0) as usize;
        let h = dt_s / substeps as f64;
        let mdot_prim_total = mass_flow(Fluid::Water, q_prim_total.max(1e-6), 32.0);
        let mdot_ct_total = mass_flow(Fluid::Water, q_ct_total.max(1e-6), 26.0);
        let n_cells = self.state.cells_staged.max(1) as usize;
        let n_ehx = self.state.ehx_staged.max(1) as f64;
        let mut heat_rejected = 0.0;

        for _ in 0..substeps {
            // Primary supply reaches the data hall after the pipe delay.
            let t_htws_hall =
                self.supply_delay.step(self.cep_supply_vol.temperature, q_prim_total, h);

            // CDU loops.
            let mut prim_out_streams = Vec::with_capacity(self.spec.num_cdus);
            for i in 0..self.spec.num_cdus {
                let q_sec = sec_flows[i];
                let mdot_sec = mass_flow(Fluid::Water, q_sec.max(1e-6), 32.0);
                let mdot_prim =
                    mass_flow(Fluid::Water, self.state.cdus[i].primary_flow_m3s.max(1e-9), 32.0);

                // Racks heat the secondary stream (eq. 7 inverse).
                let t_rack_out = temperature_rise(
                    Fluid::Water,
                    self.cdu_sec_supply[i].temperature,
                    mdot_sec,
                    cdu_heat_w[i],
                );
                self.cdu_sec_return[i].step(t_rack_out, mdot_sec, 0.0, h);

                // HEX-1600: secondary (hot) against primary (cold).
                let hx = self.cdu_hex.evaluate(
                    self.cdu_sec_return[i].temperature,
                    mdot_sec,
                    t_htws_hall,
                    mdot_prim,
                );
                self.cdu_sec_supply[i].step(hx.t_hot_out, mdot_sec, 0.0, h);
                prim_out_streams.push((mdot_prim, hx.t_cold_out));

                let cdu = &mut self.state.cdus[i];
                cdu.hex_heat_w = hx.heat_w;
                cdu.primary_supply_temp_c = t_htws_hall;
                cdu.primary_return_temp_c = hx.t_cold_out;
                cdu.secondary_supply_temp_c = self.cdu_sec_supply[i].temperature;
                cdu.secondary_return_temp_c = self.cdu_sec_return[i].temperature;
            }

            // Mixed primary return travels back to the CEP.
            let t_prim_ret_hall = mix_streams(&prim_out_streams);
            let t_htwr_cep = self.return_delay.step(t_prim_ret_hall, q_prim_total, h);

            // EHX bank: primary (hot) against tower water (cold). UA scales
            // with the staged fraction of the bank.
            let mut ehx = self.ehx_total.clone();
            ehx.ua_design *= n_ehx / self.spec.ehx.count as f64;
            let ehx_res =
                ehx.evaluate(t_htwr_cep, mdot_prim_total, self.basin.temperature, mdot_ct_total);
            self.cep_supply_vol.step(ehx_res.t_hot_out, mdot_prim_total, 0.0, h);

            // Tower cells: active cells share the loop flow.
            let per_cell = mdot_ct_total / n_cells as f64;
            let cell_res = self.tower_cell.evaluate(
                ehx_res.t_cold_out,
                per_cell,
                wet_bulb_c,
                self.state.fan_speed,
            );
            heat_rejected += cell_res.heat_rejected_w * n_cells as f64 * h;
            self.basin.step(cell_res.t_water_out, mdot_ct_total, 0.0, h);

            self.state.htws_temp_c = t_htws_hall;
            self.state.htwr_temp_c = t_htwr_cep;
            self.state.basin_temp_c = self.basin.temperature;
        }

        // Fan powers: active cells run at the shared speed.
        let mut fan_total = 0.0;
        for (i, p) in self.state.fan_power_w.iter_mut().enumerate() {
            if i < n_cells {
                let s = self.state.fan_speed.max(self.tower_cell.min_fan_speed);
                *p = self.tower_cell.fan_power_rated * s * s * s;
            } else {
                *p = 0.0;
            }
            fan_total += *p;
        }

        self.state.primary_supply_pressure_pa = p_supply;
        self.state.primary_return_pressure_pa = p_return;
        self.state.tower_header_pressure_pa = p_ct_header;
        self.state.primary_flow_m3s = q_prim_total;
        self.state.tower_flow_m3s = q_ct_total;
        self.state.heat_rejected_w = heat_rejected / dt_s;
        self.state.cdu_pump_power_w = cdu_pump_total;
        self.state.aux_power_w = self.state.htwp_power_w.iter().sum::<f64>()
            + self.state.ctwp_power_w.iter().sum::<f64>()
            + fan_total;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controls::PlantControls;

    fn settled_plant(heat_frac: f64, wet_bulb: f64, steps: usize) -> Plant {
        let spec = PlantSpec::frontier();
        let heat = spec.heat_per_cdu_w() * heat_frac;
        let heats = vec![heat; spec.num_cdus];
        let mut plant = Plant::new(spec.clone()).unwrap();
        let mut controls = PlantControls::new(&spec);
        for _ in 0..steps {
            let cmd = controls.update(&plant.state, &spec, 15.0);
            plant.apply_commands(&cmd);
            plant.step(&heats, wet_bulb, 15.0).expect("solve");
        }
        plant
    }

    #[test]
    fn plant_builds_from_frontier_spec() {
        let plant = Plant::new(PlantSpec::frontier()).unwrap();
        assert_eq!(plant.state.cdus.len(), 25);
        assert_eq!(plant.state.htwp_power_w.len(), 4);
        assert_eq!(plant.state.fan_power_w.len(), 20);
    }

    #[test]
    fn steady_state_balances_heat() {
        // At steady state the towers must reject what the racks inject.
        let plant = settled_plant(0.8, 15.0, 2_000);
        let injected = plant.spec.design_heat_w * 0.8;
        let rejected = plant.state.heat_rejected_w;
        let err = (rejected - injected).abs() / injected;
        assert!(err < 0.05, "injected {injected:.3e} rejected {rejected:.3e}");
    }

    #[test]
    fn secondary_supply_holds_setpoint_under_load() {
        let plant = settled_plant(0.7, 15.0, 2_000);
        let sp = plant.spec.cdu.supply_setpoint_c;
        for (i, cdu) in plant.state.cdus.iter().enumerate() {
            assert!(
                (cdu.secondary_supply_temp_c - sp).abs() < 1.5,
                "cdu {i}: {} vs setpoint {sp}",
                cdu.secondary_supply_temp_c
            );
        }
    }

    #[test]
    fn temperatures_ordered_along_the_chain() {
        let plant = settled_plant(0.8, 15.0, 1_500);
        let s = &plant.state;
        // Wet bulb < basin < HTW supply < HTW return < secondary return.
        assert!(s.basin_temp_c > 15.0, "basin {}", s.basin_temp_c);
        assert!(s.htws_temp_c > s.basin_temp_c, "htws {} basin {}", s.htws_temp_c, s.basin_temp_c);
        assert!(s.htwr_temp_c > s.htws_temp_c);
        let cdu = &s.cdus[0];
        assert!(cdu.secondary_return_temp_c > cdu.secondary_supply_temp_c);
        assert!(cdu.primary_return_temp_c > cdu.primary_supply_temp_c);
    }

    #[test]
    fn higher_load_raises_return_temperature() {
        let low = settled_plant(0.3, 15.0, 1_200);
        let high = settled_plant(0.9, 15.0, 1_200);
        assert!(high.state.htwr_temp_c > low.state.htwr_temp_c);
        assert!(
            high.state.cdus[0].secondary_return_temp_c
                > low.state.cdus[0].secondary_return_temp_c
        );
    }

    #[test]
    fn hot_day_needs_more_tower_effort() {
        let cool = settled_plant(0.7, 10.0, 1_500);
        let hot = settled_plant(0.7, 24.0, 1_500);
        // Hotter wet-bulb: higher basin temperature and at least as many
        // cells/fans working.
        assert!(hot.state.basin_temp_c > cool.state.basin_temp_c);
        let effort = |p: &Plant| p.state.fan_speed + p.state.cells_staged as f64 * 0.05;
        assert!(effort(&hot) >= effort(&cool) * 0.99);
    }

    #[test]
    fn aux_power_is_plausible() {
        let plant = settled_plant(0.8, 15.0, 1_200);
        // HTWPs + CTWPs + fans: hundreds of kW, not MW, for a ~27 MW plant.
        assert!(plant.state.aux_power_w > 50e3, "aux {}", plant.state.aux_power_w);
        assert!(plant.state.aux_power_w < 1.5e6, "aux {}", plant.state.aux_power_w);
        // CDU pumps: 25 × ~8.7 kW ≈ 220 kW.
        assert!((plant.state.cdu_pump_power_w - 217_500.0).abs() < 120_000.0);
    }

    #[test]
    fn flows_in_paper_band() {
        let plant = settled_plant(0.8, 15.0, 1_200);
        let gpm = |q: f64| q * 60.0 / 3.785_411_784e-3;
        // Paper: "approximately 5000-6000 gpm" per HTWP and "9000-10000
        // gpm" per CTWP; allow a generous part-load band around those.
        let prim_per_pump =
            gpm(plant.state.primary_flow_m3s) / plant.state.htwp_staged.max(1) as f64;
        let ct_per_pump =
            gpm(plant.state.tower_flow_m3s) / plant.state.ctwp_staged.max(1) as f64;
        assert!((2_500.0..8_000.0).contains(&prim_per_pump), "HTWP {prim_per_pump} gpm");
        assert!((4_000.0..13_000.0).contains(&ct_per_pump), "CTWP {ct_per_pump} gpm");
    }

    #[test]
    fn zero_load_cools_down() {
        let plant = settled_plant(0.02, 15.0, 1_500);
        // With almost no load everything drifts toward the tower floor.
        assert!(plant.state.htwr_temp_c < 40.0);
        assert!(plant.state.cells_staged <= plant.spec.towers.initial_staged + 2);
    }
}
