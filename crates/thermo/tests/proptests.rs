//! Property-based tests for the thermo-fluid component library: physical
//! invariants that must hold for *any* operating condition, not just the
//! design point.

use exadigit_thermo::coldplate::ColdPlate;
use exadigit_thermo::fluid::Fluid;
use exadigit_thermo::hx::{effectiveness_counterflow, HeatExchanger};
use exadigit_thermo::pid::Pid;
use exadigit_thermo::pump::Pump;
use exadigit_thermo::staging::{FirstOrderLag, HysteresisStager};
use exadigit_thermo::tower::CoolingTowerCell;
use exadigit_thermo::valve::ControlValve;
use proptest::prelude::*;

proptest! {
    /// ε ∈ [0, 1] for any NTU and capacity ratio.
    #[test]
    fn effectiveness_bounded(ntu in 0.0f64..100.0, cr in 0.0f64..1.0) {
        let e = effectiveness_counterflow(ntu, cr);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&e), "eps={e}");
    }

    /// ε is monotone increasing in NTU.
    #[test]
    fn effectiveness_monotone_in_ntu(ntu in 0.1f64..20.0, d in 0.01f64..5.0, cr in 0.0f64..1.0) {
        prop_assert!(
            effectiveness_counterflow(ntu + d, cr) >= effectiveness_counterflow(ntu, cr) - 1e-12
        );
    }

    /// Heat-exchanger outlets never cross: second law in every state.
    #[test]
    fn hx_respects_second_law(
        t_hot in 10.0f64..80.0,
        dt in 0.1f64..40.0,
        m_hot in 0.1f64..500.0,
        m_cold in 0.1f64..500.0,
        eff in 0.05f64..0.97,
    ) {
        let t_cold = t_hot - dt;
        let hx = HeatExchanger::from_design("p", eff, 100.0, Fluid::Water, Fluid::Water);
        let r = hx.evaluate(t_hot, m_hot, t_cold, m_cold);
        // Heat flows hot → cold, outlets bracketed by inlets.
        prop_assert!(r.heat_w >= 0.0);
        prop_assert!(r.t_hot_out <= t_hot + 1e-9 && r.t_hot_out >= t_cold - 1e-9);
        prop_assert!(r.t_cold_out >= t_cold - 1e-9 && r.t_cold_out <= t_hot + 1e-9);
        // Energy balance: both sides agree.
        let t_mean = 0.5 * (t_hot + t_cold);
        let q_hot = m_hot * Fluid::Water.specific_heat(t_mean) * (t_hot - r.t_hot_out);
        prop_assert!((q_hot - r.heat_w).abs() <= 1e-6 * (1.0 + r.heat_w.abs()));
    }

    /// Tower water never cools below wet-bulb and fan power is bounded.
    #[test]
    fn tower_never_beats_wet_bulb(
        t_in in 15.0f64..60.0,
        wb in -5.0f64..30.0,
        mdot in 0.5f64..300.0,
        fan in 0.0f64..1.0,
    ) {
        let cell = CoolingTowerCell::from_design("c", 120.0, 11_000.0);
        let r = cell.evaluate(t_in, mdot, wb, fan);
        prop_assert!(r.t_water_out <= t_in + 1e-9);
        prop_assert!(r.t_water_out >= wb.min(t_in) - 1e-9, "out {} wb {wb}", r.t_water_out);
        prop_assert!(r.heat_rejected_w >= 0.0);
        prop_assert!(r.fan_power_w >= 0.0 && r.fan_power_w <= 11_000.0 + 1e-9);
    }

    /// Pump head and power are non-negative everywhere; head is monotone
    /// decreasing in flow.
    #[test]
    fn pump_head_monotone(
        q_design in 0.01f64..2.0,
        head in 5.0f64..60.0,
        q in 0.0f64..2.0,
        dq in 0.001f64..0.5,
        s in 0.1f64..1.0,
    ) {
        let p = Pump::from_design_point("p", q_design, head, 0.8);
        prop_assert!(p.head(q, s) >= 0.0);
        prop_assert!(p.head(q + dq, s) <= p.head(q, s) + 1e-12);
        prop_assert!(p.electrical_power(q, s, 25.0) >= 0.0);
    }

    /// Pump operating point always balances the system curve.
    #[test]
    fn pump_operating_point_balances(
        q_design in 0.01f64..2.0,
        head in 5.0f64..60.0,
        k_sys in 1e3f64..1e8,
        s in 0.2f64..1.0,
    ) {
        let p = Pump::from_design_point("p", q_design, head, 0.8);
        let q = p.operating_flow(k_sys, s, 25.0);
        let rise = p.pressure_rise(q, s, 25.0);
        let drop = k_sys * q * q;
        prop_assert!((rise - drop).abs() <= 1e-6 * (1.0 + drop), "rise {rise} drop {drop}");
    }

    /// Valve resistance is monotone decreasing in opening.
    #[test]
    fn valve_resistance_monotone(
        q_design in 0.001f64..1.0,
        dp in 1e3f64..1e6,
        x in 0.05f64..0.95,
        dx in 0.01f64..0.05,
    ) {
        let mut v = ControlValve::from_design("v", q_design, dp);
        v.set_opening(x);
        let r1 = v.resistance();
        v.set_opening(x + dx);
        let r2 = v.resistance();
        prop_assert!(r2 <= r1 + 1e-9);
    }

    /// PID output always respects its limits, whatever the gains.
    #[test]
    fn pid_output_clamped(
        kp in 0.0f64..100.0,
        ki in 0.0f64..10.0,
        kd in 0.0f64..10.0,
        sp in -100.0f64..100.0,
        measurements in prop::collection::vec(-1e3f64..1e3, 1..50),
    ) {
        let mut pid = Pid::new(kp, ki, kd, -1.0, 1.0).with_setpoint(sp);
        for &m in &measurements {
            let u = pid.update(m, 1.0);
            prop_assert!((-1.0..=1.0).contains(&u), "u={u}");
        }
    }

    /// Stager count stays within bounds and changes by at most one per
    /// update, for any signal sequence.
    #[test]
    fn stager_bounded_and_gradual(
        signals in prop::collection::vec(0.0f64..2.0, 1..200),
        init in 0u32..6,
    ) {
        let mut s = HysteresisStager::new(0.9, 0.4, 3.0, 3.0, 1, 6, init);
        let mut prev = s.count();
        for &sig in &signals {
            let c = s.update(sig, 1.0);
            prop_assert!((1..=6).contains(&c));
            prop_assert!(c.abs_diff(prev) <= 1);
            prev = c;
        }
    }

    /// First-order lag never overshoots a constant input.
    #[test]
    fn lag_never_overshoots(
        tau in 0.1f64..1e3,
        y0 in -100.0f64..100.0,
        u in -100.0f64..100.0,
        steps in 1usize..100,
        dt in 0.1f64..100.0,
    ) {
        let mut lag = FirstOrderLag::new(tau, y0);
        let (lo, hi) = if y0 < u { (y0, u) } else { (u, y0) };
        for _ in 0..steps {
            let y = lag.update(u, dt);
            prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9, "y={y} outside [{lo}, {hi}]");
        }
    }

    /// Cold-plate junction temperature is monotone in power and inversely
    /// monotone in flow.
    #[test]
    fn coldplate_monotonicity(
        power in 0.0f64..600.0,
        dpower in 1.0f64..100.0,
        t_cool in 15.0f64..45.0,
        frac in 0.05f64..1.0,
    ) {
        let p = ColdPlate::gpu();
        let q = p.q_design * frac;
        let tj = p.junction_temperature(power, t_cool, q);
        prop_assert!(tj >= t_cool);
        prop_assert!(p.junction_temperature(power + dpower, t_cool, q) >= tj);
        prop_assert!(p.junction_temperature(power, t_cool, q * 0.5) >= tj - 1e-9);
    }

    /// Fluid properties stay physical over the operating band.
    #[test]
    fn fluid_properties_physical(t in 1.0f64..80.0) {
        for fluid in [Fluid::Water, Fluid::PropyleneGlycol25] {
            prop_assert!(fluid.density(t) > 900.0 && fluid.density(t) < 1_100.0);
            prop_assert!(fluid.specific_heat(t) > 3_000.0 && fluid.specific_heat(t) < 4_400.0);
            prop_assert!(fluid.viscosity(t) > 1e-4 && fluid.viscosity(t) < 1e-2);
            prop_assert!(fluid.conductivity(t) > 0.3 && fluid.conductivity(t) < 0.8);
        }
    }
}
