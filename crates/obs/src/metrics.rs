//! The metrics core: counters, gauges, fixed-bucket histograms, and the
//! [`Registry`] that names them.
//!
//! Every instrument is an `Arc` around atomics, so the hot path —
//! `inc`, `set`, `observe` — is a handful of relaxed atomic operations
//! with no lock, no allocation, and no formatting. The registry's
//! mutex guards *registration and rendering only*: instrument a site
//! by registering once (at construction) and keeping the returned
//! handle, never by looking the instrument up per event.
//!
//! Histograms are fixed-bucket: `observe` increments one bucket counter
//! and CAS-adds the sum, and quantiles (p50/p90/p99) are estimated from
//! the cumulative bucket counts by linear interpolation — no per-sample
//! storage, so a histogram's cost is independent of how many samples it
//! has absorbed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter (events, requests, rejections).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at zero (useful as a default before
    /// a registry attaches real handles).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down (queue depth, resident bytes).
/// Stores f64 bits in an atomic, so `set`/`get` are lock-free.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Default latency buckets, seconds: 1 µs .. 10 s in a 1–2.5–5 ladder.
/// Wide enough for a 1.5 µs cache hit and a multi-second UQ ensemble in
/// the same histogram.
pub const LATENCY_BUCKETS_S: [f64; 22] = [
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
    2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

#[derive(Debug)]
struct HistogramInner {
    /// Ascending upper bounds (inclusive, Prometheus `le` semantics).
    /// An implicit +Inf bucket catches everything beyond the last bound.
    bounds: Vec<f64>,
    /// One counter per bound plus the +Inf overflow bucket
    /// (`buckets.len() == bounds.len() + 1`). Non-cumulative; the
    /// renderer accumulates.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Σ observed values as f64 bits, CAS-updated.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram: `observe` is two relaxed increments and one
/// CAS-add, quantiles come from the bucket counts.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(&LATENCY_BUCKETS_S)
    }
}

impl Histogram {
    /// A histogram over the given ascending upper bounds (an implicit
    /// +Inf bucket is always appended). Panics on unsorted bounds —
    /// bucket layout is programmer configuration, not runtime input.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }))
    }

    /// Record one observation. The bucket index is found by scanning the
    /// bounds (≤ 22 comparisons on the default ladder — cheaper than a
    /// branch-mispredicted binary search at this size).
    #[inline]
    pub fn observe(&self, v: f64) {
        let inner = &*self.0;
        let idx = inner.bounds.iter().position(|&b| v <= b).unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Record a [`std::time::Duration`] in seconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// A consistent-enough point-in-time copy of the bucket counts (the
    /// buckets are read one atomic at a time; concurrent observes may
    /// straddle the reads, which quantile estimation tolerates).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.0;
        HistogramSnapshot {
            bounds: inner.bounds.clone(),
            buckets: inner.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }

    /// Estimate quantile `q` in `[0, 1]` from the bucket counts; see
    /// [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

/// A point-in-time copy of a histogram's buckets, detached from the
/// live atomics.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Ascending upper bounds (`le` values); the overflow bucket's bound
    /// is implicit +Inf.
    pub bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts, one per bound plus overflow.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Estimate quantile `q` in `[0, 1]` by linear interpolation inside
    /// the bucket holding the target rank (the standard
    /// `histogram_quantile` estimate). Returns 0 for an empty histogram;
    /// ranks landing in the +Inf overflow bucket answer the last finite
    /// bound (the estimate cannot exceed what the buckets resolve).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            let prev = cum;
            cum += n;
            if (cum as f64) >= rank && n > 0 {
                if i >= self.bounds.len() {
                    // Overflow bucket: no finite upper edge to
                    // interpolate toward.
                    return self.bounds.last().copied().unwrap_or(0.0);
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let frac = (rank - prev as f64) / n as f64;
                return lower + (upper - lower) * frac.clamp(0.0, 1.0);
            }
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }
}

/// One registered instrument's identity and current value, as reported
/// by [`Registry::samples`].
#[derive(Clone, Debug)]
pub struct Sample {
    /// Metric family name, e.g. `exadigit_requests_total`.
    pub name: String,
    /// Help text rendered in the `# HELP` line.
    pub help: String,
    /// Label pairs, e.g. `[("type", "Query")]`.
    pub labels: Vec<(String, String)>,
    /// The value at sampling time.
    pub value: MetricValue,
}

/// The value half of a [`Sample`].
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's current value.
    Gauge(f64),
    /// A histogram's bucket snapshot.
    Histogram(HistogramSnapshot),
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Registered {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// The namespace instruments register into and exposition reads from.
///
/// Registration is idempotent on `(name, labels)`: asking twice returns
/// a handle to the *same* atomics, so independently constructed
/// components can share an instrument by name. Registering the same
/// identity as two different instrument kinds panics — that is a
/// programming error, not load-dependent behaviour.
#[derive(Default)]
pub struct Registry {
    instruments: Mutex<Vec<Registered>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> usize {
        let mut instruments = self.instruments.lock().unwrap();
        if let Some(i) = instruments.iter().position(|r| {
            r.name == name
                && r.labels.len() == labels.len()
                && r.labels.iter().zip(labels).all(|(a, b)| a.0 == b.0 && a.1 == b.1)
        }) {
            return i;
        }
        instruments.push(Registered {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            instrument: make(),
        });
        instruments.len() - 1
    }

    /// Register (or look up) a label-less counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or look up) a counter with labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let i = self.register(name, help, labels, || Instrument::Counter(Counter::new()));
        match &self.instruments.lock().unwrap()[i].instrument {
            Instrument::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered as a different kind"),
        }
    }

    /// Register (or look up) a label-less gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or look up) a gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let i = self.register(name, help, labels, || Instrument::Gauge(Gauge::new()));
        match &self.instruments.lock().unwrap()[i].instrument {
            Instrument::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered as a different kind"),
        }
    }

    /// Register (or look up) a label-less histogram over `bounds`.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, &[], bounds)
    }

    /// Register (or look up) a histogram with labels. `bounds` applies
    /// only on first registration; a later lookup returns the existing
    /// instrument unchanged.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        let i = self.register(name, help, labels, || Instrument::Histogram(Histogram::new(bounds)));
        match &self.instruments.lock().unwrap()[i].instrument {
            Instrument::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered as a different kind"),
        }
    }

    /// Point-in-time values of every registered instrument, in
    /// registration order.
    pub fn samples(&self) -> Vec<Sample> {
        self.instruments
            .lock()
            .unwrap()
            .iter()
            .map(|r| Sample {
                name: r.name.clone(),
                help: r.help.clone(),
                labels: r.labels.clone(),
                value: match &r.instrument {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Render every instrument in the Prometheus text exposition format
    /// (version 0.0.4): one `# HELP` / `# TYPE` header per family,
    /// cumulative `_bucket{le=...}` lines plus `_sum` / `_count` for
    /// histograms. Families render in registration order, so output is
    /// deterministic for a deterministically constructed registry.
    pub fn render_prometheus(&self) -> String {
        let samples = self.samples();
        let mut out = String::new();
        let mut seen_header: Vec<String> = Vec::new();
        for s in &samples {
            let kind = match &s.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            if !seen_header.iter().any(|n| n == &s.name) {
                out.push_str(&format!("# HELP {} {}\n# TYPE {} {}\n", s.name, s.help, s.name, kind));
                seen_header.push(s.name.clone());
            }
            match &s.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{}{} {}\n", s.name, render_labels(&s.labels, &[]), v));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        s.name,
                        render_labels(&s.labels, &[]),
                        fmt_f64(*v)
                    ));
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, &n) in h.buckets.iter().enumerate() {
                        cum += n;
                        let le = if i < h.bounds.len() {
                            fmt_f64(h.bounds[i])
                        } else {
                            "+Inf".to_string()
                        };
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            s.name,
                            render_labels(&s.labels, &[("le", &le)]),
                            cum
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        s.name,
                        render_labels(&s.labels, &[]),
                        fmt_f64(h.sum)
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        s.name,
                        render_labels(&s.labels, &[]),
                        h.count
                    ));
                }
            }
        }
        out
    }
}

/// Format a label set (base labels plus extras like `le`), or the empty
/// string for a label-less instrument.
fn render_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    parts.extend(extra.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))));
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Format an f64 the way Prometheus expects: integral values without a
/// trailing `.0` would be ambiguous with counters in golden tests, so
/// keep Rust's shortest-round-trip `{}` formatting (Prometheus parses
/// both forms).
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("c_total", "a counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Idempotent registration returns the same atomics.
        assert_eq!(r.counter("c_total", "a counter").get(), 5);
        let g = r.gauge("g", "a gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn labelled_instruments_are_distinct() {
        let r = Registry::new();
        let a = r.counter_with("req_total", "requests", &[("type", "Query")]);
        let b = r.counter_with("req_total", "requests", &[("type", "Status")]);
        a.inc();
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 1);
        assert_eq!(r.counter_with("req_total", "requests", &[("type", "Query")]).get(), 2);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_le() {
        // Prometheus `le` semantics: a value exactly on a bound lands in
        // that bound's bucket, not the next one.
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(1.0); // le=1
        h.observe(1.5); // le=2
        h.observe(2.0); // le=2 (boundary is inclusive)
        h.observe(4.0001); // +Inf overflow
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![1, 2, 0, 1]);
        assert_eq!(snap.count, 4);
        assert!((snap.sum - 8.5001).abs() < 1e-9);
    }

    #[test]
    fn histogram_smallest_bucket_catches_zero_and_negative() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.0);
        h.observe(-3.0);
        assert_eq!(h.snapshot().buckets, vec![2, 0, 0]);
    }

    #[test]
    fn quantiles_interpolate_within_the_target_bucket() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        // 10 samples uniform in (1, 2]: every quantile lands in bucket 1.
        for i in 0..10 {
            h.observe(1.0 + (i as f64 + 1.0) / 10.0);
        }
        // p50 → rank 5 of 10, all in bucket [1,2): 1 + (5/10)·(2−1) = 1.5.
        assert!((h.quantile(0.5) - 1.5).abs() < 1e-9, "{}", h.quantile(0.5));
        assert!((h.quantile(0.9) - 1.9).abs() < 1e-9);
        assert!((h.quantile(1.0) - 2.0).abs() < 1e-9);
        // Empty histogram answers 0, not NaN.
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), 0.0);
    }

    #[test]
    fn overflow_quantile_is_clamped_to_the_last_finite_bound() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(100.0);
        h.observe(200.0);
        assert_eq!(h.quantile(0.99), 2.0, "estimate cannot exceed the resolved range");
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn concurrent_observes_lose_nothing() {
        let h = Histogram::new(&LATENCY_BUCKETS_S);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000 {
                        h.observe(1e-6 * ((t * 10_000 + i) % 100 + 1) as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.snapshot().buckets.iter().sum::<u64>(), 40_000);
        assert!(h.sum() > 0.0);
    }

    #[test]
    fn prometheus_rendering_golden() {
        let r = Registry::new();
        let c = r.counter_with("exadigit_requests_total", "Requests handled", &[("type", "Query")]);
        c.add(3);
        let g = r.gauge("exadigit_queue_depth", "Admitted requests waiting");
        g.set(2.0);
        let h = r.histogram("exadigit_request_seconds", "Handle time", &[0.5, 1.0]);
        h.observe(0.25);
        h.observe(0.75);
        h.observe(9.0);
        let expected = "\
# HELP exadigit_requests_total Requests handled
# TYPE exadigit_requests_total counter
exadigit_requests_total{type=\"Query\"} 3
# HELP exadigit_queue_depth Admitted requests waiting
# TYPE exadigit_queue_depth gauge
exadigit_queue_depth 2
# HELP exadigit_request_seconds Handle time
# TYPE exadigit_request_seconds histogram
exadigit_request_seconds_bucket{le=\"0.5\"} 1
exadigit_request_seconds_bucket{le=\"1\"} 2
exadigit_request_seconds_bucket{le=\"+Inf\"} 3
exadigit_request_seconds_sum 10
exadigit_request_seconds_count 3
";
        assert_eq!(r.render_prometheus(), expected);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("c_total", "c", &[("name", "a\"b\\c\nd")]).inc();
        let text = r.render_prometheus();
        assert!(text.contains("name=\"a\\\"b\\\\c\\nd\""), "{text}");
    }
}
