//! The cooling model behind the FMI boundary.
//!
//! §III-C4 of the paper: "The model takes as inputs wet-bulb (outdoor)
//! temperature and heat extracted in watts for each of the 25 CDUs. The
//! model produces a total of 317 outputs for each timestep of simulation
//! (currently 15 s)". This wrapper exposes exactly that interface through
//! [`exadigit_sim::fmi::CoSimModel`], reproducing the FMU export of
//! §III-C6: per-CDU pump work, flows, temperatures and pressures (11 × 25),
//! primary-loop staging and HTWP power/speed, tower-loop staging, CTWP
//! power and CT fan power, facility flows/temperatures/pressures, and the
//! PUE sub-module.

use crate::controls::PlantControls;
use crate::plant::Plant;
use crate::spec::PlantSpec;
use exadigit_sim::fmi::{Causality, CoSimModel, FmiError, VarRef, VariableDescriptor, VariableRegistry};

/// The cooling model: plant + controls + variable registry.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct CoolingModel {
    plant: Plant,
    controls: PlantControls,
    /// Immutable after construction; forks share it by refcount.
    vars: std::sync::Arc<Vec<VariableDescriptor>>,
    /// Current values, indexed by value reference.
    values: Vec<f64>,
    num_inputs: usize,
    /// Registry index of the first `cdu_blockage[..]` parameter.
    blockage_base: usize,
    /// Input staging area: cdu heats (W) then wet bulb (°C) then IT power.
    cdu_heat_w: Vec<f64>,
    wet_bulb_c: f64,
    it_power_w: f64,
    /// Steps taken since setup.
    steps: u64,
}

/// Indices of the named inputs within the registry.
const VR_WET_BULB_OFFSET: usize = 0; // after the cdu heat block
const VR_IT_POWER_OFFSET: usize = 1;

impl CoolingModel {
    /// Generate a model from a plant specification (the AutoCSM path).
    pub fn new(spec: PlantSpec) -> Result<Self, String> {
        let controls = PlantControls::new(&spec);
        let plant = Plant::new(spec.clone())?;
        let mut reg = VariableRegistry::new();

        // ---- Inputs ----
        for i in 1..=spec.num_cdus {
            reg.register(
                format!("cdu_heat[{i}]"),
                "W",
                Causality::Input,
                format!("Heat extracted into CDU {i}'s liquid loop"),
            );
        }
        reg.register("wet_bulb", "degC", Causality::Input, "Outdoor wet-bulb temperature");
        reg.register("it_power", "W", Causality::Input, "Total IT power for the PUE sub-module");
        let num_inputs = reg.len();

        // ---- Outputs: 11 per CDU ----
        for i in 1..=spec.num_cdus {
            reg.output(format!("cdu[{i}].pump_power"), "W");
            reg.output(format!("cdu[{i}].primary_flow"), "m3/s");
            reg.output(format!("cdu[{i}].secondary_flow"), "m3/s");
            reg.output(format!("cdu[{i}].primary_supply_temp"), "degC");
            reg.output(format!("cdu[{i}].primary_return_temp"), "degC");
            reg.output(format!("cdu[{i}].secondary_supply_temp"), "degC");
            reg.output(format!("cdu[{i}].secondary_return_temp"), "degC");
            reg.output(format!("cdu[{i}].primary_supply_pressure"), "Pa");
            reg.output(format!("cdu[{i}].primary_return_pressure"), "Pa");
            reg.output(format!("cdu[{i}].secondary_supply_pressure"), "Pa");
            reg.output(format!("cdu[{i}].secondary_return_pressure"), "Pa");
        }
        // ---- Primary loop ----
        reg.output("primary.num_pumps_staged", "1");
        reg.output("primary.num_ehx_staged", "1");
        for i in 1..=spec.primary_pumps.count {
            reg.output(format!("htwp[{i}].power"), "W");
        }
        for i in 1..=spec.primary_pumps.count {
            reg.output(format!("htwp[{i}].speed"), "1");
        }
        // ---- Cooling tower loop ----
        reg.output("ct.num_cells_staged", "1");
        for i in 1..=spec.tower_pumps.count {
            reg.output(format!("ctwp[{i}].power"), "W");
        }
        for i in 1..=spec.tower_pumps.count {
            reg.output(format!("ctwp[{i}].speed"), "1");
        }
        for i in 1..=spec.towers.fan_outputs {
            reg.output(format!("ct_fan[{i}].power"), "W");
        }
        // ---- Facility ----
        reg.output("facility.htw_flow", "m3/s");
        reg.output("facility.ctw_flow", "m3/s");
        reg.output("facility.htw_supply_temp", "degC");
        reg.output("facility.htw_return_temp", "degC");
        reg.output("facility.htw_supply_pressure", "Pa");
        reg.output("facility.htw_return_pressure", "Pa");
        // ---- PUE sub-module (the 317th output) + auxiliary diagnostic ----
        reg.output("pue", "1");
        reg.register(
            "cooling_power",
            "W",
            Causality::Local,
            "Total cooling auxiliary power incl. CDU pumps (diagnostic)",
        );
        // ---- Tunable parameters: per-CDU blockage injection (§III-A
        // water-quality use case) ----
        let blockage_base = reg.len();
        for i in 1..=spec.num_cdus {
            reg.register(
                format!("cdu_blockage[{i}]"),
                "1",
                Causality::Parameter,
                format!("Secondary-loop hydraulic blockage factor of CDU {i} (1 = clean)"),
            );
        }

        let mut values = vec![0.0; reg.len()];
        // Parameters default to 1 (clean loops).
        for v in values.iter_mut().skip(blockage_base) {
            *v = 1.0;
        }
        let num_cdus = spec.num_cdus;
        Ok(CoolingModel {
            plant,
            controls,
            vars: std::sync::Arc::new(reg.into_vec()),
            values,
            num_inputs,
            blockage_base,
            cdu_heat_w: vec![0.0; num_cdus],
            wet_bulb_c: 15.0,
            it_power_w: 0.0,
            steps: 0,
        })
    }

    /// The Frontier cooling model of Fig. 5.
    pub fn frontier() -> Self {
        CoolingModel::new(PlantSpec::frontier()).expect("frontier spec is valid")
    }

    /// The generating specification.
    pub fn spec(&self) -> &PlantSpec {
        &self.plant.spec
    }

    /// Number of output variables (the paper's 317 for Frontier).
    pub fn output_count(&self) -> usize {
        self.vars.iter().filter(|v| v.causality == Causality::Output).count()
    }

    /// Immutable view of the plant (tests/diagnostics).
    pub fn plant(&self) -> &Plant {
        &self.plant
    }

    /// Convenience: current value of a named output.
    pub fn output_by_name(&self, name: &str) -> Option<f64> {
        self.var_by_name(name).map(|v| self.values[v.vr.0 as usize])
    }

    /// The discrete staging regime the plant currently operates in:
    /// `(CT cells, HTW pumps, EHXs)` staged. The PUE surface is smooth
    /// *within* one regime and steps *across* regime boundaries (staging
    /// a tower cell jumps fan power discontinuously), which is why
    /// surrogate trainers fit piecewise per regime instead of one global
    /// polynomial — the PR 3 caveat that quadratics can't track staging
    /// cliffs.
    pub fn staging_key(&self) -> (u32, u32, u32) {
        let s = &self.plant.state;
        (s.cells_staged, s.htwp_staged, s.ehx_staged)
    }

    /// Pre-condition the plant: run `n` settle steps at the given uniform
    /// load fraction so validation replays start from auto-operation, as
    /// the paper's model "activates once the physical cooling system
    /// begins auto-operation, after the start-up sequence is complete".
    pub fn settle(&mut self, load_fraction: f64, wet_bulb_c: f64, n: usize) {
        let heat = self.plant.spec.heat_per_cdu_w() * load_fraction.clamp(0.0, 1.2);
        let heats = vec![heat; self.plant.spec.num_cdus];
        for _ in 0..n {
            let cmd = self.controls.update(&self.plant.state, &self.plant.spec.clone(), 15.0);
            self.plant.apply_commands(&cmd);
            // Settling failures are ignored; the first real step will
            // surface persistent solver trouble.
            let _ = self.plant.step(&heats, wet_bulb_c, 15.0);
        }
        self.refresh_outputs();
    }

    fn refresh_outputs(&mut self) {
        let spec = self.plant.spec.clone();
        let s = &self.plant.state;
        let mut v = self.num_inputs;
        let put = |values: &mut Vec<f64>, idx: &mut usize, val: f64| {
            values[*idx] = val;
            *idx += 1;
        };
        let values = &mut self.values;
        for cdu in &s.cdus {
            put(values, &mut v, cdu.pump_power_w);
            put(values, &mut v, cdu.primary_flow_m3s);
            put(values, &mut v, cdu.secondary_flow_m3s);
            put(values, &mut v, cdu.primary_supply_temp_c);
            put(values, &mut v, cdu.primary_return_temp_c);
            put(values, &mut v, cdu.secondary_supply_temp_c);
            put(values, &mut v, cdu.secondary_return_temp_c);
            put(values, &mut v, cdu.primary_supply_pressure_pa);
            put(values, &mut v, cdu.primary_return_pressure_pa);
            put(values, &mut v, cdu.secondary_supply_pressure_pa);
            put(values, &mut v, cdu.secondary_return_pressure_pa);
        }
        put(values, &mut v, s.htwp_staged as f64);
        put(values, &mut v, s.ehx_staged as f64);
        for i in 0..spec.primary_pumps.count {
            put(values, &mut v, s.htwp_power_w[i]);
        }
        for i in 0..spec.primary_pumps.count {
            let speed = if (i as u32) < s.htwp_staged { s.htwp_speed } else { 0.0 };
            put(values, &mut v, speed);
        }
        put(values, &mut v, s.cells_staged as f64);
        for i in 0..spec.tower_pumps.count {
            put(values, &mut v, s.ctwp_power_w[i]);
        }
        for i in 0..spec.tower_pumps.count {
            let speed = if (i as u32) < s.ctwp_staged { s.ctwp_speed } else { 0.0 };
            put(values, &mut v, speed);
        }
        for i in 0..spec.towers.fan_outputs {
            put(values, &mut v, s.fan_power_w[i]);
        }
        put(values, &mut v, s.primary_flow_m3s);
        put(values, &mut v, s.tower_flow_m3s);
        put(values, &mut v, s.htws_temp_c);
        put(values, &mut v, s.htwr_temp_c);
        put(values, &mut v, s.primary_supply_pressure_pa);
        put(values, &mut v, s.primary_return_pressure_pa);

        // PUE sub-module: facility power over IT power. CDU pumps are part
        // of the IT-side measurement in the paper's Psystem, so the
        // auxiliary term is HTWPs + CTWPs + fans.
        let it = if self.it_power_w > 0.0 {
            self.it_power_w
        } else {
            // Fallback when RAPS does not provide it_power: reconstruct
            // from the heat inputs and the cooling-efficiency factor.
            let heat: f64 = self.cdu_heat_w.iter().sum();
            (heat / 0.945).max(1.0) + s.cdu_pump_power_w
        };
        let pue = (it + s.aux_power_w) / it.max(1.0);
        put(values, &mut v, pue);
        put(values, &mut v, s.aux_power_w + s.cdu_pump_power_w);
        debug_assert_eq!(v, self.blockage_base);
    }
}

impl CoSimModel for CoolingModel {
    fn instance_name(&self) -> &str {
        &self.plant.spec.name
    }

    fn variables(&self) -> &[VariableDescriptor] {
        &self.vars
    }

    fn setup(&mut self, _start_time: f64) {
        self.steps = 0;
        // Begin from a moderately loaded auto-operation state.
        self.settle(0.5, self.wet_bulb_c, 40);
    }

    fn set_real(&mut self, vr: VarRef, value: f64) -> Result<(), FmiError> {
        let idx = vr.0 as usize;
        if idx >= self.vars.len() {
            return Err(FmiError::UnknownVariable(vr));
        }
        match self.vars[idx].causality {
            Causality::Input => {
                let n = self.cdu_heat_w.len();
                if idx < n {
                    self.cdu_heat_w[idx] = value.max(0.0);
                } else if idx == n + VR_WET_BULB_OFFSET {
                    self.wet_bulb_c = value;
                } else if idx == n + VR_IT_POWER_OFFSET {
                    self.it_power_w = value.max(0.0);
                }
            }
            Causality::Parameter => {
                // Blockage parameters.
                let cdu = idx - self.blockage_base;
                self.plant.set_blockage(cdu, value);
            }
            _ => {
                return Err(FmiError::WrongCausality { vr, expected: Causality::Input });
            }
        }
        self.values[idx] = value;
        Ok(())
    }

    fn get_real(&self, vr: VarRef) -> Result<f64, FmiError> {
        self.values
            .get(vr.0 as usize)
            .copied()
            .ok_or(FmiError::UnknownVariable(vr))
    }

    fn do_step(&mut self, _current_time: f64, step_size: f64) -> Result<(), FmiError> {
        if step_size <= 0.0 {
            return Err(FmiError::InvalidStep(format!("non-positive step {step_size}")));
        }
        let spec = self.plant.spec.clone();
        let cmd = self.controls.update(&self.plant.state, &spec, step_size);
        self.plant.apply_commands(&cmd);
        self.plant
            .step(&self.cdu_heat_w.clone(), self.wet_bulb_c, step_size)
            .map_err(|e| FmiError::SolverFailure(e.to_string()))?;
        self.refresh_outputs();
        self.steps += 1;
        Ok(())
    }

    fn reset(&mut self) {
        let spec = self.plant.spec.clone();
        self.controls = PlantControls::new(&spec);
        self.plant = Plant::new(spec).expect("spec validated at construction");
        self.values.iter_mut().for_each(|v| *v = 0.0);
        for v in self.values.iter_mut().skip(self.blockage_base) {
            *v = 1.0; // parameters return to clean loops
        }
        self.cdu_heat_w.iter_mut().for_each(|v| *v = 0.0);
        self.it_power_w = 0.0;
        self.steps = 0;
    }

    fn fork(&self) -> Option<Box<dyn CoSimModel>> {
        Some(Box::new(self.clone()))
    }

    fn save_state(&self) -> Option<serde::Value> {
        Some(serde::Serialize::to_value(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_model_has_317_outputs() {
        // §III-C4: "The model produces a total of 317 outputs for each
        // timestep of simulation".
        let m = CoolingModel::frontier();
        assert_eq!(m.output_count(), 317);
        // Plus 25 + 2 inputs, one local diagnostic, and 25 blockage
        // parameters.
        assert_eq!(m.vars.len() - m.output_count(), 28 + 25);
    }

    #[test]
    fn output_breakdown_matches_paper() {
        let m = CoolingModel::frontier();
        // 11 outputs per CDU.
        let cdu_outputs = m
            .variables()
            .iter()
            .filter(|v| v.name.starts_with("cdu[") && v.causality == Causality::Output)
            .count();
        assert_eq!(cdu_outputs, 25 * 11);
        // 16 CT fan channels (the paper's "16 CT fans").
        let fans = m.variables().iter().filter(|v| v.name.starts_with("ct_fan[")).count();
        assert_eq!(fans, 16);
    }

    #[test]
    fn step_produces_physical_outputs() {
        let mut m = CoolingModel::frontier();
        m.setup(0.0);
        let heat = m.spec().heat_per_cdu_w() * 0.8;
        for i in 0..25 {
            m.set_real(VarRef(i), heat).unwrap();
        }
        m.set_real(VarRef(25), 16.0).unwrap(); // wet bulb
        m.set_real(VarRef(26), 21.0e6).unwrap(); // it power
        for k in 0..400 {
            m.do_step(k as f64 * 15.0, 15.0).unwrap();
        }
        let pue = m.output_by_name("pue").unwrap();
        assert!((1.0..1.2).contains(&pue), "pue={pue}");
        let t_sup = m.output_by_name("cdu[1].secondary_supply_temp").unwrap();
        assert!((25.0..40.0).contains(&t_sup), "supply={t_sup}");
        let q = m.output_by_name("facility.htw_flow").unwrap();
        assert!(q > 0.05, "flow={q}");
    }

    #[test]
    fn inputs_reject_wrong_causality() {
        let mut m = CoolingModel::frontier();
        m.setup(0.0);
        // First output vr is right after the inputs.
        let out_vr = VarRef(27);
        assert!(matches!(
            m.set_real(out_vr, 1.0),
            Err(FmiError::WrongCausality { .. })
        ));
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut m = CoolingModel::frontier();
        m.setup(0.0);
        for i in 0..25 {
            m.set_real(VarRef(i), 1.0e6).unwrap();
        }
        for k in 0..50 {
            m.do_step(k as f64 * 15.0, 15.0).unwrap();
        }
        m.reset();
        assert_eq!(m.steps, 0);
        assert_eq!(m.output_by_name("pue").unwrap(), 0.0);
    }

    #[test]
    fn invalid_step_rejected() {
        let mut m = CoolingModel::frontier();
        m.setup(0.0);
        assert!(m.do_step(0.0, -1.0).is_err());
    }

    #[test]
    fn autocsm_generates_other_plants() {
        // §V: the same generator handles other architectures.
        let setonix = CoolingModel::new(PlantSpec::setonix_like()).unwrap();
        assert_eq!(
            setonix.output_count(),
            8 * 11 + 2 + 4 + 4 + 1 + 4 + 4 + 8 + 6 + 1
        );
        let m100 = CoolingModel::new(PlantSpec::marconi100_like()).unwrap();
        assert!(m100.output_count() > 0);
    }

    #[test]
    fn blockage_parameter_reduces_flow() {
        let mut m = CoolingModel::frontier();
        m.setup(0.0);
        let heat = m.spec().heat_per_cdu_w() * 0.6;
        for i in 0..25 {
            m.set_real(VarRef(i), heat).unwrap();
        }
        for k in 0..100 {
            m.do_step(k as f64 * 15.0, 15.0).unwrap();
        }
        let q_before = m.output_by_name("cdu[3].secondary_flow").unwrap();
        // Inject a 4x blockage into CDU 3 through the FMI parameter.
        let vr = m.var_by_name("cdu_blockage[3]").unwrap().vr;
        m.set_real(vr, 4.0).unwrap();
        for k in 100..200 {
            m.do_step(k as f64 * 15.0, 15.0).unwrap();
        }
        let q_after = m.output_by_name("cdu[3].secondary_flow").unwrap();
        let q_clean = m.output_by_name("cdu[7].secondary_flow").unwrap();
        assert!(q_after < 0.75 * q_before, "blocked {q_after} vs before {q_before}");
        assert!(q_after < 0.75 * q_clean, "blocked {q_after} vs clean {q_clean}");
        // And the blocked loop runs hotter.
        let t_blocked = m.output_by_name("cdu[3].secondary_return_temp").unwrap();
        let t_clean = m.output_by_name("cdu[7].secondary_return_temp").unwrap();
        assert!(t_blocked > t_clean, "blocked {t_blocked} clean {t_clean}");
    }

    #[test]
    fn pue_falls_back_without_it_power() {
        let mut m = CoolingModel::frontier();
        m.setup(0.0);
        let heat = m.spec().heat_per_cdu_w() * 0.7;
        for i in 0..25 {
            m.set_real(VarRef(i), heat).unwrap();
        }
        for k in 0..200 {
            m.do_step(k as f64 * 15.0, 15.0).unwrap();
        }
        let pue = m.output_by_name("pue").unwrap();
        assert!((1.0..1.25).contains(&pue), "pue={pue}");
    }
}
