//! Numerical-substrate performance: the dense LU factorisation, the
//! hydraulic Newton solve at Frontier's primary-loop size (30 branches),
//! and the adaptive ODE integrator — the pieces that replace Modelica's
//! solver stack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exadigit_network::hydraulic::{BranchElement, HydraulicNetwork};
use exadigit_network::linalg::Matrix;
use exadigit_network::ode::rkf45_integrate;
use exadigit_sim::Rng;
use exadigit_thermo::pump::Pump;
use exadigit_thermo::valve::ControlValve;
use exadigit_thermo::HydraulicResistance;
use std::hint::black_box;
use std::time::Duration;

fn dd_matrix(n: usize, rng: &mut Rng) -> (Matrix, Vec<f64>) {
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        let mut sum = 0.0;
        for j in 0..n {
            if i != j {
                let v = rng.uniform_range(-1.0, 1.0);
                a[(i, j)] = v;
                sum += v.abs();
            }
        }
        a[(i, i)] = sum + 1.0;
    }
    let b: Vec<f64> = (0..n).map(|_| rng.uniform_range(-5.0, 5.0)).collect();
    (a, b)
}

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_lu");
    group.measurement_time(Duration::from_secs(3)).sample_size(40);
    let mut rng = Rng::new(3);
    for n in [8usize, 32, 64] {
        let (a, b) = dd_matrix(n, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(a.clone().solve(&b).unwrap()))
        });
    }
    group.finish();
}

/// Frontier primary loop: 4 pumps + 25 valved CDU branches + EHX return.
fn primary_loop() -> HydraulicNetwork {
    let mut net = HydraulicNetwork::new();
    let ehx_out = net.add_node("ehx_out");
    let supply = net.add_node("supply");
    let ret = net.add_node("return");
    net.set_reference(ehx_out, 120_000.0);
    for i in 0..4 {
        let pump = Pump::from_design_point(format!("HTWP{i}"), 0.347, 32.0, 0.84);
        net.add_branch(
            format!("htwp{i}"),
            ehx_out,
            supply,
            vec![
                BranchElement::Pump { pump, speed: if i < 2 { 0.85 } else { 0.0 } },
                BranchElement::CheckValve { k_forward: 1e4, k_reverse: 1e13 },
            ],
        );
    }
    for i in 0..25 {
        let valve = ControlValve::from_design(format!("V{i}"), 0.0555, 90_000.0);
        net.add_branch(
            format!("cdu{i}"),
            supply,
            ret,
            vec![
                BranchElement::Valve(valve),
                BranchElement::Resistance(HydraulicResistance::from_design(0.0555, 130_000.0)),
            ],
        );
    }
    net.add_branch(
        "ehx",
        ret,
        ehx_out,
        vec![BranchElement::Resistance(HydraulicResistance::from_design(1.39, 94_000.0))],
    );
    net
}

fn bench_hydraulics(c: &mut Criterion) {
    let mut group = c.benchmark_group("hydraulic_newton");
    group.measurement_time(Duration::from_secs(4)).sample_size(30);
    group.bench_function("primary_loop_cold_start", |b| {
        b.iter_batched(
            primary_loop,
            |mut net| black_box(net.solve(32.0).unwrap().iterations),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("primary_loop_warm_start", |b| {
        let mut net = primary_loop();
        net.solve(32.0).unwrap();
        b.iter(|| black_box(net.solve(32.0).unwrap().iterations))
    });
    group.finish();
}

fn bench_ode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ode");
    group.measurement_time(Duration::from_secs(3)).sample_size(30);
    // A 10-state linear relaxation network.
    let sys = |_t: f64, y: &[f64], d: &mut [f64]| {
        for i in 0..y.len() {
            let left = if i == 0 { 0.0 } else { y[i - 1] };
            d[i] = -(y[i] - left) / 30.0;
        }
    };
    group.bench_function("rkf45_10_states_900s", |b| {
        b.iter(|| {
            let mut y = [1.0; 10];
            black_box(rkf45_integrate(&sys, 0.0, 900.0, &mut y, 1e-6))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lu, bench_hydraulics, bench_ode);
criterion_main!(benches);
