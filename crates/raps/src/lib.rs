//! RAPS — Resource Allocator and Power Simulator.
//!
//! The Rust reproduction of the paper's RAPS module (§III-B): "a tight
//! integration of both the job scheduler in concert with dynamic power
//! consumption calculations". The pieces map one-to-one onto the paper:
//!
//! * [`config`] — the Frontier system description of Table I plus the
//!   JSON-loadable generalised configuration of §V;
//! * [`job`] — jobs characterised by node count, wall time and CPU/GPU
//!   utilization traces at a 15 s trace quantum;
//! * [`arrivals`] — Poisson job arrivals, eq. (5);
//! * [`workload`] — the synthetic workload generator of §III-B3 calibrated
//!   against the Table IV daily statistics, plus scripted benchmark
//!   workloads (HPL, OpenMxP) for the Fig. 8 verification tests;
//! * [`scheduler`] — node pool and scheduling policies (FCFS, SJF as in
//!   the paper, plus EASY backfill as the "more sophisticated algorithm"
//!   the paper plans);
//! * [`power`] — eqs. (1)-(4): node power from utilization, rectifier and
//!   SIVOC conversion-loss curves, rack and system aggregation, and the
//!   smart-rectifier / 380 V DC what-if variants of §IV-3;
//! * [`simulation`] — Algorithm 1: the 1 s `TICK` loop with the cooling
//!   model called every 15 s across the FMI boundary;
//! * [`stats`] — the end-of-run report (§III-B5): jobs completed,
//!   throughput, power, energy, losses, CO₂ (eq. 6) and cost;
//! * [`uq`] — the Monte-Carlo uncertainty quantification the paper says it
//!   embedded into RAPS following the NASEM recommendation (§IV).

// Every public item must be documented; CI turns this (and all rustdoc
// warnings) into errors via `cargo doc` with RUSTDOCFLAGS=-Dwarnings.
#![warn(missing_docs)]

pub mod arrivals;
pub mod config;
pub mod fingerprint;
pub mod job;
pub mod metrics;
pub mod power;
pub mod scheduler;
pub mod simulation;
pub mod stats;
pub mod uq;
pub mod workload;

pub use config::{FrontierSpec, SystemConfig};
pub use job::{Job, JobId, JobState, UtilTrace};
pub use power::{ConversionModel, PowerDelivery, PowerModel};
pub use scheduler::{NodePool, Policy};
pub use simulation::{CoolingCoupling, RapsSimulation, SimOutputs};
pub use stats::RunReport;
