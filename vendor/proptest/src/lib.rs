//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of proptest's API this workspace uses, with fully
//! deterministic input generation (the RNG is seeded from the test's module
//! path and name, so every run — local or CI — sees the same cases; there
//! are no regression files to persist):
//!
//! * the [`proptest!`] macro with optional `#![proptest_config(..)]`;
//! * [`Strategy`] with `prop_map`, implemented for integer and float
//!   ranges, tuples (up to 8), and simple character-class regexes
//!   (`"[a-z0-9_-]{1,24}"`-style) on `&str`;
//! * [`collection::vec`] with exact or ranged sizes;
//! * [`any`] for primitives;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! No shrinking: a failing case panics with the sampled inputs visible in
//! the assertion message, which — combined with determinism — is enough to
//! reproduce and debug.

use std::ops::{Range, RangeInclusive};

// ------------------------------------------------------------------- rng

/// splitmix64-based deterministic generator (same construction the
/// workspace's own `exadigit_sim::rng` uses for seeding).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Seed deterministically from a test's fully qualified name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is negligible for test data.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

// -------------------------------------------------------------- strategy

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Type-erase the strategy (parity with proptest's `boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_filter`]. Resamples until the predicate
/// holds (bounded, then panics — tests should use generous predicates).
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter predicate rejected 10000 consecutive samples");
    }
}

/// A constant strategy (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64; // no inclusive full-width ranges in tests
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + rng.unit_f64() * (hi - lo)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                (lo + rng.unit_f64() * (hi - lo)) as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7),
);

// ------------------------------------------------------- regex-ish &str

/// `&str` strategies generate strings from a small regex subset: literal
/// characters, character classes `[a-z0-9_-]`, and quantifiers `{n}`,
/// `{m,n}`, `?`, `*`, `+` (the latter two capped at 8 repetitions).
impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_regex(self, rng)
    }
}

fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a char class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed `[` in strategy regex {pattern:?}"));
            let class = &chars[i + 1..close];
            i = close + 1;
            expand_class(class, pattern)
        } else if chars[i] == '\\' && i + 1 < chars.len() {
            i += 2;
            vec![chars[i - 1]]
        } else {
            i += 1;
            vec![chars[i - 1]]
        };
        // Parse an optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed `{{` in strategy regex {pattern:?}"));
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad {m,n} quantifier"),
                    hi.trim().parse().expect("bad {m,n} quantifier"),
                ),
                None => {
                    let n: usize = spec.trim().parse().expect("bad {n} quantifier");
                    (n, n)
                }
            }
        } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
            let q = chars[i];
            i += 1;
            match q {
                '*' => (0, 8),
                '+' => (1, 8),
                _ => (0, 1),
            }
        } else {
            (1, 1)
        };
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut j = 0;
    while j < class.len() {
        if j + 2 < class.len() && class[j + 1] == '-' {
            let (lo, hi) = (class[j] as u32, class[j + 2] as u32);
            assert!(lo <= hi, "inverted range in strategy regex {pattern:?}");
            for c in lo..=hi {
                set.push(char::from_u32(c).unwrap());
            }
            j += 3;
        } else {
            set.push(class[j]);
            j += 1;
        }
    }
    assert!(!set.is_empty(), "empty character class in strategy regex {pattern:?}");
    set
}

// ----------------------------------------------------------------- any

/// Full-range strategy for a primitive type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, broadly scaled values: sign * mantissa * 10^[-150, 150].
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = rng.below(301) as i32 - 150;
        m * 10f64.powi(e)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

// ---------------------------------------------------------- collections

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Accepted by [`vec()`] for both exact and ranged lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        /// Inclusive upper bound.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy producing `Vec`s whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T: Clone>(Vec<T>);

    /// Uniformly select one of the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

// --------------------------------------------------------------- config

/// Per-block configuration, set with `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

// --------------------------------------------------------------- macros

/// The property-test macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` deterministic
/// samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Assert inside a property; panics (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Early-exit a case when its inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };

    /// The `prop::` namespace (`prop::collection::vec`, `prop::sample`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_and_regex(v in prop::collection::vec(0u32..5, 2..6), s in "[a-c]{1,4}") {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
