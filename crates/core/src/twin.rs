//! The digital twin façade.
//!
//! [`DigitalTwin`] assembles the three modules of Fig. 1: RAPS drives the
//! 1 s tick loop, the cooling model is generated from the plant spec
//! (AutoCSM) and attached across the FMI-lite boundary at the 15 s
//! cadence, and the scene graph provides the L1 representation. This is
//! the type examples and what-if studies interact with.

use crate::config::TwinConfig;
use exadigit_cooling::CoolingModel;
use exadigit_raps::job::Job;
use exadigit_raps::power::PowerSnapshot;
use exadigit_raps::simulation::{CoolingCoupling, RapsSimulation, SimOutputs};
use exadigit_raps::stats::RunReport;
use exadigit_sim::fmi::FmiError;
use exadigit_sim::TimeSeries;
use exadigit_viz::SceneGraph;

/// A fully assembled digital twin.
pub struct DigitalTwin {
    /// The generating configuration.
    pub config: TwinConfig,
    sim: RapsSimulation,
}

impl DigitalTwin {
    /// Build the twin from a configuration (validates first).
    pub fn new(config: TwinConfig) -> Result<Self, String> {
        config.validate()?;
        let mut sim = RapsSimulation::new(
            config.system.clone(),
            config.delivery,
            config.policy,
            config.record_every_s,
        );
        if config.with_cooling {
            let model = CoolingModel::new(config.plant.clone())?;
            let coupling = CoolingCoupling::attach(Box::new(model), config.system.cooling.num_cdus)
                .map_err(|e| format!("cooling coupling failed: {e}"))?;
            sim.attach_cooling(coupling);
        }
        Ok(DigitalTwin { config, sim })
    }

    /// Submit jobs (synthetic, benchmark, or telemetry-derived).
    pub fn submit(&mut self, jobs: Vec<Job>) {
        self.sim.submit_jobs(jobs);
    }

    /// Provide the wet-bulb forcing for the cooling model.
    pub fn set_wet_bulb(&mut self, series: TimeSeries) {
        self.sim.set_wet_bulb(series);
    }

    /// Advance the twin by `seconds` of simulated time.
    pub fn run(&mut self, seconds: u64) -> Result<(), FmiError> {
        let target = self.sim.now() + seconds;
        self.sim.run_until(target)
    }

    /// Advance a single second (Algorithm 1 `TICK`).
    pub fn tick(&mut self) -> Result<(), FmiError> {
        self.sim.tick()
    }

    /// Current simulated time, seconds.
    pub fn now(&self) -> u64 {
        self.sim.now()
    }

    /// Latest power snapshot.
    pub fn snapshot(&self) -> &PowerSnapshot {
        self.sim.snapshot()
    }

    /// Recorded output series.
    pub fn outputs(&self) -> &SimOutputs {
        self.sim.outputs()
    }

    /// Node-allocation utilization.
    pub fn utilization(&self) -> f64 {
        self.sim.utilization()
    }

    /// Jobs currently running / waiting.
    pub fn queue_state(&self) -> (usize, usize) {
        (self.sim.running_count(), self.sim.pending_count())
    }

    /// Read a cooling-model output by name (None without cooling or for
    /// unknown names).
    pub fn cooling_output(&self, name: &str) -> Option<f64> {
        let model = self.sim.cooling_model()?;
        let vr = model.var_by_name(name)?.vr;
        model.get_real(vr).ok()
    }

    /// The §III-B5 run report.
    pub fn report(&self) -> RunReport {
        self.sim.report()
    }

    /// The L1 scene graph for this system (Frontier layout; generated
    /// scenes for other systems are future work, as in the paper).
    pub fn scene(&self) -> SceneGraph {
        SceneGraph::frontier()
    }

    /// Mutable access to the underlying RAPS simulation (advanced use).
    pub fn raps_mut(&mut self) -> &mut RapsSimulation {
        &mut self.sim
    }

    /// Immutable access to the underlying RAPS simulation.
    pub fn raps(&self) -> &RapsSimulation {
        &self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exadigit_raps::job::Job;

    #[test]
    fn twin_without_cooling_runs() {
        let mut twin = DigitalTwin::new(TwinConfig::frontier_power_only()).unwrap();
        twin.submit(vec![Job::new(1, "j", 256, 120, 5, 0.6, 0.8)]);
        twin.run(300).unwrap();
        let r = twin.report();
        assert_eq!(r.jobs_completed, 1);
        assert!(r.avg_power_mw > 7.0);
        assert!(twin.cooling_output("pue").is_none());
    }

    #[test]
    fn twin_with_cooling_reports_pue() {
        let mut twin = DigitalTwin::new(TwinConfig::frontier()).unwrap();
        twin.submit(vec![Job::new(1, "load", 4096, 1800, 1, 0.8, 0.9)]);
        twin.run(1800).unwrap();
        let pue = twin.cooling_output("pue").expect("cooling attached");
        assert!((1.0..1.3).contains(&pue), "pue={pue}");
        let r = twin.report();
        assert!(r.avg_pue.is_some());
        // Cooling outputs are live: supply temperature in a sane band.
        let t = twin.cooling_output("cdu[1].secondary_supply_temp").unwrap();
        assert!((20.0..45.0).contains(&t), "t={t}");
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = TwinConfig::frontier();
        cfg.system.cooling.num_cdus = 3;
        assert!(DigitalTwin::new(cfg).is_err());
    }

    #[test]
    fn scene_available() {
        let twin = DigitalTwin::new(TwinConfig::frontier_power_only()).unwrap();
        assert!(twin.scene().node_count() > 100);
    }

    #[test]
    fn queue_state_reflects_submission() {
        let mut twin = DigitalTwin::new(TwinConfig::frontier_power_only()).unwrap();
        twin.submit(vec![
            Job::new(1, "all", 9472, 600, 1, 0.5, 0.5),
            Job::new(2, "wait", 128, 60, 2, 0.5, 0.5),
        ]);
        twin.run(30).unwrap();
        assert_eq!(twin.queue_state(), (1, 1));
    }
}
