//! Twin-as-a-service smoke: start the scenario server on a loopback
//! port, ingest a synthetic telemetry day into the live twin, snapshot
//! it, answer three what-if queries concurrently over TCP, and verify
//! the snapshot/fork/cache contracts end-to-end.
//!
//! ```sh
//! cargo run --release --example twin_service
//! ```
//!
//! Runs in CI as the service-layer smoke test (exit code 1 on any
//! violated assertion).

use exadigit_core::TwinConfig;
use exadigit_service::{
    Request, Response, ServiceClient, TelemetryFeed, TwinServer, TwinService, WhatIfSpec,
};

fn main() {
    println!("ExaDigiT-rs twin-as-a-service — loopback demo\n");

    // 1. Boot the service: a power-only Frontier live twin fed by one
    //    synthetic telemetry day (the stand-in for the real stream).
    let service = TwinService::new(
        TwinConfig::frontier_power_only(),
        TelemetryFeed::synthetic(42, 1),
        42,
    )
    .expect("frontier config is valid");
    let handle = TwinServer::bind(service, "127.0.0.1:0")
        .expect("bind loopback")
        .with_metrics_http("127.0.0.1:0")
        .expect("bind metrics sidecar")
        .spawn();
    let metrics_addr = handle.metrics_addr().expect("sidecar is attached");
    println!("server listening on {}", handle.addr());
    println!("metrics sidecar on http://{metrics_addr}/metrics");

    // 2. Ingest a telemetry day: the live twin advances to t = 86,400 s,
    //    pulling every job the feed carries.
    let mut client = ServiceClient::connect(handle.addr()).expect("connect");
    let Response::Advanced { now_s, jobs_ingested } =
        client.expect(&Request::Advance { seconds: 86_400 }).expect("advance")
    else {
        panic!("unexpected response to Advance")
    };
    println!("ingested one day: now t = {now_s} s, {jobs_ingested} jobs from the feed");
    assert_eq!(now_s, 86_400);
    assert!(jobs_ingested > 500, "a synthetic day carries hundreds of jobs");

    // 3. Freeze "now" into a snapshot — O(state), not O(elapsed).
    let Response::SnapshotTaken(info) =
        client.expect(&Request::Snapshot { label: "end-of-day".into() }).expect("snapshot")
    else {
        panic!("unexpected response to Snapshot")
    };
    println!(
        "snapshot {} ('{}') at t = {} s ({} running / {} pending jobs)",
        info.id, info.label, info.taken_at_s, info.running_jobs, info.pending_jobs
    );

    // 4. Three concurrent what-if clients branch from the snapshot: a
    //    plain continuation, a fidelity swap (attach an L2 replay
    //    backend to the power-only fork, so the query reports PUE), and
    //    a surge of extra load.
    let addr = handle.addr();
    let snapshot_id = info.id;
    let specs = [
        WhatIfSpec { label: "continuation".into(), horizon_s: 3_600, ..WhatIfSpec::default() },
        WhatIfSpec {
            label: "L2 replay PUE".into(),
            horizon_s: 3_600,
            backend: Some(exadigit_core::config::CoolingBackend::Replay(
                exadigit_telemetry::replay::CoolingTrace::constant(1.0625, 5.0e5),
            )),
            ..WhatIfSpec::default()
        },
        WhatIfSpec {
            label: "surge +2048 nodes".into(),
            horizon_s: 3_600,
            extra_jobs: vec![exadigit_raps::job::Job::new(
                900_001, "surge", 2_048, 3_000, 86_400, 0.9, 0.95,
            )],
            ..WhatIfSpec::default()
        },
    ];
    let workers: Vec<_> = specs
        .iter()
        .cloned()
        .map(|spec| {
            std::thread::spawn(move || {
                let mut c = ServiceClient::connect(addr).expect("connect worker");
                match c.expect(&Request::Query { snapshot_id, spec }).expect("query") {
                    Response::Answer { cached, outcome } => (cached, outcome),
                    other => panic!("unexpected response {other:?}"),
                }
            })
        })
        .collect();
    let answers: Vec<_> = workers.into_iter().map(|w| w.join().expect("worker")).collect();

    println!(
        "\n{:<22} {:>12} {:>12} {:>8} {:>8}",
        "scenario", "avg MW", "MWh (1 h)", "jobs", "PUE"
    );
    for (_, out) in &answers {
        println!(
            "{:<22} {:>12.2} {:>12.2} {:>8} {:>8}",
            out.label,
            out.avg_power_mw,
            out.energy_mwh,
            out.jobs_completed,
            out.final_pue.map_or("—".into(), |p| format!("{p:.4}")),
        );
    }

    // Assert the physics ordering: extra load costs energy; the L2 swap
    // serves the trace's PUE; every outcome covers exactly the queried
    // horizon from the fork point.
    let by_label = |l: &str| {
        &answers.iter().find(|(_, o)| o.label == l).expect("present").1
    };
    let base = by_label("continuation");
    let surge = by_label("surge +2048 nodes");
    assert!(surge.avg_power_mw > base.avg_power_mw, "surge must raise power");
    assert_eq!(base.final_pue, None, "power-only fork has no PUE");
    assert_eq!(by_label("L2 replay PUE").final_pue, Some(1.0625));
    for (_, out) in &answers {
        assert_eq!(out.from_s, 86_400);
        assert_eq!(out.to_s, 90_000);
        assert!(out.avg_power_mw > 5.0, "Frontier never idles below ~7 MW");
    }

    // 5. Ask the continuation again: the answer must come from the cache
    //    and be bit-identical.
    let Response::Answer { cached, outcome } = client
        .expect(&Request::Query { snapshot_id, spec: specs[0].clone() })
        .expect("cached query")
    else {
        panic!("unexpected response")
    };
    assert!(cached, "identical question must hit the cache");
    assert_eq!(&outcome, base);
    println!("\nre-asked 'continuation': served from cache, bit-identical ✓");

    let Response::Status(status) = client.expect(&Request::Status).expect("status") else {
        panic!("unexpected response")
    };
    println!(
        "status: t = {} s, {} snapshots, cache {} entries ({} hits / {} misses)",
        status.now_s, status.snapshots, status.cache_entries, status.cache_hits,
        status.cache_misses
    );
    assert!(status.cache_hits >= 1);

    // 6. Scrape the Prometheus sidecar like a collector would: plain
    //    HTTP GET, text exposition format 0.0.4, counters that agree
    //    with the work done above.
    let scrape = {
        use std::io::{Read, Write};
        let mut sock = std::net::TcpStream::connect(metrics_addr).expect("connect sidecar");
        sock.write_all(b"GET /metrics HTTP/1.1\r\nHost: twin\r\nConnection: close\r\n\r\n")
            .expect("send scrape");
        let mut text = String::new();
        sock.read_to_string(&mut text).expect("read scrape");
        text
    };
    assert!(scrape.starts_with("HTTP/1.1 200 OK"), "scrape must succeed");
    assert!(scrape.contains("text/plain; version=0.0.4"), "Prometheus text format");
    assert!(scrape.contains("# TYPE exadigit_requests_total counter"));
    assert!(
        scrape.contains("exadigit_requests_total{type=\"Query\"} 4"),
        "three concurrent queries plus the cache re-ask were counted"
    );
    assert!(scrape.contains("exadigit_cache_hits_total 1"));
    assert!(scrape.contains("exadigit_live_now_seconds 86400"));
    assert!(scrape.contains("exadigit_request_seconds_bucket"), "latency histograms exposed");
    println!("scraped {} bytes of Prometheus exposition ✓", scrape.len());

    handle.shutdown();
    println!("\nserver shut down cleanly ✓");
}
