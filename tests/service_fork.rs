//! Fork determinism: the contract the service layer's snapshot/fork
//! primitive rests on.
//!
//! `fork(snapshot at t).run_until(t + h)` must be `f64::to_bits`-identical
//! to a fresh run to `t + h` — same recorded series, same energy bits,
//! same pool state, same completions — across every scheduler policy, and
//! regardless of the pool width the forks are fanned out at. Two forks of
//! the same snapshot must also be bit-identical to each other (a cached
//! answer is only sound if recomputing it is pointless).
//!
//! One deliberate precision note: the fresh reference is advanced with
//! the same `run_until(t)`-then-`run_until(t + h)` call sequence as the
//! forked path. Pausing at `t` splits any steady-state gap spanning `t`
//! into two closed-form energy additions (`a·P + b·P` instead of
//! `(a+b)·P`), so a *single-call* run to `t + h` can differ in
//! `energy_j` by float associativity — about one ULP — while every
//! recorded series stays bit-identical (series sample the held power
//! snapshot, which gap splitting cannot change). The single-call
//! comparison is pinned separately at bit level for the series and at
//! 1e-12 relative for energy.

use exadigit_raps::config::{PartitionConfig, SystemConfig};
use exadigit_raps::job::Job;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::simulation::RapsSimulation;
use exadigit_sim::ensemble::EnsembleRunner;
use proptest::prelude::*;

const POLICIES: [Policy; 4] =
    [Policy::Fcfs, Policy::Sjf, Policy::FirstFit, Policy::EasyBackfill];

fn small_config(nodes: usize) -> SystemConfig {
    let mut cfg = SystemConfig::frontier();
    cfg.partitions = vec![PartitionConfig { name: "batch".into(), nodes, gpus_per_node: 4 }];
    cfg
}

fn sim(policy: Policy) -> RapsSimulation {
    RapsSimulation::new(small_config(96), PowerDelivery::StandardAC, policy, 15)
}

/// Everything the equivalence compares, all at bit level.
fn state_digest(s: &RapsSimulation) -> (Vec<u64>, Vec<u64>, u64, u64, usize, usize) {
    let out = s.outputs();
    (
        out.system_power_w.values.iter().map(|v| v.to_bits()).collect(),
        out.utilization.values.iter().map(|v| v.to_bits()).collect(),
        out.energy_j.to_bits(),
        s.report().jobs_completed,
        s.running_count(),
        s.pending_count(),
    )
}

fn arbitrary_jobs() -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (1usize..=96, 30u64..2_400, 0u64..1_200, 0.0f32..1.0, 0.0f32..1.0),
        1..24,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (nodes, wall, submit, cu, gu))| {
                Job::new(i as u64, format!("j{i}"), nodes, wall, submit, cu, gu)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline invariant, for every policy and at pool widths 1 and
    /// 4: a mid-run fork continued to the horizon is bit-identical to a
    /// fresh uninterrupted run, and two forks of one snapshot agree.
    #[test]
    fn fork_equals_fresh_run_across_policies_and_widths(
        jobs in arbitrary_jobs(),
        fork_at in 60u64..2_000,
        horizon in 60u64..2_400,
    ) {
        for policy in POLICIES {
            let target = fork_at + horizon;

            // Fresh reference, advanced with the same call sequence as
            // the forked path (see the module docs on why the pause
            // point is part of the energy-bit contract).
            let mut fresh = sim(policy);
            fresh.submit_jobs(jobs.clone());
            fresh.run_until(fork_at).unwrap();
            fresh.run_until(target).unwrap();
            let reference = state_digest(&fresh);

            // A single-call run only differs in the energy sum's
            // association, never in any recorded sample.
            let mut single = sim(policy);
            single.submit_jobs(jobs.clone());
            single.run_until(target).unwrap();
            let one_call = state_digest(&single);
            prop_assert_eq!(&one_call.0, &reference.0, "series must not see the pause");
            prop_assert_eq!(&one_call.1, &reference.1);
            let (ea, eb) = (f64::from_bits(one_call.2), f64::from_bits(reference.2));
            prop_assert!(
                (ea - eb).abs() <= 1e-12 * ea.abs().max(1.0),
                "energy beyond associativity: {} vs {}", ea, eb
            );

            // Snapshot at `fork_at`, then fan two forks per pool width.
            let mut live = sim(policy);
            live.submit_jobs(jobs.clone());
            live.run_until(fork_at).unwrap();

            for width in [1usize, 4] {
                let digests = EnsembleRunner::new(0).threads(width).map(
                    vec![(), ()],
                    |_ctx, ()| {
                        let mut fork = live.fork().unwrap();
                        fork.run_until(target).unwrap();
                        state_digest(&fork)
                    },
                );
                prop_assert_eq!(
                    &digests[0], &reference,
                    "policy {:?}, width {}: fork diverged from fresh run", policy, width
                );
                prop_assert_eq!(
                    &digests[0], &digests[1],
                    "policy {:?}, width {}: two forks of one snapshot diverged", policy, width
                );
            }

            // The snapshot source itself is untouched by the forks.
            prop_assert_eq!(live.now(), fork_at);
        }
    }
}

/// Golden pin on the full Frontier system with a day-scale workload: the
/// fork seam lands in the middle of live queues, running jobs, and
/// pending events, and the continuation must not notice.
#[test]
fn fork_golden_frontier_day_slice() {
    let build = || {
        let mut s = RapsSimulation::new(
            SystemConfig::frontier(),
            PowerDelivery::StandardAC,
            Policy::EasyBackfill,
            15,
        );
        let mut gen = exadigit_raps::workload::WorkloadGenerator::new(
            exadigit_raps::workload::WorkloadParams::default(),
            2024,
        );
        s.submit_jobs(gen.generate_day(0));
        s
    };

    let mut fresh = build();
    fresh.run_until(5_000).unwrap(); // same call sequence as the forked path
    fresh.run_until(14_400).unwrap();

    let mut live = build();
    live.run_until(5_000).unwrap(); // mid-queue, off the 15 s grid
    let mut fork = live.fork().unwrap();
    fork.run_until(14_400).unwrap();

    assert_eq!(fresh.report(), fork.report());
    assert_eq!(fresh.pool(), fork.pool());
    let (a, b) = (&fresh.outputs().system_power_w.values, &fork.outputs().system_power_w.values);
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "power sample {i} diverged");
    }
    assert_eq!(fresh.outputs().energy_j.to_bits(), fork.outputs().energy_j.to_bits());
}
