//! Request-lifecycle tracing: a bounded ring of structured stage events
//! and a slow-query log.
//!
//! The ring holds the last `capacity` [`TraceEvent`]s — admitted →
//! executing → written, each stamped with the microseconds spent in the
//! stage it closes — overwriting the oldest on wraparound, so tracing
//! cost is O(1) per event and memory is fixed no matter how long the
//! server runs. The [`SlowQueryLog`] keeps the most recent requests
//! whose total time crossed a configurable threshold, with the
//! queue-wait/handle split needed to tell "the service is slow" from
//! "the queue is deep".

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Where in its lifecycle a traced request is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Parsed and admitted to the request queue.
    Admitted,
    /// Popped by a worker; `stage_us` is the queue wait.
    Executing,
    /// Response written (or parked for ordered writeback); `stage_us`
    /// is handle + write time.
    Written,
    /// Refused by admission control (`Busy`); `stage_us` is 0.
    Rejected,
}

impl Stage {
    /// Stable lowercase name (wire and exposition labels).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Admitted => "admitted",
            Stage::Executing => "executing",
            Stage::Written => "written",
            Stage::Rejected => "rejected",
        }
    }
}

/// One structured lifecycle event in the trace ring.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Microseconds since the ring's epoch (server start).
    pub at_us: u64,
    /// Connection id (per-server ascending).
    pub conn: u64,
    /// Request sequence number on that connection.
    pub seq: u64,
    /// Request type name, e.g. `"Query"`.
    pub request: &'static str,
    /// Lifecycle stage this event closes.
    pub stage: Stage,
    /// Microseconds spent in the closed stage (0 for `Admitted` /
    /// `Rejected`).
    pub stage_us: u64,
}

struct RingState {
    events: VecDeque<TraceEvent>,
    total: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s with a fixed epoch.
pub struct TraceRing {
    state: Mutex<RingState>,
    capacity: usize,
    epoch: Instant,
}

impl TraceRing {
    /// A ring holding the last `capacity` events (minimum 1), with its
    /// epoch at construction time.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            state: Mutex::new(RingState { events: VecDeque::new(), total: 0 }),
            capacity: capacity.max(1),
            epoch: Instant::now(),
        }
    }

    /// Microseconds since the ring's epoch (the timestamp base for
    /// [`TraceEvent::at_us`]).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Record one event, overwriting the oldest when full.
    pub fn push(&self, event: TraceEvent) {
        let mut state = self.state.lock().unwrap();
        if state.events.len() == self.capacity {
            state.events.pop_front();
        }
        state.events.push_back(event);
        state.total += 1;
    }

    /// The most recent `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TraceEvent> {
        let state = self.state.lock().unwrap();
        let skip = state.events.len().saturating_sub(n);
        state.events.iter().skip(skip).cloned().collect()
    }

    /// Lifetime events pushed (survives wraparound).
    pub fn total(&self) -> u64 {
        self.state.lock().unwrap().total
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// One entry in the slow-query log.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// Microseconds since the owning log's epoch when the request
    /// finished.
    pub at_us: u64,
    /// Request type name, e.g. `"QueryBatch"`.
    pub request: &'static str,
    /// Free-form detail (snapshot id, horizon, …).
    pub detail: String,
    /// Microseconds spent queued before a worker picked it up.
    pub queue_us: u64,
    /// Microseconds the service spent handling it.
    pub handle_us: u64,
}

/// A bounded log of the most recent requests slower than a configurable
/// threshold.
pub struct SlowQueryLog {
    entries: Mutex<VecDeque<SlowQuery>>,
    threshold_us: AtomicU64,
    capacity: usize,
    epoch: Instant,
}

impl SlowQueryLog {
    /// A log keeping the last `capacity` slow queries, flagging requests
    /// whose queue + handle time meets `threshold_us`.
    pub fn new(capacity: usize, threshold_us: u64) -> Self {
        SlowQueryLog {
            entries: Mutex::new(VecDeque::new()),
            threshold_us: AtomicU64::new(threshold_us),
            capacity: capacity.max(1),
            epoch: Instant::now(),
        }
    }

    /// The current threshold, microseconds.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Replace the threshold (runtime-tunable; takes effect on the next
    /// record).
    pub fn set_threshold_us(&self, threshold_us: u64) {
        self.threshold_us.store(threshold_us, Ordering::Relaxed);
    }

    /// Record a finished request if it crossed the threshold. Returns
    /// true when the request was logged (the caller's slow-query counter
    /// keys off this).
    pub fn record(
        &self,
        request: &'static str,
        detail: impl FnOnce() -> String,
        queue_us: u64,
        handle_us: u64,
    ) -> bool {
        if queue_us + handle_us < self.threshold_us() {
            return false;
        }
        let entry = SlowQuery {
            at_us: self.epoch.elapsed().as_micros() as u64,
            request,
            detail: detail(),
            queue_us,
            handle_us,
        };
        let mut entries = self.entries.lock().unwrap();
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
        true
    }

    /// The logged slow queries, oldest first.
    pub fn entries(&self) -> Vec<SlowQuery> {
        self.entries.lock().unwrap().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(seq: u64) -> TraceEvent {
        TraceEvent {
            at_us: seq * 10,
            conn: 1,
            seq,
            request: "Query",
            stage: Stage::Admitted,
            stage_us: 0,
        }
    }

    #[test]
    fn ring_wraps_around_keeping_the_newest() {
        let ring = TraceRing::new(4);
        for seq in 0..10 {
            ring.push(event(seq));
        }
        assert_eq!(ring.total(), 10, "lifetime count survives wraparound");
        let recent = ring.recent(100);
        assert_eq!(recent.len(), 4, "capacity bounds retention");
        assert_eq!(recent.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        // A narrower ask trims from the old end.
        assert_eq!(ring.recent(2).iter().map(|e| e.seq).collect::<Vec<_>>(), vec![8, 9]);
    }

    #[test]
    fn ring_capacity_has_a_floor_of_one() {
        let ring = TraceRing::new(0);
        ring.push(event(1));
        ring.push(event(2));
        assert_eq!(ring.recent(10).len(), 1);
        assert_eq!(ring.recent(10)[0].seq, 2);
    }

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(Stage::Admitted.name(), "admitted");
        assert_eq!(Stage::Executing.name(), "executing");
        assert_eq!(Stage::Written.name(), "written");
        assert_eq!(Stage::Rejected.name(), "rejected");
    }

    #[test]
    fn slow_log_applies_threshold_and_capacity() {
        let log = SlowQueryLog::new(2, 1_000);
        assert!(!log.record("Query", || unreachable!("fast queries never format detail"), 300, 600));
        assert!(log.record("Query", || "snapshot 1".into(), 600, 600));
        assert!(log.record("Advance", || "3600 s".into(), 0, 2_000));
        assert!(log.record("Status", || "".into(), 1_000, 0));
        let entries = log.entries();
        assert_eq!(entries.len(), 2, "capacity evicts the oldest");
        assert_eq!(entries[0].request, "Advance");
        assert_eq!(entries[1].request, "Status");
        assert_eq!(entries[0].queue_us, 0);
        assert_eq!(entries[0].handle_us, 2_000);
    }

    #[test]
    fn slow_log_threshold_is_runtime_tunable() {
        let log = SlowQueryLog::new(4, u64::MAX);
        assert!(!log.record("Query", || "never".into(), 1, 1));
        log.set_threshold_us(0);
        assert_eq!(log.threshold_us(), 0);
        assert!(log.record("Query", || "always".into(), 0, 0));
        assert_eq!(log.entries().len(), 1);
    }
}
