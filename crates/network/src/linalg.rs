//! Small dense linear algebra.
//!
//! The hydraulic Newton solver needs to factor Jacobians of a few dozen
//! rows at every iteration of every 15 s cooling step. Networks this size
//! are fastest with a plain dense LU with partial pivoting — no external
//! BLAS needed, no sparse bookkeeping worth its overhead.

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major nested slice (rows must be equal length).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Solve `A·x = b` in place via LU with partial pivoting; consumes the
    /// matrix (it is overwritten by the factors). Returns `None` when the
    /// matrix is numerically singular.
    pub fn solve(mut self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve needs a square matrix");
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut x: Vec<f64> = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivot: largest magnitude in column k at/below row k.
            let mut pivot_row = k;
            let mut pivot_val = self[(k, k)].abs();
            for i in (k + 1)..n {
                let v = self[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < 1e-14 {
                return None;
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = self[(k, j)];
                    self[(k, j)] = self[(pivot_row, j)];
                    self[(pivot_row, j)] = tmp;
                }
                x.swap(k, pivot_row);
                perm.swap(k, pivot_row);
            }
            // Eliminate below.
            let pivot = self[(k, k)];
            for i in (k + 1)..n {
                let factor = self[(i, k)] / pivot;
                if factor == 0.0 {
                    continue;
                }
                self[(i, k)] = 0.0;
                for j in (k + 1)..n {
                    self[(i, j)] -= factor * self[(k, j)];
                }
                x[i] -= factor * x[k];
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut sum = x[k];
            for j in (k + 1)..n {
                sum -= self[(k, j)] * x[j];
            }
            x[k] = sum / self[(k, k)];
        }
        Some(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solve_identity() {
        let b = vec![1.0, 2.0, 3.0];
        let x = Matrix::identity(3).solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solve_hand_worked_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the initial diagonal: fails without partial pivoting.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn mul_vec_matches() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    proptest! {
        /// A·x recovered by solve(A, A·x) for diagonally dominant A.
        #[test]
        fn prop_solve_round_trip(seed in 0u64..1000) {
            let mut rng = exadigit_sim::Rng::new(seed);
            let n = 2 + (seed % 9) as usize;
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                let mut off_diag_sum = 0.0;
                for j in 0..n {
                    if i != j {
                        let v = rng.uniform_range(-1.0, 1.0);
                        a[(i, j)] = v;
                        off_diag_sum += v.abs();
                    }
                }
                // Diagonal dominance guarantees a well-conditioned solve.
                a[(i, i)] = off_diag_sum + 1.0 + rng.uniform();
            }
            let x_true: Vec<f64> = (0..n).map(|_| rng.uniform_range(-10.0, 10.0)).collect();
            let b = a.mul_vec(&x_true);
            let x = a.solve(&b).expect("diagonally dominant must solve");
            for (xi, ti) in x.iter().zip(&x_true) {
                prop_assert!((xi - ti).abs() < 1e-8, "xi={} ti={}", xi, ti);
            }
        }
    }
}
