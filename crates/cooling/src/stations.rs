//! The Fig. 5 station registry.
//!
//! The paper's cooling schematic enumerates the locations where the model
//! predicts pressures, temperatures and flow rates. This module gives each
//! numbered station a name and maps it onto the model's output variables,
//! so validation plots (Fig. 7 references stations 10, 12) can be built by
//! station id.

use serde::Serialize;

/// One measurement station of the Fig. 5 schematic.
///
/// Serialize-only: stations are a static registry of `&'static str`
/// names, which cannot be deserialized from owned JSON input.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Station {
    /// Station number as printed in Fig. 5.
    pub id: u8,
    /// Location description.
    pub name: &'static str,
    /// Loop the station belongs to.
    pub loop_name: &'static str,
    /// Output-variable prefix(es) carrying this station's quantities.
    pub outputs: &'static str,
}

/// The Frontier station table (Fig. 5: enumerated locations 1-15).
pub const STATIONS: &[Station] = &[
    Station { id: 1, name: "Cooling tower cells", loop_name: "tower", outputs: "ct_fan[*].power, ct.num_cells_staged" },
    Station { id: 2, name: "Tower basin / cold header", loop_name: "tower", outputs: "facility.ctw_flow" },
    Station { id: 3, name: "CTWP suction header", loop_name: "tower", outputs: "ctwp[*].speed" },
    Station { id: 4, name: "CTWP discharge (CT supply header)", loop_name: "tower", outputs: "ctwp[*].power" },
    Station { id: 5, name: "EHX cold-side inlet", loop_name: "tower", outputs: "facility.ctw_flow" },
    Station { id: 6, name: "EHX cold-side outlet (to towers)", loop_name: "tower", outputs: "primary.num_ehx_staged" },
    Station { id: 7, name: "EHX hot-side inlet (HTW return)", loop_name: "primary", outputs: "facility.htw_return_temp" },
    Station { id: 8, name: "EHX hot-side outlet", loop_name: "primary", outputs: "facility.htw_supply_temp" },
    Station { id: 9, name: "HTWP suction header", loop_name: "primary", outputs: "htwp[*].speed" },
    Station { id: 10, name: "HTW supply header (to data hall)", loop_name: "primary", outputs: "facility.htw_supply_pressure, facility.htw_supply_temp" },
    Station { id: 11, name: "Data-hall supply manifold", loop_name: "primary", outputs: "facility.htw_flow" },
    Station { id: 12, name: "CDU primary inlet", loop_name: "cdu", outputs: "cdu[*].primary_flow, cdu[*].primary_supply_temp, cdu[*].primary_supply_pressure" },
    Station { id: 13, name: "CDU primary outlet", loop_name: "cdu", outputs: "cdu[*].primary_return_temp, cdu[*].primary_return_pressure" },
    Station { id: 14, name: "CDU secondary supply (to racks)", loop_name: "cdu", outputs: "cdu[*].secondary_flow, cdu[*].secondary_supply_temp, cdu[*].pump_power" },
    Station { id: 15, name: "CDU secondary return (from racks)", loop_name: "cdu", outputs: "cdu[*].secondary_return_temp, cdu[*].secondary_return_pressure" },
];

/// Look up a station by its Fig. 5 number.
pub fn station(id: u8) -> Option<&'static Station> {
    STATIONS.iter().find(|s| s.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_stations_enumerated() {
        assert_eq!(STATIONS.len(), 15);
        for (i, s) in STATIONS.iter().enumerate() {
            assert_eq!(s.id as usize, i + 1);
        }
    }

    #[test]
    fn fig7_stations_present() {
        // Fig. 7 validates stations 10 (HTW supply pressure) and 12 (CDU
        // primary flow/return temperature).
        let s10 = station(10).unwrap();
        assert!(s10.outputs.contains("htw_supply_pressure"));
        let s12 = station(12).unwrap();
        assert!(s12.outputs.contains("primary_flow"));
    }

    #[test]
    fn unknown_station_is_none() {
        assert!(station(99).is_none());
    }

    #[test]
    fn station_outputs_reference_real_variables() {
        // Every referenced prefix must resolve against the Frontier model.
        let model = crate::CoolingModel::frontier();
        use exadigit_sim::fmi::CoSimModel;
        for s in STATIONS {
            for part in s.outputs.split(", ") {
                let probe = part.replace("[*]", "[1]");
                assert!(
                    model.var_by_name(&probe).is_some(),
                    "station {} references unknown output {probe}",
                    s.id
                );
            }
        }
    }
}
