//! ASCII time-series charts.
//!
//! Terminal-native stand-ins for the Fig. 8/9 plots: unicode sparklines
//! for compact traces and multi-row line charts for predicted-vs-measured
//! overlays.

use exadigit_sim::TimeSeries;

const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render values as a one-line unicode sparkline. NaNs render as spaces.
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return " ".repeat(values.len());
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::EPSILON);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else {
                let idx = ((v - lo) / span * 7.0).round() as usize;
                BLOCKS[idx.min(7)]
            }
        })
        .collect()
}

/// Downsample a series to `width` points (mean per bucket) and sparkline it.
pub fn spark_series(series: &TimeSeries, width: usize) -> String {
    sparkline(&bucket_means(&series.to_vec(), width))
}

/// Bucket-mean downsampling.
pub fn bucket_means(values: &[f64], width: usize) -> Vec<f64> {
    if values.is_empty() || width == 0 {
        return Vec::new();
    }
    if values.len() <= width {
        return values.to_vec();
    }
    let mut out = Vec::with_capacity(width);
    for b in 0..width {
        let start = b * values.len() / width;
        let end = ((b + 1) * values.len() / width).max(start + 1);
        let slice = &values[start..end.min(values.len())];
        out.push(slice.iter().sum::<f64>() / slice.len() as f64);
    }
    out
}

/// Render one or more named series as a multi-row ASCII line chart with a
/// y-axis. Each series gets its own glyph; overlapping points show the
/// later series.
pub fn line_chart(series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    assert!(height >= 2 && width >= 8);
    const GLYPHS: [char; 6] = ['●', '○', '▪', '△', '◆', '+'];
    // Global range across all series.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, vals) in series {
        for &v in vals.iter().filter(|v| v.is_finite()) {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return "(no data)".to_string();
    }
    let span = (hi - lo).max(f64::EPSILON);
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, vals)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        let compact = bucket_means(vals, width);
        for (x, &v) in compact.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let y = ((v - lo) / span * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            grid[row][x] = glyph;
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{hi:>10.2} ")
        } else if r == height - 1 {
            format!("{lo:>10.2} ")
        } else {
            " ".repeat(11)
        };
        out.push_str(&label);
        out.push('│');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(11));
    out.push('└');
    out.push_str(&"─".repeat(width));
    out.push('\n');
    // Legend.
    out.push_str(&" ".repeat(12));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push(GLYPHS[si % GLYPHS.len()]);
        out.push(' ');
        out.push_str(name);
        out.push_str("   ");
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], '█');
    }

    #[test]
    fn sparkline_constant_input() {
        let s = sparkline(&[5.0; 10]);
        assert_eq!(s.chars().count(), 10);
    }

    #[test]
    fn sparkline_handles_nan() {
        let s = sparkline(&[0.0, f64::NAN, 1.0]);
        assert_eq!(s.chars().nth(1), Some(' '));
    }

    #[test]
    fn bucket_means_averages() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b = bucket_means(&v, 10);
        assert_eq!(b.len(), 10);
        assert!((b[0] - 4.5).abs() < 1e-9);
        assert!((b[9] - 94.5).abs() < 1e-9);
    }

    #[test]
    fn bucket_means_short_input_passthrough() {
        let v = vec![1.0, 2.0];
        assert_eq!(bucket_means(&v, 10), v);
    }

    #[test]
    fn line_chart_contains_legend_and_axis() {
        let a: Vec<f64> = (0..50).map(|i| (i as f64 * 0.2).sin()).collect();
        let b: Vec<f64> = (0..50).map(|i| (i as f64 * 0.2).cos()).collect();
        let chart = line_chart(&[("predicted", &a), ("measured", &b)], 40, 10);
        assert!(chart.contains("predicted"));
        assert!(chart.contains("measured"));
        assert!(chart.contains('│'));
        assert!(chart.contains('└'));
        assert!(chart.lines().count() >= 12);
    }

    #[test]
    fn spark_series_downsamples() {
        let series = TimeSeries::from_values(0.0, 1.0, (0..1000).map(|i| i as f64).collect());
        let s = spark_series(&series, 60);
        assert_eq!(s.chars().count(), 60);
    }
}
