//! Monte-Carlo uncertainty quantification.
//!
//! §IV of the paper: "we prioritized extensive V&V of our power and cooling
//! models ... and also have implemented UQ into our RAPS module", following
//! the NASEM recommendation to embed VVUQ in digital twins. The dominant
//! parametric uncertainties of the power model are the conversion-chain
//! efficiencies and the component power ratings of Table I; this module
//! perturbs them over an ensemble, replays the same workload, and reports
//! confidence bands on the headline outputs.

use crate::config::SystemConfig;
use crate::job::Job;
use crate::power::PowerDelivery;
use crate::scheduler::Policy;
use crate::simulation::RapsSimulation;
use exadigit_sim::ensemble::{EnsembleRunner, ScenarioCtx};
use exadigit_sim::stats::percentile;
use exadigit_sim::Rng;
use serde::{Deserialize, Serialize};

/// Relative 1-σ uncertainties applied to the power-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UqPerturbations {
    /// Rectifier peak efficiency, absolute σ (e.g. 0.004 ⇒ ±0.4 %-pts).
    pub rectifier_eff_abs: f64,
    /// SIVOC full-load efficiency, absolute σ.
    pub sivoc_eff_abs: f64,
    /// Component power ratings (CPU/GPU idle+max, RAM...), relative σ.
    pub component_power_rel: f64,
}

impl Default for UqPerturbations {
    fn default() -> Self {
        UqPerturbations {
            rectifier_eff_abs: 0.004,
            sivoc_eff_abs: 0.004,
            component_power_rel: 0.03,
        }
    }
}

/// Result of one ensemble member.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnsembleMember {
    /// Average system power, MW.
    pub avg_power_mw: f64,
    /// Average conversion loss, MW.
    pub avg_loss_mw: f64,
    /// Total energy, MWh.
    pub energy_mwh: f64,
}

/// Ensemble summary: mean, std, and a central confidence interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UqSummary {
    /// Ensemble size.
    pub members: usize,
    /// Mean of average power, MW.
    pub power_mean_mw: f64,
    /// Std of average power, MW.
    pub power_std_mw: f64,
    /// Central 90 % interval of average power, MW.
    pub power_ci90_mw: (f64, f64),
    /// Mean of average loss, MW.
    pub loss_mean_mw: f64,
    /// Std of average loss, MW.
    pub loss_std_mw: f64,
    /// Central 90 % interval of average loss, MW.
    pub loss_ci90_mw: (f64, f64),
    /// Raw members for downstream plotting.
    pub raw: Vec<EnsembleMember>,
}

/// Apply one random perturbation draw to a configuration.
pub fn perturb_config(cfg: &SystemConfig, pert: &UqPerturbations, rng: &mut Rng) -> SystemConfig {
    let mut c = cfg.clone();
    let conv = &mut c.conversion;
    conv.rectifier_peak_efficiency =
        (conv.rectifier_peak_efficiency + rng.normal(0.0, pert.rectifier_eff_abs)).clamp(0.9, 0.995);
    conv.sivoc_full_load_efficiency =
        (conv.sivoc_full_load_efficiency + rng.normal(0.0, pert.sivoc_eff_abs)).clamp(0.9, 0.999);
    let rel = |rng: &mut Rng, v: f64| v * (1.0 + rng.normal(0.0, pert.component_power_rel));
    let np = &mut c.node_power;
    np.cpu_idle_w = rel(rng, np.cpu_idle_w);
    np.cpu_max_w = rel(rng, np.cpu_max_w).max(np.cpu_idle_w + 1.0);
    np.gpu_idle_w = rel(rng, np.gpu_idle_w);
    np.gpu_max_w = rel(rng, np.gpu_max_w).max(np.gpu_idle_w + 1.0);
    np.ram_w = rel(rng, np.ram_w);
    np.nvme_each_w = rel(rng, np.nvme_each_w);
    np.nic_each_w = rel(rng, np.nic_each_w);
    c
}

/// Run one perturbed ensemble member to completion: draw a perturbation
/// from `ctx`'s private stream, replay `jobs` for `horizon_s` seconds, and
/// report the headline outputs. This is the single-scenario unit that
/// [`run_ensemble`] and `exadigit_core::ensemble` batch across the pool.
pub fn run_member(
    cfg: &SystemConfig,
    jobs: &[Job],
    horizon_s: u64,
    pert: &UqPerturbations,
    ctx: &mut ScenarioCtx,
) -> EnsembleMember {
    let member_cfg = perturb_config(cfg, pert, &mut ctx.rng);
    let mut sim =
        RapsSimulation::new(member_cfg, PowerDelivery::StandardAC, Policy::FirstFit, 60);
    sim.submit_jobs(jobs.to_vec());
    sim.run_until(horizon_s).expect("no cooling attached, cannot fail");
    let r = sim.report();
    EnsembleMember {
        avg_power_mw: r.avg_power_mw,
        avg_loss_mw: r.avg_loss_mw,
        energy_mwh: r.total_energy_mwh,
    }
}

/// Run a Monte-Carlo ensemble: `members` perturbed replicas replay the same
/// `jobs` for `horizon_s` seconds, batched across the thread-pool executor
/// (mirroring the paper's parallel replay on a Frontier node). Uses the
/// process-default pool width; use [`run_ensemble_on`] to control it.
pub fn run_ensemble(
    cfg: &SystemConfig,
    jobs: &[Job],
    horizon_s: u64,
    members: usize,
    pert: &UqPerturbations,
    seed: u64,
) -> UqSummary {
    run_ensemble_on(&EnsembleRunner::new(seed), cfg, jobs, horizon_s, members, pert)
}

/// [`run_ensemble`] on an explicit [`EnsembleRunner`] — the runner supplies
/// the seed and the pool width. Output is bit-identical for every width
/// (per-member RNG streams are keyed by member index, and the percentile
/// reductions fold members in index order).
pub fn run_ensemble_on(
    runner: &EnsembleRunner,
    cfg: &SystemConfig,
    jobs: &[Job],
    horizon_s: u64,
    members: usize,
    pert: &UqPerturbations,
) -> UqSummary {
    assert!(members >= 2, "an ensemble needs at least two members");
    let raw: Vec<EnsembleMember> =
        runner.run_draws(members, |ctx| run_member(cfg, jobs, horizon_s, pert, ctx));

    let powers: Vec<f64> = raw.iter().map(|m| m.avg_power_mw).collect();
    let losses: Vec<f64> = raw.iter().map(|m| m.avg_loss_mw).collect();
    let summary = |v: &[f64]| {
        let s = exadigit_sim::stats::Summary::of(v);
        (s.mean, s.std)
    };
    let (pm, ps) = summary(&powers);
    let (lm, ls) = summary(&losses);
    UqSummary {
        members,
        power_mean_mw: pm,
        power_std_mw: ps,
        power_ci90_mw: (percentile(&powers, 5.0), percentile(&powers, 95.0)),
        loss_mean_mw: lm,
        loss_std_mw: ls,
        loss_ci90_mw: (percentile(&losses, 5.0), percentile(&losses, 95.0)),
        raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;

    fn tiny_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::frontier();
        cfg.partitions[0].nodes = 256;
        cfg.cooling.num_cdus = 1;
        cfg.cooling.racks_per_cdu = 2;
        cfg
    }

    #[test]
    fn perturbation_changes_config_but_stays_physical() {
        let cfg = tiny_cfg();
        let mut rng = Rng::new(5);
        let p = perturb_config(&cfg, &UqPerturbations::default(), &mut rng);
        assert_ne!(p.conversion.rectifier_peak_efficiency, cfg.conversion.rectifier_peak_efficiency);
        assert!(p.conversion.rectifier_peak_efficiency > 0.9);
        assert!(p.node_power.cpu_max_w > p.node_power.cpu_idle_w);
        assert!(p.node_power.gpu_max_w > p.node_power.gpu_idle_w);
    }

    #[test]
    fn ensemble_spreads_around_baseline() {
        let cfg = tiny_cfg();
        let jobs =
            vec![Job::new(1, "load", 128, 1800, 1, 0.8, 0.8)];
        let s = run_ensemble(&cfg, &jobs, 1800, 8, &UqPerturbations::default(), 42);
        assert_eq!(s.members, 8);
        assert!(s.power_std_mw > 0.0, "perturbations must spread the ensemble");
        assert!(s.power_ci90_mw.0 < s.power_mean_mw);
        assert!(s.power_ci90_mw.1 > s.power_mean_mw);
        // Loss is a small fraction of power.
        assert!(s.loss_mean_mw < s.power_mean_mw);
    }

    #[test]
    fn ensemble_deterministic_for_seed() {
        let cfg = tiny_cfg();
        let jobs = vec![Job::new(1, "load", 64, 600, 1, 0.5, 0.5)];
        let a = run_ensemble(&cfg, &jobs, 600, 4, &UqPerturbations::default(), 7);
        let b = run_ensemble(&cfg, &jobs, 600, 4, &UqPerturbations::default(), 7);
        assert_eq!(a, b);
    }
}
