//! Serving-tier scale: hundreds of concurrent loopback clients against
//! the bounded worker pool.
//!
//! The serving-tier acceptance criterion (`docs/SERVICE.md` § "Serving
//! tier"): the server must sustain **≥ 128 concurrent clients** with a
//! fixed worker count (no thread-per-connection), answer over-capacity
//! load with `Busy` backpressure instead of unbounded queueing, and
//! keep cached outcomes bit-identical to uncached ones. This bench
//! drives that shape directly — a mixed Query / QueryBatch / Advance /
//! Status workload from `EXADIGIT_SCALE_CLIENTS` threads (default 128,
//! `EXADIGIT_SCALE_REQUESTS` requests each) — and reports throughput
//! plus client-observed p50/p99 latency, then storms a deliberately
//! tiny pool to measure the admission-control refusal rate, then
//! measures the observability overhead budget (`docs/OBSERVABILITY.md`:
//! instrumented vs uninstrumented < 2%, asserted) with interleaved
//! paired blocks on one in-process service. Baseline:
//! `BENCH_service_scale.json`.
//!
//! Not a criterion harness: latency percentiles need every sample, not
//! a mean, so the bench owns its own measurement loop.

use exadigit_core::config::TwinConfig;
use exadigit_service::{
    Request, Response, ServiceClient, TelemetryFeed, TwinServer, TwinService, WhatIfSpec,
};
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn service() -> TwinService {
    TwinService::new(
        TwinConfig::frontier_power_only(),
        TelemetryFeed::synthetic(2024, 1),
        2024,
    )
    .expect("frontier config is valid")
    .with_threads(2)
}

/// The mixed request stream client `i` sends at step `j`: mostly
/// queries over a small working set (cache-friendly, like operators
/// re-asking the hot questions), plus batches, status probes, and
/// occasional one-second ingest ticks.
fn request_for(snapshot_id: u64, i: usize, j: usize) -> Request {
    let spec = |k: usize| WhatIfSpec {
        label: format!("scale{k}"),
        horizon_s: 600 + 300 * (k as u64 % 8),
        ..WhatIfSpec::default()
    };
    match (i + j) % 8 {
        0 => Request::Status,
        1 => Request::QueryBatch {
            snapshot_id,
            specs: (0..3).map(|k| spec((i + j + k) % 8)).collect(),
        },
        2 if i.is_multiple_of(16) => Request::Advance { seconds: 1 },
        k => Request::Query { snapshot_id, spec: spec(k) },
    }
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[rank]
}

struct ClientReport {
    latencies_ns: Vec<u64>,
    busy_retries: u64,
}

fn main() {
    let clients = env_usize("EXADIGIT_SCALE_CLIENTS", 128);
    let requests = env_usize("EXADIGIT_SCALE_REQUESTS", 16);

    // ---- Phase 1: sustained mixed load on the default-sized pool ----
    let handle = TwinServer::bind(service(), "127.0.0.1:0")
        .expect("bind loopback")
        .with_workers(4)
        .with_queue_depth(256)
        .spawn();
    let addr = handle.addr();
    let mut setup = ServiceClient::connect(addr).expect("connect");
    setup.request(&Request::Advance { seconds: 43_200 }).expect("advance to noon");
    let Response::SnapshotTaken(info) =
        setup.request(&Request::Snapshot { label: "noon".into() }).expect("snapshot")
    else {
        panic!("unexpected response to Snapshot")
    };
    // Warm the working set so the steady state measures the serving
    // tier, not eight first-compute forks.
    for k in 0..8 {
        setup
            .request(&Request::Query {
                snapshot_id: info.id,
                spec: WhatIfSpec {
                    label: format!("scale{k}"),
                    horizon_s: 600 + 300 * (k % 8),
                    ..WhatIfSpec::default()
                },
            })
            .expect("warm");
    }

    let wall = Instant::now();
    let reports: Vec<ClientReport> = {
        let threads: Vec<_> = (0..clients)
            .map(|i| {
                let snapshot_id = info.id;
                std::thread::spawn(move || {
                    let mut client = ServiceClient::connect(addr).expect("client connect");
                    let mut report =
                        ClientReport { latencies_ns: Vec::with_capacity(requests), busy_retries: 0 };
                    for j in 0..requests {
                        let request = request_for(snapshot_id, i, j);
                        let t0 = Instant::now();
                        loop {
                            match client.request(&request).expect("request") {
                                Response::Busy { retry_after_ms } => {
                                    report.busy_retries += 1;
                                    std::thread::sleep(Duration::from_millis(
                                        retry_after_ms.clamp(1, 100),
                                    ));
                                }
                                Response::Error { message } => panic!("server error: {message}"),
                                _ => break,
                            }
                        }
                        // Latency as the client saw it, retries included.
                        report.latencies_ns.push(t0.elapsed().as_nanos() as u64);
                    }
                    report
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().expect("client thread")).collect()
    };
    let elapsed = wall.elapsed();
    handle.shutdown();

    let mut latencies: Vec<u64> =
        reports.iter().flat_map(|r| r.latencies_ns.iter().copied()).collect();
    latencies.sort_unstable();
    let total_requests = latencies.len();
    let busy_retries: u64 = reports.iter().map(|r| r.busy_retries).sum();
    let throughput = total_requests as f64 / elapsed.as_secs_f64();
    let p50_us = percentile(&latencies, 0.50) as f64 / 1e3;
    let p99_us = percentile(&latencies, 0.99) as f64 / 1e3;

    println!("service_scale/sustained");
    println!("  clients                {clients}");
    println!("  requests               {total_requests} ({requests} per client, mixed Query/QueryBatch/Advance/Status)");
    println!("  workers                4 (+2 readers; no thread-per-connection)");
    println!("  wall time              {:.3} s", elapsed.as_secs_f64());
    println!("  throughput             {throughput:.0} req/s");
    println!("  latency p50            {p50_us:.1} µs");
    println!("  latency p99            {p99_us:.1} µs");
    println!("  busy retries           {busy_retries}");

    // ---- Phase 2: over-capacity storm on a deliberately tiny pool ----
    // Every client fires its requests as fast as it can at 1 worker and
    // a depth-2 queue; admission control must refuse (not queue) the
    // excess, and every refusal must converge through retry.
    let handle = TwinServer::bind(service(), "127.0.0.1:0")
        .expect("bind loopback")
        .with_workers(1)
        .with_queue_depth(2)
        .spawn();
    let addr = handle.addr();
    let mut setup = ServiceClient::connect(addr).expect("connect");
    setup.request(&Request::Advance { seconds: 3_600 }).expect("advance");
    let Response::SnapshotTaken(storm_info) =
        setup.request(&Request::Snapshot { label: "storm".into() }).expect("snapshot")
    else {
        panic!("unexpected response to Snapshot")
    };
    let storm_clients = clients.min(64);
    let storm_requests = 4;
    let storm_reports: Vec<(u64, u64)> = {
        let threads: Vec<_> = (0..storm_clients)
            .map(|i| {
                let snapshot_id = storm_info.id;
                std::thread::spawn(move || {
                    let mut client = ServiceClient::connect(addr).expect("storm connect");
                    let mut answered = 0u64;
                    let mut busy = 0u64;
                    for j in 0..storm_requests {
                        let spec = WhatIfSpec {
                            label: format!("storm{}", (i + j) % 4),
                            horizon_s: 900 + 60 * ((i + j) as u64 % 4),
                            ..WhatIfSpec::default()
                        };
                        loop {
                            match client
                                .request(&Request::Query { snapshot_id, spec: spec.clone() })
                                .expect("storm request")
                            {
                                Response::Busy { retry_after_ms } => {
                                    busy += 1;
                                    std::thread::sleep(Duration::from_millis(
                                        retry_after_ms.clamp(1, 50),
                                    ));
                                }
                                _ => {
                                    answered += 1;
                                    break;
                                }
                            }
                        }
                    }
                    (answered, busy)
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().expect("storm thread")).collect()
    };
    handle.shutdown();

    let answered: u64 = storm_reports.iter().map(|r| r.0).sum();
    let refused: u64 = storm_reports.iter().map(|r| r.1).sum();
    println!("service_scale/storm");
    println!("  clients                {storm_clients} (workers 1, queue depth 2)");
    println!("  answered               {answered}");
    println!("  busy refusals          {refused}");
    assert_eq!(
        answered,
        (storm_clients * storm_requests) as u64,
        "every storm request must converge through retry"
    );
    assert!(refused > 0, "an over-capacity storm must see Busy backpressure");

    // ---- Phase 3: observability overhead, in-process ----
    // The `exadigit_obs` budget (docs/OBSERVABILITY.md): full
    // instrumentation must cost < 2% of request throughput. Measured
    // in-process (`TwinService::handle` directly) so a single-core host
    // compares the instrumented code path, not socket scheduling noise.
    // Design: ONE service, instrumented and uninstrumented 16-request
    // blocks interleaved back to back via `set_observability` — paired
    // blocks share the same scheduler/frequency environment, so noise
    // that would swamp whole-pass comparisons cancels. Block order
    // alternates per pair to cancel linear drift; the median of 3
    // repeats is the reported figure.
    let pairs = env_usize("EXADIGIT_OVERHEAD_PAIRS", 1024);
    let block_len = 16usize;
    // Every block: 1 Status, 1 uncached Query (fresh label — a real
    // fork + simulate, like an operator asking something new), 14
    // cache hits over the warmed 8-spec working set.
    let block_requests = |cold_tag: usize| -> Vec<Request> {
        (0..block_len)
            .map(|j| {
                if j == 0 {
                    Request::Status
                } else if j == block_len - 1 {
                    Request::Query {
                        snapshot_id: 1,
                        spec: WhatIfSpec {
                            label: format!("cold{cold_tag}"),
                            horizon_s: 600,
                            ..WhatIfSpec::default()
                        },
                    }
                } else {
                    Request::Query {
                        snapshot_id: 1,
                        spec: WhatIfSpec {
                            label: format!("scale{}", j % 8),
                            horizon_s: 600 + 300 * (j as u64 % 8),
                            ..WhatIfSpec::default()
                        },
                    }
                }
            })
            .collect()
    };
    let svc = service();
    svc.handle(&Request::Advance { seconds: 43_200 });
    svc.handle(&Request::Snapshot { label: "overhead".into() });
    for k in 0..8u64 {
        svc.handle(&Request::Query {
            snapshot_id: 1,
            spec: WhatIfSpec {
                label: format!("scale{k}"),
                horizon_s: 600 + 300 * (k % 8),
                ..WhatIfSpec::default()
            },
        });
    }
    // Each block times handle + response serialization: a served
    // request always pays `write_message` (the outcome JSON dwarfs the
    // instrumentation), so measuring handle() alone would overstate the
    // relative overhead of the serving tier.
    let mut sink = 0usize;
    let mut timed_block = |instrumented: bool, cold_tag: usize| -> u128 {
        let requests = block_requests(cold_tag);
        svc.set_observability(instrumented);
        let t0 = Instant::now();
        let mut bytes = 0usize;
        for request in &requests {
            let response = svc.handle(request);
            if let Response::Error { message } = &response {
                panic!("overhead block error: {message}");
            }
            bytes += serde_json::to_string(&response).expect("serializable response").len();
        }
        let elapsed = t0.elapsed().as_nanos();
        sink = sink.wrapping_add(bytes);
        elapsed
    };
    // Per-pair overhead ratios, then the median across pairs: a pair
    // hit by a deschedule or an eviction burst becomes one discarded
    // outlier instead of poisoning an aggregate sum.
    let mut cold_tag = 0usize;
    let mut ratios: Vec<f64> = (0..pairs)
        .map(|p| {
            let (on_ns, off_ns) = if p % 2 == 0 {
                let on = timed_block(true, cold_tag);
                let off = timed_block(false, cold_tag + 1);
                (on, off)
            } else {
                let off = timed_block(false, cold_tag);
                let on = timed_block(true, cold_tag + 1);
                (on, off)
            };
            cold_tag += 2;
            (on_ns as f64 - off_ns as f64) / off_ns as f64 * 100.0
        })
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let overhead_pct = ratios[ratios.len() / 2];
    svc.set_observability(true);
    println!("service_scale/observability_overhead");
    println!(
        "  blocks                 {} x {block_len} in-process requests (1 Status, 14 cache-hit Query, 1 uncached Query), handle + response serialization, on/off interleaved",
        pairs * 2
    );
    println!("  response bytes         {:.1} MB serialized", sink as f64 / 1e6);
    println!(
        "  overhead               {overhead_pct:.2} % (median of {pairs} paired blocks; p10 {:.2} %, p90 {:.2} %)",
        ratios[ratios.len() / 10],
        ratios[ratios.len() * 9 / 10]
    );
    assert!(
        overhead_pct < 2.0,
        "observability overhead budget exceeded: {overhead_pct:.2}% >= 2%"
    );
}
