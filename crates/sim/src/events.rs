//! Discrete-event time advancement.
//!
//! The paper's Algorithm 1 walks the clock one second at a time, yet almost
//! nothing happens in most of those seconds: node power only changes on job
//! start/stop events or at the 15 s trace quantum. This module provides the
//! event calendar that lets a simulation jump the clock straight from one
//! event to the next — the single biggest speed lever behind the paper's
//! "24 h Frontier day in ~3 minutes" throughput claim (§IV), and the reason
//! an L3-surrogate ensemble member costs microseconds instead of an
//! 86,400-iteration loop.
//!
//! # Event model
//!
//! Time is integral seconds (the [`crate::SimClock`] domain). An
//! [`EventQueue`] holds two families of entries:
//!
//! * **one-shot** events scheduled at an absolute second
//!   ([`EventQueue::schedule_at`]) — job arrivals, job completions,
//!   wet-bulb forcing breakpoints;
//! * **recurring** events firing at every positive multiple of a period
//!   ([`EventQueue::schedule_every`]) — the 15 s cooling/trace quantum and
//!   the output record boundary. Recurring entries are stored as a period,
//!   not expanded into the heap, so a multi-week horizon costs O(1) memory.
//!   They are also *virtual*: a kernel that can prove a span of fires
//!   redundant (the RAPS lazy record backfill) materialises none of them —
//!   it reads the next one-shot via [`EventQueue::next_one_shot`] and
//!   acknowledges the span with [`EventQueue::skip_recurring_through`].
//!
//! # Ordering and determinism
//!
//! Events due at the same second are delivered in `(time, kind priority,
//! scheduling order)` order; see [`EventKind::priority`] for the tie-break
//! table. The rules guarantee that draining a queue is a pure function of
//! the schedule calls made against it — two queues built by the same call
//! sequence deliver bit-identical event streams, which is what lets the
//! event-driven RAPS kernel pin itself against the per-second reference
//! loop (the `event_kernel` integration test).

use crate::series::TimeSeries;
use std::collections::BinaryHeap;

/// The typed simulation events the RAPS kernel advances between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum EventKind {
    /// A queued job reaches its submit time and joins the pending queue.
    JobArrival,
    /// The earliest running job reaches `start + wall_time` and releases
    /// its nodes.
    JobCompletion,
    /// A breakpoint of the wet-bulb forcing series: the piecewise-linear
    /// forcing changes segment, so models sampling it must not coast past.
    WetBulbBreakpoint,
    /// The 15 s cooling/trace quantum (§III-B): utilization traces change
    /// sample and the cooling model takes a co-simulation step.
    CoolingQuantum,
    /// An output record boundary (`record_every_s`).
    RecordBoundary,
}

impl EventKind {
    /// Delivery priority for events due at the same second (lower first).
    ///
    /// The order mirrors the per-second reference handler: arrivals join
    /// the queue, completions release nodes, forcing refreshes, then the
    /// quantum work (power recompute + cooling step), then recording.
    pub fn priority(self) -> u8 {
        match self {
            EventKind::JobArrival => 0,
            EventKind::JobCompletion => 1,
            EventKind::WetBulbBreakpoint => 2,
            EventKind::CoolingQuantum => 3,
            EventKind::RecordBoundary => 4,
        }
    }
}

/// One delivered event: a second at which something changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated second (clock-elapsed domain) the event is due at.
    pub time_s: u64,
    /// What kind of change is due.
    pub kind: EventKind,
}

/// A one-shot heap entry, ordered so the `BinaryHeap` (a max-heap) pops
/// the earliest `(time, priority, seq)` first via `Reverse`-style ordering
/// baked into `Ord`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
struct Queued {
    time_s: u64,
    prio: u8,
    seq: u64,
    kind: EventKind,
}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the max-heap surfaces the smallest key.
        (other.time_s, other.prio, other.seq).cmp(&(self.time_s, self.prio, self.seq))
    }
}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A recurring entry firing at every positive multiple of `period_s`.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
struct Recurring {
    period_s: u64,
    kind: EventKind,
    /// Multiples at or before this second have already been delivered.
    delivered_through: u64,
}

/// The event calendar: one-shot events in a binary heap plus compactly
/// stored recurring periods. See the module docs for ordering rules.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Queued>,
    recurring: Vec<Recurring>,
    seq: u64,
}

/// Serialized form of an [`EventQueue`]. The heap is dumped as a vector
/// sorted by `(time, priority, seq)` — delivery order is a pure function
/// of that key, so the heap's internal layout never needs to survive a
/// round trip — and recurring entries keep their registration order.
#[derive(serde::Serialize, serde::Deserialize)]
struct EventQueueState {
    one_shots: Vec<Queued>,
    recurring: Vec<Recurring>,
    seq: u64,
}

impl serde::Serialize for EventQueue {
    fn to_value(&self) -> serde::Value {
        let mut one_shots: Vec<Queued> = self.heap.iter().copied().collect();
        one_shots.sort_by_key(|q| (q.time_s, q.prio, q.seq));
        EventQueueState { one_shots, recurring: self.recurring.clone(), seq: self.seq }.to_value()
    }
}

impl serde::Deserialize for EventQueue {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let state = EventQueueState::from_value(v)?;
        Ok(EventQueue {
            heap: state.one_shots.into_iter().collect(),
            recurring: state.recurring,
            seq: state.seq,
        })
    }
}

impl EventQueue {
    /// An empty calendar.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule a one-shot event at an absolute second. Scheduling in the
    /// past is allowed: a stale event is delivered at the next advance
    /// (`next_after` clamps it to `now + 1`).
    pub fn schedule_at(&mut self, time_s: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Queued { time_s, prio: kind.priority(), seq, kind });
    }

    /// Schedule a recurring event at every positive multiple of
    /// `period_s` (matching the paper's `timestep mod 15 == 0` cadence).
    pub fn schedule_every(&mut self, period_s: u64, kind: EventKind) {
        assert!(period_s > 0, "recurring period must be positive");
        self.recurring.push(Recurring { period_s, kind, delivered_through: 0 });
    }

    /// Earliest second strictly after `now_s` at which an event is due.
    /// One-shots already at or before `now_s` count as due at `now_s + 1`
    /// (integral time cannot advance by less than one second). `None`
    /// when the calendar is empty.
    pub fn next_after(&self, now_s: u64) -> Option<u64> {
        let one_shot = self.heap.peek().map(|q| q.time_s.max(now_s + 1));
        let recurring = self
            .recurring
            .iter()
            .map(|r| (now_s / r.period_s + 1) * r.period_s)
            .min();
        match (one_shot, recurring) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Deliver every event due at or before `time_s` into `out` (appended
    /// in `(time, priority, scheduling order)` order; stale one-shots
    /// report their original time). Recurring entries deliver one event
    /// per not-yet-delivered multiple in `(0, time_s]`.
    pub fn drain_due(&mut self, time_s: u64, out: &mut Vec<Event>) {
        let start = out.len();
        while let Some(q) = self.heap.peek() {
            if q.time_s > time_s {
                break;
            }
            let q = self.heap.pop().expect("peeked");
            out.push(Event { time_s: q.time_s, kind: q.kind });
        }
        // Recurring fires append directly after the (already ordered)
        // one-shots; the stable tail sort re-establishes global
        // (time, priority) order while preserving scheduling order —
        // one-shots before recurring entries, recurring entries in
        // registration order — at ties. No allocation on this path.
        let mut fired = false;
        for r in self.recurring.iter_mut() {
            let mut t = (r.delivered_through / r.period_s + 1) * r.period_s;
            while t <= time_s {
                out.push(Event { time_s: t, kind: r.kind });
                fired = true;
                t += r.period_s;
            }
            r.delivered_through = r.delivered_through.max(time_s);
        }
        if fired && out.len() - start > 1 {
            out[start..].sort_by_key(|e| (e.time_s, e.kind.priority()));
        }
    }

    /// Earliest pending one-shot event time, unclamped (`None` when the
    /// heap is empty). Lets a kernel distinguish "only recurring fires
    /// due" seconds, which it may be able to handle on a fast path.
    pub fn next_one_shot(&self) -> Option<u64> {
        self.heap.peek().map(|q| q.time_s)
    }

    /// Advance every recurring entry's delivery cursor through `time_s`
    /// without emitting events — for kernels that handled a recurring
    /// fire inline instead of draining it.
    pub fn skip_recurring_through(&mut self, time_s: u64) {
        for r in &mut self.recurring {
            r.delivered_through = r.delivered_through.max(time_s);
        }
    }

    /// Number of pending one-shot events (recurring entries are periods,
    /// not counted).
    pub fn pending_one_shots(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled at all.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.recurring.is_empty()
    }
}

/// Breakpoints of a piecewise-linear forcing series: the whole seconds
/// (rounded up) of every sample that borders a non-constant segment.
/// A kernel jumping between events must not coast across these times if
/// any model samples the series — between breakpoints the forcing is a
/// single linear segment, so sampling at segment ends is exact.
///
/// Constant stretches produce no breakpoints; a flat series yields none.
pub fn series_breakpoints(series: &TimeSeries) -> Vec<u64> {
    let n = series.len();
    let mut out = Vec::new();
    for i in 0..n {
        let changes_before = i > 0 && series[i - 1] != series[i];
        let changes_after = i + 1 < n && series[i] != series[i + 1];
        if changes_before || changes_after {
            let t = series.time_at(i);
            if t >= 0.0 {
                out.push(t.ceil() as u64);
            }
        }
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shots_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, EventKind::JobCompletion);
        q.schedule_at(10, EventKind::JobArrival);
        q.schedule_at(20, EventKind::JobArrival);
        assert_eq!(q.next_after(0), Some(10));
        let mut out = Vec::new();
        q.drain_due(25, &mut out);
        assert_eq!(
            out,
            vec![
                Event { time_s: 10, kind: EventKind::JobArrival },
                Event { time_s: 20, kind: EventKind::JobArrival },
            ]
        );
        assert_eq!(q.next_after(25), Some(30));
    }

    #[test]
    fn equal_time_ties_break_by_priority_then_schedule_order() {
        let mut q = EventQueue::new();
        q.schedule_at(15, EventKind::RecordBoundary);
        q.schedule_at(15, EventKind::JobArrival);
        q.schedule_at(15, EventKind::JobCompletion);
        q.schedule_at(15, EventKind::JobArrival);
        let mut out = Vec::new();
        q.drain_due(15, &mut out);
        let kinds: Vec<EventKind> = out.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::JobArrival,
                EventKind::JobArrival,
                EventKind::JobCompletion,
                EventKind::RecordBoundary,
            ]
        );
    }

    #[test]
    fn recurring_fires_at_multiples() {
        let mut q = EventQueue::new();
        q.schedule_every(15, EventKind::CoolingQuantum);
        assert_eq!(q.next_after(0), Some(15));
        assert_eq!(q.next_after(14), Some(15));
        assert_eq!(q.next_after(15), Some(30));
        let mut out = Vec::new();
        q.drain_due(45, &mut out);
        let times: Vec<u64> = out.iter().map(|e| e.time_s).collect();
        assert_eq!(times, vec![15, 30, 45]);
        out.clear();
        q.drain_due(45, &mut out);
        assert!(out.is_empty(), "multiples deliver exactly once");
        assert_eq!(q.next_after(45), Some(60));
    }

    #[test]
    fn recurring_and_one_shot_merge_in_order() {
        let mut q = EventQueue::new();
        q.schedule_every(15, EventKind::CoolingQuantum);
        q.schedule_every(30, EventKind::RecordBoundary);
        q.schedule_at(30, EventKind::JobCompletion);
        q.schedule_at(7, EventKind::JobArrival);
        let mut out = Vec::new();
        q.drain_due(30, &mut out);
        assert_eq!(
            out,
            vec![
                Event { time_s: 7, kind: EventKind::JobArrival },
                Event { time_s: 15, kind: EventKind::CoolingQuantum },
                Event { time_s: 30, kind: EventKind::JobCompletion },
                Event { time_s: 30, kind: EventKind::CoolingQuantum },
                Event { time_s: 30, kind: EventKind::RecordBoundary },
            ]
        );
    }

    #[test]
    fn stale_one_shot_clamps_to_next_second() {
        let mut q = EventQueue::new();
        q.schedule_at(5, EventKind::JobArrival);
        assert_eq!(q.next_after(100), Some(101));
        let mut out = Vec::new();
        q.drain_due(101, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].time_s, 5, "stale events keep their original time");
    }

    #[test]
    fn empty_queue_has_no_next() {
        let q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_after(0), None);
    }

    #[test]
    fn deterministic_across_identical_schedules() {
        let build = || {
            let mut q = EventQueue::new();
            q.schedule_every(15, EventKind::CoolingQuantum);
            for t in [44, 12, 12, 90, 15] {
                q.schedule_at(t, EventKind::JobArrival);
            }
            let mut out = Vec::new();
            let mut now = 0;
            while let Some(t) = q.next_after(now) {
                if t > 120 {
                    break;
                }
                q.drain_due(t, &mut out);
                now = t;
            }
            out
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn breakpoints_of_piecewise_series() {
        // Flat — no breakpoints.
        let flat = TimeSeries::from_values(0.0, 3600.0, vec![15.0, 15.0, 15.0]);
        assert!(series_breakpoints(&flat).is_empty());
        // Flat, then a ramp, then flat again: the ramp's borders and
        // interior samples are breakpoints; deep-flat interiors are not.
        let s = TimeSeries::from_values(
            0.0,
            3600.0,
            vec![10.0, 10.0, 10.0, 12.0, 14.0, 14.0, 14.0],
        );
        assert_eq!(series_breakpoints(&s), vec![7200, 10800, 14400]);
    }

    #[test]
    fn breakpoints_round_fractional_times_up() {
        let s = TimeSeries::from_values(0.5, 10.5, vec![1.0, 2.0]);
        assert_eq!(series_breakpoints(&s), vec![1, 11]);
    }
}
