//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives with parking_lot's ergonomics (`lock()` returns the guard
//! directly; a poisoned lock is recovered rather than propagated, which
//! matches parking_lot's no-poisoning semantics).

use std::fmt;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
