//! Offline stand-in for `serde_json`.
//!
//! Text layer over the vendored `serde` crate's [`Value`] model:
//! a recursive-descent JSON parser and compact / pretty printers. The
//! public surface matches what the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`Value`], [`Error`].

pub use serde::{Error, Number, Value};

use serde::{Deserialize, Serialize};

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

// ------------------------------------------------------------------ printer

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
        out.push_str("null");
        return;
    }
    // Rust's shortest round-trip float formatting, with a float marker
    // forced so integral values (1.0, 1e16, ...) re-parse as floats and
    // `Value` round-trips are identity.
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(Number::U(u)) => out.push_str(&u.to_string()),
        Value::Number(Number::I(i)) => out.push_str(&i.to_string()),
        Value::Number(Number::F(f)) => write_f64(*f, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(n) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(n * (depth + 1)));
                }
                write_value(item, out, indent, depth + 1);
            }
            if let Some(n) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(n * depth));
            }
            out.push(']');
        }
        Value::Object(o) => {
            if o.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(n) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(n * (depth + 1)));
                }
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            if let Some(n) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(n * depth));
            }
            out.push('}');
        }
    }
}

// ------------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err<T>(&self, msg: &str) -> Result<T, Error> {
        Err(Error::msg(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => self.err("unexpected character"),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            self.err(&format!("expected `{kw}`"))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not needed for the data we
                            // generate; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for json in ["null", "true", "false", "0", "-7", "3.5", "\"hi\\n\""] {
            let v: Value = from_str(json).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2);
        }
    }

    #[test]
    fn u64_fidelity() {
        let big = u64::MAX;
        let json = to_string(&big).unwrap();
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(big, back);
    }

    #[test]
    fn float_round_trip_exact() {
        for f in [0.1, 1.0, -2.5e-7, std::f64::consts::PI, 1e300] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{json}");
        }
    }

    #[test]
    fn large_integral_floats_stay_floats_at_value_level() {
        // 1e16 formats without '.' or 'e' in Rust; a bare integer token
        // would re-parse as Number::U and break Value round-trip identity.
        for f in [1.0e16, -1.0e16, 9.007199254740992e15] {
            let v = Value::Number(Number::F(f));
            let json = to_string(&v).unwrap();
            let back: Value = from_str(&json).unwrap();
            assert_eq!(v, back, "{json}");
        }
    }

    #[test]
    fn object_order_preserved() {
        let v: Value = from_str(r#"{"b": 1, "a": [2, {"c": null}]}"#).unwrap();
        let keys: Vec<&str> =
            v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["b", "a"]);
    }
}
