//! L2 cooling backend: answer the FMI boundary from a recorded trace.
//!
//! The paper's L2 ("informative") twin incorporates telemetry for
//! real-time insight rather than simulating physics. This module makes
//! that fidelity level reachable from the coupled twin: a
//! [`ReplayCoolingModel`] implements [`CoSimModel`] with exactly the
//! variable names RAPS resolves at attach time (`cdu_heat[i]`,
//! `wet_bulb`, `it_power`, `pue`, `cooling_power`), but instead of
//! stepping a plant it samples a [`CoolingTrace`] at the current
//! simulation time. Heat and weather inputs are accepted and recorded
//! (the coupling contract) and simply do not influence the outputs —
//! the trace already *is* the measured answer.
//!
//! Traces come from two places: [`CoolingTrace::from_telemetry`] lifts a
//! recorded [`TelemetryDay`] into a trace (the telemetry-replay path of
//! Fig. 9), and [`CoolingTrace::constant`] builds the trivial
//! steady-state trace used by tests and quick studies.

use crate::generator::TelemetryDay;
use exadigit_sim::fmi::{
    Causality, CoSimModel, FmiError, VarRef, VariableDescriptor, VariableRegistry,
};
use exadigit_sim::TimeSeries;
use serde::{Deserialize, Serialize};

/// One auxiliary recorded channel served by a [`ReplayCoolingModel`]
/// (e.g. a CDU supply temperature), exposed as a read-only local
/// variable under its recorded name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceChannel {
    /// Variable name the channel is registered under (FMI dotted style,
    /// e.g. `cdu[1].secondary_supply_temp`).
    pub name: String,
    /// Recorded values over simulated time.
    pub series: TimeSeries,
}

/// A recorded cooling trace: the measured answers a [`ReplayCoolingModel`]
/// serves across the FMI boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoolingTrace {
    /// Measured PUE over simulated time.
    pub pue: TimeSeries,
    /// Measured cooling auxiliary power, W, over simulated time.
    pub cooling_power_w: TimeSeries,
    /// Additional recorded channels, served verbatim by name.
    pub channels: Vec<TraceChannel>,
}

impl CoolingTrace {
    /// Trace from explicit PUE and cooling-power series.
    pub fn new(pue: TimeSeries, cooling_power_w: TimeSeries) -> Self {
        CoolingTrace { pue, cooling_power_w, channels: Vec::new() }
    }

    /// Trivial steady trace: constant PUE and cooling power over any
    /// horizon (two samples an hour apart; [`TimeSeries::sample_at`]
    /// holds the last value beyond the end).
    pub fn constant(pue: f64, cooling_power_w: f64) -> Self {
        CoolingTrace::new(
            TimeSeries::from_values(0.0, 3600.0, vec![pue, pue]),
            TimeSeries::from_values(0.0, 3600.0, vec![cooling_power_w, cooling_power_w]),
        )
    }

    /// Attach an auxiliary channel (builder style).
    pub fn with_channel(mut self, name: impl Into<String>, series: TimeSeries) -> Self {
        self.channels.push(TraceChannel { name: name.into(), series });
        self
    }

    /// Lift a recorded telemetry day into a replay trace.
    ///
    /// The PUE channel is taken verbatim (Table II records it at 15 s).
    /// Cooling power is not a Table II channel, so it is reconstructed
    /// from the PUE definition: `aux = (PUE − 1) × P_IT`, sampling the
    /// measured 1 s system power at each PUE timestamp. Per-CDU return
    /// temperatures ride along as auxiliary channels.
    pub fn from_telemetry(day: &TelemetryDay) -> Self {
        let pue = day.cooling.pue.clone();
        let mut cooling_power = TimeSeries::with_capacity(pue.t0, pue.dt, pue.values.len());
        for (i, &p) in pue.values.iter().enumerate() {
            let t = pue.t0 + i as f64 * pue.dt;
            let it_w = day.measured_power_w.sample_at(t);
            cooling_power.push((p - 1.0).max(0.0) * it_w);
        }
        let mut trace = CoolingTrace::new(pue, cooling_power);
        for (i, series) in day.cooling.cdu_return_temp.iter().enumerate() {
            trace = trace
                .with_channel(format!("cdu[{}].primary_return_temp", i + 1), series.clone());
        }
        trace
    }
}

/// The L2 cooling backend: a [`CoSimModel`] that plays back a
/// [`CoolingTrace`] instead of simulating a plant.
///
/// Trace-quantum alignment holds under both advancement kernels: the
/// event-driven `run_until` treats every 15 s trace quantum as an
/// event, so `do_step` sees exactly the same `(current_time, 15 s)`
/// sequence as the per-second loop and the replayed outputs are
/// bit-identical (pinned by the `event_kernel` integration test).
///
/// The registry exposes `num_cdus` heat inputs plus `wet_bulb` and
/// `it_power` (so [`CoolingCoupling::attach`] resolves the same names it
/// would against the L4 plant), the `pue` and `cooling_power` outputs
/// served from the trace, and one local variable per auxiliary channel.
///
/// [`CoolingCoupling::attach`]: exadigit_raps::simulation::CoolingCoupling::attach
pub struct ReplayCoolingModel {
    trace: CoolingTrace,
    vars: Vec<VariableDescriptor>,
    values: Vec<f64>,
    num_cdus: usize,
    /// Current simulation time the outputs are sampled at, seconds.
    time_s: f64,
}

impl ReplayCoolingModel {
    /// Replay model exposing `num_cdus` heat inputs over the given trace.
    pub fn new(trace: CoolingTrace, num_cdus: usize) -> Self {
        let mut reg = VariableRegistry::new();
        for i in 1..=num_cdus {
            reg.register(
                format!("cdu_heat[{i}]"),
                "W",
                Causality::Input,
                format!("Heat extracted into CDU {i}'s liquid loop (recorded, not simulated)"),
            );
        }
        reg.register("wet_bulb", "degC", Causality::Input, "Outdoor wet-bulb temperature");
        reg.register("it_power", "W", Causality::Input, "Total IT power (recorded, not used)");
        reg.register("pue", "1", Causality::Output, "Measured PUE from the trace");
        reg.register(
            "cooling_power",
            "W",
            Causality::Output,
            "Measured cooling auxiliary power from the trace",
        );
        for ch in &trace.channels {
            reg.register(
                ch.name.clone(),
                "1",
                Causality::Local,
                "Auxiliary recorded channel served verbatim",
            );
        }
        let values = vec![0.0; reg.len()];
        let mut model =
            ReplayCoolingModel { trace, vars: reg.into_vec(), values, num_cdus, time_s: 0.0 };
        model.refresh_outputs();
        model
    }

    /// The trace being replayed.
    pub fn trace(&self) -> &CoolingTrace {
        &self.trace
    }

    fn refresh_outputs(&mut self) {
        let t = self.time_s;
        let pue_idx = self.num_cdus + 2;
        self.values[pue_idx] = self.trace.pue.sample_at(t);
        self.values[pue_idx + 1] = self.trace.cooling_power_w.sample_at(t);
        for (k, ch) in self.trace.channels.iter().enumerate() {
            self.values[pue_idx + 2 + k] = ch.series.sample_at(t);
        }
    }
}

impl CoSimModel for ReplayCoolingModel {
    fn instance_name(&self) -> &str {
        "telemetry-replay"
    }

    fn variables(&self) -> &[VariableDescriptor] {
        &self.vars
    }

    fn setup(&mut self, start_time: f64) {
        self.time_s = start_time;
        self.refresh_outputs();
    }

    fn set_real(&mut self, vr: VarRef, value: f64) -> Result<(), FmiError> {
        let idx = vr.0 as usize;
        match self.vars.get(idx) {
            None => Err(FmiError::UnknownVariable(vr)),
            Some(v) if v.causality == Causality::Input => {
                self.values[idx] = value;
                Ok(())
            }
            Some(_) => Err(FmiError::WrongCausality { vr, expected: Causality::Input }),
        }
    }

    fn get_real(&self, vr: VarRef) -> Result<f64, FmiError> {
        self.values.get(vr.0 as usize).copied().ok_or(FmiError::UnknownVariable(vr))
    }

    fn do_step(&mut self, current_time: f64, step_size: f64) -> Result<(), FmiError> {
        if step_size <= 0.0 {
            return Err(FmiError::InvalidStep(format!("non-positive step {step_size}")));
        }
        self.time_s = current_time + step_size;
        self.refresh_outputs();
        Ok(())
    }

    fn reset(&mut self) {
        self.time_s = 0.0;
        self.values.iter_mut().for_each(|v| *v = 0.0);
        self.refresh_outputs();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_trace() -> CoolingTrace {
        // PUE ramps 1.05 → 1.15 over four 15 s samples.
        CoolingTrace::new(
            TimeSeries::from_values(0.0, 15.0, vec![1.05, 1.08, 1.12, 1.15]),
            TimeSeries::from_values(0.0, 15.0, vec![4.0e5, 4.5e5, 5.0e5, 5.5e5]),
        )
    }

    #[test]
    fn exposes_the_coupling_contract_names() {
        let m = ReplayCoolingModel::new(ramp_trace(), 25);
        for i in 1..=25 {
            assert!(m.var_by_name(&format!("cdu_heat[{i}]")).is_some());
        }
        assert!(m.var_by_name("wet_bulb").is_some());
        assert!(m.var_by_name("it_power").is_some());
        assert!(m.var_by_name("pue").is_some());
        assert!(m.var_by_name("cooling_power").is_some());
    }

    #[test]
    fn outputs_track_the_trace_over_time() {
        let mut m = ReplayCoolingModel::new(ramp_trace(), 2);
        m.setup(0.0);
        let pue_vr = m.var_by_name("pue").unwrap().vr;
        assert_eq!(m.get_real(pue_vr).unwrap(), 1.05);
        m.do_step(0.0, 15.0).unwrap();
        assert_eq!(m.get_real(pue_vr).unwrap(), 1.08);
        m.do_step(15.0, 15.0).unwrap();
        assert_eq!(m.get_real(pue_vr).unwrap(), 1.12);
        // Beyond the end of the trace the last sample holds.
        m.do_step(30.0, 3600.0).unwrap();
        assert_eq!(m.get_real(pue_vr).unwrap(), 1.15);
    }

    #[test]
    fn inputs_accepted_but_do_not_change_outputs() {
        let mut m = ReplayCoolingModel::new(ramp_trace(), 2);
        m.setup(0.0);
        m.set_real(VarRef(0), 1.0e6).unwrap();
        m.set_real(m.var_by_name("wet_bulb").unwrap().vr, 30.0).unwrap();
        m.do_step(0.0, 15.0).unwrap();
        let pue = m.get_real(m.var_by_name("pue").unwrap().vr).unwrap();
        assert_eq!(pue, 1.08, "replay outputs come from the trace alone");
    }

    #[test]
    fn auxiliary_channels_served_by_name() {
        let trace = ramp_trace()
            .with_channel("cdu[1].primary_return_temp", TimeSeries::from_values(0.0, 15.0, vec![30.0, 31.0]));
        let mut m = ReplayCoolingModel::new(trace, 1);
        m.setup(0.0);
        let vr = m.var_by_name("cdu[1].primary_return_temp").unwrap().vr;
        assert_eq!(m.get_real(vr).unwrap(), 30.0);
        m.do_step(0.0, 15.0).unwrap();
        assert_eq!(m.get_real(vr).unwrap(), 31.0);
    }

    #[test]
    fn wrong_causality_and_unknown_vr_rejected() {
        let mut m = ReplayCoolingModel::new(ramp_trace(), 1);
        let pue_vr = m.var_by_name("pue").unwrap().vr;
        assert!(matches!(
            m.set_real(pue_vr, 1.0),
            Err(FmiError::WrongCausality { .. })
        ));
        assert!(matches!(m.get_real(VarRef(999)), Err(FmiError::UnknownVariable(_))));
        assert!(m.do_step(0.0, 0.0).is_err());
    }

    #[test]
    fn constant_trace_holds_forever() {
        let mut m = ReplayCoolingModel::new(CoolingTrace::constant(1.07, 6.0e5), 3);
        m.setup(0.0);
        for k in 0..10 {
            m.do_step(k as f64 * 900.0, 900.0).unwrap();
        }
        assert_eq!(m.get_real(m.var_by_name("pue").unwrap().vr).unwrap(), 1.07);
        assert_eq!(m.get_real(m.var_by_name("cooling_power").unwrap().vr).unwrap(), 6.0e5);
    }

    #[test]
    fn trace_serialises_round_trip() {
        let trace = ramp_trace().with_channel("x", TimeSeries::from_values(0.0, 1.0, vec![2.0]));
        let json = serde_json::to_string(&trace).unwrap();
        let back: CoolingTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn from_telemetry_reconstructs_cooling_power() {
        use exadigit_raps::job::Job;
        let twin = crate::generator::SyntheticTwin::frontier();
        let day = twin.record_span(vec![Job::new(1, "j", 64, 120, 5, 0.5, 0.5)], 120, 0);
        let trace = CoolingTrace::from_telemetry(&day);
        assert_eq!(trace.pue, day.cooling.pue);
        assert_eq!(trace.cooling_power_w.values.len(), trace.pue.values.len());
        // aux = (PUE − 1) × P_IT must be positive for a loaded plant.
        assert!(trace.cooling_power_w.values.iter().all(|&w| w >= 0.0));
        // Per-CDU return temps ride along.
        assert!(trace.channels.iter().any(|c| c.name == "cdu[1].primary_return_temp"));
    }
}
