//! Durable snapshot persistence: the on-disk tier behind
//! [`crate::SnapshotStore`] and [`crate::TwinService::recover`].
//!
//! # File layout
//!
//! A persist directory holds one length-prefixed JSON file per snapshot
//! (`snap-<id>.json`), an optional live-twin checkpoint (`live.json`),
//! and a newline-delimited manifest (`manifest.json`): a header line
//! carrying the store's identity (`next_id`, seed, capacity) followed by
//! one line per persisted snapshot (id, label, byte size, queue
//! summary). Every file is written with the same **atomic protocol**:
//! the bytes go to a `.tmp` sibling first, are fsynced, and the final
//! name appears only via `rename` — a reader therefore never observes a
//! half-written file under the real name, and a crash mid-write leaves
//! at most a stale `.tmp` that the next write overwrites.
//!
//! # Torn-write detection
//!
//! The **length prefix** (8 bytes, little-endian payload length) makes
//! truncation detectable even when the filesystem does not guarantee
//! rename atomicity: a payload shorter than its declared length yields
//! [`PersistError::Truncated`], never a JSON parse of a prefix. All
//! failure modes are typed ([`PersistError`]) so callers degrade to a
//! per-snapshot load error instead of a panic or a silent skip.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Why a persisted artifact could not be written or read back.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying filesystem operation failed.
    Io {
        /// File the operation targeted.
        path: PathBuf,
        /// The OS error text.
        detail: String,
    },
    /// The file is shorter than its length prefix declares — a torn or
    /// partial write.
    Truncated {
        /// File that is short.
        path: PathBuf,
        /// Bytes the prefix declared.
        expected: u64,
        /// Bytes actually present after the prefix.
        actual: u64,
    },
    /// The payload is complete but does not parse as what it claims to
    /// be (invalid JSON, wrong shape, or a snapshot-format-version
    /// mismatch — the detail carries the inner message).
    Corrupt {
        /// File that failed to parse.
        path: PathBuf,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { path, detail } => {
                write!(f, "i/o error on {}: {detail}", path.display())
            }
            PersistError::Truncated { path, expected, actual } => write!(
                f,
                "{} is truncated: length prefix declares {expected} bytes, {actual} present",
                path.display()
            ),
            PersistError::Corrupt { path, detail } => {
                write!(f, "{} is corrupt: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl PersistError {
    fn io(path: &Path, e: std::io::Error) -> Self {
        PersistError::Io { path: path.to_path_buf(), detail: e.to_string() }
    }
}

/// Write `payload` to `path` under the atomic protocol: an 8-byte
/// little-endian length prefix plus the payload go to `<path>.tmp`,
/// which is fsynced and renamed over `path`.
pub fn write_length_prefixed(path: &Path, payload: &[u8]) -> Result<(), PersistError> {
    let tmp = path.with_extension("tmp");
    let mut file = std::fs::File::create(&tmp).map_err(|e| PersistError::io(&tmp, e))?;
    file.write_all(&(payload.len() as u64).to_le_bytes())
        .and_then(|()| file.write_all(payload))
        .and_then(|()| file.sync_all())
        .map_err(|e| PersistError::io(&tmp, e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| PersistError::io(path, e))
}

/// Read a [`write_length_prefixed`] file back, verifying the prefix.
/// A short payload is [`PersistError::Truncated`]; trailing garbage
/// after the declared length is [`PersistError::Corrupt`].
pub fn read_length_prefixed(path: &Path) -> Result<Vec<u8>, PersistError> {
    let bytes = std::fs::read(path).map_err(|e| PersistError::io(path, e))?;
    if bytes.len() < 8 {
        return Err(PersistError::Truncated {
            path: path.to_path_buf(),
            expected: 8,
            actual: bytes.len() as u64,
        });
    }
    let declared = u64::from_le_bytes(bytes[..8].try_into().expect("8-byte slice"));
    let actual = (bytes.len() - 8) as u64;
    if actual < declared {
        return Err(PersistError::Truncated {
            path: path.to_path_buf(),
            expected: declared,
            actual,
        });
    }
    if actual > declared {
        return Err(PersistError::Corrupt {
            path: path.to_path_buf(),
            detail: format!("{actual} bytes follow a length prefix of {declared}"),
        });
    }
    Ok(bytes[8..].to_vec())
}

/// Serialize `value` as length-prefixed JSON at `path` (atomic). Returns
/// the payload size in bytes.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> Result<u64, PersistError> {
    let json = serde_json::to_string(value).map_err(|e| PersistError::Corrupt {
        path: path.to_path_buf(),
        detail: format!("serialization failed: {e}"),
    })?;
    write_length_prefixed(path, json.as_bytes())?;
    Ok(json.len() as u64)
}

/// Read a [`write_json`] file back into `T`.
pub fn read_json<T: Deserialize>(path: &Path) -> Result<T, PersistError> {
    let payload = read_length_prefixed(path)?;
    let text = std::str::from_utf8(&payload).map_err(|e| PersistError::Corrupt {
        path: path.to_path_buf(),
        detail: format!("payload is not UTF-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(|e| PersistError::Corrupt {
        path: path.to_path_buf(),
        detail: format!("payload does not parse: {e}"),
    })
}

/// Version stamp of the manifest / directory layout itself (independent
/// of the twin's `snapshot_format_version`, which is checked when a
/// snapshot body is deserialized).
pub const MANIFEST_FORMAT_VERSION: u32 = 1;

/// First line of the manifest: the store's identity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestHeader {
    /// Layout version of the persist directory.
    pub manifest_format_version: u32,
    /// Next snapshot id the store will assign. Persisted so ids keep
    /// ascending across restarts — a recovered service never reuses an
    /// id, which is what keeps `(snapshot id, fingerprint)` cache keys
    /// collision-free across recoveries.
    pub next_id: u64,
    /// Service seed snapshot RNG bases derive from.
    pub seed: u64,
    /// In-memory capacity of the store.
    pub max_snapshots: usize,
}

/// One manifest line per persisted snapshot: everything a recovered
/// store needs to list and lazily rehydrate it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Snapshot id (also names the file: `snap-<id>.json`).
    pub id: u64,
    /// Caller-supplied label.
    pub label: String,
    /// Simulated second the snapshot was taken at.
    pub taken_at_s: u64,
    /// Payload size of the snapshot file, bytes.
    pub bytes: u64,
    /// Jobs running at the snapshot second (for listings without
    /// rehydrating).
    pub running_jobs: u64,
    /// Jobs queued at the snapshot second.
    pub pending_jobs: u64,
}

/// A parsed manifest: header, entries, and per-line damage reports for
/// lines that failed to parse (never silently skipped).
#[derive(Debug)]
pub struct Manifest {
    /// The store identity line.
    pub header: ManifestHeader,
    /// One entry per intact snapshot line.
    pub entries: Vec<ManifestEntry>,
    /// Human-readable reports for corrupt lines, e.g.
    /// `"manifest line 3 is corrupt: ..."`.
    pub damaged: Vec<String>,
}

/// Path of the manifest inside a persist directory.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.json")
}

/// Path of snapshot `id`'s file inside a persist directory.
pub fn snapshot_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("snap-{id}.json"))
}

/// Path of the live-twin checkpoint inside a persist directory.
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("live.json")
}

/// Write the manifest (header + entries, one JSON object per line)
/// atomically.
pub fn write_manifest(
    dir: &Path,
    header: &ManifestHeader,
    entries: &[ManifestEntry],
) -> Result<(), PersistError> {
    let path = manifest_path(dir);
    let mut lines = Vec::with_capacity(entries.len() + 1);
    lines.push(serde_json::to_string(header).map_err(|e| PersistError::Corrupt {
        path: path.clone(),
        detail: format!("header serialization failed: {e}"),
    })?);
    for entry in entries {
        lines.push(serde_json::to_string(entry).map_err(|e| PersistError::Corrupt {
            path: path.clone(),
            detail: format!("entry serialization failed: {e}"),
        })?);
    }
    let text = lines.join("\n") + "\n";
    write_length_prefixed(&path, text.as_bytes())
}

/// Read the manifest back. A corrupt or missing *header* fails the whole
/// read (the store's identity is unrecoverable without it); a corrupt
/// *entry line* is recorded in [`Manifest::damaged`] and parsing
/// continues — recovery degrades per snapshot, never silently.
pub fn read_manifest(dir: &Path) -> Result<Manifest, PersistError> {
    let path = manifest_path(dir);
    let payload = read_length_prefixed(&path)?;
    let text = std::str::from_utf8(&payload).map_err(|e| PersistError::Corrupt {
        path: path.clone(),
        detail: format!("manifest is not UTF-8: {e}"),
    })?;
    let mut lines = text.lines();
    let header_line = lines.next().ok_or_else(|| PersistError::Corrupt {
        path: path.clone(),
        detail: "manifest is empty".to_string(),
    })?;
    let header: ManifestHeader =
        serde_json::from_str(header_line).map_err(|e| PersistError::Corrupt {
            path: path.clone(),
            detail: format!("manifest header does not parse: {e}"),
        })?;
    if header.manifest_format_version != MANIFEST_FORMAT_VERSION {
        return Err(PersistError::Corrupt {
            path,
            detail: format!(
                "unsupported manifest format version {}: this build reads version {}",
                header.manifest_format_version, MANIFEST_FORMAT_VERSION
            ),
        });
    }
    let mut entries = Vec::new();
    let mut damaged = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<ManifestEntry>(line) {
            Ok(entry) => entries.push(entry),
            // Line numbers are 1-based and the header is line 1.
            Err(e) => damaged.push(format!("manifest line {} is corrupt: {e}", i + 2)),
        }
    }
    Ok(Manifest { header, entries, damaged })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("exadigit-persist-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn length_prefixed_round_trip() {
        let dir = scratch_dir("roundtrip");
        let path = dir.join("blob.bin");
        write_length_prefixed(&path, b"hello world").unwrap();
        assert_eq!(read_length_prefixed(&path).unwrap(), b"hello world");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_payload_is_a_typed_error() {
        let dir = scratch_dir("truncated");
        let path = dir.join("blob.bin");
        write_length_prefixed(&path, b"hello world").unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        match read_length_prefixed(&path) {
            Err(PersistError::Truncated { expected, actual, .. }) => {
                assert_eq!(expected, 11);
                assert_eq!(actual, 7);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_round_trip_and_damaged_lines() {
        let dir = scratch_dir("manifest");
        let header = ManifestHeader {
            manifest_format_version: MANIFEST_FORMAT_VERSION,
            next_id: 5,
            seed: 42,
            max_snapshots: 8,
        };
        let entries = vec![
            ManifestEntry {
                id: 1,
                label: "noon".into(),
                taken_at_s: 43_200,
                bytes: 1234,
                running_jobs: 3,
                pending_jobs: 1,
            },
            ManifestEntry {
                id: 4,
                label: "evening".into(),
                taken_at_s: 64_800,
                bytes: 999,
                running_jobs: 0,
                pending_jobs: 0,
            },
        ];
        write_manifest(&dir, &header, &entries).unwrap();
        let back = read_manifest(&dir).unwrap();
        assert_eq!(back.header, header);
        assert_eq!(back.entries, entries);
        assert!(back.damaged.is_empty());

        // Corrupt the second entry line in place (re-wrap the payload so
        // the length prefix stays truthful — this models a bad line, not
        // a torn file).
        let payload = read_length_prefixed(&manifest_path(&dir)).unwrap();
        let text = String::from_utf8(payload).unwrap();
        let mangled: Vec<String> = text
            .lines()
            .enumerate()
            .map(|(i, l)| if i == 2 { "{not json".to_string() } else { l.to_string() })
            .collect();
        write_length_prefixed(&manifest_path(&dir), (mangled.join("\n") + "\n").as_bytes())
            .unwrap();
        let back = read_manifest(&dir).unwrap();
        assert_eq!(back.entries.len(), 1, "intact lines still parse");
        assert_eq!(back.damaged.len(), 1, "bad line is reported, not skipped");
        assert!(back.damaged[0].contains("line 3"), "{}", back.damaged[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
