//! Application fingerprinting.
//!
//! §III-B3 of the paper: "We still have much work to do on the topic of
//! 'application fingerprinting' to develop more accurate models of jobs.
//! This is an area where AI/ML can be useful for developing a job
//! generator. One promising tool that can be used in this capacity is
//! Kronos." This module implements that extension: a library of
//! application classes with characteristic CPU/GPU utilization
//! *signatures* (steady, bursty, ramping, phased), a generator that
//! synthesises trace-level jobs from a class, and a feature-based
//! classifier that recovers the class from an observed trace — the
//! data-driven (L3) complement to the purely statistical generator.

use crate::job::{Job, UtilTrace};
use exadigit_sim::Rng;
use serde::{Deserialize, Serialize};

/// Temporal shape of a utilization signature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Shape {
    /// Flat utilization with small noise (e.g. climate spectral models).
    Steady,
    /// Alternating compute/communication phases (e.g. MD neighbor
    /// rebuilds): `period_s` cycle with `duty` fraction at the high level.
    Bursty {
        /// Cycle period, seconds.
        period_s: u32,
        /// Fraction of the cycle at the high level.
        duty: f32,
    },
    /// Linear ramp from low to high over the run (e.g. AMR codes as the
    /// mesh refines).
    Ramp,
    /// Three-phase profile: spin-up, long plateau, taper (HPL-like).
    Phased,
}

/// One application class: signature shapes plus level parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppClass {
    /// Class name, e.g. `md-bursty`.
    pub name: String,
    /// CPU signature shape.
    pub cpu_shape: Shape,
    /// GPU signature shape.
    pub gpu_shape: Shape,
    /// Mean CPU utilization at the high level.
    pub cpu_level: f32,
    /// Mean GPU utilization at the high level.
    pub gpu_level: f32,
    /// Low level as a fraction of the high level (bursty/phased shapes).
    pub low_fraction: f32,
    /// Gaussian noise σ added to every sample.
    pub noise: f32,
}

impl AppClass {
    /// Synthesize a trace of `steps` samples at `quantum_s` from a shape.
    fn trace(&self, shape: Shape, level: f32, steps: usize, quantum_s: u32, rng: &mut Rng) -> Vec<f32> {
        let low = level * self.low_fraction;
        let mut out = Vec::with_capacity(steps);
        for i in 0..steps {
            let frac = i as f64 / steps.max(1) as f64;
            let base = match shape {
                Shape::Steady => level,
                Shape::Bursty { period_s, duty } => {
                    let t = (i as u32 * quantum_s) % period_s.max(1);
                    if (t as f32) < duty * period_s as f32 {
                        level
                    } else {
                        low
                    }
                }
                Shape::Ramp => low + (level - low) * frac as f32,
                Shape::Phased => {
                    if frac < 0.05 {
                        low
                    } else if frac < 0.9 {
                        level
                    } else {
                        low + (level - low) * 0.3
                    }
                }
            };
            out.push(rng.normal_clamped(base as f64, self.noise as f64, 0.0, 1.0) as f32);
        }
        out
    }

    /// Synthesize a job of this class.
    pub fn synthesize(
        &self,
        id: u64,
        nodes: usize,
        wall_time_s: u64,
        submit_time_s: u64,
        rng: &mut Rng,
    ) -> Job {
        const QUANTUM: u32 = 15;
        let steps = (wall_time_s / QUANTUM as u64).max(1) as usize;
        let cpu = self.trace(self.cpu_shape, self.cpu_level, steps, QUANTUM, rng);
        let gpu = self.trace(self.gpu_shape, self.gpu_level, steps, QUANTUM, rng);
        let mut job = Job::new(
            id,
            format!("{}-{id}", self.name),
            nodes,
            wall_time_s,
            submit_time_s,
            0.0,
            0.0,
        );
        job.cpu_util = UtilTrace::Series { quantum_s: QUANTUM, values: cpu };
        job.gpu_util = UtilTrace::Series { quantum_s: QUANTUM, values: gpu };
        job
    }
}

/// The built-in fingerprint library: five representative HPC application
/// families with distinct power signatures.
pub fn builtin_library() -> Vec<AppClass> {
    vec![
        AppClass {
            name: "hpl-like".into(),
            cpu_shape: Shape::Phased,
            gpu_shape: Shape::Phased,
            cpu_level: 0.33,
            gpu_level: 0.79,
            low_fraction: 0.2,
            noise: 0.015,
        },
        AppClass {
            name: "md-bursty".into(),
            cpu_shape: Shape::Bursty { period_s: 120, duty: 0.7 },
            gpu_shape: Shape::Bursty { period_s: 120, duty: 0.7 },
            cpu_level: 0.45,
            gpu_level: 0.85,
            low_fraction: 0.35,
            noise: 0.03,
        },
        AppClass {
            name: "climate-steady".into(),
            cpu_shape: Shape::Steady,
            gpu_shape: Shape::Steady,
            cpu_level: 0.75,
            gpu_level: 0.30,
            low_fraction: 1.0,
            noise: 0.02,
        },
        AppClass {
            name: "ai-training".into(),
            cpu_shape: Shape::Steady,
            gpu_shape: Shape::Bursty { period_s: 600, duty: 0.92 },
            cpu_level: 0.25,
            gpu_level: 0.95,
            low_fraction: 0.15,
            noise: 0.025,
        },
        AppClass {
            name: "amr-ramp".into(),
            cpu_shape: Shape::Ramp,
            gpu_shape: Shape::Ramp,
            cpu_level: 0.6,
            gpu_level: 0.7,
            low_fraction: 0.25,
            noise: 0.02,
        },
    ]
}

/// Feature vector extracted from a utilization trace: the fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceFeatures {
    /// Mean utilization.
    pub mean: f64,
    /// Standard deviation.
    pub std: f64,
    /// Lag-1 autocorrelation (bursty traces have high |ρ| structure).
    pub autocorr: f64,
    /// Linear trend (end minus start of a least-squares fit), for ramps.
    pub trend: f64,
}

/// Extract the fingerprint features of a trace sampled to `n` points.
pub fn features(trace: &UtilTrace, wall_time_s: u64) -> TraceFeatures {
    const N: usize = 96;
    let samples: Vec<f64> =
        (0..N).map(|i| trace.at(wall_time_s * i as u64 / N as u64)).collect();
    let mean = samples.iter().sum::<f64>() / N as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / N as f64;
    let std = var.sqrt();
    let autocorr = if var > 1e-12 {
        samples.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum::<f64>()
            / ((N - 1) as f64 * var)
    } else {
        0.0
    };
    // Least-squares slope over the normalised index, scaled to a full-run
    // delta.
    let idx_mean = (N as f64 - 1.0) / 2.0;
    let num: f64 =
        samples.iter().enumerate().map(|(i, x)| (i as f64 - idx_mean) * (x - mean)).sum();
    let den: f64 = (0..N).map(|i| (i as f64 - idx_mean).powi(2)).sum();
    let trend = num / den * N as f64;
    TraceFeatures { mean, std, autocorr, trend }
}

/// Classify a (cpu, gpu) trace pair against a library by nearest
/// fingerprint distance; returns the class index.
pub fn classify(
    library: &[AppClass],
    cpu: &UtilTrace,
    gpu: &UtilTrace,
    wall_time_s: u64,
) -> usize {
    let f_cpu = features(cpu, wall_time_s);
    let f_gpu = features(gpu, wall_time_s);
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    let mut rng = Rng::new(0xF17); // reference traces are deterministic
    for (i, class) in library.iter().enumerate() {
        // Reference fingerprint from a clean synthetic instance.
        let reference = class.synthesize(0, 1, wall_time_s.max(900), 0, &mut rng);
        let r_cpu = features(&reference.cpu_util, wall_time_s.max(900));
        let r_gpu = features(&reference.gpu_util, wall_time_s.max(900));
        let d = |a: TraceFeatures, b: TraceFeatures| {
            (a.mean - b.mean).powi(2) * 4.0
                + (a.std - b.std).powi(2) * 8.0
                + (a.autocorr - b.autocorr).powi(2)
                + (a.trend - b.trend).powi(2) * 2.0
        };
        let dist = d(f_cpu, r_cpu) + d(f_gpu, r_gpu);
        if dist < best_d {
            best_d = dist;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_has_distinct_signatures() {
        let lib = builtin_library();
        assert_eq!(lib.len(), 5);
        let names: std::collections::HashSet<_> = lib.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn synthesized_traces_in_bounds() {
        let lib = builtin_library();
        let mut rng = Rng::new(1);
        for class in &lib {
            let job = class.synthesize(1, 64, 3_600, 0, &mut rng);
            for t in (0..3_600).step_by(150) {
                assert!((0.0..=1.0).contains(&job.cpu_util.at(t)));
                assert!((0.0..=1.0).contains(&job.gpu_util.at(t)));
            }
        }
    }

    #[test]
    fn classifier_recovers_generated_classes() {
        let lib = builtin_library();
        let mut rng = Rng::new(77);
        let mut correct = 0;
        let mut total = 0;
        for (i, class) in lib.iter().enumerate() {
            for trial in 0..4 {
                let job = class.synthesize(trial, 32, 3_600, 0, &mut rng);
                let got = classify(&lib, &job.cpu_util, &job.gpu_util, 3_600);
                total += 1;
                if got == i {
                    correct += 1;
                }
            }
        }
        // The classes are well separated: demand ≥ 80 % recovery.
        assert!(correct * 10 >= total * 8, "recovered {correct}/{total}");
    }

    #[test]
    fn bursty_trace_has_higher_std_than_steady() {
        let lib = builtin_library();
        let mut rng = Rng::new(9);
        let bursty = lib[1].synthesize(1, 8, 3_600, 0, &mut rng);
        let steady = lib[2].synthesize(2, 8, 3_600, 0, &mut rng);
        let f_b = features(&bursty.gpu_util, 3_600);
        let f_s = features(&steady.gpu_util, 3_600);
        assert!(f_b.std > f_s.std);
    }

    #[test]
    fn ramp_has_positive_trend() {
        let lib = builtin_library();
        let mut rng = Rng::new(5);
        let ramp = lib[4].synthesize(1, 8, 3_600, 0, &mut rng);
        let f = features(&ramp.gpu_util, 3_600);
        assert!(f.trend > 0.2, "trend={}", f.trend);
    }

    #[test]
    fn hpl_like_matches_table3_levels() {
        // The hpl-like class plateau must sit at the §IV-2 utilizations.
        let lib = builtin_library();
        let mut rng = Rng::new(3);
        let job = lib[0].synthesize(1, 9216, 7_200, 0, &mut rng);
        let mid_gpu = job.gpu_util.at(3_600);
        let mid_cpu = job.cpu_util.at(3_600);
        assert!((mid_gpu - 0.79).abs() < 0.08, "gpu={mid_gpu}");
        assert!((mid_cpu - 0.33).abs() < 0.08, "cpu={mid_cpu}");
    }
}
