//! Control valves.
//!
//! Each CDU regulates its primary coolant intake with a control valve to
//! hold the secondary supply temperature at setpoint (§III-C5 of the
//! paper). The valve contributes a variable hydraulic resistance
//! `ΔP = k(x) · Q²` where the opening-dependent coefficient follows either
//! a linear or equal-percentage inherent characteristic.

use serde::{Deserialize, Serialize};

/// Inherent flow characteristic of the valve trim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ValveCharacteristic {
    /// Flow coefficient proportional to opening.
    Linear,
    /// Flow coefficient `R^(x-1)` with rangeability `R` — the industry
    /// default for temperature control loops.
    #[default]
    EqualPercentage,
}

/// A modulating two-way control valve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlValve {
    /// Identifier, e.g. `CDU7.primary_valve`.
    pub name: String,
    /// Hydraulic resistance fully open, Pa/(m³/s)².
    pub k_open: f64,
    /// Trim characteristic.
    pub characteristic: ValveCharacteristic,
    /// Rangeability (ratio of max to min controllable flow coefficient).
    pub rangeability: f64,
    /// Minimum opening (leakage floor) to keep the hydraulics regular.
    pub min_opening: f64,
    /// Current commanded opening in `[0, 1]`.
    opening: f64,
}

impl ControlValve {
    /// Valve sized so that fully open it drops `dp_design` Pa at
    /// `q_design` m³/s.
    pub fn from_design(name: impl Into<String>, q_design: f64, dp_design: f64) -> Self {
        assert!(q_design > 0.0 && dp_design > 0.0);
        ControlValve {
            name: name.into(),
            k_open: dp_design / (q_design * q_design),
            characteristic: ValveCharacteristic::EqualPercentage,
            rangeability: 50.0,
            min_opening: 0.02,
            opening: 1.0,
        }
    }

    /// Set the commanded opening, clamped to `[min_opening, 1]`.
    pub fn set_opening(&mut self, x: f64) {
        self.opening = x.clamp(self.min_opening, 1.0);
    }

    /// Current opening.
    pub fn opening(&self) -> f64 {
        self.opening
    }

    /// Relative flow coefficient `phi(x) ∈ (0, 1]` for the current opening.
    pub fn relative_flow_coefficient(&self) -> f64 {
        let x = self.opening;
        match self.characteristic {
            ValveCharacteristic::Linear => x.max(1.0 / self.rangeability),
            ValveCharacteristic::EqualPercentage => self.rangeability.powf(x - 1.0),
        }
    }

    /// Hydraulic resistance at the current opening, Pa/(m³/s)².
    /// `ΔP = k(x)·Q²` with `k(x) = k_open / phi(x)²`.
    pub fn resistance(&self) -> f64 {
        let phi = self.relative_flow_coefficient();
        self.k_open / (phi * phi)
    }

    /// Pressure drop (Pa) at volumetric flow `q` (m³/s).
    pub fn pressure_drop(&self, q: f64) -> f64 {
        self.resistance() * q * q.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_point_drop() {
        let v = ControlValve::from_design("V", 0.02, 50_000.0);
        assert!((v.pressure_drop(0.02) - 50_000.0).abs() < 1e-6);
    }

    #[test]
    fn closing_raises_resistance_monotonically() {
        let mut v = ControlValve::from_design("V", 0.02, 50_000.0);
        let mut prev = 0.0;
        for i in (1..=10).rev() {
            v.set_opening(i as f64 / 10.0);
            let r = v.resistance();
            assert!(r > prev, "resistance must rise as valve closes");
            prev = r;
        }
    }

    #[test]
    fn equal_percentage_characteristic() {
        let mut v = ControlValve::from_design("V", 0.02, 50_000.0);
        v.characteristic = ValveCharacteristic::EqualPercentage;
        v.set_opening(1.0);
        assert!((v.relative_flow_coefficient() - 1.0).abs() < 1e-12);
        v.set_opening(0.5);
        let phi_half = v.relative_flow_coefficient();
        assert!((phi_half - 50.0f64.powf(-0.5)).abs() < 1e-12);
    }

    #[test]
    fn linear_characteristic() {
        let mut v = ControlValve::from_design("V", 0.02, 50_000.0);
        v.characteristic = ValveCharacteristic::Linear;
        v.set_opening(0.5);
        assert!((v.relative_flow_coefficient() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn opening_clamped() {
        let mut v = ControlValve::from_design("V", 0.02, 50_000.0);
        v.set_opening(2.0);
        assert_eq!(v.opening(), 1.0);
        v.set_opening(-1.0);
        assert_eq!(v.opening(), v.min_opening);
    }

    #[test]
    fn negative_flow_gives_negative_drop() {
        let v = ControlValve::from_design("V", 0.02, 50_000.0);
        assert!(v.pressure_drop(-0.01) < 0.0);
    }
}
