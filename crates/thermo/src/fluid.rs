//! Fluid property correlations.
//!
//! The cooling model needs density, specific heat, viscosity and thermal
//! conductivity of the coolant as functions of temperature. Frontier's
//! facility loops run treated water; the blade-level loop runs a
//! water/propylene-glycol mixture. The correlations below are polynomial
//! fits to standard reference data (IAPWS-97 region for liquid water at
//! atmospheric pressure, ASHRAE for the glycol mixture), accurate to well
//! under 1 % over the 5–60 °C operating band of the plant — far below the
//! model-form error of a system-level twin (Finding 6 of the paper argues
//! against chasing fidelity beyond this).

use serde::{Deserialize, Serialize};

/// Coolant selection for a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Fluid {
    /// Treated facility water (cooling-tower, primary, CDU primary side).
    #[default]
    Water,
    /// 25 % propylene glycol / water by mass (blade-level secondary loop).
    PropyleneGlycol25,
}

impl Fluid {
    /// Density in kg/m³ at temperature `t` (°C).
    pub fn density(&self, t: f64) -> f64 {
        match self {
            Fluid::Water => {
                // Kell-style fit, liquid water 0-100 °C, max error < 0.05 kg/m³.
                999.84 + 0.0673 * t - 0.00894 * t * t + 8.78e-5 * t * t * t - 6.62e-7 * t.powi(4)
            }
            Fluid::PropyleneGlycol25 => {
                // ASHRAE: ~2 % denser than water, slightly steeper slope.
                1023.0 - 0.28 * t - 0.0022 * t * t
            }
        }
    }

    /// Isobaric specific heat in J/(kg·K) at temperature `t` (°C).
    pub fn specific_heat(&self, t: f64) -> f64 {
        match self {
            Fluid::Water => {
                // Liquid water: minimum near 35 °C, ~4178-4186 over band.
                4217.4 - 3.720 * t + 0.1412 * t * t - 2.654e-3 * t * t * t + 2.093e-5 * t.powi(4)
            }
            Fluid::PropyleneGlycol25 => 3974.0 + 2.9 * t,
        }
    }

    /// Dynamic viscosity in Pa·s at temperature `t` (°C).
    pub fn viscosity(&self, t: f64) -> f64 {
        match self {
            Fluid::Water => {
                // Vogel-type fit for liquid water.
                2.414e-5 * 10f64.powf(247.8 / (t + 273.15 - 140.0))
            }
            Fluid::PropyleneGlycol25 => {
                // Roughly 2.3x water at 20 °C with steeper T-dependence.
                5.5e-5 * 10f64.powf(255.0 / (t + 273.15 - 140.0))
            }
        }
    }

    /// Thermal conductivity in W/(m·K) at temperature `t` (°C).
    pub fn conductivity(&self, t: f64) -> f64 {
        match self {
            Fluid::Water => 0.5562 + 1.99e-3 * t - 8.67e-6 * t * t,
            Fluid::PropyleneGlycol25 => 0.476 + 1.1e-3 * t,
        }
    }

    /// Volumetric heat capacity ρ·cp in J/(m³·K) — the factor in eq. (7) of
    /// the paper, `H = ρ · Q · ΔT · c`.
    pub fn volumetric_heat_capacity(&self, t: f64) -> f64 {
        self.density(t) * self.specific_heat(t)
    }
}

/// Heat carried by a stream, eq. (7) of the paper: `H = ρ · Q · ΔT · c`
/// with `Q` volumetric flow in m³/s and `ΔT` in K; returns watts.
pub fn stream_heat(fluid: Fluid, t_mean: f64, flow_m3s: f64, delta_t: f64) -> f64 {
    fluid.volumetric_heat_capacity(t_mean) * flow_m3s * delta_t
}

/// Convert gallons-per-minute (the unit the paper quotes pump flows in,
/// e.g. "9000-10000 gpm") to m³/s.
pub fn gpm_to_m3s(gpm: f64) -> f64 {
    gpm * 3.785_411_784e-3 / 60.0
}

/// Convert m³/s to gallons-per-minute for report output.
pub fn m3s_to_gpm(m3s: f64) -> f64 {
    m3s * 60.0 / 3.785_411_784e-3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_density_reference_points() {
        // Reference: 998.2 kg/m³ @ 20 °C, 992.2 @ 40 °C.
        assert!((Fluid::Water.density(20.0) - 998.2).abs() < 0.5);
        assert!((Fluid::Water.density(40.0) - 992.2).abs() < 0.8);
    }

    #[test]
    fn water_cp_reference_points() {
        // Reference: ~4181.8 J/kg-K @ 25 °C.
        let cp = Fluid::Water.specific_heat(25.0);
        assert!((cp - 4181.8).abs() < 10.0, "cp={cp}");
    }

    #[test]
    fn water_viscosity_reference_points() {
        // Reference: ~1.002e-3 Pa·s @ 20 °C, ~0.653e-3 @ 40 °C.
        assert!((Fluid::Water.viscosity(20.0) - 1.002e-3).abs() < 3e-5);
        assert!((Fluid::Water.viscosity(40.0) - 0.653e-3).abs() < 3e-5);
    }

    #[test]
    fn water_conductivity_reference() {
        // ~0.598 W/m-K @ 20 °C.
        assert!((Fluid::Water.conductivity(20.0) - 0.598).abs() < 0.01);
    }

    #[test]
    fn glycol_denser_and_more_viscous_than_water() {
        let t = 30.0;
        assert!(Fluid::PropyleneGlycol25.density(t) > Fluid::Water.density(t));
        assert!(Fluid::PropyleneGlycol25.viscosity(t) > Fluid::Water.viscosity(t));
        assert!(Fluid::PropyleneGlycol25.specific_heat(t) < Fluid::Water.specific_heat(t));
    }

    #[test]
    fn stream_heat_matches_eq7() {
        // 1 m³/s of water with 10 K rise at 30 °C: ~41.6 MW.
        let h = stream_heat(Fluid::Water, 30.0, 1.0, 10.0);
        assert!((h - 41.6e6).abs() / 41.6e6 < 0.01, "h={h}");
    }

    #[test]
    fn gpm_round_trip() {
        let q = gpm_to_m3s(9500.0); // CTWP band from the paper
        assert!((m3s_to_gpm(q) - 9500.0).abs() < 1e-9);
        // 9500 gpm ≈ 0.599 m³/s
        assert!((q - 0.5993).abs() < 0.001, "q={q}");
    }

    #[test]
    fn properties_are_smooth_over_operating_band() {
        for fluid in [Fluid::Water, Fluid::PropyleneGlycol25] {
            let mut prev = fluid.density(5.0);
            for i in 1..=55 {
                let t = 5.0 + i as f64;
                let d = fluid.density(t);
                assert!(d > 900.0 && d < 1100.0);
                assert!((d - prev).abs() < 1.0, "density jump at {t}");
                prev = d;
            }
        }
    }
}
