//! Offline stand-in for the `rayon` crate.
//!
//! Exposes `into_par_iter()` / `par_iter()` returning a [`ParIter`] that
//! implements `Iterator`, so every std combinator (`map`, `sum`,
//! `collect`, …) works unchanged. Execution is sequential: the workspace's
//! parallel call sites are all embarrassingly-parallel `map`s whose
//! results are collected, so sequential evaluation is semantically
//! identical (and keeps replay ordering bit-deterministic). Swapping in
//! real rayon later is a manifest-only change.

/// Wrapper marking an iterator as "parallel". Delegates to the inner
/// iterator; order is the source order.
pub struct ParIter<I>(pub I);

impl<I: Iterator> Iterator for ParIter<I> {
    type Item = I::Item;

    #[inline]
    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

/// `rayon::iter::IntoParallelIterator` equivalent.
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter(self.into_iter())
    }
}

impl<T: IntoIterator> IntoParallelIterator for T {}

/// `rayon::iter::IntoParallelRefIterator` equivalent (`.par_iter()` on
/// slices, `Vec`s, maps, …).
pub trait IntoParallelRefIterator<'a> {
    type Iter: Iterator;

    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: ?Sized> IntoParallelRefIterator<'a> for T
where
    &'a T: IntoIterator,
    T: 'a,
{
    type Iter = <&'a T as IntoIterator>::IntoIter;

    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

pub mod iter {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_sum() {
        let total: u64 = (0..10u64).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(total, 90);
    }

    #[test]
    fn slice_par_iter_collect() {
        let xs = [1.0f64, 2.0, 3.0];
        let doubled: Vec<f64> = xs.par_iter().map(|&x| x * 2.0).collect();
        assert_eq!(doubled, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn result_collect_short_circuits() {
        let r: Result<Vec<u32>, String> =
            (0..5u32).into_par_iter().map(|x| if x < 3 { Ok(x) } else { Err("boom".into()) }).collect();
        assert!(r.is_err());
    }
}
