//! Cooling-model validation (Fig. 7 workflow): record synthetic CEP
//! telemetry with the perturbed physical twin, replay the same workload
//! through the nominal model, and report RMSE/MAE per channel plus the
//! PUE bias (paper criterion: within 1.4 %).
//!
//! ```sh
//! cargo run --release --example cooling_validation -- 6
//! ```

use exadigit_cooling::CoolingModel;
use exadigit_raps::config::SystemConfig;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::simulation::{CoolingCoupling, RapsSimulation};
use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};
use exadigit_sim::TimeSeries;
use exadigit_telemetry::{compare_channels, SyntheticTwin};
use exadigit_viz::chart::spark_series;

fn main() {
    let hours: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(3);
    let span = hours * 3_600;
    println!("ExaDigiT-rs cooling validation — {hours} h replay (Fig. 7 workflow)\n");

    let twin = SyntheticTwin::frontier();
    let mut generator = WorkloadGenerator::new(WorkloadParams::default(), 4_117);
    let jobs: Vec<_> =
        generator.generate_day(0).into_iter().filter(|j| j.submit_time_s < span).collect();
    println!("recording physical-twin telemetry ({} jobs)...", jobs.len());
    let telemetry = twin.record_span(jobs.clone(), span, 0);

    println!("replaying through the nominal cooling model...");
    let mut sim = RapsSimulation::new(
        SystemConfig::frontier(),
        PowerDelivery::StandardAC,
        Policy::FirstFit,
        15,
    );
    let coupling = CoolingCoupling::attach(Box::new(CoolingModel::frontier()), 25).unwrap();
    sim.attach_cooling(coupling);
    sim.set_wet_bulb(telemetry.wet_bulb.clone());
    sim.submit_jobs(jobs);

    let mut pred_flow = TimeSeries::new(0.0, 15.0);
    let mut pred_temp = TimeSeries::new(0.0, 15.0);
    let mut pred_press = TimeSeries::new(0.0, 30.0);
    let mut pred_pue = TimeSeries::new(0.0, 15.0);
    let (vr_flow, vr_temp, vr_press, vr_pue) = {
        let m = sim.cooling_model().unwrap();
        (
            m.var_by_name("cdu[1].primary_flow").unwrap().vr,
            m.var_by_name("cdu[1].primary_return_temp").unwrap().vr,
            m.var_by_name("facility.htw_supply_pressure").unwrap().vr,
            m.var_by_name("pue").unwrap().vr,
        )
    };
    for sec in 0..span {
        sim.tick().expect("replay");
        let t = sec + 1;
        let m = sim.cooling_model().unwrap();
        if t % 15 == 0 {
            pred_flow.push(m.get_real(vr_flow).unwrap());
            pred_temp.push(m.get_real(vr_temp).unwrap());
            pred_pue.push(m.get_real(vr_pue).unwrap());
        }
        if t % 30 == 0 {
            pred_press.push(m.get_real(vr_press).unwrap());
        }
    }

    let skip = 1_800.0;
    println!("\n{:<36} {:>12} {:>12} {:>10}", "channel (Fig. 7 panel)", "RMSE", "MAE", "nRMSE %");
    let rows = [
        ("cdu[1].primary_flow (a)", &pred_flow, &telemetry.cooling.cdu_primary_flow[0]),
        ("cdu[1].primary_return_temp (b)", &pred_temp, &telemetry.cooling.cdu_return_temp[0]),
        ("facility.htw_supply_pressure (c)", &pred_press, &telemetry.cooling.htw_supply_pressure),
    ];
    for (name, predicted, measured) in rows {
        let cmp = compare_channels(name, predicted, measured, skip);
        println!(
            "{:<36} {:>12.4} {:>12.4} {:>10.2}",
            name,
            cmp.rmse,
            cmp.mae,
            cmp.nrmse_percent()
        );
    }
    let pue_cmp = compare_channels("pue (d)", &pred_pue, &telemetry.cooling.pue, skip);
    println!(
        "{:<36} {:>12.4} {:>12.4} {:>10.2}",
        "pue (d)",
        pue_cmp.rmse,
        pue_cmp.mae,
        pue_cmp.nrmse_percent()
    );
    println!(
        "\nPUE bias: {:+.2} %  (paper: model within 1.4 % of telemetry)",
        pue_cmp.mean_bias_percent()
    );

    println!("\npredicted return temp  {}", spark_series(&pred_temp, 64));
    println!(
        "measured  return temp  {}",
        spark_series(&telemetry.cooling.cdu_return_temp[0], 64)
    );
}
