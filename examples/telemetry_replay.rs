//! Telemetry replay (Fig. 9 workflow): generate a day of synthetic
//! telemetry with the physical twin, replay the recorded jobs through the
//! digital twin, and overlay predicted vs measured system power.
//!
//! The span defaults to two hours so the example finishes quickly; pass a
//! number of hours as the first argument for longer replays:
//!
//! ```sh
//! cargo run --release --example telemetry_replay -- 24
//! ```

use exadigit_raps::config::SystemConfig;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::simulation::RapsSimulation;
use exadigit_raps::workload::benchmark_day;
use exadigit_telemetry::{compare_channels, SyntheticTwin};
use exadigit_viz::chart::{bucket_means, line_chart};

fn main() {
    let hours: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(2);
    let span_s = hours * 3_600;
    println!("ExaDigiT-rs telemetry replay — {hours} h fragment of the Fig. 9 day\n");

    // The Fig. 9 day: ~1238 jobs including four back-to-back 9216-node
    // HPL runs.
    let jobs: Vec<_> = benchmark_day(90_210)
        .into_iter()
        .filter(|j| j.submit_time_s < span_s)
        .collect();
    println!("physical twin: recording {} jobs over {hours} h...", jobs.len());

    let twin = SyntheticTwin::frontier();
    let telemetry = twin.record_span(jobs.clone(), span_s, 0);
    println!(
        "  measured: avg {:.2} MW, {} jobs completed (ground truth)",
        telemetry.measured_power_w.mean() / 1e6,
        telemetry.truth.jobs_completed
    );

    // Replay through the (unperturbed) digital twin.
    println!("digital twin: replaying the same workload...");
    let mut sim = RapsSimulation::new(
        SystemConfig::frontier(),
        PowerDelivery::StandardAC,
        Policy::FirstFit,
        1,
    );
    sim.submit_jobs(jobs);
    sim.run_until(span_s).expect("replay");
    let report = sim.report();

    // Compare (Fig. 9 overlay).
    let predicted = &sim.outputs().system_power_w;
    let cmp = compare_channels("system_power", predicted, &telemetry.measured_power_w, 60.0);
    println!("\npredicted vs measured system power:");
    println!("  RMSE  {:.3} MW", cmp.rmse / 1e6);
    println!("  MAE   {:.3} MW", cmp.mae / 1e6);
    println!("  bias  {:+.2} %", cmp.mean_bias_percent());

    let width = 72;
    let pred_mw: Vec<f64> = bucket_means(&predicted.to_vec(), width).iter().map(|w| w / 1e6).collect();
    let meas_mw: Vec<f64> =
        bucket_means(&telemetry.measured_power_w.to_vec(), width).iter().map(|w| w / 1e6).collect();
    println!("\n{}", line_chart(&[("predicted", &pred_mw), ("measured", &meas_mw)], width, 14));

    println!("{report}");
    println!(
        "\nη_system {:.3}   cooling eff. (paper: 0.945 telemetry-derived)   utilization {:.1} %",
        report.efficiency,
        100.0 * report.avg_utilization
    );
}
