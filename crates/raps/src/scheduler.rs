//! Node pool and scheduling policies.
//!
//! §III-B4 of the paper: "Jobs are scheduled according to a given policy,
//! such as Shortest Job First (SJF) or First Come First Served (FCFS),
//! with plans to soon implement more sophisticated algorithms". We provide
//! both paper policies, the literal Algorithm 1 semantics (first-fit in
//! queue order), and EASY backfill as the promised sophisticated variant.
//! Multi-partition allocation (§V, Setonix-style) is supported by giving
//! every partition its own free pool.

use crate::config::SystemConfig;
use crate::job::Job;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Policy {
    /// First come, first served with head-of-line blocking (per partition).
    Fcfs,
    /// Shortest (requested wall time) job first.
    Sjf,
    /// The literal Algorithm 1 loop: walk the queue in order, start
    /// whatever fits ("else add to pending queue").
    #[default]
    FirstFit,
    /// EASY backfill: FCFS order with a reservation for the head job;
    /// later jobs may jump ahead only if they cannot delay it.
    EasyBackfill,
}

/// Range of node ids belonging to one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PartitionRange {
    start: u32,
    len: u32,
}

/// Free-node bookkeeping for every partition.
///
/// Free ids are stored as a canonical interval map (`start → length`;
/// disjoint, sorted, never adjacent), so allocating or releasing a
/// 4,000-node job costs O(fragments) tree operations instead of 4,000
/// per-id set operations — the difference between a day replay spending
/// its time in the scheduler's bookkeeping and in the simulation itself.
/// Allocation still hands out the lowest free ids first, in ascending
/// order, exactly as the per-id implementation did.
///
/// Equality compares the full free-list state — what the event-kernel
/// equivalence tests pin (the canonical form makes set equality and map
/// equality coincide).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodePool {
    ranges: Vec<PartitionRange>,
    free: Vec<BTreeMap<u32, u32>>,
    free_count: Vec<usize>,
}

impl NodePool {
    /// Pool covering all partitions of `cfg`, all nodes free. Node ids are
    /// global and contiguous across partitions in declaration order.
    pub fn new(cfg: &SystemConfig) -> Self {
        let mut ranges = Vec::with_capacity(cfg.partitions.len());
        let mut free = Vec::with_capacity(cfg.partitions.len());
        let mut free_count = Vec::with_capacity(cfg.partitions.len());
        let mut next = 0u32;
        for p in &cfg.partitions {
            let len = p.nodes as u32;
            ranges.push(PartitionRange { start: next, len });
            let mut intervals = BTreeMap::new();
            if len > 0 {
                intervals.insert(next, len);
            }
            free.push(intervals);
            free_count.push(p.nodes);
            next += len;
        }
        NodePool { ranges, free, free_count }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.ranges.len()
    }

    /// Total nodes in a partition.
    pub fn capacity(&self, partition: usize) -> usize {
        self.ranges[partition].len as usize
    }

    /// Free nodes in a partition.
    pub fn available(&self, partition: usize) -> usize {
        self.free_count[partition]
    }

    /// Total free nodes across partitions.
    pub fn available_total(&self) -> usize {
        self.free_count.iter().sum()
    }

    /// Allocate `n` nodes from a partition (lowest ids first, ascending).
    /// Returns `None` without side effects when not enough nodes are free.
    pub fn allocate(&mut self, partition: usize, n: usize) -> Option<Vec<u32>> {
        if self.free_count[partition] < n {
            return None;
        }
        let free = &mut self.free[partition];
        let mut out = Vec::with_capacity(n);
        let mut remaining = n as u32;
        while remaining > 0 {
            let (start, len) = free.pop_first().expect("count said enough nodes are free");
            let take = len.min(remaining);
            out.extend(start..start + take);
            if take < len {
                free.insert(start + take, len - take);
            }
            remaining -= take;
        }
        self.free_count[partition] -= n;
        Some(out)
    }

    /// Free node ids of a partition in ascending order (diagnostics and
    /// equivalence tests).
    pub fn free_nodes(&self, partition: usize) -> Vec<u32> {
        self.free[partition]
            .iter()
            .flat_map(|(&start, &len)| start..start + len)
            .collect()
    }

    /// Release nodes back to their partition. Panics on double-free (a
    /// scheduler invariant violation we want loudly).
    pub fn release(&mut self, partition: usize, nodes: &[u32]) {
        if nodes.is_empty() {
            return;
        }
        let range = self.ranges[partition];
        for &id in nodes {
            assert!(
                id >= range.start && id < range.start + range.len,
                "node {id} not in partition {partition}"
            );
        }
        // Job allocations come back in ascending order; sorting here is
        // near-free for that case and keeps arbitrary-order calls legal.
        let mut ids = nodes.to_vec();
        ids.sort_unstable();
        let mut i = 0;
        while i < ids.len() {
            let run_start = ids[i];
            let mut run_end = run_start; // inclusive
            i += 1;
            while i < ids.len() && ids[i] == run_end + 1 {
                run_end = ids[i];
                i += 1;
            }
            assert!(
                i >= ids.len() || ids[i] > run_end,
                "double release of node {}",
                ids[i]
            );
            self.insert_free_run(partition, run_start, run_end);
        }
        self.free_count[partition] += ids.len();
    }

    /// Insert the inclusive run `[run_start, run_end]` into a partition's
    /// free intervals, merging with adjacent intervals to keep the map
    /// canonical. Panics if any id in the run is already free.
    fn insert_free_run(&mut self, partition: usize, mut run_start: u32, run_end: u32) {
        let free = &mut self.free[partition];
        let mut run_len = run_end - run_start + 1;
        // Predecessor interval: must not overlap; merge when adjacent.
        if let Some((&prev_start, &prev_len)) = free.range(..=run_start).next_back() {
            assert!(
                prev_start + prev_len <= run_start,
                "double release of node {run_start}"
            );
            if prev_start + prev_len == run_start {
                free.remove(&prev_start);
                run_start = prev_start;
                run_len += prev_len;
            }
        }
        // Successor interval: must start past the run; merge when adjacent.
        if let Some((&next_start, &next_len)) = free.range(run_start..).next() {
            assert!(next_start > run_end, "double release of node {next_start}");
            if next_start == run_end + 1 {
                free.remove(&next_start);
                run_len += next_len;
            }
        }
        free.insert(run_start, run_len);
    }
}

/// A job start decision: which pending job (by index) got which nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleDecision {
    /// Index into the pending slice handed to [`schedule_jobs`].
    pub job_index: usize,
    /// Allocated node ids.
    pub nodes: Vec<u32>,
}

/// Expected release of a running job, used for backfill reservations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunningRelease {
    /// Expected end time, seconds.
    pub end_time_s: u64,
    /// Partition the nodes return to.
    pub partition: usize,
    /// Node count released.
    pub nodes: usize,
}

/// Run one scheduling pass over `pending` (in queue order) against the
/// pool. Decisions allocate immediately; the caller starts the selected
/// jobs and removes them from its queue.
pub fn schedule_jobs(
    policy: Policy,
    pending: &[Job],
    pool: &mut NodePool,
    now_s: u64,
    running: &[RunningRelease],
) -> Vec<ScheduleDecision> {
    match policy {
        Policy::FirstFit => first_fit(pending, pool),
        Policy::Fcfs => fcfs(pending, pool),
        Policy::Sjf => sjf(pending, pool),
        Policy::EasyBackfill => easy_backfill(pending, pool, now_s, running),
    }
}

fn first_fit(pending: &[Job], pool: &mut NodePool) -> Vec<ScheduleDecision> {
    let mut out = Vec::new();
    for (i, job) in pending.iter().enumerate() {
        if let Some(nodes) = pool.allocate(job.partition, job.nodes) {
            out.push(ScheduleDecision { job_index: i, nodes });
        }
    }
    out
}

fn fcfs(pending: &[Job], pool: &mut NodePool) -> Vec<ScheduleDecision> {
    let mut out = Vec::new();
    let mut blocked = vec![false; pool.partitions()];
    for (i, job) in pending.iter().enumerate() {
        if blocked[job.partition] {
            continue;
        }
        match pool.allocate(job.partition, job.nodes) {
            Some(nodes) => out.push(ScheduleDecision { job_index: i, nodes }),
            None => blocked[job.partition] = true,
        }
    }
    out
}

fn sjf(pending: &[Job], pool: &mut NodePool) -> Vec<ScheduleDecision> {
    let mut order: Vec<usize> = (0..pending.len()).collect();
    // Shortest requested wall time first; ties broken by queue order so
    // the sort stays deterministic.
    order.sort_by_key(|&i| (pending[i].wall_time_s, i));
    let mut out = Vec::new();
    for i in order {
        let job = &pending[i];
        if let Some(nodes) = pool.allocate(job.partition, job.nodes) {
            out.push(ScheduleDecision { job_index: i, nodes });
        }
    }
    out.sort_by_key(|d| d.job_index);
    out
}

fn easy_backfill(
    pending: &[Job],
    pool: &mut NodePool,
    now_s: u64,
    running: &[RunningRelease],
) -> Vec<ScheduleDecision> {
    let mut out = Vec::new();
    // Per-partition head state: None until a job fails to fit.
    // shadow[p] = (reservation start time, spare nodes usable by backfill).
    let mut shadow: Vec<Option<(u64, usize)>> = vec![None; pool.partitions()];

    // Pre-sort expected releases per partition by end time.
    let mut releases: Vec<Vec<RunningRelease>> = vec![Vec::new(); pool.partitions()];
    for r in running {
        releases[r.partition].push(*r);
    }
    for rel in &mut releases {
        rel.sort_by_key(|r| r.end_time_s);
    }

    for (i, job) in pending.iter().enumerate() {
        let p = job.partition;
        match shadow[p] {
            None => {
                if let Some(nodes) = pool.allocate(p, job.nodes) {
                    out.push(ScheduleDecision { job_index: i, nodes });
                } else {
                    // Head job can't start: compute its reservation.
                    let mut free = pool.available(p);
                    let mut shadow_time = u64::MAX;
                    for r in &releases[p] {
                        free += r.nodes;
                        if free >= job.nodes {
                            shadow_time = r.end_time_s;
                            break;
                        }
                    }
                    // Spare nodes at the shadow time: what remains after the
                    // head job takes its share of the accumulated frees.
                    let spare = free.saturating_sub(job.nodes);
                    shadow[p] = Some((shadow_time, spare));
                }
            }
            Some((shadow_time, spare)) => {
                // Backfill rule: start only if it finishes before the
                // reservation, or if it is small enough to never collide
                // with the head job's allocation.
                let fits_now = pool.available(p) >= job.nodes;
                if !fits_now {
                    continue;
                }
                let ends_before = now_s + job.wall_time_s <= shadow_time;
                let within_spare = job.nodes <= spare;
                if ends_before || within_spare {
                    if let Some(nodes) = pool.allocate(p, job.nodes) {
                        out.push(ScheduleDecision { job_index: i, nodes });
                        if !ends_before {
                            // Consumed part of the spare pool.
                            shadow[p] = Some((shadow_time, spare - job.nodes));
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PartitionConfig, SystemConfig};

    fn small_config(nodes: usize) -> SystemConfig {
        let mut cfg = SystemConfig::frontier();
        cfg.partitions =
            vec![PartitionConfig { name: "batch".into(), nodes, gpus_per_node: 4 }];
        cfg
    }

    fn job(id: u64, nodes: usize, wall: u64) -> Job {
        Job::new(id, format!("j{id}"), nodes, wall, 0, 0.5, 0.5)
    }

    #[test]
    fn pool_allocates_ascending_and_releases() {
        let cfg = small_config(16);
        let mut pool = NodePool::new(&cfg);
        let a = pool.allocate(0, 4).unwrap();
        assert_eq!(a, vec![0, 1, 2, 3]);
        assert_eq!(pool.available(0), 12);
        pool.release(0, &a);
        assert_eq!(pool.available(0), 16);
    }

    #[test]
    fn pool_refuses_oversubscription() {
        let cfg = small_config(8);
        let mut pool = NodePool::new(&cfg);
        assert!(pool.allocate(0, 9).is_none());
        assert_eq!(pool.available(0), 8, "failed alloc must not leak");
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn pool_panics_on_double_free() {
        let cfg = small_config(8);
        let mut pool = NodePool::new(&cfg);
        let a = pool.allocate(0, 2).unwrap();
        pool.release(0, &a);
        pool.release(0, &a);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn pool_panics_on_duplicate_within_release() {
        let cfg = small_config(8);
        let mut pool = NodePool::new(&cfg);
        let _a = pool.allocate(0, 4).unwrap();
        pool.release(0, &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn pool_panics_when_run_overlaps_free_interval() {
        let cfg = small_config(8);
        let mut pool = NodePool::new(&cfg);
        let _a = pool.allocate(0, 3).unwrap(); // 0,1,2 busy; 3..8 free
        pool.release(0, &[2, 3]); // 3 is already free
    }

    #[test]
    fn pool_allocates_across_fragments_and_remerges() {
        let cfg = small_config(16);
        let mut pool = NodePool::new(&cfg);
        let a = pool.allocate(0, 4).unwrap(); // 0..4
        let b = pool.allocate(0, 4).unwrap(); // 4..8
        let c = pool.allocate(0, 4).unwrap(); // 8..12
        // Free the outer two: free set {0..4, 8..12, 12..16}, merged to
        // {0..4, 8..16} — releases must coalesce adjacent intervals.
        pool.release(0, &a);
        pool.release(0, &c);
        assert_eq!(pool.available(0), 12);
        // A 10-node allocation spans both fragments, lowest ids first.
        let d = pool.allocate(0, 10).unwrap();
        assert_eq!(d, vec![0, 1, 2, 3, 8, 9, 10, 11, 12, 13]);
        assert_eq!(pool.free_nodes(0), vec![14, 15]);
        // Out-of-order release still canonicalises: everything merges
        // back into one interval equal to a fresh pool's.
        pool.release(0, &b);
        let mut shuffled = d.clone();
        shuffled.reverse();
        pool.release(0, &shuffled);
        assert_eq!(pool, NodePool::new(&cfg));
        assert_eq!(pool.free_nodes(0).len(), 16);
    }

    #[test]
    fn fcfs_blocks_behind_big_head() {
        let cfg = small_config(10);
        let mut pool = NodePool::new(&cfg);
        // Head job wants 20 (> capacity free after the first), second fits.
        let pending = vec![job(1, 8, 100), job(2, 20, 100), job(3, 2, 100)];
        let d = schedule_jobs(Policy::Fcfs, &pending, &mut pool, 0, &[]);
        // Job 1 starts; job 2 blocks; job 3 must NOT start under FCFS.
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].job_index, 0);
    }

    #[test]
    fn first_fit_skips_blocked_jobs() {
        let cfg = small_config(10);
        let mut pool = NodePool::new(&cfg);
        let pending = vec![job(1, 8, 100), job(2, 20, 100), job(3, 2, 100)];
        let d = schedule_jobs(Policy::FirstFit, &pending, &mut pool, 0, &[]);
        let idx: Vec<usize> = d.iter().map(|x| x.job_index).collect();
        assert_eq!(idx, vec![0, 2]);
    }

    #[test]
    fn sjf_prefers_short_jobs() {
        let cfg = small_config(8);
        let mut pool = NodePool::new(&cfg);
        // Only one can fit at a time: the shortest wall time wins.
        let pending = vec![job(1, 8, 500), job(2, 8, 100)];
        let d = schedule_jobs(Policy::Sjf, &pending, &mut pool, 0, &[]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].job_index, 1);
    }

    #[test]
    fn backfill_starts_small_job_that_ends_before_reservation() {
        let cfg = small_config(10);
        let mut pool = NodePool::new(&cfg);
        // 6 nodes busy until t=1000; 4 free.
        let busy = pool.allocate(0, 6).unwrap();
        assert_eq!(busy.len(), 6);
        let running = [RunningRelease { end_time_s: 1000, partition: 0, nodes: 6 }];
        // Head wants 8 (must wait until t=1000); backfill candidate wants
        // 4 for 500 s (ends at 500 < 1000): allowed.
        let pending = vec![job(1, 8, 400), job(2, 4, 500)];
        let d = schedule_jobs(Policy::EasyBackfill, &pending, &mut pool, 0, &running);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].job_index, 1);
    }

    #[test]
    fn backfill_refuses_job_that_would_delay_head() {
        let cfg = small_config(10);
        let mut pool = NodePool::new(&cfg);
        let _busy = pool.allocate(0, 6).unwrap();
        let running = [RunningRelease { end_time_s: 1000, partition: 0, nodes: 6 }];
        // Backfill candidate runs 2000 s (past the reservation) and needs
        // 4 nodes; spare at shadow = (4 free + 6 released) - 8 = 2 < 4:
        // must NOT start.
        let pending = vec![job(1, 8, 400), job(2, 4, 2000)];
        let d = schedule_jobs(Policy::EasyBackfill, &pending, &mut pool, 0, &running);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn backfill_allows_long_job_within_spare() {
        let cfg = small_config(10);
        let mut pool = NodePool::new(&cfg);
        let _busy = pool.allocate(0, 6).unwrap();
        let running = [RunningRelease { end_time_s: 1000, partition: 0, nodes: 6 }];
        // Spare at shadow = 10 - 8 = 2: a 2-node job may run arbitrarily
        // long without delaying the head.
        let pending = vec![job(1, 8, 400), job(2, 2, 100_000)];
        let d = schedule_jobs(Policy::EasyBackfill, &pending, &mut pool, 0, &running);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].job_index, 1);
    }

    #[test]
    fn multi_partition_pools_are_independent() {
        let mut cfg = SystemConfig::frontier();
        cfg.partitions = vec![
            PartitionConfig { name: "work".into(), nodes: 4, gpus_per_node: 0 },
            PartitionConfig { name: "gpu".into(), nodes: 4, gpus_per_node: 8 },
        ];
        let mut pool = NodePool::new(&cfg);
        let a = pool.allocate(0, 4).unwrap();
        assert_eq!(pool.available(0), 0);
        assert_eq!(pool.available(1), 4);
        // Node ids are globally unique across partitions.
        let b = pool.allocate(1, 4).unwrap();
        assert!(a.iter().all(|id| !b.contains(id)));
        // FCFS blocking in partition 0 must not block partition 1.
        let mut j0 = job(1, 1, 100);
        j0.partition = 0;
        let mut j1 = job(2, 2, 100);
        j1.partition = 1;
        pool.release(1, &b);
        let d = schedule_jobs(Policy::Fcfs, &[j0, j1], &mut pool, 0, &[]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].job_index, 1);
    }

    #[test]
    fn no_node_double_allocated_across_many_ops() {
        let cfg = small_config(64);
        let mut pool = NodePool::new(&cfg);
        let mut rng = exadigit_sim::Rng::new(99);
        let mut held: Vec<Vec<u32>> = Vec::new();
        for _ in 0..500 {
            if rng.chance(0.6) {
                let n = 1 + rng.uniform_usize(16);
                if let Some(nodes) = pool.allocate(0, n) {
                    held.push(nodes);
                }
            } else if !held.is_empty() {
                let i = rng.uniform_usize(held.len());
                let nodes = held.swap_remove(i);
                pool.release(0, &nodes);
            }
            // Invariant: held + free = capacity, no overlaps.
            let held_count: usize = held.iter().map(|h| h.len()).sum();
            assert_eq!(held_count + pool.available(0), 64);
            let mut seen = std::collections::HashSet::new();
            for h in &held {
                for &id in h {
                    assert!(seen.insert(id), "node {id} double-allocated");
                }
            }
        }
    }
}
