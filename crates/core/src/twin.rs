//! The digital twin façade.
//!
//! [`DigitalTwin`] assembles the three modules of Fig. 1: RAPS advances
//! 1 s-resolution time through its discrete-event kernel ([`run`] jumps
//! the clock event-to-event; [`tick`] still single-steps the literal
//! Algorithm 1 second), the selected cooling backend (L4 plant, L3
//! surrogate, or L2 telemetry replay — see
//! [`crate::config::CoolingBackend`] and `docs/FIDELITY.md`) is attached
//! across the FMI-lite boundary at the 15 s cadence, and the scene graph
//! provides the L1 representation. This is the type examples and what-if
//! studies interact with.
//!
//! [`run`]: DigitalTwin::run
//! [`tick`]: DigitalTwin::tick

use crate::config::{CoolingBackend, TwinConfig};
use crate::levels::TwinLevel;
use crate::online::OnlineCoolingModel;
use crate::surrogate::SurrogateCoolingModel;
use exadigit_cooling::CoolingModel;
use exadigit_raps::job::Job;
use exadigit_raps::power::PowerSnapshot;
use exadigit_raps::simulation::{CoolingCoupling, RapsSimulation, SimOutputs};
use exadigit_raps::stats::RunReport;
use exadigit_sim::fmi::{CoSimModel, FmiError};
use exadigit_sim::TimeSeries;
use exadigit_telemetry::replay::ReplayCoolingModel;
use exadigit_viz::SceneGraph;

/// Version stamp written into every serialized twin state. Bump it when
/// the layout of any state reachable from [`DigitalTwin`] changes shape;
/// [`DigitalTwin::from_state`] refuses other versions with an explicit
/// error instead of deserializing garbage physics (policy in
/// `docs/SERVICE.md` § "Durability and recovery").
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// A fully assembled digital twin.
pub struct DigitalTwin {
    /// The generating configuration.
    pub config: TwinConfig,
    sim: RapsSimulation,
}

impl DigitalTwin {
    /// Build the twin from a configuration (validates first). The
    /// cooling backend is materialised here — every variant yields a
    /// `Box<dyn CoSimModel>` exposing the same `cooling_vars` names, so
    /// the coupling below is fidelity-agnostic.
    pub fn new(config: TwinConfig) -> Result<Self, String> {
        config.validate()?;
        let mut sim = RapsSimulation::new(
            config.system.clone(),
            config.delivery,
            config.policy,
            config.record_every_s,
        );
        let num_cdus = config.system.cooling.num_cdus;
        if let Some(model) = config.cooling.build(&config.plant, num_cdus)? {
            let coupling = CoolingCoupling::attach(model, num_cdus)
                .map_err(|e| format!("cooling coupling failed: {e}"))?;
            sim.attach_cooling(coupling);
        }
        Ok(DigitalTwin { config, sim })
    }

    /// The Fig. 2 maturity level of the attached cooling backend
    /// (`None` when running power-only).
    pub fn cooling_level(&self) -> Option<TwinLevel> {
        self.config.cooling.level()
    }

    /// Submit jobs (synthetic, benchmark, or telemetry-derived).
    pub fn submit(&mut self, jobs: Vec<Job>) {
        self.sim.submit_jobs(jobs);
    }

    /// Provide the wet-bulb forcing for the cooling model.
    pub fn set_wet_bulb(&mut self, series: TimeSeries) {
        self.sim.set_wet_bulb(series);
    }

    /// Advance the twin by `seconds` of simulated time through the
    /// discrete-event kernel (O(events), not O(seconds) — see
    /// `DESIGN.md` § "Discrete-event kernel").
    pub fn run(&mut self, seconds: u64) -> Result<(), FmiError> {
        let target = self.sim.now() + seconds;
        self.sim.run_until(target)
    }

    /// Advance a single second (Algorithm 1 `TICK`).
    pub fn tick(&mut self) -> Result<(), FmiError> {
        self.sim.tick()
    }

    /// Current simulated time, seconds.
    pub fn now(&self) -> u64 {
        self.sim.now()
    }

    /// Latest power snapshot.
    pub fn snapshot(&self) -> &PowerSnapshot {
        self.sim.snapshot()
    }

    /// Recorded output series.
    pub fn outputs(&self) -> &SimOutputs {
        self.sim.outputs()
    }

    /// Node-allocation utilization.
    pub fn utilization(&self) -> f64 {
        self.sim.utilization()
    }

    /// Jobs currently running / waiting.
    pub fn queue_state(&self) -> (usize, usize) {
        (self.sim.running_count(), self.sim.pending_count())
    }

    /// Read a cooling-model output by name (None without cooling or for
    /// unknown names).
    pub fn cooling_output(&self, name: &str) -> Option<f64> {
        let model = self.sim.cooling_model()?;
        let vr = model.var_by_name(name)?.vr;
        model.get_real(vr).ok()
    }

    /// The §III-B5 run report.
    pub fn report(&self) -> RunReport {
        self.sim.report()
    }

    /// The event kernel's observability counters (shared atomic
    /// handles; see `exadigit_raps::metrics::KernelMetrics`).
    pub fn kernel_metrics(&self) -> &exadigit_raps::metrics::KernelMetrics {
        self.sim.metrics()
    }

    /// Route the event kernel's counts through caller-owned handles
    /// (how the service feeds its metrics registry). Counters are
    /// diagnostics, not state: they are never serialized, and forks of
    /// this twin share the attached handles.
    pub fn set_kernel_metrics(&mut self, metrics: exadigit_raps::metrics::KernelMetrics) {
        self.sim.set_metrics(metrics);
    }

    /// The L1 scene graph for this system (Frontier layout; generated
    /// scenes for other systems are future work, as in the paper).
    pub fn scene(&self) -> SceneGraph {
        SceneGraph::frontier()
    }

    /// Fork the twin mid-run: a full, independent copy of the simulation
    /// state (clock, queues, event calendar, outputs, cooling-model
    /// internals) that can be advanced without disturbing the original.
    ///
    /// This is the what-if primitive of the service layer
    /// (`docs/SERVICE.md`): a query branched from a snapshot at time `t`
    /// costs O(horizon) instead of O(t + horizon), and
    /// `fork().run(h)` is bit-identical to running the original `h`
    /// seconds (the `service_fork` golden + property tests). Fails only
    /// for a cooling backend whose model cannot capture its state — all
    /// built-in backends can.
    pub fn fork(&self) -> Result<DigitalTwin, String> {
        Ok(DigitalTwin { config: self.config.clone(), sim: self.sim.fork()? })
    }

    /// Serialize the complete twin state — configuration, clock, queues,
    /// event calendar, recorded outputs, and the cooling backend's
    /// internals — as a versioned value: [`DigitalTwin::fork`] across a
    /// process boundary.
    ///
    /// A twin rebuilt by [`DigitalTwin::from_state`] and advanced is
    /// bit-identical to this one advanced the same way (the
    /// `snapshot_roundtrip` battery). Fails only for a cooling backend
    /// whose model cannot capture its state — all built-in backends can.
    pub fn save_state(&self) -> Result<serde::Value, String> {
        Ok(serde::Value::Object(vec![
            (
                "snapshot_format_version".to_string(),
                serde::Value::Number(serde::Number::U(SNAPSHOT_FORMAT_VERSION as u64)),
            ),
            ("config".to_string(), serde::Serialize::to_value(&self.config)),
            ("sim".to_string(), self.sim.save_state()?),
        ]))
    }

    /// Rebuild a twin from a [`DigitalTwin::save_state`] value.
    ///
    /// The `snapshot_format_version` stamp is checked first: a value
    /// written by an incompatible build fails here with an explicit
    /// version message (the golden-fixture test pins this), never with
    /// garbage physics. The cooling model is reconstructed from its
    /// captured internals *without* re-running `setup`, so an L4 plant
    /// resumes mid-transient rather than from a fresh settle.
    pub fn from_state(value: &serde::Value) -> Result<Self, String> {
        let version = value
            .get("snapshot_format_version")
            .and_then(serde::Value::as_u64)
            .ok_or_else(|| {
                "snapshot has no snapshot_format_version field; refusing to load".to_string()
            })?;
        if version != SNAPSHOT_FORMAT_VERSION as u64 {
            return Err(format!(
                "unsupported snapshot format version {version}: this build reads \
                 snapshot format version {SNAPSHOT_FORMAT_VERSION}"
            ));
        }
        let config_value =
            value.get("config").ok_or_else(|| "snapshot has no config field".to_string())?;
        let config = <TwinConfig as serde::Deserialize>::from_value(config_value)
            .map_err(|e| format!("invalid twin config in snapshot: {e}"))?;
        config.validate()?;
        let sim_value =
            value.get("sim").ok_or_else(|| "snapshot has no sim field".to_string())?;
        let backend = config.cooling.clone();
        let sim = RapsSimulation::from_state(sim_value, |model_state| {
            rebuild_cooling_model(&backend, model_state)
        })?;
        Ok(DigitalTwin { config, sim })
    }

    /// [`DigitalTwin::save_state`] rendered as a JSON string.
    pub fn to_snapshot_json(&self) -> Result<String, String> {
        let value = self.save_state()?;
        serde_json::to_string(&value).map_err(|e| format!("snapshot serialization failed: {e}"))
    }

    /// Rebuild a twin from a [`DigitalTwin::to_snapshot_json`] string.
    pub fn from_snapshot_json(s: &str) -> Result<Self, String> {
        let value: serde::Value = serde_json::from_str(s)
            .map_err(|e| format!("snapshot is not valid JSON: {e}"))?;
        DigitalTwin::from_state(&value)
    }

    /// Mutable access to the underlying RAPS simulation (advanced use).
    pub fn raps_mut(&mut self) -> &mut RapsSimulation {
        &mut self.sim
    }

    /// Immutable access to the underlying RAPS simulation.
    pub fn raps(&self) -> &RapsSimulation {
        &self.sim
    }
}

/// Deserialize a cooling model's captured state back into the concrete
/// backend type the configuration names. The state blob is the one the
/// model's [`CoSimModel::save_state`] produced, so each arm is a plain
/// `from_value` of the backend's own struct.
fn rebuild_cooling_model(
    backend: &CoolingBackend,
    state: &serde::Value,
) -> Result<Box<dyn CoSimModel>, String> {
    match backend {
        CoolingBackend::None => {
            Err("snapshot carries cooling state but the config's backend is None".to_string())
        }
        CoolingBackend::Plant => Ok(Box::new(
            <CoolingModel as serde::Deserialize>::from_value(state)
                .map_err(|e| format!("invalid L4 plant state in snapshot: {e}"))?,
        )),
        CoolingBackend::Surrogate(_) => Ok(Box::new(
            <SurrogateCoolingModel as serde::Deserialize>::from_value(state)
                .map_err(|e| format!("invalid L3 surrogate state in snapshot: {e}"))?,
        )),
        CoolingBackend::Online(_) => Ok(Box::new(
            <OnlineCoolingModel as serde::Deserialize>::from_value(state)
                .map_err(|e| format!("invalid online L3/L4 state in snapshot: {e}"))?,
        )),
        CoolingBackend::Replay(_) => Ok(Box::new(
            <ReplayCoolingModel as serde::Deserialize>::from_value(state)
                .map_err(|e| format!("invalid L2 replay state in snapshot: {e}"))?,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exadigit_raps::job::Job;

    #[test]
    fn twin_without_cooling_runs() {
        let mut twin = DigitalTwin::new(TwinConfig::frontier_power_only()).unwrap();
        twin.submit(vec![Job::new(1, "j", 256, 120, 5, 0.6, 0.8)]);
        twin.run(300).unwrap();
        let r = twin.report();
        assert_eq!(r.jobs_completed, 1);
        assert!(r.avg_power_mw > 7.0);
        assert!(twin.cooling_output("pue").is_none());
    }

    #[test]
    fn twin_with_cooling_reports_pue() {
        let mut twin = DigitalTwin::new(TwinConfig::frontier()).unwrap();
        twin.submit(vec![Job::new(1, "load", 4096, 1800, 1, 0.8, 0.9)]);
        twin.run(1800).unwrap();
        let pue = twin.cooling_output("pue").expect("cooling attached");
        assert!((1.0..1.3).contains(&pue), "pue={pue}");
        let r = twin.report();
        assert!(r.avg_pue.is_some());
        // Cooling outputs are live: supply temperature in a sane band.
        let t = twin.cooling_output("cdu[1].secondary_supply_temp").unwrap();
        assert!((20.0..45.0).contains(&t), "t={t}");
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = TwinConfig::frontier();
        cfg.system.cooling.num_cdus = 3;
        assert!(DigitalTwin::new(cfg).is_err());
    }

    #[test]
    fn twin_with_replay_backend_serves_trace_pue() {
        use crate::config::CoolingBackend;
        use exadigit_telemetry::replay::CoolingTrace;
        let cfg = TwinConfig::frontier()
            .with_backend(CoolingBackend::Replay(CoolingTrace::constant(1.0625, 5.0e5)));
        assert_eq!(cfg.cooling.level(), Some(crate::levels::TwinLevel::Informative));
        let mut twin = DigitalTwin::new(cfg).unwrap();
        twin.submit(vec![Job::new(1, "load", 1024, 600, 1, 0.8, 0.9)]);
        twin.run(900).unwrap();
        assert_eq!(twin.cooling_output("pue"), Some(1.0625));
        assert_eq!(twin.cooling_output("cooling_power"), Some(5.0e5));
        let r = twin.report();
        assert_eq!(r.avg_pue, Some(1.0625));
    }

    #[test]
    fn twin_with_fitted_surrogate_backend_reports_pue() {
        use crate::config::{CoolingBackend, SurrogateSource};
        use crate::surrogate::{Sample, Surrogate};
        // A synthetic fit standing in for a trained surrogate (training
        // the full Frontier envelope is exercised in the integration
        // tests; unit scope here is the twin wiring).
        let mut samples = Vec::new();
        for li in 0..4 {
            for wi in 0..4 {
                let l = 0.1 + 0.25 * li as f64;
                let w = 5.0 + 7.0 * wi as f64;
                samples.push(Sample {
                    load_fraction: l,
                    wet_bulb_c: w,
                    pue: 1.03 + 0.02 * l + 0.001 * w,
                    cooling_power_w: 4.0e5 * (1.0 + l),
                });
            }
        }
        let sur = Surrogate::fit(&samples).unwrap();
        let cfg = TwinConfig::frontier()
            .with_backend(CoolingBackend::Surrogate(SurrogateSource::Fitted(sur)));
        assert_eq!(cfg.cooling.level(), Some(crate::levels::TwinLevel::Predictive));
        let mut twin = DigitalTwin::new(cfg).unwrap();
        twin.submit(vec![Job::new(1, "load", 4096, 1800, 1, 0.8, 0.9)]);
        twin.run(1800).unwrap();
        let pue = twin.cooling_output("pue").expect("surrogate attached");
        assert!((1.0..1.3).contains(&pue), "pue={pue}");
        // The counted-warning channel is visible across the boundary.
        let count = twin.cooling_output("surrogate.extrapolation_count").unwrap();
        assert!(count >= 0.0);
    }

    #[test]
    fn forked_twin_with_plant_matches_continued_original() {
        // The hard case: the L4 plant's transient state (thermal volumes,
        // PID integrators, staging hysteresis) must survive the fork for
        // the continuation to stay bit-identical.
        let mut twin = DigitalTwin::new(TwinConfig::frontier()).unwrap();
        twin.submit(vec![Job::new(1, "load", 4096, 3600, 1, 0.8, 0.9)]);
        twin.run(600).unwrap();
        let mut forked = twin.fork().unwrap();
        twin.run(600).unwrap();
        forked.run(600).unwrap();
        let (a, b) = (twin.outputs(), forked.outputs());
        assert_eq!(a.pue.len(), b.pue.len());
        assert!(a
            .pue
            .samples()
            .zip(b.pue.samples())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(
            twin.cooling_output("cdu[1].secondary_supply_temp").map(f64::to_bits),
            forked.cooling_output("cdu[1].secondary_supply_temp").map(f64::to_bits),
        );
        assert_eq!(twin.report(), forked.report());
    }

    #[test]
    fn mid_run_cooling_attach_anchors_pue_series_at_the_attach_time() {
        use crate::config::CoolingBackend;
        use exadigit_telemetry::replay::CoolingTrace;
        let mut twin = DigitalTwin::new(TwinConfig::frontier_power_only()).unwrap();
        twin.run(5_000).unwrap();
        let backend = CoolingBackend::Replay(CoolingTrace::constant(1.05, 4.0e5));
        let model = backend.build(&twin.config.plant, 25).unwrap().unwrap();
        let coupling =
            exadigit_raps::simulation::CoolingCoupling::attach(model, 25).unwrap();
        twin.raps_mut().attach_cooling(coupling);
        twin.run(100).unwrap();
        let pue = &twin.outputs().pue;
        assert!(!pue.is_empty());
        // First sample belongs to the first quantum after t = 5,000.
        assert_eq!(pue.t0, 5_010.0);

        // Detach, coast, re-attach: the gap's missed quanta pad as NaN
        // so appended samples keep their physical times.
        let n_before = pue.len();
        twin.raps_mut().detach_cooling();
        twin.run(300).unwrap();
        let backend = CoolingBackend::Replay(CoolingTrace::constant(1.08, 4.0e5));
        let model = backend.build(&twin.config.plant, 25).unwrap().unwrap();
        let coupling =
            exadigit_raps::simulation::CoolingCoupling::attach(model, 25).unwrap();
        twin.raps_mut().attach_cooling(coupling);
        twin.run(45).unwrap();
        let pue = &twin.outputs().pue;
        assert!(pue[n_before].is_nan(), "gap quanta must read as no-measurement");
        let last_t = pue.t0 + (pue.len() as f64 - 1.0) * 15.0;
        assert!(pue.last().unwrap() - 1.08 == 0.0);
        assert!(last_t > 5_400.0, "appended samples carry physical times, got {last_t}");
    }

    #[test]
    fn save_load_run_matches_uninterrupted_run_with_plant() {
        // The L4 hard case: thermal volumes, PID integrators, staging
        // hysteresis, and the hydraulic warm start must all survive the
        // JSON round trip for the continuation to stay bit-identical.
        let mut twin = DigitalTwin::new(TwinConfig::frontier()).unwrap();
        twin.submit(vec![Job::new(1, "load", 4096, 3600, 1, 0.8, 0.9)]);
        twin.run(600).unwrap();
        let json = twin.to_snapshot_json().unwrap();
        let mut loaded = DigitalTwin::from_snapshot_json(&json).unwrap();
        assert_eq!(loaded.now(), twin.now());
        twin.run(600).unwrap();
        loaded.run(600).unwrap();
        let (a, b) = (twin.outputs(), loaded.outputs());
        assert_eq!(a.pue.len(), b.pue.len());
        assert!(a
            .pue
            .samples()
            .zip(b.pue.samples())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(
            twin.cooling_output("cdu[1].secondary_supply_temp").map(f64::to_bits),
            loaded.cooling_output("cdu[1].secondary_supply_temp").map(f64::to_bits),
        );
        assert_eq!(twin.report(), loaded.report());
    }

    #[test]
    fn snapshot_version_mismatch_is_refused_loudly() {
        let twin = DigitalTwin::new(TwinConfig::frontier_power_only()).unwrap();
        let json = twin.to_snapshot_json().unwrap();
        let bumped = json.replacen(
            &format!("\"snapshot_format_version\":{SNAPSHOT_FORMAT_VERSION}"),
            &format!("\"snapshot_format_version\":{}", SNAPSHOT_FORMAT_VERSION + 1),
            1,
        );
        assert_ne!(json, bumped, "version stamp must appear in the JSON");
        let err = match DigitalTwin::from_snapshot_json(&bumped) {
            Err(e) => e,
            Ok(_) => panic!("version-bumped snapshot must not load"),
        };
        assert!(err.contains("snapshot format version"), "err={err}");
    }

    #[test]
    fn scene_available() {
        let twin = DigitalTwin::new(TwinConfig::frontier_power_only()).unwrap();
        assert!(twin.scene().node_count() > 100);
    }

    #[test]
    fn queue_state_reflects_submission() {
        let mut twin = DigitalTwin::new(TwinConfig::frontier_power_only()).unwrap();
        twin.submit(vec![
            Job::new(1, "all", 9472, 600, 1, 0.5, 0.5),
            Job::new(2, "wait", 128, 60, 2, 0.5, 0.5),
        ]);
        twin.run(30).unwrap();
        assert_eq!(twin.queue_state(), (1, 1));
    }
}
