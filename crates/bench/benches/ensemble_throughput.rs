//! Ensemble-engine throughput: scenarios/second at pool widths 1/2/4/8.
//!
//! The workload is a fixed 16-member UQ ensemble (the paper's §IV
//! Monte-Carlo shape) on a small Frontier slice, batched through
//! `EnsembleRunner` at each width. Because the executor guarantees
//! bit-identical output at every width, the only thing that may change
//! across these benches is wall-clock time — the acceptance target is
//! ≥2× at width 4 on a multi-core runner. The first recorded baseline
//! lives in `BENCH_ensemble_throughput.json` at the repo root (note its
//! `host_cpus` field: on a single-core container every width necessarily
//! measures flat).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exadigit_raps::config::SystemConfig;
use exadigit_raps::job::Job;
use exadigit_raps::uq::{run_ensemble_on, UqPerturbations};
use exadigit_sim::EnsembleRunner;
use std::hint::black_box;
use std::time::Duration;

const MEMBERS: usize = 16;

fn bench_system() -> SystemConfig {
    let mut cfg = SystemConfig::frontier();
    cfg.partitions[0].nodes = 256;
    cfg.cooling.num_cdus = 1;
    cfg.cooling.racks_per_cdu = 2;
    cfg
}

fn bench_ensemble_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensemble_throughput");
    group.measurement_time(Duration::from_secs(10)).sample_size(10);
    let cfg = bench_system();
    let jobs = vec![Job::new(1, "load", 128, 1200, 1, 0.8, 0.8)];
    for width in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new(format!("uq_{MEMBERS}_members"), width),
            &width,
            |b, &width| {
                let runner = EnsembleRunner::new(42).threads(width);
                b.iter(|| {
                    let summary =
                        run_ensemble_on(&runner, &cfg, &jobs, 1200, MEMBERS, &UqPerturbations::default());
                    black_box(summary.power_mean_mw)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ensemble_throughput);
criterion_main!(benches);
