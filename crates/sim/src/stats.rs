//! Statistics for verification & validation.
//!
//! §IV of the paper reports RMSE and MAE between model predictions and
//! telemetry (Fig. 7), percent errors for the power verification tests
//! (Table III) and min/avg/max/std summaries over 183 daily replays
//! (Table IV). This module provides those metrics plus an online Welford
//! accumulator so multi-day replays never need to retain raw samples.

use serde::{Deserialize, Serialize};

/// Root mean square error between two equally long slices.
pub fn rmse(predicted: &[f64], measured: &[f64]) -> f64 {
    assert_eq!(predicted.len(), measured.len(), "series lengths differ");
    if predicted.is_empty() {
        return f64::NAN;
    }
    let sum_sq: f64 = predicted
        .iter()
        .zip(measured)
        .map(|(p, m)| (p - m) * (p - m))
        .sum();
    (sum_sq / predicted.len() as f64).sqrt()
}

/// Mean absolute error between two equally long slices.
pub fn mae(predicted: &[f64], measured: &[f64]) -> f64 {
    assert_eq!(predicted.len(), measured.len(), "series lengths differ");
    if predicted.is_empty() {
        return f64::NAN;
    }
    let sum: f64 = predicted
        .iter()
        .zip(measured)
        .map(|(p, m)| (p - m).abs())
        .sum();
    sum / predicted.len() as f64
}

/// Mean absolute percentage error (in percent). Measured values of zero are
/// skipped to avoid division blow-ups.
pub fn mape(predicted: &[f64], measured: &[f64]) -> f64 {
    assert_eq!(predicted.len(), measured.len(), "series lengths differ");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (p, m) in predicted.iter().zip(measured) {
        if m.abs() > f64::EPSILON {
            sum += ((p - m) / m).abs();
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        100.0 * sum / n as f64
    }
}

/// Signed percent error of a single prediction vs a reference, as used in
/// Table III of the paper.
pub fn percent_error(predicted: f64, reference: f64) -> f64 {
    100.0 * (predicted - reference) / reference
}

/// Percentile (0..=100) of a slice using linear interpolation between order
/// statistics. The input need not be sorted.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Online mean/variance accumulator (Welford's algorithm): numerically
/// stable, O(1) memory, merge-able for parallel reduction with rayon.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Welford { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Absorb one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Absorb `n` identical observations in O(1) — the Chan et al. merge
    /// of a degenerate accumulator `{n, mean: x, m2: 0}`. This is what
    /// lets the event-driven simulation kernel account a constant-power
    /// gap of thousands of seconds in one update instead of one push per
    /// simulated second (mathematically exact: the mean/variance of `n`
    /// copies of `x` have closed forms; only float rounding differs from
    /// `n` sequential pushes).
    #[inline]
    pub fn push_n(&mut self, x: f64, n: u64) {
        if n == 0 {
            return;
        }
        self.merge(&Welford { n, mean: x, m2: 0.0, min: x, max: x });
    }

    /// Merge another accumulator (parallel reduction; Chan et al. update).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n_total as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n_total as f64;
        self.n = n_total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance (NaN when empty).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation (NaN for fewer than two observations).
    pub fn std(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Snapshot as a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.n,
            min: self.min(),
            mean: self.mean(),
            max: self.max(),
            std: self.std(),
        }
    }
}

/// Min/mean/max/std summary of a set of observations — one row of the
/// paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Minimum.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation.
    pub std: f64,
}

impl Summary {
    /// Summarise a slice in one pass.
    pub fn of(values: &[f64]) -> Summary {
        let mut w = Welford::new();
        for &v in values {
            w.push(v);
        }
        w.summary()
    }
}

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Histogram with `nbins` equal-width bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo && nbins > 0);
        Histogram { lo, hi, bins: vec![0; nbins], underflow: 0, overflow: 0 }
    }

    /// Record an observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let nbins = self.bins.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * nbins as f64) as usize;
            self.bins[idx.min(nbins - 1)] += 1;
        }
    }

    /// Bin counts (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count below range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count at-or-above range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_zero_for_identical() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(mae(&a, &a), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        let p = [1.0, 2.0, 3.0];
        let m = [2.0, 2.0, 5.0];
        // errors: -1, 0, -2 -> rmse = sqrt(5/3)
        assert!((rmse(&p, &m) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&p, &m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percent_error_matches_table3_style() {
        // Table III: idle telemetry 7.4 MW vs RAPS 7.24 MW -> -2.16 %
        let e = percent_error(7.24, 7.4);
        assert!((e + 2.16).abs() < 0.01, "e={e}");
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var =
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.std() - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..500).map(|i| i as f64 * 0.37).collect();
        let mut all = Welford::new();
        for &x in &data {
            all.push(x);
        }
        let (a, b) = data.split_at(123);
        let mut wa = Welford::new();
        let mut wb = Welford::new();
        for &x in a {
            wa.push(x);
        }
        for &x in b {
            wb.push(x);
        }
        wa.merge(&wb);
        assert!((wa.mean() - all.mean()).abs() < 1e-9);
        assert!((wa.std() - all.std()).abs() < 1e-9);
        assert_eq!(wa.count(), all.count());
        assert_eq!(wa.min(), all.min());
        assert_eq!(wa.max(), all.max());
    }

    #[test]
    fn push_n_matches_sequential_pushes() {
        let mut seq = Welford::new();
        let mut fast = Welford::new();
        seq.push(3.0);
        fast.push(3.0);
        for _ in 0..1000 {
            seq.push(7.25);
        }
        fast.push_n(7.25, 1000);
        for _ in 0..99 {
            seq.push(-2.5);
        }
        fast.push_n(-2.5, 99);
        assert_eq!(fast.count(), seq.count());
        assert_eq!(fast.min(), seq.min());
        assert_eq!(fast.max(), seq.max());
        assert!((fast.mean() - seq.mean()).abs() < 1e-12 * seq.mean().abs());
        assert!((fast.std() - seq.std()).abs() < 1e-9);
        // Zero-weight push is a no-op.
        let before = fast;
        fast.push_n(999.0, 0);
        assert_eq!(fast, before);
    }

    #[test]
    fn summary_of_slice() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        h.push(-1.0);
        h.push(42.0);
        assert_eq!(h.bins(), &[1u64; 10]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 12);
    }

    #[test]
    fn mape_skips_zero_reference() {
        let p = [1.0, 2.0];
        let m = [0.0, 4.0];
        assert!((mape(&p, &m) - 50.0).abs() < 1e-12);
    }
}
