//! Regenerates **Fig. 9** of the paper: "Telemetry replay validation test
//! of 24-hour period ... containing an HPL run" — the day with ~1238 jobs
//! (≈400 single-node) and four back-to-back 9216-node HPL runs, showing
//! predicted vs measured system power, η_system, cooling efficiency and
//! utilization.
//!
//! ```sh
//! cargo run --release -p exadigit-bench --bin fig9_telemetry_replay -- --hours 24
//! ```

use exadigit_bench::{arg_u64, section};
use exadigit_raps::config::SystemConfig;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::simulation::RapsSimulation;
use exadigit_raps::workload::benchmark_day;
use exadigit_telemetry::{compare_channels, SyntheticTwin};
use exadigit_viz::chart::{bucket_means, line_chart, spark_series};

fn main() {
    let hours = arg_u64("--hours", 24);
    let span = hours * 3_600;
    section(&format!("Fig. 9 — telemetry replay of a {hours} h period with HPL runs"));

    let jobs: Vec<_> =
        benchmark_day(0x0F19).into_iter().filter(|j| j.submit_time_s < span).collect();
    let singles = jobs.iter().filter(|j| j.nodes == 1).count();
    let hpls = jobs.iter().filter(|j| j.name.starts_with("hpl")).count();
    println!(
        "  workload: {} jobs ({} single-node, {} HPL 9216-node; paper: 1238 / 400 / 4)",
        jobs.len(),
        singles,
        hpls
    );

    println!("  recording physical twin (measured side)...");
    let twin = SyntheticTwin::frontier();
    let telemetry = twin.record_span(jobs.clone(), span, 0);

    println!("  replaying through the digital twin (predicted side)...");
    let t0 = std::time::Instant::now();
    let mut sim = RapsSimulation::new(
        SystemConfig::frontier(),
        PowerDelivery::StandardAC,
        Policy::FirstFit,
        15,
    );
    sim.submit_jobs(jobs);
    sim.run_until(span).expect("replay");
    let replay_wall = t0.elapsed();
    let report = sim.report();

    // The four Fig. 9 series.
    let predicted = &sim.outputs().system_power_w;
    let cmp = compare_channels("P_system", predicted, &telemetry.measured_power_w, 60.0);
    let width = 72;
    let pred_mw: Vec<f64> =
        bucket_means(&predicted.to_vec(), width).iter().map(|w| w / 1e6).collect();
    let meas_mw: Vec<f64> =
        bucket_means(&telemetry.measured_power_w.to_vec(), width).iter().map(|w| w / 1e6).collect();
    println!("\n  instantaneous system power [MW] (red=predicted, black=measured in the paper):");
    println!("{}", line_chart(&[("predicted", &pred_mw), ("measured", &meas_mw)], width, 14));
    println!("  η_system     {}", spark_series(&sim.outputs().efficiency, width));
    println!("  utilization  {}", spark_series(&sim.outputs().utilization, width));

    println!("\n  predicted vs measured power: RMSE {:.3} MW, MAE {:.3} MW, bias {:+.2} %",
        cmp.rmse / 1e6, cmp.mae / 1e6, cmp.mean_bias_percent());
    println!("\n{report}");
    println!(
        "\n  mean η_system {:.3} (paper ~0.933)   mean cooling efficiency (config) 0.945   utilization {:.1} %",
        report.efficiency,
        100.0 * report.avg_utilization
    );
    println!(
        "  replay wall time: {:.1} s for {hours} h without cooling (paper: ~3 min/24 h without cooling)",
        replay_wall.as_secs_f64()
    );
}
