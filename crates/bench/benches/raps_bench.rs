//! RAPS performance: node power evaluation, the full-system power solve,
//! 1 s tick cost under load, and the scheduling policies at queue depth.
//! Context: the paper replays 24 h in ~3 min without cooling — ~480 ticks
//! per wall second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exadigit_raps::config::SystemConfig;
use exadigit_raps::job::Job;
use exadigit_raps::power::{PowerDelivery, PowerModel};
use exadigit_raps::scheduler::{schedule_jobs, NodePool, Policy};
use exadigit_raps::simulation::RapsSimulation;
use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};
use std::hint::black_box;
use std::time::Duration;

fn bench_power_model(c: &mut Criterion) {
    let model = PowerModel::new(SystemConfig::frontier(), PowerDelivery::StandardAC);
    let mut group = c.benchmark_group("power_model");
    group.measurement_time(Duration::from_secs(3)).sample_size(30);
    group.bench_function("node_power_eq3", |b| {
        b.iter(|| black_box(model.node_power(black_box(0.33), black_box(0.79), 4)))
    });
    group.bench_function("uniform_power_full_system", |b| {
        b.iter(|| black_box(model.uniform_power(black_box(0.6), black_box(0.6)).system_w))
    });
    let mut acc = model.new_accumulator();
    group.bench_function("accumulate_74_racks_and_evaluate", |b| {
        b.iter(|| {
            model.reset_accumulator(&mut acc);
            for rack in 0..74 {
                model.add_nodes(&mut acc, rack, 128, 0.5, 0.7, 4);
            }
            black_box(model.evaluate(&acc).system_w)
        })
    });
    group.finish();
}

fn bench_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("raps_tick");
    group.measurement_time(Duration::from_secs(4)).sample_size(20);
    for (name, njobs) in [("idle", 0usize), ("loaded_200_jobs", 200)] {
        group.bench_function(name, |b| {
            let mut sim = RapsSimulation::new(
                SystemConfig::frontier(),
                PowerDelivery::StandardAC,
                Policy::FirstFit,
                3_600,
            );
            let jobs: Vec<Job> = (0..njobs)
                .map(|i| Job::new(i as u64, format!("j{i}"), 40, 1_000_000, 0, 0.5, 0.7))
                .collect();
            sim.submit_jobs(jobs);
            sim.run_until(30).unwrap(); // start everything
            b.iter(|| {
                sim.tick().unwrap();
            })
        });
    }
    group.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.measurement_time(Duration::from_secs(3)).sample_size(30);
    let cfg = SystemConfig::frontier();
    let mut generator = WorkloadGenerator::new(WorkloadParams::default(), 7);
    let mut pending = generator.generate_day(0);
    pending.truncate(1_000);
    for policy in [Policy::Fcfs, Policy::Sjf, Policy::FirstFit, Policy::EasyBackfill] {
        group.bench_with_input(
            BenchmarkId::new("queue_1000", format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter_batched(
                    || NodePool::new(&cfg),
                    |mut pool| black_box(schedule_jobs(policy, &pending, &mut pool, 0, &[])),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_power_model, bench_tick, bench_schedulers);
criterion_main!(benches);
