//! Dynamic power estimation and conversion losses.
//!
//! Implements §III-B1/B2 of the paper:
//!
//! * eq. (3): `P_node = P_CPU + 4·P_GPU + 4·P_NIC + P_RAM + 2·P_NVMe`, with
//!   CPU/GPU power linearly interpolated between idle and max by the
//!   utilization traces;
//! * eq. (1)/(2): the rectifier (η_R) and SIVOC (η_S) efficiency chain.
//!   The paper quotes flat 0.96/0.98 "within one percent of the actual
//!   value" but notes the real efficiency varies with input power, peaking
//!   at 96.3 % at 7.5 kW per rectifier and drooping 1-2 % near idle; we
//!   model that curve explicitly because the verification targets of
//!   Table III (7.24 / 22.3 / 28.2 MW) are only reachable with the
//!   load-dependent droop (see DESIGN.md §5);
//! * eq. (4): rack aggregation including 32 × 250 W switches, then CDU
//!   groups of three racks, 8.7 kW of CDU pumps each, and the system total;
//! * the §IV-3 what-if variants: smart load-sharing rectifiers (stage
//!   rectifiers so each runs near its peak-efficiency load) and direct
//!   380 V DC distribution (drop the rectification stage entirely).

use crate::config::{ConversionConfig, SystemConfig};
use serde::{Deserialize, Serialize};

/// Power-delivery variant under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PowerDelivery {
    /// Baseline: all rectifiers share the chassis load equally.
    #[default]
    StandardAC,
    /// What-if 1: rectifiers are staged on as needed so each operates in
    /// its peak-efficiency region.
    SmartRectifiers,
    /// What-if 2: direct 380 V DC distribution replaces AC rectification.
    Direct380Vdc,
}

/// The rectifier + SIVOC conversion chain of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConversionModel {
    cfg: ConversionConfig,
    delivery: PowerDelivery,
}

impl ConversionModel {
    /// New chain for the given configuration and delivery variant.
    pub fn new(cfg: ConversionConfig, delivery: PowerDelivery) -> Self {
        ConversionModel { cfg, delivery }
    }

    /// The delivery variant in force.
    pub fn delivery(&self) -> PowerDelivery {
        self.delivery
    }

    /// Rectifier efficiency at `load_w` output per rectifier: piecewise
    /// quadratic peaking at `rectifier_optimal_load_w` (96.3 % @ 7.5 kW).
    pub fn rectifier_efficiency(&self, load_w: f64) -> f64 {
        let c = &self.cfg;
        let dev = load_w - c.rectifier_optimal_load_w;
        let droop =
            if dev < 0.0 { c.rectifier_droop_low } else { c.rectifier_droop_high } * dev * dev;
        (c.rectifier_peak_efficiency - droop).max(0.90)
    }

    /// SIVOC efficiency at per-node load `load_w`: rises from the idle
    /// droop to the full-load value, saturating at `sivoc_full_load_w`.
    pub fn sivoc_efficiency(&self, load_w: f64) -> f64 {
        let c = &self.cfg;
        let frac = (load_w / c.sivoc_full_load_w).clamp(0.0, 1.0);
        c.sivoc_full_load_efficiency - c.sivoc_idle_droop * (1.0 - frac)
    }

    /// SIVOC input power (380 V bus side) for one node drawing `node_w`.
    pub fn sivoc_input(&self, node_w: f64) -> f64 {
        if node_w <= 0.0 {
            return 0.0;
        }
        node_w / self.sivoc_efficiency(node_w)
    }

    /// Number of rectifiers active for a rack bus load `rack_bus_w`.
    pub fn active_rectifiers(&self, rack_bus_w: f64) -> usize {
        let n_total = self.cfg.rectifiers_per_rack;
        match self.delivery {
            PowerDelivery::SmartRectifiers => {
                let needed = (rack_bus_w / self.cfg.rectifier_optimal_load_w).ceil() as usize;
                needed.clamp(1, n_total)
            }
            _ => n_total,
        }
    }

    /// Rack AC input power for a rack whose DC bus (rectifier output)
    /// carries `rack_bus_w` — i.e. the sum of SIVOC inputs of its nodes.
    pub fn rack_ac_input(&self, rack_bus_w: f64) -> f64 {
        if rack_bus_w <= 0.0 {
            return 0.0;
        }
        match self.delivery {
            PowerDelivery::Direct380Vdc => rack_bus_w / self.cfg.dc380_distribution_efficiency,
            _ => {
                let n = self.active_rectifiers(rack_bus_w);
                let per_rect = rack_bus_w / n as f64;
                rack_bus_w / self.rectifier_efficiency(per_rect)
            }
        }
    }
}

/// Per-component DC power accumulator, plus per-rack bus loads. Filled by
/// the simulation each power recompute, then evaluated into a
/// [`PowerSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct PowerAccumulator {
    /// Rectifier-output (380 V bus) load per rack, W.
    pub rack_bus_w: Vec<f64>,
    /// Node DC (48 V side) load per rack, W.
    pub rack_node_dc_w: Vec<f64>,
    /// Component breakdown (node DC side), W.
    pub cpu_w: f64,
    /// GPU total, W.
    pub gpu_w: f64,
    /// RAM total, W.
    pub ram_w: f64,
    /// NIC total, W.
    pub nic_w: f64,
    /// NVMe total, W.
    pub nvme_w: f64,
    /// Nodes accounted (sanity check).
    pub nodes_counted: usize,
}

impl PowerAccumulator {
    fn new(racks: usize) -> Self {
        PowerAccumulator {
            rack_bus_w: vec![0.0; racks],
            rack_node_dc_w: vec![0.0; racks],
            cpu_w: 0.0,
            gpu_w: 0.0,
            ram_w: 0.0,
            nic_w: 0.0,
            nvme_w: 0.0,
            nodes_counted: 0,
        }
    }

    fn reset(&mut self) {
        self.rack_bus_w.iter_mut().for_each(|v| *v = 0.0);
        self.rack_node_dc_w.iter_mut().for_each(|v| *v = 0.0);
        self.cpu_w = 0.0;
        self.gpu_w = 0.0;
        self.ram_w = 0.0;
        self.nic_w = 0.0;
        self.nvme_w = 0.0;
        self.nodes_counted = 0;
    }
}

/// One evaluated power state of the whole system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerSnapshot {
    /// Total system AC power (eq. 4 summed + CDU pumps), W.
    pub system_w: f64,
    /// Node DC power (48 V side), W.
    pub node_dc_w: f64,
    /// Node AC power (after rectifier + SIVOC losses), W.
    pub node_ac_w: f64,
    /// Conversion loss `P_L` (eq. 2 aggregated), W.
    pub loss_w: f64,
    /// System conversion efficiency η_system (eq. 1 aggregated).
    pub efficiency: f64,
    /// Switch power total, W.
    pub switch_w: f64,
    /// CDU pump power total, W.
    pub cdu_pump_w: f64,
    /// AC power per rack (without switches), W.
    pub rack_ac_w: Vec<f64>,
    /// Heat delivered to each CDU's liquid loop (power × cooling
    /// efficiency), W — the input vector of the cooling model.
    pub cdu_heat_w: Vec<f64>,
    /// Component breakdown for Fig. 4 (node-DC side plus overheads).
    pub breakdown: PowerBreakdown,
}

/// Fig. 4 power-utilization breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// GPUs, W.
    pub gpus_w: f64,
    /// CPUs, W.
    pub cpus_w: f64,
    /// RAM, W.
    pub ram_w: f64,
    /// NICs, W.
    pub nics_w: f64,
    /// NVMe drives, W.
    pub nvme_w: f64,
    /// Network switches, W.
    pub switches_w: f64,
    /// Rectification + conversion losses, W.
    pub losses_w: f64,
    /// CDU pumps, W.
    pub cdu_pumps_w: f64,
}

impl PowerBreakdown {
    /// Sum of all breakdown entries (equals system power).
    pub fn total_w(&self) -> f64 {
        self.gpus_w
            + self.cpus_w
            + self.ram_w
            + self.nics_w
            + self.nvme_w
            + self.switches_w
            + self.losses_w
            + self.cdu_pumps_w
    }
}

/// The system power model: eq. (3) node power plus the conversion chain
/// and the rack/CDU/system aggregation of §III-B2.
#[derive(Debug, Clone)]
pub struct PowerModel {
    cfg: SystemConfig,
    conv: ConversionModel,
    racks: usize,
}

impl PowerModel {
    /// Model for a system configuration and delivery variant.
    pub fn new(cfg: SystemConfig, delivery: PowerDelivery) -> Self {
        let conv = ConversionModel::new(cfg.conversion, delivery);
        let racks = cfg.total_racks();
        PowerModel { cfg, conv, racks }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The conversion chain.
    pub fn conversion(&self) -> &ConversionModel {
        &self.conv
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.racks
    }

    /// Rack index of a node id (nodes are laid out rack-major).
    #[inline]
    pub fn rack_of_node(&self, node: usize) -> usize {
        node / self.cfg.rack.nodes_per_rack
    }

    /// CDU index of a rack.
    #[inline]
    pub fn cdu_of_rack(&self, rack: usize) -> usize {
        (rack / self.cfg.cooling.racks_per_cdu).min(self.cfg.cooling.num_cdus - 1)
    }

    /// Eq. (3): node DC power at the given utilizations with `gpus` GPUs.
    pub fn node_power(&self, cpu_util: f64, gpu_util: f64, gpus: usize) -> f64 {
        let p = &self.cfg.node_power;
        let cpu = p.cpu_idle_w + cpu_util.clamp(0.0, 1.0) * (p.cpu_max_w - p.cpu_idle_w);
        let gpu = p.gpu_idle_w + gpu_util.clamp(0.0, 1.0) * (p.gpu_max_w - p.gpu_idle_w);
        cpu + gpus as f64 * gpu
            + p.nics_per_node as f64 * p.nic_each_w
            + p.ram_w
            + p.nvmes_per_node as f64 * p.nvme_each_w
    }

    /// Node idle power (all utilizations zero).
    pub fn node_idle_power(&self, gpus: usize) -> f64 {
        self.node_power(0.0, 0.0, gpus)
    }

    /// Node peak power (all utilizations one).
    pub fn node_peak_power(&self, gpus: usize) -> f64 {
        self.node_power(1.0, 1.0, gpus)
    }

    /// Fresh accumulator sized for this system.
    pub fn new_accumulator(&self) -> PowerAccumulator {
        PowerAccumulator::new(self.racks)
    }

    /// Reset an accumulator in place (reuses the rack vectors).
    pub fn reset_accumulator(&self, acc: &mut PowerAccumulator) {
        acc.reset();
    }

    /// Account `count` identical nodes on `rack` running at the given
    /// utilizations. Components are split for the Fig. 4 breakdown; the
    /// per-node SIVOC loss is applied here because η_S depends on the
    /// individual node load.
    pub fn add_nodes(
        &self,
        acc: &mut PowerAccumulator,
        rack: usize,
        count: usize,
        cpu_util: f64,
        gpu_util: f64,
        gpus: usize,
    ) {
        if count == 0 {
            return;
        }
        let p = &self.cfg.node_power;
        let n = count as f64;
        let cpu = p.cpu_idle_w + cpu_util.clamp(0.0, 1.0) * (p.cpu_max_w - p.cpu_idle_w);
        let gpu =
            (p.gpu_idle_w + gpu_util.clamp(0.0, 1.0) * (p.gpu_max_w - p.gpu_idle_w)) * gpus as f64;
        let nic = p.nics_per_node as f64 * p.nic_each_w;
        let nvme = p.nvmes_per_node as f64 * p.nvme_each_w;
        let node_w = cpu + gpu + nic + p.ram_w + nvme;

        acc.cpu_w += n * cpu;
        acc.gpu_w += n * gpu;
        acc.ram_w += n * p.ram_w;
        acc.nic_w += n * nic;
        acc.nvme_w += n * nvme;
        acc.rack_node_dc_w[rack] += n * node_w;
        acc.rack_bus_w[rack] += n * self.conv.sivoc_input(node_w);
        acc.nodes_counted += count;
    }

    /// Evaluate the accumulated state into a full system snapshot.
    pub fn evaluate(&self, acc: &PowerAccumulator) -> PowerSnapshot {
        let rack_cfg = &self.cfg.rack;
        let cool = &self.cfg.cooling;

        let mut rack_ac_w = Vec::with_capacity(self.racks);
        let mut node_ac_w = 0.0;
        for &bus in &acc.rack_bus_w {
            let ac = self.conv.rack_ac_input(bus);
            rack_ac_w.push(ac);
            node_ac_w += ac;
        }
        let node_dc_w: f64 = acc.rack_node_dc_w.iter().sum();
        let loss_w = node_ac_w - node_dc_w;

        let switch_per_rack = rack_cfg.switches_per_rack as f64 * rack_cfg.switch_power_w;
        let switch_w = switch_per_rack * self.racks as f64;
        let cdu_pump_w = cool.num_cdus as f64 * cool.cdu_pump_power_w;
        let system_w = node_ac_w + switch_w + cdu_pump_w;

        // Heat to each CDU loop: rack AC + switch power of its racks,
        // scaled by the cooling efficiency (§III-B2).
        let mut cdu_heat_w = vec![0.0; cool.num_cdus];
        for (rack, &ac) in rack_ac_w.iter().enumerate() {
            let cdu = self.cdu_of_rack(rack);
            cdu_heat_w[cdu] += (ac + switch_per_rack) * cool.cooling_efficiency;
        }

        let efficiency = if node_ac_w > 0.0 { node_dc_w / node_ac_w } else { 1.0 };
        PowerSnapshot {
            system_w,
            node_dc_w,
            node_ac_w,
            loss_w,
            efficiency,
            switch_w,
            cdu_pump_w,
            rack_ac_w,
            cdu_heat_w,
            breakdown: PowerBreakdown {
                gpus_w: acc.gpu_w,
                cpus_w: acc.cpu_w,
                ram_w: acc.ram_w,
                nics_w: acc.nic_w,
                nvme_w: acc.nvme_w,
                switches_w: switch_w,
                losses_w: loss_w,
                cdu_pumps_w: cdu_pump_w,
            },
        }
    }

    /// Whole-system power with every node at the same utilization — the
    /// Table III verification shortcut.
    pub fn uniform_power(&self, cpu_util: f64, gpu_util: f64) -> PowerSnapshot {
        let mut acc = self.new_accumulator();
        let mut node = 0usize;
        for part in &self.cfg.partitions {
            for _ in 0..part.nodes {
                let rack = self.rack_of_node(node);
                self.add_nodes(&mut acc, rack, 1, cpu_util, gpu_util, part.gpus_per_node);
                node += 1;
            }
        }
        self.evaluate(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frontier_model(delivery: PowerDelivery) -> PowerModel {
        PowerModel::new(SystemConfig::frontier(), delivery)
    }

    #[test]
    fn node_power_eq3_idle_and_peak() {
        let m = frontier_model(PowerDelivery::StandardAC);
        assert_eq!(m.node_idle_power(4), 626.0);
        assert_eq!(m.node_peak_power(4), 2704.0);
    }

    #[test]
    fn node_power_interpolates_linearly() {
        let m = frontier_model(PowerDelivery::StandardAC);
        // HPL core phase: GPU 79 %, CPU 33 % (paper §IV-2).
        let p = m.node_power(0.33, 0.79, 4);
        let expected = (90.0 + 0.33 * 190.0) + 4.0 * (88.0 + 0.79 * 472.0) + 80.0 + 74.0 + 30.0;
        assert!((p - expected).abs() < 1e-9);
        assert!((p - 2180.22).abs() < 0.5, "p={p}");
    }

    #[test]
    fn rectifier_curve_peaks_at_optimum() {
        let conv = ConversionModel::new(ConversionConfig::default(), PowerDelivery::StandardAC);
        let peak = conv.rectifier_efficiency(7_500.0);
        assert!((peak - 0.963).abs() < 1e-12);
        assert!(conv.rectifier_efficiency(2_500.0) < peak);
        assert!(conv.rectifier_efficiency(11_000.0) < peak);
        // "near idle the efficiency drops 1-2 %" (§IV-3).
        let droop = peak - conv.rectifier_efficiency(2_500.0);
        assert!((0.01..0.025).contains(&droop), "droop={droop}");
    }

    #[test]
    fn sivoc_efficiency_band() {
        let conv = ConversionModel::new(ConversionConfig::default(), PowerDelivery::StandardAC);
        assert!((conv.sivoc_efficiency(2_704.0) - 0.98).abs() < 1e-12);
        let idle = conv.sivoc_efficiency(626.0);
        assert!(idle < 0.98 && idle > 0.97, "idle sivoc eff {idle}");
    }

    #[test]
    fn table3_idle_power() {
        // Paper Table III: RAPS idle = 7.24 MW.
        let m = frontier_model(PowerDelivery::StandardAC);
        let snap = m.uniform_power(0.0, 0.0);
        let mw = snap.system_w / 1e6;
        assert!((mw - 7.24).abs() < 0.05, "idle = {mw} MW");
    }

    #[test]
    fn table3_peak_power() {
        // Paper Table III: RAPS peak = 28.2 MW.
        let m = frontier_model(PowerDelivery::StandardAC);
        let snap = m.uniform_power(1.0, 1.0);
        let mw = snap.system_w / 1e6;
        assert!((mw - 28.2).abs() < 0.1, "peak = {mw} MW");
    }

    #[test]
    fn system_efficiency_near_094_at_load() {
        // §III-B1: "the total system efficiency according to (1) is roughly
        // 0.94".
        let m = frontier_model(PowerDelivery::StandardAC);
        let snap = m.uniform_power(1.0, 1.0);
        assert!((snap.efficiency - 0.935).abs() < 0.01, "eff={}", snap.efficiency);
    }

    #[test]
    fn breakdown_sums_to_system_power() {
        let m = frontier_model(PowerDelivery::StandardAC);
        for (cu, gu) in [(0.0, 0.0), (0.33, 0.79), (1.0, 1.0)] {
            let snap = m.uniform_power(cu, gu);
            assert!(
                (snap.breakdown.total_w() - snap.system_w).abs() < 1.0,
                "breakdown {} vs system {}",
                snap.breakdown.total_w(),
                snap.system_w
            );
        }
    }

    #[test]
    fn fig4_gpus_dominate_at_peak() {
        let m = frontier_model(PowerDelivery::StandardAC);
        let b = m.uniform_power(1.0, 1.0).breakdown;
        // GPUs: 9472 × 4 × 560 W = 21.2 MW, by far the biggest slice.
        assert!((b.gpus_w - 21.217e6).abs() < 0.05e6, "gpus={}", b.gpus_w);
        for other in [b.cpus_w, b.ram_w, b.nics_w, b.nvme_w, b.switches_w, b.losses_w] {
            assert!(b.gpus_w > other);
        }
        // CPUs: 9472 × 280 W = 2.65 MW.
        assert!((b.cpus_w - 2.652e6).abs() < 0.01e6);
    }

    #[test]
    fn smart_rectifiers_help_most_at_idle() {
        let std = frontier_model(PowerDelivery::StandardAC).uniform_power(0.0, 0.0);
        let smart = frontier_model(PowerDelivery::SmartRectifiers).uniform_power(0.0, 0.0);
        assert!(smart.system_w < std.system_w);
        // At peak every rectifier is needed: no gain.
        let std_pk = frontier_model(PowerDelivery::StandardAC).uniform_power(1.0, 1.0);
        let smart_pk = frontier_model(PowerDelivery::SmartRectifiers).uniform_power(1.0, 1.0);
        assert!((smart_pk.system_w - std_pk.system_w).abs() < 1e3);
    }

    #[test]
    fn dc380_raises_efficiency_to_973() {
        // §IV-3: "switching the Frontier DT to direct 380V DC power ...
        // substantially increased the system efficiency from 93.3% to 97.3%".
        let m = frontier_model(PowerDelivery::Direct380Vdc);
        let snap = m.uniform_power(0.5, 0.5);
        assert!((snap.efficiency - 0.973).abs() < 0.004, "eff={}", snap.efficiency);
    }

    #[test]
    fn active_rectifier_staging() {
        let conv = ConversionModel::new(ConversionConfig::default(), PowerDelivery::SmartRectifiers);
        assert_eq!(conv.active_rectifiers(0.0), 1);
        assert_eq!(conv.active_rectifiers(7_500.0), 1);
        assert_eq!(conv.active_rectifiers(7_501.0), 2);
        assert_eq!(conv.active_rectifiers(82_000.0), 11);
        assert_eq!(conv.active_rectifiers(400_000.0), 32); // clamped
        let std = ConversionModel::new(ConversionConfig::default(), PowerDelivery::StandardAC);
        assert_eq!(std.active_rectifiers(10.0), 32);
    }

    #[test]
    fn cdu_heat_totals_track_system_power() {
        let m = frontier_model(PowerDelivery::StandardAC);
        let snap = m.uniform_power(0.8, 0.8);
        let heat: f64 = snap.cdu_heat_w.iter().sum();
        let rack_plus_switch = snap.node_ac_w + snap.switch_w;
        assert!((heat - 0.945 * rack_plus_switch).abs() < 1.0);
        assert_eq!(snap.cdu_heat_w.len(), 25);
        // Every CDU receives some heat.
        assert!(snap.cdu_heat_w.iter().all(|&h| h > 0.0));
    }

    #[test]
    fn rack_and_cdu_indexing() {
        let m = frontier_model(PowerDelivery::StandardAC);
        assert_eq!(m.rack_of_node(0), 0);
        assert_eq!(m.rack_of_node(127), 0);
        assert_eq!(m.rack_of_node(128), 1);
        assert_eq!(m.rack_of_node(9471), 73);
        assert_eq!(m.cdu_of_rack(0), 0);
        assert_eq!(m.cdu_of_rack(2), 0);
        assert_eq!(m.cdu_of_rack(3), 1);
        assert_eq!(m.cdu_of_rack(73), 24);
    }

    #[test]
    fn losses_positive_and_within_band() {
        let m = frontier_model(PowerDelivery::StandardAC);
        let snap = m.uniform_power(0.6, 0.6);
        assert!(snap.loss_w > 0.0);
        let pct = 100.0 * snap.loss_w / snap.system_w;
        // Finding 9 band: roughly 6-8 % of system power.
        assert!((4.0..9.0).contains(&pct), "loss {pct}%");
    }

    #[test]
    fn accumulator_reuse_resets_cleanly() {
        let m = frontier_model(PowerDelivery::StandardAC);
        let mut acc = m.new_accumulator();
        m.add_nodes(&mut acc, 0, 128, 1.0, 1.0, 4);
        let first = m.evaluate(&acc).node_dc_w;
        m.reset_accumulator(&mut acc);
        m.add_nodes(&mut acc, 0, 128, 1.0, 1.0, 4);
        let second = m.evaluate(&acc).node_dc_w;
        assert_eq!(first, second);
        assert_eq!(acc.nodes_counted, 128);
    }
}
