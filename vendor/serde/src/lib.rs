//! Offline stand-in for the `serde` crate.
//!
//! The real crates.io `serde` is unavailable in this build environment, so
//! this crate provides the subset of its API the workspace actually uses:
//! `Serialize` / `Deserialize` traits (modelled on a JSON-like [`Value`]
//! intermediate rather than serde's visitor architecture) plus the
//! `#[derive(Serialize, Deserialize)]` macros re-exported from
//! `serde_derive`. `serde_json` (also vendored) layers text parsing and
//! printing on top of [`Value`].
//!
//! Swapping back to the real serde is a manifest-only change as long as
//! consumers stick to derives and `serde_json::{to_string, to_string_pretty,
//! from_str, Value}`.

// Let the `::serde::...` paths the derive macros emit resolve inside this
// crate too (needed by the derive-regression tests below).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON number. Integers keep full 64-bit fidelity (an `f64` cannot
/// represent every `u64`, and job ids / seeds round-trip through JSON).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) if i >= 0 => Some(i as u64),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) if u <= i64::MAX as u64 => Some(u as i64),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }
}

/// A parsed JSON document. Objects preserve insertion order (a `Vec` of
/// pairs — lookups are linear, which is fine at config scale).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object-key or array-index lookup, mirroring `serde_json::Value::get`.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// `Value::get` index polymorphism (`&str` keys and `usize` positions).
pub trait ValueIndex {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value>;
}

impl ValueIndex for &str {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        match v {
            Value::Object(o) => o.iter().find(|(k, _)| k == self).map(|(_, val)| val),
            _ => None,
        }
    }
}

impl ValueIndex for usize {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        match v {
            Value::Array(a) => a.get(*self),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    };
    Err(Error::msg(format!("expected {expected}, found {kind}")))
}

// ---------------------------------------------------------------- integers

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::msg(concat!("number out of range for ", stringify!($t)))),
                    other => type_err(stringify!($t), other),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Number(Number::U(i as u64))
                } else {
                    Value::Number(Number::I(i))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::msg(concat!("number out of range for ", stringify!($t)))),
                    other => type_err(stringify!($t), other),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

// ------------------------------------------------------------------ floats

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // serde_json prints non-finite floats as null; accept it back.
            Value::Null => Ok(f64::NAN),
            other => type_err("f64", other),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

// ------------------------------------------------------------------ others

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-char string", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

// `Arc` is wire-transparent, like `Box`: shared immutable state (e.g. a
// cooling model's variable table behind a copy-on-write fork) serializes
// as the value itself and deserializes into a fresh, uniquely-held arc.
impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let vec = Vec::<T>::from_value(v)?;
        let n = vec.len();
        <[T; N]>::try_from(vec)
            .map_err(|_| Error::msg(format!("expected array of length {N}, found {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(a) => {
                        let expect = [$(stringify!($idx)),+].len();
                        if a.len() != expect {
                            return Err(Error::msg(format!(
                                "expected {}-tuple, found array of {}", expect, a.len())));
                        }
                        Ok(($($t::from_value(&a[$idx])?,)+))
                    }
                    other => type_err("tuple (array)", other),
                }
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<K: fmt::Display + Ord + std::str::FromStr, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

impl<K: Ord + std::str::FromStr, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(o) => o
                .iter()
                .map(|(k, v)| {
                    let key = k.parse().map_err(|_| Error::msg("unparseable map key"))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            other => type_err("object", other),
        }
    }
}

impl<K: fmt::Display + std::hash::Hash + Eq, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output (and any hash of it) is deterministic.
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K: std::hash::Hash + Eq + std::str::FromStr, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(o) => o
                .iter()
                .map(|(k, v)| {
                    let key = k.parse().map_err(|_| Error::msg("unparseable map key"))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            other => type_err("object", other),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: commas inside generic field types must not split the
    /// field list in the derive (angle brackets are bare puncts in a
    /// `TokenStream`, unlike parens/brackets).
    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct MultiParamGenerics {
        map: HashMap<String, u64>,
        tree: BTreeMap<String, Vec<f64>>,
        pairs: Vec<(u32, bool)>,
    }

    #[test]
    fn derive_handles_generic_fields_with_commas() {
        let mut map = HashMap::new();
        map.insert("a".to_string(), 1u64);
        let mut tree = BTreeMap::new();
        tree.insert("xs".to_string(), vec![1.5, -2.0]);
        let original =
            MultiParamGenerics { map, tree, pairs: vec![(7, true), (8, false)] };
        let back =
            MultiParamGenerics::from_value(&original.to_value()).expect("round trip");
        assert_eq!(original, back);
    }

    /// Fn-pointer field types contain `->`, whose `>` must not be taken
    /// for a generic close by the derive's comma splitter.
    #[derive(Serialize)]
    struct ArrowInType {
        label: String,
        #[allow(dead_code)]
        op: fn(f64, f64) -> f64,
    }

    impl Serialize for fn(f64, f64) -> f64 {
        fn to_value(&self) -> Value {
            Value::Null
        }
    }

    #[test]
    fn derive_handles_arrow_in_field_type() {
        let v = ArrowInType { label: "sum".into(), op: |a, b| a + b }.to_value();
        assert_eq!(v.get("label").and_then(Value::as_str), Some("sum"));
        assert!(v.get("op").is_some_and(Value::is_null));
    }
}
