//! Hydraulic network solver.
//!
//! Reproduces the algebraic flow/pressure solve that Modelica performs for
//! the paper's plant model: given pump speeds, valve openings, and passive
//! resistances connected between junctions, find branch flows and junction
//! pressures satisfying (a) the pressure balance along every branch and
//! (b) mass conservation at every junction.
//!
//! Formulation: unknowns are all branch flows `Q_b` plus the pressures of
//! all non-reference nodes. Residuals:
//!
//! * per branch `b` from node `i` to `j`:
//!   `r_b = P_i − P_j + rise_b(Q_b) − drop_b(Q_b)`   (Pa)
//! * per non-reference node `n`:
//!   `r_n = Σ Q_in − Σ Q_out + injection_n`           (m³/s)
//!
//! solved with damped Newton–Raphson over the dense Jacobian (networks in
//! this domain are tens of branches, see `linalg`). Warm-starting from the
//! previous time step keeps the per-step cost to 2-3 iterations during
//! replay.

use crate::linalg::Matrix;
use exadigit_thermo::pump::Pump;
use exadigit_thermo::valve::ControlValve;
use exadigit_thermo::HydraulicResistance;

/// Index of a junction in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct NodeId(pub usize);

/// Index of a branch in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct BranchId(pub usize);

/// A hydraulic element along a branch.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum BranchElement {
    /// Passive quadratic resistance.
    Resistance(HydraulicResistance),
    /// Modulating control valve (resistance depends on opening).
    Valve(ControlValve),
    /// Centrifugal pump with a relative speed command in `[0, 1]`.
    Pump {
        /// The pump's head curve and design point.
        pump: Pump,
        /// Relative speed command in `[0, 1]` (affinity laws scale the
        /// head curve).
        speed: f64,
    },
    /// Check valve: negligible drop forward, near-blocking reverse.
    CheckValve {
        /// Forward-flow resistance, Pa/(m³/s)².
        k_forward: f64,
        /// Reverse-flow resistance (large), Pa/(m³/s)².
        k_reverse: f64,
    },
}

impl BranchElement {
    /// Net pressure *gain* contributed by the element at flow `q` and
    /// temperature `t` (°C). Pumps are positive; passive elements negative.
    fn pressure_gain(&self, q: f64, t: f64) -> f64 {
        match self {
            BranchElement::Resistance(r) => -r.pressure_drop(q),
            BranchElement::Valve(v) => -v.pressure_drop(q),
            BranchElement::Pump { pump, speed } => pump.pressure_rise(q.max(0.0), *speed, t),
            BranchElement::CheckValve { k_forward, k_reverse } => {
                let k = if q >= 0.0 { *k_forward } else { *k_reverse };
                -k * q * q.abs()
            }
        }
    }

    /// Derivative of [`Self::pressure_gain`] with respect to flow.
    fn dgain_dflow(&self, q: f64, t: f64) -> f64 {
        const Q_EPS: f64 = 1e-6;
        match self {
            BranchElement::Resistance(r) => -r.dpressure_dflow(q),
            BranchElement::Valve(v) => -2.0 * v.resistance() * q.abs().max(Q_EPS),
            BranchElement::Pump { pump, speed } => pump.dpressure_dflow(q.max(0.0), *speed, t),
            BranchElement::CheckValve { k_forward, k_reverse } => {
                let k = if q >= 0.0 { *k_forward } else { *k_reverse };
                -2.0 * k * q.abs().max(Q_EPS)
            }
        }
    }
}

/// A branch: an ordered chain of elements between two junctions. Positive
/// flow runs `from → to`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Branch {
    /// Display name, e.g. `HTWP2` or `CDU13.primary`.
    pub name: String,
    /// Upstream junction for positive flow.
    pub from: NodeId,
    /// Downstream junction for positive flow.
    pub to: NodeId,
    /// Elements in series along the branch.
    pub elements: Vec<BranchElement>,
    /// Initial flow guess for cold starts, m³/s.
    pub initial_flow: f64,
}

/// Solver failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// Newton iteration did not meet tolerance within the iteration cap.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
    },
    /// The Jacobian became numerically singular (usually a disconnected
    /// node or an all-zero branch).
    SingularJacobian,
    /// Network is structurally invalid (no nodes/branches).
    EmptyNetwork,
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::NotConverged { iterations, residual } => {
                write!(f, "hydraulic solve did not converge after {iterations} iterations (residual {residual:.3e})")
            }
            SolverError::SingularJacobian => write!(f, "singular hydraulic Jacobian"),
            SolverError::EmptyNetwork => write!(f, "hydraulic network has no nodes or branches"),
        }
    }
}

impl std::error::Error for SolverError {}

/// A converged flow/pressure state.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    flows: Vec<f64>,
    pressures: Vec<f64>,
    /// Newton iterations used (diagnostic).
    pub iterations: usize,
}

impl Solution {
    /// Flow through a branch, m³/s (positive `from → to`).
    pub fn flow(&self, b: BranchId) -> f64 {
        self.flows[b.0]
    }

    /// Pressure at a node, Pa (reference node is at the configured value).
    pub fn pressure(&self, n: NodeId) -> f64 {
        self.pressures[n.0]
    }

    /// All branch flows.
    pub fn flows(&self) -> &[f64] {
        &self.flows
    }
}

/// The hydraulic network: junctions, branches, one reference node.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct HydraulicNetwork {
    node_names: Vec<String>,
    branches: Vec<Branch>,
    /// External volumetric injection per node (m³/s, positive into node).
    injections: Vec<f64>,
    /// Node whose pressure is pinned.
    reference: NodeId,
    /// Pressure at the reference node, Pa.
    reference_pressure: f64,
    /// Last solution, used as a warm start.
    warm_start: Option<(Vec<f64>, Vec<f64>)>,
}

impl Default for HydraulicNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl HydraulicNetwork {
    /// Empty network. Node 0 (the first added) is the reference by default.
    pub fn new() -> Self {
        HydraulicNetwork {
            node_names: Vec::new(),
            branches: Vec::new(),
            injections: Vec::new(),
            reference: NodeId(0),
            reference_pressure: 0.0,
            warm_start: None,
        }
    }

    /// Add a junction.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        self.node_names.push(name.into());
        self.injections.push(0.0);
        NodeId(self.node_names.len() - 1)
    }

    /// Add a branch of serial elements between two junctions.
    pub fn add_branch(
        &mut self,
        name: impl Into<String>,
        from: NodeId,
        to: NodeId,
        elements: Vec<BranchElement>,
    ) -> BranchId {
        assert!(from.0 < self.node_names.len() && to.0 < self.node_names.len());
        assert!(from != to, "self-loop branches are not allowed");
        self.branches.push(Branch {
            name: name.into(),
            from,
            to,
            elements,
            initial_flow: 0.05,
        });
        self.warm_start = None;
        BranchId(self.branches.len() - 1)
    }

    /// Pin the reference node and its pressure (Pa).
    pub fn set_reference(&mut self, node: NodeId, pressure: f64) {
        self.reference = node;
        self.reference_pressure = pressure;
    }

    /// Set an external injection at a node (m³/s, positive into the node).
    pub fn set_injection(&mut self, node: NodeId, q: f64) {
        self.injections[node.0] = q;
    }

    /// Number of branches.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Branch name (for registries/diagnostics).
    pub fn branch_name(&self, b: BranchId) -> &str {
        &self.branches[b.0].name
    }

    /// Update the speed of every pump element on a branch.
    pub fn set_pump_speed(&mut self, b: BranchId, new_speed: f64) {
        for el in &mut self.branches[b.0].elements {
            if let BranchElement::Pump { speed, .. } = el {
                *speed = new_speed.clamp(0.0, 1.2);
            }
        }
    }

    /// Update the opening of every valve element on a branch.
    pub fn set_valve_opening(&mut self, b: BranchId, opening: f64) {
        for el in &mut self.branches[b.0].elements {
            if let BranchElement::Valve(v) = el {
                v.set_opening(opening);
            }
        }
    }

    /// Set the cold-start flow guess of a branch.
    pub fn set_initial_flow(&mut self, b: BranchId, q: f64) {
        self.branches[b.0].initial_flow = q;
    }

    /// Update the coefficient of every plain resistance on a branch — used
    /// for aggregate branches whose effective `k` changes with staging
    /// (e.g. `k_cell / n²` for `n` parallel tower cells).
    pub fn set_resistance(&mut self, b: BranchId, k: f64) {
        for el in &mut self.branches[b.0].elements {
            if let BranchElement::Resistance(r) = el {
                r.k = k;
            }
        }
    }

    /// Invalidate the warm start (use after topology-scale changes).
    pub fn clear_warm_start(&mut self) {
        self.warm_start = None;
    }

    /// Net pressure gain along a branch at flow `q`, temperature `t`.
    fn branch_gain(&self, b: &Branch, q: f64, t: f64) -> f64 {
        b.elements.iter().map(|e| e.pressure_gain(q, t)).sum()
    }

    /// Derivative of the branch gain with respect to flow.
    fn branch_dgain(&self, b: &Branch, q: f64, t: f64) -> f64 {
        b.elements.iter().map(|e| e.dgain_dflow(q, t)).sum()
    }

    /// Solve the network at fluid temperature `t` (°C).
    ///
    /// Residual scaling: pressure equations are measured in Pa (tolerance
    /// 0.5 Pa), mass balances in m³/s (tolerance 1e-8). Damped Newton with
    /// step halving; warm-started from the previous solution.
    pub fn solve(&mut self, t: f64) -> Result<Solution, SolverError> {
        let nb = self.branches.len();
        let nn = self.node_names.len();
        if nb == 0 || nn == 0 {
            return Err(SolverError::EmptyNetwork);
        }
        const MAX_ITERS: usize = 60;
        const P_TOL: f64 = 0.5; // Pa
        const Q_TOL: f64 = 1e-8; // m³/s

        // Unknown layout: [flows(nb) ..., pressures(non-reference nodes)].
        // Map node -> unknown column (reference node maps to None).
        let mut pcol = vec![None; nn];
        let mut col = nb;
        for (n, slot) in pcol.iter_mut().enumerate() {
            if n != self.reference.0 {
                *slot = Some(col);
                col += 1;
            }
        }
        let dim = col;

        // Initial guess.
        let (mut q, mut p) = match &self.warm_start {
            Some((wq, wp)) if wq.len() == nb && wp.len() == nn => (wq.clone(), wp.clone()),
            _ => (
                self.branches.iter().map(|b| b.initial_flow).collect::<Vec<_>>(),
                vec![self.reference_pressure; nn],
            ),
        };
        p[self.reference.0] = self.reference_pressure;

        let residual_norm = |r: &[f64]| -> f64 {
            // Scale each equation by its tolerance so one norm covers both.
            let mut norm: f64 = 0.0;
            for (i, &v) in r.iter().enumerate() {
                let tol = if i < nb { P_TOL } else { Q_TOL };
                norm = norm.max(v.abs() / tol);
            }
            norm
        };

        let compute_residual = |q: &[f64], p: &[f64]| -> Vec<f64> {
            let mut r = vec![0.0; dim];
            for (bi, b) in self.branches.iter().enumerate() {
                r[bi] = p[b.from.0] - p[b.to.0] + self.branch_gain(b, q[bi], t);
            }
            // Mass balance rows come after the nb branch rows, one per
            // non-reference node, in node order.
            let mut row = nb;
            for n in 0..nn {
                if n == self.reference.0 {
                    continue;
                }
                let mut balance = self.injections[n];
                for (bi, b) in self.branches.iter().enumerate() {
                    if b.to.0 == n {
                        balance += q[bi];
                    }
                    if b.from.0 == n {
                        balance -= q[bi];
                    }
                }
                r[row] = balance;
                row += 1;
            }
            r
        };

        let mut r = compute_residual(&q, &p);
        let mut norm = residual_norm(&r);
        let mut iterations = 0;

        while norm > 1.0 && iterations < MAX_ITERS {
            iterations += 1;
            // Assemble the Jacobian.
            let mut jac = Matrix::zeros(dim, dim);
            for (bi, b) in self.branches.iter().enumerate() {
                jac[(bi, bi)] = self.branch_dgain(b, q[bi], t);
                if let Some(c) = pcol[b.from.0] {
                    jac[(bi, c)] = 1.0;
                }
                if let Some(c) = pcol[b.to.0] {
                    jac[(bi, c)] = -1.0;
                }
            }
            let mut row = nb;
            for n in 0..nn {
                if n == self.reference.0 {
                    continue;
                }
                for (bi, b) in self.branches.iter().enumerate() {
                    if b.to.0 == n {
                        jac[(row, bi)] += 1.0;
                    }
                    if b.from.0 == n {
                        jac[(row, bi)] -= 1.0;
                    }
                }
                row += 1;
            }

            let neg_r: Vec<f64> = r.iter().map(|v| -v).collect();
            let dx = jac.solve(&neg_r).ok_or(SolverError::SingularJacobian)?;

            // Damped update: halve the step until the residual improves.
            let mut alpha = 1.0;
            let mut improved = false;
            for _ in 0..8 {
                let mut q_try = q.clone();
                let mut p_try = p.clone();
                for (bi, qt) in q_try.iter_mut().enumerate() {
                    *qt += alpha * dx[bi];
                }
                for n in 0..nn {
                    if let Some(c) = pcol[n] {
                        p_try[n] += alpha * dx[c];
                    }
                }
                let r_try = compute_residual(&q_try, &p_try);
                let norm_try = residual_norm(&r_try);
                if norm_try < norm {
                    q = q_try;
                    p = p_try;
                    r = r_try;
                    norm = norm_try;
                    improved = true;
                    break;
                }
                alpha *= 0.5;
            }
            if !improved {
                // Take the smallest step anyway to escape flat regions.
                for (bi, qv) in q.iter_mut().enumerate() {
                    *qv += alpha * dx[bi];
                }
                for n in 0..nn {
                    if let Some(c) = pcol[n] {
                        p[n] += alpha * dx[c];
                    }
                }
                r = compute_residual(&q, &p);
                norm = residual_norm(&r);
            }
        }

        if norm > 1.0 {
            return Err(SolverError::NotConverged { iterations, residual: norm });
        }
        self.warm_start = Some((q.clone(), p.clone()));
        Ok(Solution { flows: q, pressures: p, iterations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exadigit_thermo::pump::Pump;

    /// Single pump driving a single resistance in a two-node loop.
    fn simple_loop() -> (HydraulicNetwork, BranchId, BranchId) {
        let mut net = HydraulicNetwork::new();
        let a = net.add_node("supply");
        let b = net.add_node("return");
        let pump = Pump::from_design_point("P", 0.3, 25.0, 0.8);
        let bp = net.add_branch(
            "pump",
            a,
            b,
            vec![BranchElement::Pump { pump, speed: 1.0 }],
        );
        let br = net.add_branch(
            "load",
            b,
            a,
            vec![BranchElement::Resistance(HydraulicResistance::from_design(0.3, 25.0 * 997.0 * 9.80665))],
        );
        net.set_reference(a, 0.0);
        (net, bp, br)
    }

    #[test]
    fn simple_loop_operating_point() {
        let (mut net, bp, br) = simple_loop();
        let sol = net.solve(25.0).expect("must converge");
        // Pump sized for 0.3 m³/s at 25 m; load sized to drop 25 m at 0.3:
        // the operating point is exactly the design point.
        assert!((sol.flow(bp) - 0.3).abs() < 1e-3, "q={}", sol.flow(bp));
        // Loop continuity: both branches carry identical flow.
        assert!((sol.flow(bp) - sol.flow(br)).abs() < 1e-9);
    }

    #[test]
    fn mass_conserved_at_every_node() {
        let (mut net, _, _) = simple_loop();
        let sol = net.solve(25.0).unwrap();
        // Branch 0 enters node 1, branch 1 leaves node 1.
        let net_flow = sol.flows()[0] - sol.flows()[1];
        assert!(net_flow.abs() < 1e-8);
    }

    #[test]
    fn parallel_resistances_split_by_conductance() {
        // One pump feeding two parallel resistances, one 4x the other:
        // quadratic law -> flow ratio = sqrt(4) = 2.
        let mut net = HydraulicNetwork::new();
        let a = net.add_node("supply");
        let b = net.add_node("return");
        let pump = Pump::from_design_point("P", 0.4, 30.0, 0.8);
        net.add_branch("pump", a, b, vec![BranchElement::Pump { pump, speed: 1.0 }]);
        let k = 1.0e6;
        let b1 = net.add_branch(
            "r1",
            b,
            a,
            vec![BranchElement::Resistance(HydraulicResistance { k })],
        );
        let b2 = net.add_branch(
            "r2",
            b,
            a,
            vec![BranchElement::Resistance(HydraulicResistance { k: 4.0 * k })],
        );
        let sol = net.solve(25.0).unwrap();
        let ratio = sol.flow(b1) / sol.flow(b2);
        assert!((ratio - 2.0).abs() < 1e-6, "ratio={ratio}");
    }

    #[test]
    fn pump_speed_reduces_flow() {
        let (mut net, bp, _) = simple_loop();
        let q_full = net.solve(25.0).unwrap().flow(bp);
        net.set_pump_speed(bp, 0.6);
        net.clear_warm_start();
        let q_slow = net.solve(25.0).unwrap().flow(bp);
        assert!(q_slow < q_full);
        // Affinity: flow scales ~linearly with speed for a quadratic system
        // curve.
        assert!((q_slow / q_full - 0.6).abs() < 0.05, "ratio={}", q_slow / q_full);
    }

    #[test]
    fn valve_throttles_flow() {
        let mut net = HydraulicNetwork::new();
        let a = net.add_node("supply");
        let b = net.add_node("return");
        let pump = Pump::from_design_point("P", 0.3, 25.0, 0.8);
        net.add_branch("pump", a, b, vec![BranchElement::Pump { pump, speed: 1.0 }]);
        let valve = ControlValve::from_design("V", 0.3, 60_000.0);
        let bl = net.add_branch(
            "load",
            b,
            a,
            vec![
                BranchElement::Valve(valve),
                BranchElement::Resistance(HydraulicResistance::from_design(0.3, 120_000.0)),
            ],
        );
        let q_open = net.solve(25.0).unwrap().flow(bl);
        net.set_valve_opening(bl, 0.3);
        let q_throttled = net.solve(25.0).unwrap().flow(bl);
        assert!(q_throttled < 0.6 * q_open, "open={q_open} throttled={q_throttled}");
    }

    #[test]
    fn check_valve_blocks_reverse_flow() {
        // Two pumps in parallel, one switched off with a check valve: the
        // off branch must carry (almost) no reverse flow.
        let mut net = HydraulicNetwork::new();
        let a = net.add_node("supply");
        let b = net.add_node("return");
        let p1 = Pump::from_design_point("P1", 0.3, 25.0, 0.8);
        let p2 = Pump::from_design_point("P2", 0.3, 25.0, 0.8);
        net.add_branch("pump1", a, b, vec![BranchElement::Pump { pump: p1, speed: 1.0 }]);
        let off = net.add_branch(
            "pump2",
            a,
            b,
            vec![
                BranchElement::Pump { pump: p2, speed: 0.0 },
                BranchElement::CheckValve { k_forward: 1e3, k_reverse: 1e12 },
            ],
        );
        net.add_branch(
            "load",
            b,
            a,
            vec![BranchElement::Resistance(HydraulicResistance::from_design(0.3, 200_000.0))],
        );
        let sol = net.solve(25.0).unwrap();
        assert!(sol.flow(off).abs() < 1e-3, "reverse flow {}", sol.flow(off));
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let (mut net, _, _) = simple_loop();
        let cold = net.solve(25.0).unwrap().iterations;
        let warm = net.solve(25.0).unwrap().iterations;
        assert!(warm <= cold, "warm={warm} cold={cold}");
    }

    #[test]
    fn empty_network_is_an_error() {
        let mut net = HydraulicNetwork::new();
        assert_eq!(net.solve(25.0), Err(SolverError::EmptyNetwork));
    }

    #[test]
    fn injection_balances_at_node() {
        // Straight pipe between two nodes with injection at one end and the
        // reference absorbing it.
        let mut net = HydraulicNetwork::new();
        let a = net.add_node("in");
        let b = net.add_node("out");
        let br = net.add_branch(
            "pipe",
            a,
            b,
            vec![BranchElement::Resistance(HydraulicResistance::from_design(0.1, 10_000.0))],
        );
        net.set_reference(b, 0.0);
        net.set_injection(a, 0.07);
        let sol = net.solve(25.0).unwrap();
        assert!((sol.flow(br) - 0.07).abs() < 1e-8);
        // Pressure at the injection node must be positive (driving flow).
        assert!(sol.pressure(a) > 0.0);
    }

    #[test]
    fn frontier_scale_parallel_network_converges() {
        // 4 pumps in parallel into a header feeding 25 parallel CDU
        // branches — the primary-loop shape from Fig. 5 of the paper.
        let mut net = HydraulicNetwork::new();
        let supply = net.add_node("supply_header");
        let ret = net.add_node("return_header");
        for i in 0..4 {
            let p = Pump::from_design_point(format!("HTWP{i}"), 0.1, 35.0, 0.82);
            net.add_branch(
                format!("htwp{i}"),
                ret,
                supply,
                vec![
                    BranchElement::Pump { pump: p, speed: 0.9 },
                    BranchElement::CheckValve { k_forward: 1e3, k_reverse: 1e12 },
                ],
            );
        }
        let mut cdu_branches = Vec::new();
        for i in 0..25 {
            let valve = ControlValve::from_design(format!("V{i}"), 0.015, 40_000.0);
            let b = net.add_branch(
                format!("cdu{i}"),
                supply,
                ret,
                vec![
                    BranchElement::Valve(valve),
                    BranchElement::Resistance(HydraulicResistance::from_design(0.015, 80_000.0)),
                ],
            );
            cdu_branches.push(b);
        }
        let sol = net.solve(30.0).expect("Frontier-scale network must converge");
        // All CDU branches identical -> equal flows.
        let q0 = sol.flow(cdu_branches[0]);
        assert!(q0 > 0.0);
        for &b in &cdu_branches[1..] {
            assert!((sol.flow(b) - q0).abs() < 1e-9);
        }
        // Total pump flow equals total CDU flow.
        let pump_total: f64 = (0..4).map(|i| sol.flows()[i]).sum();
        let cdu_total: f64 = cdu_branches.iter().map(|&b| sol.flow(b)).sum();
        assert!((pump_total - cdu_total).abs() < 1e-7);
    }

    #[test]
    fn two_branch_split_obeys_quadratic_law() {
        // Pump into a 2-way split with k2 = 9·k1. Quadratic resistances
        // share a common ΔP, so q1/q2 = sqrt(k2/k1) = 3 and the pump flow
        // equals the sum of the leg flows exactly.
        let mut net = HydraulicNetwork::new();
        let a = net.add_node("supply");
        let b = net.add_node("return");
        net.set_reference(a, 100_000.0);
        let pump = Pump::from_design_point("P", 0.2, 28.0, 0.8);
        let bp = net.add_branch("pump", b, a, vec![BranchElement::Pump { pump, speed: 1.0 }]);
        let k = 2.0e6;
        let b1 = net.add_branch(
            "leg1",
            a,
            b,
            vec![BranchElement::Resistance(HydraulicResistance { k })],
        );
        let b2 = net.add_branch(
            "leg2",
            a,
            b,
            vec![BranchElement::Resistance(HydraulicResistance { k: 9.0 * k })],
        );
        let sol = net.solve(25.0).expect("2-branch split must converge");
        let (qp, q1, q2) = (sol.flow(bp), sol.flow(b1), sol.flow(b2));
        assert!(qp > 0.0 && q1 > 0.0 && q2 > 0.0);
        assert!((q1 + q2 - qp).abs() < 1e-8, "split total {} vs pump {qp}", q1 + q2);
        // Tolerance is bounded by the solver's Q_TOL (1e-8 m³/s) on each
        // leg flow, not machine epsilon.
        assert!((q1 / q2 - 3.0).abs() < 1e-4, "split ratio {}", q1 / q2);
    }

    #[test]
    fn mass_conserved_at_interior_junction() {
        // Y-network with a true interior junction: pump → header m, then
        // two legs m → return. Conservation must hold at m, which is
        // neither the reference node nor a simple 2-branch loop node.
        let mut net = HydraulicNetwork::new();
        let ret = net.add_node("return");
        let m = net.add_node("header");
        net.set_reference(ret, 0.0);
        let pump = Pump::from_design_point("P", 0.25, 22.0, 0.8);
        let feed = net.add_branch(
            "feed",
            ret,
            m,
            vec![
                BranchElement::Pump { pump, speed: 1.0 },
                BranchElement::Resistance(HydraulicResistance { k: 5.0e5 }),
            ],
        );
        let l1 = net.add_branch(
            "leg1",
            m,
            ret,
            vec![BranchElement::Resistance(HydraulicResistance { k: 1.5e6 })],
        );
        let l2 = net.add_branch(
            "leg2",
            m,
            ret,
            vec![BranchElement::Resistance(HydraulicResistance { k: 4.0e6 })],
        );
        let sol = net.solve(25.0).expect("Y-network must converge");
        let into_m = sol.flow(feed);
        let out_of_m = sol.flow(l1) + sol.flow(l2);
        assert!(into_m > 0.0);
        assert!((into_m - out_of_m).abs() < 1e-8, "junction imbalance {}", into_m - out_of_m);
        // Header pressure sits between reference and pump discharge.
        assert!(sol.pressure(m) > sol.pressure(ret));
    }

    #[test]
    fn degenerate_single_pipe_converges_to_rest() {
        // A single passive pipe with no pump and no injection is the
        // degenerate case: the unique solution is zero flow with the
        // far node settling at the reference pressure. The damped Newton
        // must converge (and quickly) rather than stall on the flat
        // quadratic around q = 0.
        let mut net = HydraulicNetwork::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.set_reference(a, 50_000.0);
        let pipe = net.add_branch(
            "pipe",
            a,
            b,
            vec![BranchElement::Resistance(HydraulicResistance { k: 1.0e6 })],
        );
        let sol = net.solve(25.0).expect("degenerate single pipe must converge");
        assert!(sol.flow(pipe).abs() < 1e-7, "rest flow {}", sol.flow(pipe));
        assert!((sol.pressure(b) - 50_000.0).abs() < 1.0, "p_b {}", sol.pressure(b));
        assert!(sol.iterations <= 50, "took {} iterations", sol.iterations);
    }

    #[test]
    fn closing_one_valve_redistributes_flow() {
        let mut net = HydraulicNetwork::new();
        let supply = net.add_node("s");
        let ret = net.add_node("r");
        let p = Pump::from_design_point("P", 0.4, 30.0, 0.82);
        net.add_branch("pump", ret, supply, vec![BranchElement::Pump { pump: p, speed: 1.0 }]);
        let mut branches = Vec::new();
        for i in 0..3 {
            let valve = ControlValve::from_design(format!("V{i}"), 0.13, 50_000.0);
            branches.push(net.add_branch(
                format!("leg{i}"),
                supply,
                ret,
                vec![BranchElement::Valve(valve)],
            ));
        }
        let before = net.solve(25.0).unwrap();
        let q_before: Vec<f64> = branches.iter().map(|&b| before.flow(b)).collect();
        net.set_valve_opening(branches[0], 0.15);
        let after = net.solve(25.0).unwrap();
        // Throttled leg drops, the others pick up.
        assert!(after.flow(branches[0]) < q_before[0]);
        assert!(after.flow(branches[1]) > q_before[1]);
        assert!(after.flow(branches[2]) > q_before[2]);
    }
}
