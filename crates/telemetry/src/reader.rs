//! Pluggable telemetry readers.
//!
//! §V of the paper: "A pluggable architecture was developed for reading
//! different types of bespoke telemetry datasets", naming the PM100 job
//! power dataset of Marconi100 as one consumer. [`TelemetryReader`] is the
//! plug-in trait; two implementations ship here: the native CSV format
//! written by [`crate::writer`] and a PM100-like JSON adapter.

use crate::schema::JobRecord;

/// Errors raised while parsing telemetry.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadError {
    /// Malformed input with a line/record hint.
    Malformed(String),
    /// A required field was missing.
    MissingField(&'static str),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Malformed(msg) => write!(f, "malformed telemetry: {msg}"),
            ReadError::MissingField(field) => write!(f, "missing field: {field}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// A telemetry-dataset reader plug-in.
pub trait TelemetryReader {
    /// Human-readable format name.
    fn format_name(&self) -> &'static str;

    /// Parse job records from the dataset content.
    fn read_jobs(&self, content: &str) -> Result<Vec<JobRecord>, ReadError>;
}

/// The native CSV format: one job per line,
/// `job_id,name,node_count,submit,start,wall,cpu_trace,gpu_trace` with
/// traces `;`-separated watts at 15 s.
#[derive(Debug, Clone, Copy, Default)]
pub struct CsvJobReader;

impl TelemetryReader for CsvJobReader {
    fn format_name(&self) -> &'static str {
        "exadigit-csv"
    }

    fn read_jobs(&self, content: &str) -> Result<Vec<JobRecord>, ReadError> {
        let mut out = Vec::new();
        for (lineno, line) in content.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || (lineno == 0 && line.starts_with("job_id")) {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 8 {
                return Err(ReadError::Malformed(format!(
                    "line {}: expected 8 fields, got {}",
                    lineno + 1,
                    fields.len()
                )));
            }
            let parse_u64 = |s: &str, what: &'static str| {
                s.parse::<u64>().map_err(|_| ReadError::Malformed(format!("line {}: bad {what} `{s}`", lineno + 1)))
            };
            let parse_trace = |s: &str| -> Result<Vec<f32>, ReadError> {
                if s.is_empty() {
                    return Ok(Vec::new());
                }
                s.split(';')
                    .map(|v| {
                        v.parse::<f32>().map_err(|_| {
                            ReadError::Malformed(format!("line {}: bad trace value `{v}`", lineno + 1))
                        })
                    })
                    .collect()
            };
            out.push(JobRecord {
                job_id: parse_u64(fields[0], "job_id")?,
                job_name: fields[1].to_string(),
                node_count: parse_u64(fields[2], "node_count")? as usize,
                submit_time_s: parse_u64(fields[3], "submit")?,
                start_time_s: parse_u64(fields[4], "start")?,
                wall_time_s: parse_u64(fields[5], "wall")?,
                cpu_power_w: parse_trace(fields[6])?,
                gpu_power_w: parse_trace(fields[7])?,
            });
        }
        Ok(out)
    }
}

/// PM100-like JSON adapter: an array of job objects with average node
/// power (the PM100 dataset publishes job-level power aggregates rather
/// than traces). Average power is expanded into a flat trace.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pm100JsonReader;

impl TelemetryReader for Pm100JsonReader {
    fn format_name(&self) -> &'static str {
        "pm100-json"
    }

    fn read_jobs(&self, content: &str) -> Result<Vec<JobRecord>, ReadError> {
        let parsed: serde_json::Value = serde_json::from_str(content)
            .map_err(|e| ReadError::Malformed(format!("json: {e}")))?;
        let arr = parsed.as_array().ok_or(ReadError::Malformed("expected a JSON array".into()))?;
        let mut out = Vec::with_capacity(arr.len());
        for (i, v) in arr.iter().enumerate() {
            let get = |key: &'static str| {
                v.get(key).ok_or(ReadError::MissingField(key))
            };
            let num = |key: &'static str| -> Result<f64, ReadError> {
                get(key)?.as_f64().ok_or(ReadError::Malformed(format!("record {i}: {key} not numeric")))
            };
            let job_id = num("job_id")? as u64;
            let node_count = num("num_nodes")? as usize;
            let submit = num("submit_time")? as u64;
            let start = v.get("start_time").and_then(|x| x.as_f64()).unwrap_or(submit as f64) as u64;
            let run_time = num("run_time")? as u64;
            // PM100 carries average node power; split it between CPU and
            // GPU by a typical accelerator share.
            let avg_node_power = num("avg_node_power")?;
            let gpu_share = 0.7;
            let gpus = v.get("num_gpus_per_node").and_then(|x| x.as_f64()).unwrap_or(4.0).max(1.0);
            let steps = (run_time / 15).max(1) as usize;
            let cpu_w = (avg_node_power * (1.0 - gpu_share)) as f32;
            let gpu_w = (avg_node_power * gpu_share / gpus) as f32;
            out.push(JobRecord {
                job_id,
                job_name: v
                    .get("job_name")
                    .and_then(|x| x.as_str())
                    .unwrap_or("pm100-job")
                    .to_string(),
                node_count,
                submit_time_s: submit,
                start_time_s: start,
                wall_time_s: run_time,
                cpu_power_w: vec![cpu_w; steps],
                gpu_power_w: vec![gpu_w; steps],
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip_via_writer() {
        let rec = JobRecord {
            job_id: 42,
            job_name: "hpl".into(),
            node_count: 9216,
            submit_time_s: 100,
            start_time_s: 120,
            wall_time_s: 7200,
            cpu_power_w: vec![152.7, 153.0],
            gpu_power_w: vec![460.9, 461.0],
        };
        let csv = crate::writer::jobs_to_csv(std::slice::from_ref(&rec));
        let back = CsvJobReader.read_jobs(&csv).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].job_id, rec.job_id);
        assert_eq!(back[0].node_count, rec.node_count);
        assert_eq!(back[0].cpu_power_w.len(), 2);
        assert!((back[0].gpu_power_w[0] - 460.9).abs() < 0.01);
    }

    #[test]
    fn csv_rejects_malformed_lines() {
        let err = CsvJobReader.read_jobs("1,only,three").unwrap_err();
        assert!(matches!(err, ReadError::Malformed(_)));
        let err = CsvJobReader.read_jobs("x,a,1,0,0,60,10,10").unwrap_err();
        assert!(matches!(err, ReadError::Malformed(_)));
    }

    #[test]
    fn csv_skips_comments_and_header() {
        let content = "job_id,name,node_count,submit,start,wall,cpu,gpu\n# comment\n\n1,j,4,0,0,60,100,400\n";
        let jobs = CsvJobReader.read_jobs(content).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].node_count, 4);
    }

    #[test]
    fn pm100_adapter_parses() {
        let content = r#"[
            {"job_id": 9, "num_nodes": 16, "submit_time": 50, "run_time": 600,
             "avg_node_power": 1200.0, "num_gpus_per_node": 4, "job_name": "lammps"}
        ]"#;
        let jobs = Pm100JsonReader.read_jobs(content).unwrap();
        assert_eq!(jobs.len(), 1);
        let j = &jobs[0];
        assert_eq!(j.node_count, 16);
        assert_eq!(j.wall_time_s, 600);
        assert_eq!(j.cpu_power_w.len(), 40);
        // Power split: 30 % CPU, 70 % across 4 GPUs.
        assert!((j.cpu_power_w[0] - 360.0).abs() < 0.5);
        assert!((j.gpu_power_w[0] - 210.0).abs() < 0.5);
    }

    #[test]
    fn pm100_rejects_missing_fields() {
        let err = Pm100JsonReader.read_jobs(r#"[{"job_id": 1}]"#).unwrap_err();
        assert!(matches!(err, ReadError::MissingField(_)));
        let err = Pm100JsonReader.read_jobs("{}").unwrap_err();
        assert!(matches!(err, ReadError::Malformed(_)));
    }

    #[test]
    fn readers_report_formats() {
        assert_eq!(CsvJobReader.format_name(), "exadigit-csv");
        assert_eq!(Pm100JsonReader.format_name(), "pm100-json");
    }
}
