//! The RAPS simulation loop — Algorithm 1 of the paper, driven by a
//! discrete-event kernel.
//!
//! `RUNSIMULATION` semantics: newly arriving jobs join the pending queue,
//! `SCHEDULEJOBS` starts whatever the policy admits, and the per-second
//! `TICK` releases completed jobs, recomputes power, applies rectification
//! and conversion losses, and — every 15 s — calls the cooling model
//! across the FMI boundary and refreshes the UI/outputs.
//!
//! # Event-driven advancement
//!
//! Nothing happens in most of a day's 86,400 seconds: the simulation state
//! only changes at *events* — job arrivals, job completions, the 15 s
//! cooling/trace quantum, record boundaries, and wet-bulb forcing
//! breakpoints. [`RapsSimulation::run_until`] therefore advances the clock
//! straight from one event second to the next
//! (an [`exadigit_sim::events::EventQueue`] calendar), integrating energy
//! and the per-second summary statistics in closed form over the
//! constant-power gap between events ([`Welford::push_n`]). Quantum and
//! record recurrences only *materialise* as events on the eager path (a
//! cooling model attached or a time-varying utilization trace running);
//! otherwise the kernel jumps one-shot to one-shot and backfills the
//! record samples the gap spanned in bulk
//! ([`exadigit_sim::TimeSeries::push_n`]), so a quiet multi-week horizon
//! costs O(events), not O(samples). Scheduling
//! passes only run at event seconds, plus one echo second after any pass
//! that started jobs (starts reorder the pending queue, so the reference
//! loop can admit a newly fronted job on the very next pass); a pass with
//! no decisions is stable until the next event for every policy — the
//! pool cannot grow without a completion, and EASY backfill's shadow time
//! is release-determined while `now + wall ≤ shadow` only weakens as
//! `now` grows — see `DESIGN.md` § "Discrete-event kernel" for the full
//! argument.
//!
//! [`RapsSimulation::tick`] and [`RapsSimulation::run_until_per_second`]
//! keep the literal Algorithm 1 loop as the executable specification: the
//! `event_kernel` golden test pins the event-driven run bit-identical to
//! the per-second loop at every record boundary, with total energy within
//! 1e-9 relative.

use crate::config::SystemConfig;
use crate::job::{Job, JobState, UtilTrace};
use crate::metrics::KernelMetrics;
use crate::power::{PowerAccumulator, PowerDelivery, PowerModel, PowerSnapshot};
use crate::scheduler::{schedule_jobs, NodePool, Policy, RunningRelease};
use crate::stats::RunReport;
use exadigit_sim::events::{series_breakpoints, Event, EventKind, EventQueue};
use exadigit_sim::fmi::{CoSimModel, FmiError, VarRef};
use exadigit_sim::{SimClock, TimeSeries, Welford};
use std::collections::VecDeque;
use std::sync::Arc;

/// Trace quantum and cooling-model period, seconds (§III-B of the paper).
pub const COOLING_PERIOD_S: u64 = 15;

/// True when either utilization trace of `job` varies over time.
fn has_variable_trace(job: &Job) -> bool {
    matches!(job.cpu_util, UtilTrace::Series { .. })
        || matches!(job.gpu_util, UtilTrace::Series { .. })
}

/// Names used to resolve the cooling model's variables at attach time.
/// Any [`CoSimModel`] exposing these is accepted — the §V generalisation.
pub mod cooling_vars {
    /// Heat input of CDU `i` (1-based), W: `cdu_heat[i]`.
    pub fn cdu_heat(i: usize) -> String {
        format!("cdu_heat[{i}]")
    }
    /// Outdoor wet-bulb temperature input, °C.
    pub const WET_BULB: &str = "wet_bulb";
    /// Total IT (system) power input for the PUE sub-module, W.
    pub const IT_POWER: &str = "it_power";
    /// Power usage effectiveness output.
    pub const PUE: &str = "pue";
    /// Total cooling auxiliary power output, W.
    pub const COOLING_POWER: &str = "cooling_power";
}

/// RAPS's handle on a cooling model: the FMU import of §III-C6.
pub struct CoolingCoupling {
    /// The model behind the FMI boundary.
    pub model: Box<dyn CoSimModel>,
    cdu_inputs: Vec<VarRef>,
    wet_bulb_input: VarRef,
    it_power_input: Option<VarRef>,
    pue_output: Option<VarRef>,
    cooling_power_output: Option<VarRef>,
    /// Inputs as last forwarded across the boundary. `set_real` is
    /// idempotent, so bit-equal values are skipped — load only changes
    /// at job events, which makes most 15 s quanta send-free.
    last_cdu_heat_w: Vec<f64>,
    last_wet_bulb_c: f64,
    last_it_power_w: f64,
}

impl CoolingCoupling {
    /// Resolve the variable names and wrap the model. Fails when the model
    /// does not expose `num_cdus` heat inputs or the wet-bulb input.
    pub fn attach(model: Box<dyn CoSimModel>, num_cdus: usize) -> Result<Self, String> {
        let mut cdu_inputs = Vec::with_capacity(num_cdus);
        for i in 1..=num_cdus {
            let name = cooling_vars::cdu_heat(i);
            let var = model
                .var_by_name(&name)
                .ok_or_else(|| format!("cooling model lacks input {name}"))?;
            cdu_inputs.push(var.vr);
        }
        let wet_bulb_input = model
            .var_by_name(cooling_vars::WET_BULB)
            .ok_or_else(|| "cooling model lacks wet_bulb input".to_string())?
            .vr;
        let it_power_input = model.var_by_name(cooling_vars::IT_POWER).map(|v| v.vr);
        let pue_output = model.var_by_name(cooling_vars::PUE).map(|v| v.vr);
        let cooling_power_output = model.var_by_name(cooling_vars::COOLING_POWER).map(|v| v.vr);
        Ok(CoolingCoupling {
            model,
            cdu_inputs,
            wet_bulb_input,
            it_power_input,
            pue_output,
            cooling_power_output,
            last_cdu_heat_w: vec![f64::NAN; num_cdus],
            last_wet_bulb_c: f64::NAN,
            last_it_power_w: f64::NAN,
        })
    }

    /// Duplicate the coupling mid-simulation, model state included — the
    /// cooling half of [`RapsSimulation::fork`]. `None` when the model
    /// does not implement [`CoSimModel::fork`].
    pub fn fork(&self) -> Option<CoolingCoupling> {
        Some(CoolingCoupling {
            model: self.model.fork()?,
            cdu_inputs: self.cdu_inputs.clone(),
            wet_bulb_input: self.wet_bulb_input,
            it_power_input: self.it_power_input,
            pue_output: self.pue_output,
            cooling_power_output: self.cooling_power_output,
            last_cdu_heat_w: self.last_cdu_heat_w.clone(),
            last_wet_bulb_c: self.last_wet_bulb_c,
            last_it_power_w: self.last_it_power_w,
        })
    }
}

/// Recorded simulation outputs.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SimOutputs {
    /// System power, W, sampled every `record_every_s`.
    pub system_power_w: TimeSeries,
    /// Conversion loss, W, same cadence.
    pub loss_w: TimeSeries,
    /// Node-allocation utilization in \[0,1\], same cadence.
    pub utilization: TimeSeries,
    /// Conversion efficiency η_system, same cadence.
    pub efficiency: TimeSeries,
    /// PUE at the cooling cadence (empty without cooling).
    pub pue: TimeSeries,
    /// Welford accumulators for the run report.
    pub power_stats: Welford,
    /// Loss accumulator.
    pub loss_stats: Welford,
    /// Utilization accumulator.
    pub util_stats: Welford,
    /// PUE accumulator.
    pub pue_stats: Welford,
    /// Efficiency accumulator.
    pub eff_stats: Welford,
    /// Queue-wait accumulator (completed jobs).
    pub wait_stats: Welford,
    /// Total energy, joules (1 s trapezoid-free accumulation).
    pub energy_j: f64,
}

impl SimOutputs {
    fn new(record_every_s: u64) -> Self {
        let dt = record_every_s as f64;
        SimOutputs {
            system_power_w: TimeSeries::new(0.0, dt),
            loss_w: TimeSeries::new(0.0, dt),
            utilization: TimeSeries::new(0.0, dt),
            efficiency: TimeSeries::new(0.0, dt),
            // The first cooling step runs at the first quantum, so the
            // series starts there: sample i sits at its physical time
            // t0 + i·15 (the invariant mid-run attaches preserve).
            pue: TimeSeries::new(COOLING_PERIOD_S as f64, COOLING_PERIOD_S as f64),
            power_stats: Welford::new(),
            loss_stats: Welford::new(),
            util_stats: Welford::new(),
            pue_stats: Welford::new(),
            eff_stats: Welford::new(),
            wait_stats: Welford::new(),
            energy_j: 0.0,
        }
    }

    /// Approximate recorded-history footprint as `(shared, owned)`
    /// bytes across every series: sealed chunks whose `Arc` is held by
    /// more than one owner (a fork or snapshot sharing this history)
    /// count as shared, everything else — uniquely-owned chunks and the
    /// mutable tails — as owned. The split is what a capacity dashboard
    /// needs: owned bytes are what dropping this state frees, shared
    /// bytes are amortised across the twins that hold them.
    pub fn shared_owned_bytes(&self) -> (usize, usize) {
        let mut shared = 0;
        let mut owned = 0;
        for series in [
            &self.system_power_w,
            &self.loss_w,
            &self.utilization,
            &self.efficiency,
            &self.pue,
        ] {
            let (s, o) = series.shared_owned_bytes();
            shared += s;
            owned += o;
        }
        (shared, owned)
    }
}

/// A running job plus its allocation, with per-rack node counts cached so
/// each power recompute is O(racks touched), not O(nodes).
#[derive(Clone, serde::Serialize, serde::Deserialize)]
struct RunningJob {
    job: Job,
    nodes: Vec<u32>,
    /// (rack index, node count) pairs.
    rack_counts: Vec<(u32, u32)>,
    gpus_per_node: usize,
    /// CPU utilization sample the last power recompute used. Lets the
    /// event kernel prove a quantum recompute would reproduce the held
    /// snapshot bit-for-bit (recompute is a pure function of the samples)
    /// and skip it.
    last_cpu: f64,
    /// GPU utilization sample at the last recompute.
    last_gpu: f64,
}

/// Serialized form of a [`RapsSimulation`]: every field that cannot be
/// rebuilt from the configuration, plus the cooling model's state blob.
/// The power model and its scratch accumulator are *not* captured — both
/// are pure functions of `(cfg, delivery)` and the accumulator is reset
/// at the start of every recompute — and neither is the drain scratch
/// buffer. Field-for-field this mirrors [`RapsSimulation::fork`], which
/// is the bit-identity contract serialization inherits.
#[derive(serde::Serialize, serde::Deserialize)]
struct RapsState {
    cfg: SystemConfig,
    delivery: PowerDelivery,
    policy: Policy,
    pool: NodePool,
    future: VecDeque<Job>,
    pending: Vec<Job>,
    running: Vec<RunningJob>,
    clock: SimClock,
    snapshot: PowerSnapshot,
    power_dirty: bool,
    sched_echo: bool,
    cooling: Option<CoolingState>,
    wet_bulb: TimeSeries,
    outputs: SimOutputs,
    record_every_s: u64,
    events: EventQueue,
    completed: u64,
    active_nodes: u32,
    variable_running: usize,
    rack_allocated: Vec<u32>,
    rack_capacity: Vec<u32>,
    total_nodes: usize,
}

/// Serialized cooling coupling: the model's opaque state (each backend
/// deserializes its own type) plus the CDU count needed to re-resolve
/// variable references via [`CoolingCoupling::attach`].
#[derive(serde::Serialize, serde::Deserialize)]
struct CoolingState {
    num_cdus: usize,
    model: serde::Value,
}

/// The RAPS simulator.
pub struct RapsSimulation {
    /// Machine topology and component parameters. Immutable during a run
    /// (only `set_power_model` replaces it), so forks share it by
    /// refcount instead of re-cloning partition tables.
    cfg: Arc<SystemConfig>,
    /// The power model — a pure function of `(cfg, delivery)`; shared
    /// across forks for the same reason.
    model: Arc<PowerModel>,
    policy: Policy,
    pool: NodePool,
    /// Jobs not yet submitted, ascending submit time.
    future: VecDeque<Job>,
    /// Submitted, waiting jobs in queue order.
    pending: Vec<Job>,
    running: Vec<RunningJob>,
    clock: SimClock,
    acc: PowerAccumulator,
    snapshot: PowerSnapshot,
    power_dirty: bool,
    /// The last scheduling pass started jobs while others stayed queued.
    /// Starting a job reorders the pending queue (`swap_remove`), so the
    /// per-second reference loop can admit a newly fronted job on the
    /// very next pass with no arrival or completion in between; the event
    /// kernel reproduces that by treating the next second as an event and
    /// re-running the pass until it is quiescent.
    sched_echo: bool,
    cooling: Option<CoolingCoupling>,
    /// Wet-bulb forcing for the cooling model, °C.
    wet_bulb: TimeSeries,
    outputs: SimOutputs,
    record_every_s: u64,
    /// The discrete-event calendar `run_until` advances between: recurring
    /// quantum/record entries plus one-shot arrivals, completions, and
    /// wet-bulb breakpoints.
    events: EventQueue,
    /// Scratch buffer reused when draining due events.
    event_buf: Vec<Event>,
    /// Kernel observability counters. Deliberately *not* part of
    /// [`RapsState`]: counters are diagnostics, not simulation state, so
    /// the snapshot format stays byte-stable and restored twins start
    /// fresh. Forks share the parent's handles by refcount
    /// ([`KernelMetrics`] is `Arc`'d atomics), so one attached set
    /// observes the live twin and every what-if branched from it.
    metrics: KernelMetrics,
    completed: u64,
    /// Total nodes currently allocated (cached sum of `rack_allocated`,
    /// kept in lockstep so `utilization` is O(1) on the hot path).
    active_nodes: u32,
    /// Running jobs whose utilization is a time-varying `Series` trace.
    /// Zero (the synthetic-workload common case) lets the event kernel
    /// prove a quantum recompute redundant in O(1).
    variable_running: usize,
    /// Nodes allocated per rack (for idle-node accounting).
    rack_allocated: Vec<u32>,
    /// Nodes physically present per rack.
    rack_capacity: Vec<u32>,
    total_nodes: usize,
}

impl RapsSimulation {
    /// New simulation for `cfg` under `delivery`, recording outputs every
    /// `record_every_s` seconds (15 matches the paper's telemetry quantum;
    /// use larger values for multi-day replays).
    pub fn new(
        cfg: SystemConfig,
        delivery: PowerDelivery,
        policy: Policy,
        record_every_s: u64,
    ) -> Self {
        let model = Arc::new(PowerModel::new(cfg.clone(), delivery));
        let cfg = Arc::new(cfg);
        let pool = NodePool::new(&cfg);
        let acc = model.new_accumulator();
        let racks = model.racks();
        let total_nodes = cfg.total_nodes();
        // Rack capacities: full racks, remainder in the last.
        let per_rack = cfg.rack.nodes_per_rack;
        let mut rack_capacity = vec![per_rack as u32; racks];
        let rem = total_nodes - per_rack * (racks - 1);
        rack_capacity[racks - 1] = rem as u32;
        // Default weather: constant 15 °C wet-bulb.
        let wet_bulb = TimeSeries::from_values(0.0, 3600.0, vec![15.0, 15.0]);
        let snapshot = model.uniform_power(0.0, 0.0);
        let mut events = EventQueue::new();
        events.schedule_every(COOLING_PERIOD_S, EventKind::CoolingQuantum);
        // Record boundaries on the quantum grid are already covered by the
        // quantum events (the handler records by modulo, not by payload);
        // a separate recurrence is only needed off-grid. Both recurrences
        // are *virtual* on the lazy path: `run_until` skips them wholesale
        // over quiet gaps and backfills the record samples in closed form
        // — they only materialise as stepped seconds on the eager path.
        if !record_every_s.is_multiple_of(COOLING_PERIOD_S) {
            events.schedule_every(record_every_s, EventKind::RecordBoundary);
        }
        RapsSimulation {
            cfg,
            model,
            policy,
            pool,
            future: VecDeque::new(),
            pending: Vec::new(),
            running: Vec::new(),
            clock: SimClock::midnight(),
            acc,
            snapshot,
            power_dirty: true,
            sched_echo: false,
            cooling: None,
            wet_bulb,
            outputs: SimOutputs::new(record_every_s),
            record_every_s,
            events,
            event_buf: Vec::new(),
            metrics: KernelMetrics::new(),
            completed: 0,
            active_nodes: 0,
            variable_running: 0,
            rack_allocated: vec![0; racks],
            rack_capacity,
            total_nodes,
        }
    }

    /// Attach a cooling model (FMU import). Call before running; also
    /// used by forked what-ifs to swap fidelity mid-run (the replacement
    /// model starts from its own `setup` state, not the old model's).
    pub fn attach_cooling(&mut self, mut coupling: CoolingCoupling) {
        coupling.model.setup(self.clock.now_f64());
        // Keep the PUE series' time axis (sample i at t0 + i·15 s, its
        // physical time) truthful across mid-run attaches: a first
        // attach re-anchors t0 to the next quantum; a re-attach after a
        // detach gap fills the missed quanta with NaN ("no measurement")
        // so appended samples land at their physical times.
        let now = self.clock.elapsed();
        if now > 0 {
            let next_quantum = ((now / COOLING_PERIOD_S + 1) * COOLING_PERIOD_S) as f64;
            if self.outputs.pue.is_empty() {
                self.outputs.pue.t0 = next_quantum;
            } else {
                let dt = COOLING_PERIOD_S as f64;
                while self.outputs.pue.t0 + self.outputs.pue.len() as f64 * dt < next_quantum {
                    self.outputs.pue.push(f64::NAN);
                }
            }
        }
        self.cooling = Some(coupling);
        self.schedule_wet_bulb_events();
    }

    /// Detach the cooling model: subsequent seconds run power-only. Any
    /// scheduled wet-bulb breakpoint events remain in the calendar as
    /// no-op markers.
    pub fn detach_cooling(&mut self) -> Option<CoolingCoupling> {
        self.cooling.take()
    }

    /// Provide the wet-bulb temperature forcing (°C over simulated time).
    pub fn set_wet_bulb(&mut self, series: TimeSeries) {
        self.wet_bulb = series;
        self.schedule_wet_bulb_events();
    }

    /// The current wet-bulb forcing (weather what-ifs perturb this).
    pub fn wet_bulb(&self) -> &TimeSeries {
        &self.wet_bulb
    }

    /// Register the forcing's piecewise-linear breakpoints as events so
    /// the kernel never coasts across a segment change. The forcing is
    /// only *sampled* at the 15 s cooling quantum (which is itself a
    /// recurring event), so these are conservative no-op markers; they
    /// keep the calendar truthful for custom backends stepping on them.
    fn schedule_wet_bulb_events(&mut self) {
        if self.cooling.is_none() {
            return;
        }
        for t in series_breakpoints(&self.wet_bulb) {
            self.events.schedule_at(t, EventKind::WetBulbBreakpoint);
        }
    }

    /// Queue jobs for submission (any order; sorted internally).
    pub fn submit_jobs(&mut self, mut jobs: Vec<Job>) {
        if jobs.is_empty() {
            return;
        }
        jobs.sort_by_key(|j| j.submit_time_s);
        // One arrival event per distinct submit second in the batch.
        let mut last_submit = None;
        for j in &jobs {
            if last_submit != Some(j.submit_time_s) {
                self.events.schedule_at(j.submit_time_s, EventKind::JobArrival);
                last_submit = Some(j.submit_time_s);
            }
        }
        // Merge the sorted batch into the (sorted) future queue in one
        // pass; on equal submit times, previously queued jobs stay first
        // (the stable-sort order the per-second loop always produced).
        if self.future.is_empty() {
            self.future = jobs.into();
            return;
        }
        let old = std::mem::take(&mut self.future);
        let mut merged = VecDeque::with_capacity(old.len() + jobs.len());
        let mut incoming = jobs.into_iter().peekable();
        for queued in old {
            while incoming
                .peek()
                .is_some_and(|j| j.submit_time_s < queued.submit_time_s)
            {
                merged.push_back(incoming.next().expect("peeked"));
            }
            merged.push_back(queued);
        }
        merged.extend(incoming);
        self.future = merged;
    }

    /// The current power snapshot.
    pub fn snapshot(&self) -> &PowerSnapshot {
        &self.snapshot
    }

    /// Current simulated time, seconds.
    pub fn now(&self) -> u64 {
        self.clock.elapsed()
    }

    /// Jobs currently running.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Jobs waiting in the queue.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Node-allocation utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.active_nodes as f64 / self.total_nodes as f64
    }

    /// Recorded outputs so far.
    pub fn outputs(&self) -> &SimOutputs {
        &self.outputs
    }

    /// Access the cooling model for output inspection.
    pub fn cooling_model(&self) -> Option<&dyn CoSimModel> {
        self.cooling.as_ref().map(|c| c.model.as_ref())
    }

    /// Advance one second — the paper's `TICK`, kept verbatim as the
    /// executable specification the event-driven kernel is pinned
    /// against. Interactive single-stepping also comes through here.
    pub fn tick(&mut self) -> Result<(), FmiError> {
        let now = self.clock.tick();
        self.step_second(now, false, true)
    }

    /// Everything that happens within one simulated second `now` (the
    /// clock has already advanced to it): arrivals, completions, a
    /// scheduling pass, the power recompute, energy/stat accumulation,
    /// the cooling step, and output recording.
    ///
    /// `event_mode` enables the optimizations the per-second reference
    /// loop deliberately does not take, each exact by construction:
    /// skipping a quantum recompute when no running job's utilization
    /// sample changed (the recompute is a pure function of those samples
    /// and the unchanged allocation state, so it would rebuild the held
    /// snapshot bit-for-bit), and skipping the scheduling pass on seconds
    /// with no arrival, completion, or pending echo (such a pass provably
    /// returns no decisions — see the module docs). `completion_due` says
    /// whether a completion event is due at `now`; the reference loop
    /// passes `true` and scans unconditionally.
    fn step_second(
        &mut self,
        now: u64,
        event_mode: bool,
        completion_due: bool,
    ) -> Result<(), FmiError> {
        // Newly arriving jobs join the pending queue.
        let mut arrived = false;
        while let Some(front) = self.future.front() {
            if front.submit_time_s <= now {
                let mut job = self.future.pop_front().expect("peeked");
                job.state = JobState::Pending;
                self.pending.push(job);
                arrived = true;
            } else {
                break;
            }
        }

        // Release completed jobs first so their nodes are schedulable.
        // The kernel schedules a completion event for every start, so a
        // second with no due completion event cannot release anything and
        // the scan is skipped in event mode.
        let mut completed_any = false;
        if completion_due {
            let mut i = 0;
            while i < self.running.len() {
                if self.running[i].job.is_due(now) {
                    let mut rj = self.running.swap_remove(i);
                    rj.job.state = JobState::Completed;
                    rj.job.end_time_s = Some(now);
                    self.pool.release(rj.job.partition, &rj.nodes);
                    for &(rack, count) in &rj.rack_counts {
                        self.rack_allocated[rack as usize] -= count;
                    }
                    self.active_nodes -= rj.nodes.len() as u32;
                    if has_variable_trace(&rj.job) {
                        self.variable_running -= 1;
                    }
                    self.completed += 1;
                    self.power_dirty = true;
                    completed_any = true;
                } else {
                    i += 1;
                }
            }
        }

        // SCHEDULEJOBS over the pending queue. Only EASY backfill reads
        // the expected-release list, so it is built for that policy alone.
        // In event mode the pass runs only on seconds where its inputs
        // could have changed; elsewhere it provably returns no decisions.
        let run_pass = !event_mode || arrived || completed_any || self.sched_echo;
        if run_pass {
            self.sched_echo = false;
        }
        if run_pass && !self.pending.is_empty() {
            let releases: Vec<RunningRelease> = if self.policy == Policy::EasyBackfill {
                self.running
                    .iter()
                    .map(|rj| RunningRelease {
                        end_time_s: rj.job.start_time_s.unwrap_or(now) + rj.job.wall_time_s,
                        partition: rj.job.partition,
                        nodes: rj.job.nodes,
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let decisions =
                schedule_jobs(self.policy, &self.pending, &mut self.pool, now, &releases);
            if !decisions.is_empty() {
                self.power_dirty = true;
                // Remove started jobs from pending in descending index order.
                let mut started: Vec<(usize, Vec<u32>)> =
                    decisions.into_iter().map(|d| (d.job_index, d.nodes)).collect();
                started.sort_by_key(|s| std::cmp::Reverse(s.0));
                for (idx, nodes) in started {
                    let mut job = self.pending.swap_remove(idx);
                    job.state = JobState::Running;
                    job.start_time_s = Some(now);
                    // Completions are release checks at a *later* tick, so
                    // a zero-wall job still ends one second after it starts.
                    self.events.schedule_at(
                        now + job.wall_time_s.max(1),
                        EventKind::JobCompletion,
                    );
                    self.outputs
                        .wait_stats
                        .push(now.saturating_sub(job.submit_time_s) as f64);
                    let rack_counts = self.rack_counts_of(&nodes);
                    for &(rack, count) in &rack_counts {
                        self.rack_allocated[rack as usize] += count;
                    }
                    let gpus = self.cfg.partitions[job.partition].gpus_per_node;
                    self.active_nodes += nodes.len() as u32;
                    if has_variable_trace(&job) {
                        self.variable_running += 1;
                    }
                    self.running.push(RunningJob {
                        job,
                        nodes,
                        rack_counts,
                        gpus_per_node: gpus,
                        last_cpu: f64::NAN,
                        last_gpu: f64::NAN,
                    });
                }
                // Starts reordered the queue: re-pass next second until
                // quiescent (a pass with no decisions is stable between
                // events — see the module docs).
                self.sched_echo = !self.pending.is_empty();
            }
        }

        // Recalculate power on events or at the trace quantum.
        let quantum_boundary = now.is_multiple_of(COOLING_PERIOD_S);
        if self.power_dirty || quantum_boundary {
            let skip = event_mode && !self.power_dirty && self.util_samples_unchanged(now);
            if !skip {
                self.recompute_power(now);
            }
            self.power_dirty = false;
        }

        // Energy integrates every second from the held snapshot.
        self.outputs.energy_j += self.snapshot.system_w;

        // Cooling model every 15 s (the FMU call of Algorithm 1).
        if quantum_boundary {
            self.step_cooling(now)?;
        }

        // Record outputs and push the second's summary statistics.
        self.record_second(now);
        Ok(())
    }

    /// The output tail of one simulated second: record the series at
    /// `record_every_s` boundaries and push the per-second statistics.
    fn record_second(&mut self, now: u64) {
        if now.is_multiple_of(self.record_every_s) {
            let util = self.utilization();
            self.outputs.system_power_w.push(self.snapshot.system_w);
            self.outputs.loss_w.push(self.snapshot.loss_w);
            self.outputs.utilization.push(util);
            self.outputs.efficiency.push(self.snapshot.efficiency);
        }
        self.outputs.power_stats.push(self.snapshot.system_w);
        self.outputs.loss_stats.push(self.snapshot.loss_w);
        self.outputs.eff_stats.push(self.snapshot.efficiency);
        self.outputs.util_stats.push(self.utilization());
    }

    /// Run until `horizon_s` of simulated time by jumping the clock from
    /// event to event.
    ///
    /// Between consecutive events the snapshot is provably constant, so
    /// the gap's energy is `gap × P` in closed form, the per-second
    /// summary statistics absorb the gap through [`Welford::push_n`], and
    /// the record samples the gap spans are backfilled in bulk
    /// (`backfill_records`) instead of making every record
    /// boundary an event — a quiet gap costs O(1) no matter how many
    /// boundaries it crosses, so multi-week horizons cost O(events), not
    /// O(samples). Equivalent to [`Self::run_until_per_second`] (same
    /// completions, same recorded series bit-for-bit, energy within float
    /// rounding) — the golden `event_kernel` test and the cross-mode
    /// property tests pin this.
    pub fn run_until(&mut self, horizon_s: u64) -> Result<(), FmiError> {
        while self.clock.elapsed() < horizon_s {
            let now = self.clock.elapsed();

            // Lazy path: with no recompute owed, no scheduling echo, no
            // cooling model, and no time-varying utilization trace, every
            // second up to the next *one-shot* event (arrival/completion)
            // is provably silent — quantum and record recurrences would
            // only re-observe the held snapshot. Jump straight there,
            // backfilling the skipped record samples in closed form.
            // A *quasi-static* cooling model (L3 serving with held
            // inputs) takes the same jump with its quanta batched —
            // `batch_cooled_gap` below.
            if !self.power_dirty
                && !self.sched_echo
                && self.cooling.is_none()
                && self.variable_running == 0
            {
                // A one-shot scheduled in the past still fires on the
                // next second, exactly as `next_after` would clamp it.
                let target =
                    self.events.next_one_shot().map_or(u64::MAX, |t| t.max(now + 1));
                if target > horizon_s {
                    // No event inside the horizon: one closed-form jump,
                    // recording through the horizon itself.
                    self.account_steady(horizon_s - now);
                    self.backfill_records(now, horizon_s);
                    self.events.skip_recurring_through(horizon_s);
                    self.clock.advance(horizon_s - now);
                    break;
                }
                // Seconds strictly before `target` hold the snapshot (so
                // their record samples backfill); the event second itself
                // is accounted and recorded by `step_second`. Recurrences
                // are skipped *before* the drain so it stays O(due
                // one-shots) instead of replaying every skipped fire.
                self.account_steady(target - now - 1);
                self.backfill_records(now, target - 1);
                self.clock.advance(target - now);
                self.events.skip_recurring_through(target);
                self.events.drain_due(target, &mut self.event_buf);
                let completion_due = self
                    .event_buf
                    .iter()
                    .any(|e| e.kind == EventKind::JobCompletion);
                self.metrics.note_events(&self.event_buf);
                self.event_buf.clear();
                self.step_second(target, true, completion_due)?;
                continue;
            }

            // Cooled lazy path: same steadiness preconditions, cooling
            // attached. If the model reports itself quasi-static for the
            // gap's (constant) inputs, its quanta collapse into one
            // `repeat_step` and the jump proceeds exactly as above.
            if !self.power_dirty
                && !self.sched_echo
                && self.cooling.is_some()
                && self.variable_running == 0
                && self.batch_cooled_gap(now, horizon_s)?
            {
                continue;
            }

            // Eager path (recompute owed, scheduling echo, cooling model
            // attached, or a variable utilization trace running): advance
            // event-to-event, where recurrences *are* events because the
            // quantum may genuinely change state.
            let mut next = self.events.next_after(now).unwrap_or(u64::MAX);
            if self.power_dirty || self.sched_echo {
                // A recompute is owed (fresh simulation or external state
                // change), or the last scheduling pass started jobs and
                // must re-run: the per-second loop would fold either into
                // the very next tick, so that second becomes an event.
                next = next.min(now + 1);
            }
            if next > horizon_s {
                // No event inside the horizon: one closed-form jump.
                self.account_steady(horizon_s - now);
                self.backfill_records(now, horizon_s);
                self.events.skip_recurring_through(horizon_s);
                self.clock.advance(horizon_s - now);
                break;
            }
            // Seconds strictly between `now` and the event hold the
            // current snapshot; the event second itself is accounted by
            // `step_second` after handlers run.
            self.account_steady(next - now - 1);
            self.clock.advance(next - now);

            self.events.drain_due(next, &mut self.event_buf);
            let completion_due = self
                .event_buf
                .iter()
                .any(|e| e.kind == EventKind::JobCompletion);
            self.metrics.note_events(&self.event_buf);
            self.event_buf.clear();
            self.step_second(next, true, completion_due)?;
        }
        Ok(())
    }

    /// Run until `horizon_s` with the literal per-second Algorithm 1 loop.
    ///
    /// O(horizon) and semantically identical to [`Self::run_until`]; kept
    /// as the executable specification the event kernel is verified
    /// against (and for apples-to-apples benchmarking in `day_replay`).
    pub fn run_until_per_second(&mut self, horizon_s: u64) -> Result<(), FmiError> {
        while self.clock.elapsed() < horizon_s {
            self.tick()?;
        }
        Ok(())
    }

    /// Try to jump a steady gap with the cooling model attached, batching
    /// the cooling quanta it spans through [`CoSimModel::repeat_step`].
    ///
    /// Sound only when every swallowed quantum would have sent bit-equal
    /// inputs and read bit-equal outputs: the power snapshot is already
    /// provably constant (the caller's guards), the wet-bulb forcing must
    /// sample equal at the gap's first and last quantum (one linear
    /// segment — breakpoints are one-shot events — so equal endpoints
    /// mean a flat segment), and the model itself must declare repeated
    /// steps collapsible ([`CoSimModel::quasi_static`]). Any other case
    /// returns `Ok(false)` and the eager path steps quantum by quantum.
    /// The L4 plant never reports quasi-static, so transient cooling is
    /// untouched; the online L3/L4 backend reports it exactly while a
    /// trusted fit serves, which is what takes a *trained* cooled replay
    /// to O(events) — the same complexity the no-cooling path has.
    fn batch_cooled_gap(&mut self, now: u64, horizon_s: u64) -> Result<bool, FmiError> {
        let target = self.events.next_one_shot().map_or(u64::MAX, |t| t.max(now + 1));
        // Quanta the jump swallows: in `(now, target)` when an event
        // lands inside the horizon (the event second itself goes through
        // `step_second`), else through the horizon second inclusive (the
        // per-second loop steps it; the break path must account it).
        let last_swallowed = if target > horizon_s { horizon_s } else { target - 1 };
        let k = last_swallowed / COOLING_PERIOD_S - now / COOLING_PERIOD_S;
        if k == 0 {
            return Ok(false);
        }
        let first_q = (now / COOLING_PERIOD_S + 1) * COOLING_PERIOD_S;
        let last_q = (last_swallowed / COOLING_PERIOD_S) * COOLING_PERIOD_S;
        let wb = self.wet_bulb.sample_at(first_q as f64);
        if wb.to_bits() != self.wet_bulb.sample_at(last_q as f64).to_bits() {
            return Ok(false);
        }
        self.forward_cooling_inputs(wb)?;
        let cooling = self.cooling.as_mut().expect("caller checked");
        if !cooling.model.quasi_static() {
            return Ok(false);
        }
        cooling.model.repeat_step(k);
        self.metrics.cooled_quanta_batched.add(k);
        if let Some(vr) = cooling.pue_output {
            let pue = cooling.model.get_real(vr)?;
            self.outputs.pue.push_n(pue, k as usize);
            self.outputs.pue_stats.push_n(pue, k);
            self.metrics.samples_backfilled.add(k);
        }
        // The jump itself — identical arithmetic to the no-cooling lazy
        // path above.
        if target > horizon_s {
            self.account_steady(horizon_s - now);
            self.backfill_records(now, horizon_s);
            self.events.skip_recurring_through(horizon_s);
            self.clock.advance(horizon_s - now);
        } else {
            self.account_steady(target - now - 1);
            self.backfill_records(now, target - 1);
            self.clock.advance(target - now);
            self.events.skip_recurring_through(target);
            self.events.drain_due(target, &mut self.event_buf);
            let completion_due =
                self.event_buf.iter().any(|e| e.kind == EventKind::JobCompletion);
            self.metrics.note_events(&self.event_buf);
            self.event_buf.clear();
            self.step_second(target, true, completion_due)?;
        }
        Ok(true)
    }

    /// Materialise the record samples a constant-power gap spans: every
    /// record boundary in `(after_s, through_s]` would have recorded the
    /// held snapshot verbatim, so push the identical samples in bulk. The
    /// boundary count is closed-form (`⌊through/r⌋ − ⌊after/r⌋`) and the
    /// record cursor is *derived* — the series length says how many
    /// boundaries have been recorded — so nothing new needs to round-trip
    /// through the snapshot serde: a save/load mid-gap resumes the
    /// backfill from the restored clock alone. Bit-identical to visiting
    /// each boundary: the recorded value is the same f64 either way (the
    /// snapshot is provably constant over the gap — the same lemma that
    /// lets the quantum recompute be skipped).
    fn backfill_records(&mut self, after_s: u64, through_s: u64) {
        let k = (through_s / self.record_every_s - after_s / self.record_every_s) as usize;
        if k == 0 {
            return;
        }
        let util = self.utilization();
        self.outputs.system_power_w.push_n(self.snapshot.system_w, k);
        self.outputs.loss_w.push_n(self.snapshot.loss_w, k);
        self.outputs.utilization.push_n(util, k);
        self.outputs.efficiency.push_n(self.snapshot.efficiency, k);
        // 4 channels materialised k samples each without visiting a
        // boundary (the pue channel counts at its own push_n site).
        self.metrics.samples_backfilled.add(4 * k as u64);
    }

    /// Account `seconds` of steady state (no events): energy integrates
    /// in closed form over the constant-power interval and the per-second
    /// statistics absorb one weighted observation per channel.
    fn account_steady(&mut self, seconds: u64) {
        if seconds == 0 {
            return;
        }
        self.metrics.gaps_batched.inc();
        self.outputs.energy_j += seconds as f64 * self.snapshot.system_w;
        let util = self.utilization();
        self.outputs.power_stats.push_n(self.snapshot.system_w, seconds);
        self.outputs.loss_stats.push_n(self.snapshot.loss_w, seconds);
        self.outputs.eff_stats.push_n(self.snapshot.efficiency, seconds);
        self.outputs.util_stats.push_n(util, seconds);
    }

    /// True when every running job's utilization trace samples to exactly
    /// the values the last power recompute used — in which case a
    /// recompute would rebuild the identical snapshot (it is a pure
    /// function of the samples and the unchanged allocation state) and
    /// can be skipped.
    fn util_samples_unchanged(&self, now: u64) -> bool {
        if self.variable_running == 0 {
            // Constant traces sample to the same value at any elapsed
            // time; the last recompute (forced by the start that made the
            // job running) already holds exactly those samples.
            return true;
        }
        self.running.iter().all(|rj| {
            let elapsed = rj.job.elapsed_at(now);
            rj.job.cpu_util.at(elapsed) == rj.last_cpu
                && rj.job.gpu_util.at(elapsed) == rj.last_gpu
        })
    }

    /// The kernel's observability counters (shared atomic handles).
    pub fn metrics(&self) -> &KernelMetrics {
        &self.metrics
    }

    /// Replace the kernel's counter handles — how a service routes the
    /// kernel's counts into its metrics registry. Counts accumulated on
    /// the old handles stay with them; attach before running. Later
    /// forks share the new handles.
    pub fn set_metrics(&mut self, metrics: KernelMetrics) {
        self.metrics = metrics;
    }

    /// Duplicate the *entire* simulation state mid-run — the snapshot/fork
    /// primitive behind twin-as-a-service what-if queries.
    ///
    /// The fork carries the clock, queues, running allocations, event
    /// calendar, accumulated outputs, and (when attached) the cooling
    /// model's internal state, so advancing it is indistinguishable from
    /// advancing the original: `fork().run_until(t + h)` is bit-identical
    /// to running the original to `t + h` (pinned by the `service_fork`
    /// golden + property tests), at cost O(horizon) instead of
    /// O(elapsed + horizon). Fails only when the cooling model does not
    /// implement [`CoSimModel::fork`].
    pub fn fork(&self) -> Result<RapsSimulation, String> {
        let cooling = match &self.cooling {
            None => None,
            Some(c) => Some(c.fork().ok_or_else(|| {
                format!("cooling model '{}' does not support forking", c.model.instance_name())
            })?),
        };
        Ok(RapsSimulation {
            cfg: self.cfg.clone(),
            model: self.model.clone(),
            policy: self.policy,
            pool: self.pool.clone(),
            future: self.future.clone(),
            pending: self.pending.clone(),
            running: self.running.clone(),
            clock: self.clock,
            acc: self.acc.clone(),
            snapshot: self.snapshot.clone(),
            power_dirty: self.power_dirty,
            sched_echo: self.sched_echo,
            cooling,
            wet_bulb: self.wet_bulb.clone(),
            outputs: self.outputs.clone(),
            record_every_s: self.record_every_s,
            events: self.events.clone(),
            event_buf: Vec::new(),
            metrics: self.metrics.clone(),
            completed: self.completed,
            active_nodes: self.active_nodes,
            variable_running: self.variable_running,
            rack_allocated: self.rack_allocated.clone(),
            rack_capacity: self.rack_capacity.clone(),
            total_nodes: self.total_nodes,
        })
    }

    /// Capture the complete simulation state as a serializable value —
    /// [`RapsSimulation::fork`] across a process boundary.
    ///
    /// The value carries the clock, queues, running allocations, event
    /// calendar, accumulated outputs, RNG-bearing series, and (when
    /// attached) the cooling model's state blob, so a simulation restored
    /// by [`RapsSimulation::from_state`] and advanced is bit-identical to
    /// the original advanced the same way (the `snapshot_roundtrip`
    /// battery). Fails only when the cooling model does not implement
    /// [`CoSimModel::save_state`].
    pub fn save_state(&self) -> Result<serde::Value, String> {
        let cooling = match &self.cooling {
            None => None,
            Some(c) => {
                let model = c.model.save_state().ok_or_else(|| {
                    format!(
                        "cooling model '{}' does not support state capture",
                        c.model.instance_name()
                    )
                })?;
                Some(CoolingState { num_cdus: c.cdu_inputs.len(), model })
            }
        };
        let state = RapsState {
            cfg: (*self.cfg).clone(),
            delivery: self.model.conversion().delivery(),
            policy: self.policy,
            pool: self.pool.clone(),
            future: self.future.clone(),
            pending: self.pending.clone(),
            running: self.running.clone(),
            clock: self.clock,
            snapshot: self.snapshot.clone(),
            power_dirty: self.power_dirty,
            sched_echo: self.sched_echo,
            cooling,
            wet_bulb: self.wet_bulb.clone(),
            outputs: self.outputs.clone(),
            record_every_s: self.record_every_s,
            events: self.events.clone(),
            completed: self.completed,
            active_nodes: self.active_nodes,
            variable_running: self.variable_running,
            rack_allocated: self.rack_allocated.clone(),
            rack_capacity: self.rack_capacity.clone(),
            total_nodes: self.total_nodes,
        };
        Ok(serde::Serialize::to_value(&state))
    }

    /// Rebuild a simulation from a [`RapsSimulation::save_state`] value.
    ///
    /// The power model and its accumulator are reconstructed from the
    /// carried `(cfg, delivery)` (the accumulator is scratch reset at
    /// every recompute, so a fresh one is bit-safe). When the state
    /// carries cooling, `rebuild_cooling` maps the model's opaque blob
    /// back to a live [`CoSimModel`] — the caller knows which backend
    /// type to deserialize — and the coupling is re-attached *without*
    /// re-running `setup`, so the restored model continues from its
    /// captured internals rather than a fresh settle.
    pub fn from_state(
        value: &serde::Value,
        rebuild_cooling: impl FnOnce(&serde::Value) -> Result<Box<dyn CoSimModel>, String>,
    ) -> Result<RapsSimulation, String> {
        let state =
            <RapsState as serde::Deserialize>::from_value(value).map_err(|e| {
                format!("invalid simulation state: {e}")
            })?;
        let model = Arc::new(PowerModel::new(state.cfg.clone(), state.delivery));
        let acc = model.new_accumulator();
        let cooling = match state.cooling {
            None => None,
            Some(cs) => {
                let boxed = rebuild_cooling(&cs.model)?;
                Some(CoolingCoupling::attach(boxed, cs.num_cdus)?)
            }
        };
        Ok(RapsSimulation {
            cfg: Arc::new(state.cfg),
            model,
            policy: state.policy,
            pool: state.pool,
            future: state.future,
            pending: state.pending,
            running: state.running,
            clock: state.clock,
            acc,
            snapshot: state.snapshot,
            power_dirty: state.power_dirty,
            sched_echo: state.sched_echo,
            cooling,
            wet_bulb: state.wet_bulb,
            outputs: state.outputs,
            record_every_s: state.record_every_s,
            events: state.events,
            event_buf: Vec::new(),
            metrics: KernelMetrics::new(),
            completed: state.completed,
            active_nodes: state.active_nodes,
            variable_running: state.variable_running,
            rack_allocated: state.rack_allocated,
            rack_capacity: state.rack_capacity,
            total_nodes: state.total_nodes,
        })
    }

    /// Swap the power model mid-run — the "what if the power system were
    /// different from *now on*" primitive behind forked delivery variants
    /// and per-fork UQ perturbations (`docs/SERVICE.md`).
    ///
    /// Only the electrical side may change: `cfg` must describe the same
    /// machine topology (node/rack counts and partitions), because running
    /// allocations and the node pool are carried over untouched. The next
    /// recompute (forced here via `power_dirty`) evaluates the held
    /// allocation state under the new model.
    pub fn set_power_model(
        &mut self,
        cfg: SystemConfig,
        delivery: PowerDelivery,
    ) -> Result<(), String> {
        if cfg.total_nodes() != self.total_nodes
            || cfg.total_racks() != self.rack_capacity.len()
            || cfg.rack.nodes_per_rack != self.cfg.rack.nodes_per_rack
            || cfg.partitions.len() != self.cfg.partitions.len()
            || cfg
                .partitions
                .iter()
                .zip(&self.cfg.partitions)
                .any(|(a, b)| a.nodes != b.nodes)
        {
            return Err("set_power_model requires an identical machine topology".into());
        }
        self.model = Arc::new(PowerModel::new(cfg.clone(), delivery));
        self.acc = self.model.new_accumulator();
        self.cfg = Arc::new(cfg);
        self.power_dirty = true;
        Ok(())
    }

    /// The node pool's free-list state (equivalence tests, diagnostics).
    pub fn pool(&self) -> &NodePool {
        &self.pool
    }

    fn rack_counts_of(&self, nodes: &[u32]) -> Vec<(u32, u32)> {
        let mut counts: Vec<(u32, u32)> = Vec::new();
        for &n in nodes {
            let rack = self.model.rack_of_node(n as usize) as u32;
            match counts.last_mut() {
                Some((r, c)) if *r == rack => *c += 1,
                _ => counts.push((rack, 1)),
            }
        }
        counts
    }

    fn recompute_power(&mut self, now: u64) {
        self.model.reset_accumulator(&mut self.acc);
        // Active nodes, per job.
        let model = &self.model;
        let acc = &mut self.acc;
        for rj in &mut self.running {
            let elapsed = rj.job.elapsed_at(now);
            let cpu = rj.job.cpu_util.at(elapsed);
            let gpu = rj.job.gpu_util.at(elapsed);
            rj.last_cpu = cpu;
            rj.last_gpu = gpu;
            for &(rack, count) in &rj.rack_counts {
                model.add_nodes(
                    acc,
                    rack as usize,
                    count as usize,
                    cpu,
                    gpu,
                    rj.gpus_per_node,
                );
            }
        }
        // Idle nodes: rack capacity minus allocated. The default GPU count
        // of the first partition is used for idle nodes, which is exact for
        // single-partition systems and a fine approximation otherwise.
        let idle_gpus = self.cfg.partitions[0].gpus_per_node;
        for rack in 0..self.rack_capacity.len() {
            let idle = self.rack_capacity[rack] - self.rack_allocated[rack];
            if idle > 0 {
                self.model.add_nodes(&mut self.acc, rack, idle as usize, 0.0, 0.0, idle_gpus);
            }
        }
        self.snapshot = self.model.evaluate(&self.acc);
    }

    /// Forward the held snapshot (and `wb`) across the FMI boundary.
    /// `set_real` is idempotent, so values bit-equal to the last send are
    /// skipped — between job events only the weather can change, which
    /// makes most 15 s quanta send-free.
    fn forward_cooling_inputs(&mut self, wb: f64) -> Result<(), FmiError> {
        let Some(cooling) = &mut self.cooling else { return Ok(()) };
        for (i, &vr) in cooling.cdu_inputs.iter().enumerate() {
            let heat = self.snapshot.cdu_heat_w[i];
            if heat.to_bits() != cooling.last_cdu_heat_w[i].to_bits() {
                cooling.model.set_real(vr, heat)?;
                cooling.last_cdu_heat_w[i] = heat;
            }
        }
        if wb.to_bits() != cooling.last_wet_bulb_c.to_bits() {
            cooling.model.set_real(cooling.wet_bulb_input, wb)?;
            cooling.last_wet_bulb_c = wb;
        }
        if let Some(vr) = cooling.it_power_input {
            let it_power = self.snapshot.system_w;
            if it_power.to_bits() != cooling.last_it_power_w.to_bits() {
                cooling.model.set_real(vr, it_power)?;
                cooling.last_it_power_w = it_power;
            }
        }
        Ok(())
    }

    fn step_cooling(&mut self, now: u64) -> Result<(), FmiError> {
        if self.cooling.is_none() {
            return Ok(());
        }
        let wb = self.wet_bulb.sample_at(now as f64);
        self.forward_cooling_inputs(wb)?;
        let cooling = self.cooling.as_mut().expect("checked above");
        cooling
            .model
            .do_step((now - COOLING_PERIOD_S) as f64, COOLING_PERIOD_S as f64)?;
        if let Some(vr) = cooling.pue_output {
            let pue = cooling.model.get_real(vr)?;
            self.outputs.pue.push(pue);
            self.outputs.pue_stats.push(pue);
        }
        let _ = cooling.cooling_power_output; // read on demand by callers
        Ok(())
    }

    /// Build the §III-B5 run report.
    pub fn report(&self) -> RunReport {
        let secs = self.clock.elapsed();
        let hours = secs as f64 / 3600.0;
        let energy_mwh = self.outputs.energy_j / 3.6e9;
        let avg_power_mw = self.outputs.power_stats.mean() / 1e6;
        let avg_loss_mw = self.outputs.loss_stats.mean() / 1e6;
        let eta = self.outputs.eff_stats.mean();
        let costs = self.cfg.costs;
        RunReport {
            sim_seconds: secs,
            jobs_completed: self.completed,
            jobs_unfinished: (self.running.len() + self.pending.len() + self.future.len()) as u64,
            throughput_jobs_per_hour: if hours > 0.0 { self.completed as f64 / hours } else { 0.0 },
            avg_power_mw,
            max_power_mw: self.outputs.power_stats.max() / 1e6,
            total_energy_mwh: energy_mwh,
            avg_loss_mw,
            max_loss_mw: self.outputs.loss_stats.max() / 1e6,
            loss_percent: if avg_power_mw > 0.0 { 100.0 * avg_loss_mw / avg_power_mw } else { 0.0 },
            efficiency: eta,
            co2_tons: RunReport::co2_for(&costs, energy_mwh, eta),
            cost_usd: RunReport::cost_for(&costs, energy_mwh),
            avg_utilization: self.outputs.util_stats.mean(),
            avg_pue: if self.outputs.pue_stats.count() > 0 {
                Some(self.outputs.pue_stats.mean())
            } else {
                None
            },
            avg_wait_s: if self.outputs.wait_stats.count() > 0 {
                self.outputs.wait_stats.mean()
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;

    fn sim() -> RapsSimulation {
        RapsSimulation::new(
            SystemConfig::frontier(),
            PowerDelivery::StandardAC,
            Policy::FirstFit,
            15,
        )
    }

    #[test]
    fn idle_system_power_matches_table3() {
        let mut s = sim();
        s.run_until(60).unwrap();
        let mw = s.snapshot().system_w / 1e6;
        assert!((mw - 7.24).abs() < 0.05, "idle={mw}");
        assert_eq!(s.running_count(), 0);
    }

    #[test]
    fn single_job_lifecycle() {
        let mut s = sim();
        s.submit_jobs(vec![Job::new(1, "j", 128, 120, 10, 1.0, 1.0)]);
        s.run_until(5).unwrap();
        assert_eq!(s.running_count(), 0);
        s.run_until(15).unwrap();
        assert_eq!(s.running_count(), 1);
        assert!(s.utilization() > 0.0);
        // Job of 120 s starting at t=10 ends by t=131.
        s.run_until(135).unwrap();
        assert_eq!(s.running_count(), 0);
        let r = s.report();
        assert_eq!(r.jobs_completed, 1);
    }

    #[test]
    fn power_rises_with_running_job() {
        let mut s = sim();
        s.submit_jobs(vec![Job::new(1, "big", 4096, 600, 1, 1.0, 1.0)]);
        s.run_until(30).unwrap();
        let loaded = s.snapshot().system_w;
        // 4096 nodes at peak vs idle: +4096×2078 W DC plus losses ≈ +9 MW.
        assert!(loaded > 15.0e6, "loaded={loaded}");
        assert!(loaded < 20.0e6);
    }

    #[test]
    fn energy_accumulates() {
        let mut s = sim();
        s.run_until(3600).unwrap();
        let r = s.report();
        // One idle hour ≈ 7.24 MWh.
        assert!((r.total_energy_mwh - 7.24).abs() < 0.1, "E={}", r.total_energy_mwh);
    }

    #[test]
    fn utilization_tracks_allocation() {
        let mut s = sim();
        s.submit_jobs(vec![Job::new(1, "half", 4736, 600, 1, 0.5, 0.5)]);
        s.run_until(30).unwrap();
        assert!((s.utilization() - 0.5).abs() < 0.01);
    }

    #[test]
    fn queue_grows_when_machine_full() {
        let mut s = sim();
        s.submit_jobs(vec![
            Job::new(1, "all", 9472, 600, 1, 0.5, 0.5),
            Job::new(2, "wait", 100, 60, 2, 0.5, 0.5),
        ]);
        s.run_until(30).unwrap();
        assert_eq!(s.running_count(), 1);
        assert_eq!(s.pending_count(), 1);
    }

    #[test]
    fn report_counts_and_throughput() {
        let mut s = sim();
        let jobs: Vec<Job> =
            (0..10).map(|i| Job::new(i, format!("j{i}"), 64, 60, i * 5, 0.3, 0.6)).collect();
        s.submit_jobs(jobs);
        s.run_until(3600).unwrap();
        let r = s.report();
        assert_eq!(r.jobs_completed, 10);
        assert!((r.throughput_jobs_per_hour - 10.0).abs() < 0.5);
        assert!(r.avg_wait_s < 10.0);
    }

    #[test]
    fn outputs_recorded_at_cadence() {
        let mut s = sim();
        s.run_until(150).unwrap();
        // Recording every 15 s over 150 s: 10 samples.
        assert_eq!(s.outputs().system_power_w.len(), 10);
    }

    #[test]
    fn hpl_day_power_reaches_table3_level() {
        let mut s = sim();
        s.submit_jobs(vec![crate::workload::hpl_job(1, 1)]);
        // Run into the HPL core phase.
        s.run_until(3600).unwrap();
        let mw = s.snapshot().system_w / 1e6;
        // 9216 nodes in core phase + 256 idle ≈ 22.3 MW (Table III).
        assert!((mw - 22.3).abs() < 0.3, "hpl={mw}");
    }

    #[test]
    fn fork_mid_run_is_bit_identical_to_continuing() {
        let mut gen = crate::workload::WorkloadGenerator::new(
            crate::workload::WorkloadParams::default(),
            99,
        );
        let jobs = gen.generate_day(0);
        let mut original = sim();
        original.submit_jobs(jobs);
        original.run_until(1800).unwrap();
        let mut forked = original.fork().unwrap();
        assert_eq!(forked.now(), original.now());
        original.run_until(5400).unwrap();
        forked.run_until(5400).unwrap();
        assert_eq!(original.report(), forked.report());
        let (a, b) = (original.outputs().system_power_w.to_vec(), forked.outputs().system_power_w.to_vec());
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(original.pool(), forked.pool());
    }

    #[test]
    fn fork_is_independent_of_the_original() {
        let mut s = sim();
        s.submit_jobs(vec![Job::new(1, "j", 128, 600, 5, 0.6, 0.6)]);
        s.run_until(60).unwrap();
        let mut f = s.fork().unwrap();
        // Advancing the fork (and feeding it new work) must not disturb
        // the original.
        f.submit_jobs(vec![Job::new(2, "extra", 256, 300, 70, 0.9, 0.9)]);
        f.run_until(900).unwrap();
        assert_eq!(s.now(), 60);
        assert_eq!(s.running_count(), 1);
        assert_eq!(f.report().jobs_completed, 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut s = sim();
            let mut gen = crate::workload::WorkloadGenerator::new(
                crate::workload::WorkloadParams::default(),
                1234,
            );
            s.submit_jobs(gen.generate_day(0));
            s.run_until(7200).unwrap();
            (s.report(), s.outputs().system_power_w.to_vec())
        };
        let (r1, p1) = run();
        let (r2, p2) = run();
        assert_eq!(r1, r2);
        assert_eq!(p1, p2);
    }
}
