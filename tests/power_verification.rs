//! Table III reproduction: RAPS power verification tests.
//!
//! Paper values: idle telemetry 7.4 MW vs RAPS 7.24 MW (2.1 % error),
//! HPL core 21.3 vs 22.3 (4.7 %), peak 27.4 vs 28.2 (3.1 %). The RAPS
//! column must reproduce to ±1 %; the telemetry column comes from the
//! synthetic physical twin, and the error pattern (idle under-predicted,
//! HPL/peak over-predicted, all within ~5 %) must match.

use exadigit_raps::config::SystemConfig;
use exadigit_raps::power::{PowerDelivery, PowerModel};
use exadigit_sim::stats::percent_error;
use exadigit_telemetry::SyntheticTwin;

fn raps_model() -> PowerModel {
    PowerModel::new(SystemConfig::frontier(), PowerDelivery::StandardAC)
}

#[test]
fn raps_idle_7_24_mw() {
    let mw = raps_model().uniform_power(0.0, 0.0).system_w / 1e6;
    assert!((mw - 7.24).abs() < 0.05, "idle {mw} MW vs paper 7.24");
}

#[test]
fn raps_hpl_22_3_mw() {
    // HPL core phase: 9216 nodes at GPU 79 % / CPU 33 %, 256 idle.
    let model = raps_model();
    let mut acc = model.new_accumulator();
    let mut node = 0usize;
    for _ in 0..9216 {
        let rack = model.rack_of_node(node);
        model.add_nodes(&mut acc, rack, 1, 0.33, 0.79, 4);
        node += 1;
    }
    for _ in 9216..9472 {
        let rack = model.rack_of_node(node);
        model.add_nodes(&mut acc, rack, 1, 0.0, 0.0, 4);
        node += 1;
    }
    let mw = model.evaluate(&acc).system_w / 1e6;
    assert!((mw - 22.3).abs() < 0.15, "hpl {mw} MW vs paper 22.3");
}

#[test]
fn raps_peak_28_2_mw() {
    let mw = raps_model().uniform_power(1.0, 1.0).system_w / 1e6;
    assert!((mw - 28.2).abs() < 0.1, "peak {mw} MW vs paper 28.2");
}

#[test]
fn table3_error_pattern_vs_synthetic_telemetry() {
    let model = raps_model();
    let twin = SyntheticTwin::frontier();

    let raps_idle = model.uniform_power(0.0, 0.0).system_w;
    let raps_peak = model.uniform_power(1.0, 1.0).system_w;
    let tele_idle = twin.measured_uniform_power(0.0, 0.0);
    let tele_peak = twin.measured_uniform_power(1.0, 1.0);

    let e_idle = percent_error(raps_idle, tele_idle);
    let e_peak = percent_error(raps_peak, tele_peak);

    // Paper signs: idle −2.1 % (model below telemetry), peak +3.1 %.
    assert!(e_idle < 0.0, "idle error sign: {e_idle}");
    assert!(e_peak > 0.0, "peak error sign: {e_peak}");
    // Magnitudes within the paper's ballpark (≤ ~6 %).
    assert!(e_idle.abs() < 6.0, "idle error {e_idle}");
    assert!(e_peak.abs() < 6.0, "peak error {e_peak}");
}

#[test]
fn efficiency_approximately_094_at_load() {
    // §III-B1: "the total system efficiency according to (1) is roughly
    // 0.94" at load; Finding 9 quotes an average of 93.3 %.
    let snap = raps_model().uniform_power(0.6, 0.6);
    assert!((snap.efficiency - 0.94).abs() < 0.012, "eff={}", snap.efficiency);
}

#[test]
fn peak_conversion_loss_near_1_8_mw() {
    // Finding 9: "maximum of 1.8 MW" conversion loss.
    let snap = raps_model().uniform_power(1.0, 1.0);
    let mw = snap.loss_w / 1e6;
    assert!((mw - 1.8).abs() < 0.25, "peak loss {mw} MW");
}
