//! A blocking protocol client for tests, benches, and the example.
//!
//! Any JSON-capable language can speak the wire format directly (see
//! `docs/SERVICE.md`); this client exists so Rust callers don't
//! hand-roll the line framing.

use crate::protocol::{read_message, write_message, Request, Response};
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected protocol client (one request/response in flight at a
/// time, matching the per-connection protocol state machine).
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServiceClient {
    /// Connect to a [`crate::TwinServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServiceClient> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(ServiceClient { reader: BufReader::new(stream), writer })
    }

    /// Send one request and block for its response.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_message(&mut self.writer, request)?;
        match read_message::<Response>(&mut self.reader)? {
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Some(Err(e)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed response: {e}"),
            )),
            Some(Ok(response)) => Ok(response),
        }
    }

    /// [`ServiceClient::request`], retrying while admission control
    /// answers [`Response::Busy`]: sleeps the server's `retry_after_ms`
    /// hint between attempts and gives up after `max_retries` refusals
    /// (returning the last `Busy` so the caller can tell). This is the
    /// client half of the backpressure contract — over-capacity load
    /// turns into paced retries instead of queue growth on the server.
    pub fn request_with_retry(
        &mut self,
        request: &Request,
        max_retries: u32,
    ) -> io::Result<Response> {
        let mut attempts = 0;
        loop {
            match self.request(request)? {
                Response::Busy { retry_after_ms } if attempts < max_retries => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 1_000)));
                }
                response => return Ok(response),
            }
        }
    }

    /// [`ServiceClient::request`], but any protocol-level
    /// [`Response::Error`] becomes an `Err` for terser call sites.
    pub fn expect(&mut self, request: &Request) -> io::Result<Response> {
        match self.request(request)? {
            Response::Error { message } => Err(io::Error::other(message)),
            response => Ok(response),
        }
    }
}
