//! Snapshot lifecycle: freeze the live twin, fork what-ifs from it.
//!
//! A [`TwinSnapshot`] is a full, immutable copy of the simulation state
//! at the second it was taken — RAPS queues and allocations, the event
//! calendar, accumulated outputs, and the cooling backend's internal
//! state (thermal volumes, PID integrators, staging hysteresis for the
//! L4 plant). Taking one costs a state clone, O(running + pending
//! jobs + plant state), *not* O(elapsed time); forking one hands back an
//! independent [`DigitalTwin`] that advances exactly as the original
//! would have (`DigitalTwin::fork` determinism contract).
//!
//! Each snapshot also carries an RNG stream base derived from the
//! service seed and snapshot id, so stochastic queries (UQ draws) are
//! reproducible per snapshot: fork *i* of a query always draws from
//! `Rng::new(snapshot.seed ^ fingerprint).split(i)` regardless of pool
//! width or arrival order.

use crate::persist::{
    read_json, read_manifest, snapshot_path, write_json, write_manifest, ManifestEntry,
    ManifestHeader, PersistError, MANIFEST_FORMAT_VERSION,
};
use exadigit_core::twin::DigitalTwin;
use exadigit_obs::{Counter, Histogram, LATENCY_BUCKETS_S};
use exadigit_sim::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A frozen copy of the live twin at one simulated second.
pub struct TwinSnapshot {
    /// Snapshot id (unique per service, ascending).
    pub id: u64,
    /// Caller-supplied label, e.g. `"noon"`.
    pub label: String,
    /// Simulated second (clock-elapsed) the snapshot was taken at.
    pub taken_at_s: u64,
    /// RNG stream base for stochastic queries branched from this
    /// snapshot: `service_seed` split by snapshot id.
    pub seed: u64,
    twin: DigitalTwin,
}

impl TwinSnapshot {
    /// Fork an independent twin from the frozen state. Advancing the
    /// fork is bit-identical to advancing the original from the snapshot
    /// second (the crate's determinism contract).
    pub fn fork(&self) -> Result<DigitalTwin, String> {
        self.twin.fork()
    }

    /// Read-only access to the frozen twin (reports, outputs).
    pub fn twin(&self) -> &DigitalTwin {
        &self.twin
    }

    /// The wire-facing summary of this snapshot.
    pub fn info(&self) -> SnapshotInfo {
        let (running, pending) = self.twin.queue_state();
        SnapshotInfo {
            id: self.id,
            label: self.label.clone(),
            taken_at_s: self.taken_at_s,
            running_jobs: running as u64,
            pending_jobs: pending as u64,
        }
    }
}

/// The store's registry handles: disk-tier timing histograms plus the
/// spill counter. Defaults to detached (unregistered) instruments so a
/// standalone store still measures; the service swaps in
/// registry-backed handles via [`SnapshotStore::set_metrics`].
#[derive(Clone)]
pub(crate) struct StoreMetrics {
    /// Time to serialize + write one snapshot to the disk tier.
    pub persist_seconds: Histogram,
    /// Time to load one spilled snapshot back from disk.
    pub rehydrate_seconds: Histogram,
    /// Resident snapshots evicted to the disk tier by the memory cap.
    pub spills: Counter,
}

impl Default for StoreMetrics {
    fn default() -> Self {
        StoreMetrics {
            persist_seconds: Histogram::new(&LATENCY_BUCKETS_S),
            rehydrate_seconds: Histogram::new(&LATENCY_BUCKETS_S),
            spills: Counter::new(),
        }
    }
}

/// Memory accounting over a [`SnapshotStore`], split the way the
/// `Status` probe reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreMemoryStats {
    /// Snapshots resident in memory.
    pub resident: usize,
    /// Snapshots held only on the disk tier.
    pub spilled: usize,
    /// Approximate recorded-history bytes resident snapshots share with
    /// other twins (the live twin, forks, sibling snapshots) by
    /// refcount.
    pub shared_bytes: usize,
    /// Approximate recorded-history bytes uniquely owned by resident
    /// snapshots — what dropping them would free.
    pub owned_bytes: usize,
}

/// Wire-facing snapshot summary (the `Snapshot` / `ListSnapshots`
/// response payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotInfo {
    /// Snapshot id queries branch from.
    pub id: u64,
    /// Caller-supplied label.
    pub label: String,
    /// Simulated second the snapshot was taken at.
    pub taken_at_s: u64,
    /// Jobs running at the snapshot second.
    pub running_jobs: u64,
    /// Jobs queued at the snapshot second.
    pub pending_jobs: u64,
}

/// On-disk form of one snapshot file (`snap-<id>.json`): identity plus
/// the twin's versioned state blob (`DigitalTwin::save_state`).
#[derive(Serialize, Deserialize)]
struct PersistedSnapshot {
    id: u64,
    label: String,
    taken_at_s: u64,
    seed: u64,
    twin: serde::Value,
}

/// The service's snapshot registry: id-keyed, capacity-bounded in
/// memory, optionally backed by a disk tier.
///
/// With a persist directory configured ([`SnapshotStore::with_persist_dir`]
/// or [`SnapshotStore::recover`]), every adopted snapshot is also written
/// to disk (length-prefixed JSON, atomic tmp + rename — see
/// [`PersistError`] for the typed failure modes), snapshots evicted by
/// the in-memory capacity
/// **spill** to that tier instead of vanishing, and [`SnapshotStore::get`]
/// transparently rehydrates a spilled id. Ids ascend monotonically and
/// `next_id` survives restarts via the manifest, so an id is never
/// reused — which is what keeps `(snapshot id, fingerprint)` query-cache
/// keys collision-free across recoveries.
pub struct SnapshotStore {
    snapshots: BTreeMap<u64, Arc<TwinSnapshot>>,
    /// Manifest entries for every snapshot on disk (resident or spilled).
    persisted: BTreeMap<u64, ManifestEntry>,
    next_id: u64,
    max_snapshots: usize,
    seed: u64,
    persist_dir: Option<PathBuf>,
    /// Per-line damage reports from a recovered manifest.
    warnings: Vec<String>,
    /// Disk-tier instruments (timings + spill count). Not state: absent
    /// from the manifest, reset on recovery.
    metrics: StoreMetrics,
}

impl SnapshotStore {
    /// Empty in-memory store holding at most `max_snapshots` snapshots,
    /// deriving per-snapshot RNG bases from `seed`.
    pub fn new(max_snapshots: usize, seed: u64) -> Self {
        SnapshotStore {
            snapshots: BTreeMap::new(),
            persisted: BTreeMap::new(),
            next_id: 1,
            max_snapshots: max_snapshots.max(1),
            seed,
            persist_dir: None,
            warnings: Vec::new(),
            metrics: StoreMetrics::default(),
        }
    }

    /// Attach registry-backed instruments, replacing the detached
    /// defaults.
    pub(crate) fn set_metrics(&mut self, metrics: StoreMetrics) {
        self.metrics = metrics;
    }

    /// Enable the disk tier on an empty store: every subsequent adopt is
    /// persisted under `dir`, capacity evictions spill instead of
    /// erroring, and the manifest is kept current. Creates `dir` (and a
    /// fresh manifest) if needed; refuses a non-empty store — enable
    /// persistence before taking snapshots — and refuses a directory
    /// that already holds a manifest (use [`SnapshotStore::recover`]).
    pub fn with_persist_dir(mut self, dir: impl Into<PathBuf>) -> Result<Self, String> {
        if !self.snapshots.is_empty() {
            return Err("persistence must be enabled before snapshots are taken".to_string());
        }
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create persist dir {}: {e}", dir.display()))?;
        if crate::persist::manifest_path(&dir).exists() {
            return Err(format!(
                "{} already holds a manifest; use SnapshotStore::recover to load it",
                dir.display()
            ));
        }
        self.persist_dir = Some(dir);
        self.write_manifest().map_err(|e| e.to_string())?;
        Ok(self)
    }

    /// Reopen the store persisted under `dir`: the manifest's identity
    /// (`next_id`, seed, capacity) is restored and every listed snapshot
    /// starts **spilled** — it is rehydrated from its file on first
    /// [`SnapshotStore::get`], so recovery itself is O(manifest), not
    /// O(total snapshot bytes). Corrupt manifest entry lines are
    /// reported via [`SnapshotStore::recovery_warnings`], never silently
    /// skipped; a corrupt header fails the whole recovery (typed).
    pub fn recover(dir: impl Into<PathBuf>) -> Result<Self, PersistError> {
        let dir = dir.into();
        let manifest = read_manifest(&dir)?;
        Ok(SnapshotStore {
            snapshots: BTreeMap::new(),
            persisted: manifest.entries.into_iter().map(|e| (e.id, e)).collect(),
            next_id: manifest.header.next_id,
            max_snapshots: manifest.header.max_snapshots.max(1),
            seed: manifest.header.seed,
            persist_dir: Some(dir),
            warnings: manifest.damaged,
            metrics: StoreMetrics::default(),
        })
    }

    /// Re-cap an **empty** store in place, preserving its seed and any
    /// configured persist directory (whose manifest is rewritten so the
    /// new cap survives recovery). Errs once a snapshot exists: the cap
    /// is serving configuration, not a runtime control.
    pub fn set_max_snapshots(&mut self, max_snapshots: usize) -> Result<(), String> {
        if !self.is_empty() {
            return Err(format!(
                "snapshot cap must be configured before serving ({} snapshots already taken)",
                self.len()
            ));
        }
        self.max_snapshots = max_snapshots.max(1);
        if self.persist_dir.is_some() {
            self.write_manifest().map_err(|e| e.to_string())?;
        }
        Ok(())
    }

    /// Damage reports collected while recovering the manifest (empty for
    /// a clean recovery or a store that was never recovered).
    pub fn recovery_warnings(&self) -> &[String] {
        &self.warnings
    }

    /// The persist directory, when the disk tier is enabled.
    pub fn persist_dir(&self) -> Option<&Path> {
        self.persist_dir.as_deref()
    }

    /// Freeze `live` into a new snapshot. Without a disk tier this fails
    /// when the store is full (drop one first — eviction must be an
    /// explicit client decision, because a snapshot may be the base of
    /// in-flight queries); with one, the oldest resident snapshot spills
    /// to disk instead. Also fails when the twin's cooling backend
    /// cannot capture its state.
    pub fn take(&mut self, live: &DigitalTwin, label: String) -> Result<Arc<TwinSnapshot>, String> {
        self.adopt(live.fork()?, label)
    }

    /// Register an already-frozen twin as a new snapshot. Lets the
    /// caller clone under its own lock and register outside it (the
    /// service never holds the live-twin and store locks together).
    /// Same capacity rule as [`SnapshotStore::take`].
    pub fn adopt(&mut self, twin: DigitalTwin, label: String) -> Result<Arc<TwinSnapshot>, String> {
        if self.persist_dir.is_none() && self.snapshots.len() >= self.max_snapshots {
            return Err(format!(
                "snapshot store is full ({} of {}); drop one first",
                self.snapshots.len(),
                self.max_snapshots
            ));
        }
        let id = self.next_id;
        let snapshot = Arc::new(TwinSnapshot {
            id,
            label,
            taken_at_s: twin.now(),
            seed: {
                let mut base = Rng::new(self.seed).split(id);
                base.next_u64()
            },
            twin,
        });
        if self.persist_dir.is_some() {
            // Persist before registering: an adopt either lands in both
            // tiers or errors without changing the store.
            self.persist_snapshot(&snapshot).map_err(|e| e.to_string())?;
        }
        self.next_id += 1;
        self.snapshots.insert(id, Arc::clone(&snapshot));
        self.enforce_capacity(id);
        if self.persist_dir.is_some() {
            self.write_manifest().map_err(|e| e.to_string())?;
        }
        Ok(snapshot)
    }

    /// Spill oldest resident snapshots until the in-memory tier is back
    /// within capacity, keeping `keep_id` resident. Only meaningful with
    /// a disk tier (the spilled copies are already on disk).
    fn enforce_capacity(&mut self, keep_id: u64) {
        if self.persist_dir.is_none() {
            return;
        }
        while self.snapshots.len() > self.max_snapshots {
            let oldest = self
                .snapshots
                .keys()
                .copied()
                .find(|&id| id != keep_id)
                .expect("over-capacity store has a second entry");
            self.snapshots.remove(&oldest);
            self.metrics.spills.inc();
        }
    }

    /// Write one snapshot's file and record its manifest entry.
    fn persist_snapshot(&mut self, snapshot: &TwinSnapshot) -> Result<(), PersistError> {
        // Disk-path timing: a few ns of Instant overhead against ms of
        // serde + I/O, so no enabled gate here.
        let started = std::time::Instant::now();
        let dir = self.persist_dir.clone().expect("disk tier enabled");
        let path = snapshot_path(&dir, snapshot.id);
        let twin_state = snapshot.twin.save_state().map_err(|detail| PersistError::Corrupt {
            path: path.clone(),
            detail,
        })?;
        let bytes = write_json(
            &path,
            &PersistedSnapshot {
                id: snapshot.id,
                label: snapshot.label.clone(),
                taken_at_s: snapshot.taken_at_s,
                seed: snapshot.seed,
                twin: twin_state,
            },
        )?;
        let (running, pending) = snapshot.twin.queue_state();
        self.persisted.insert(
            snapshot.id,
            ManifestEntry {
                id: snapshot.id,
                label: snapshot.label.clone(),
                taken_at_s: snapshot.taken_at_s,
                bytes,
                running_jobs: running as u64,
                pending_jobs: pending as u64,
            },
        );
        self.metrics.persist_seconds.observe_duration(started.elapsed());
        Ok(())
    }

    fn write_manifest(&self) -> Result<(), PersistError> {
        let dir = self.persist_dir.as_deref().expect("disk tier enabled");
        let header = ManifestHeader {
            manifest_format_version: MANIFEST_FORMAT_VERSION,
            next_id: self.next_id,
            seed: self.seed,
            max_snapshots: self.max_snapshots,
        };
        let entries: Vec<ManifestEntry> = self.persisted.values().cloned().collect();
        write_manifest(dir, &header, &entries)
    }

    /// Look up a snapshot by id (an `Arc` clone, so queries keep the
    /// frozen state alive even across a concurrent drop). A spilled
    /// snapshot is transparently rehydrated from disk — same id, same
    /// seed, same frozen state, so outcomes cached against the id remain
    /// valid. `Ok(None)` means the id does not exist; a disk-tier
    /// failure (torn file, corrupt payload, format-version mismatch)
    /// surfaces as a typed [`PersistError`] for that snapshot only.
    pub fn get(&mut self, id: u64) -> Result<Option<Arc<TwinSnapshot>>, PersistError> {
        if let Some(snapshot) = self.snapshots.get(&id) {
            return Ok(Some(Arc::clone(snapshot)));
        }
        if !self.persisted.contains_key(&id) {
            return Ok(None);
        }
        let snapshot = self.rehydrate(id)?;
        self.snapshots.insert(id, Arc::clone(&snapshot));
        self.enforce_capacity(id);
        Ok(Some(snapshot))
    }

    /// Load a spilled snapshot's file back into a live [`TwinSnapshot`].
    fn rehydrate(&self, id: u64) -> Result<Arc<TwinSnapshot>, PersistError> {
        let started = std::time::Instant::now();
        let dir = self.persist_dir.as_deref().expect("spilled entries imply a disk tier");
        let path = snapshot_path(dir, id);
        let persisted: PersistedSnapshot = read_json(&path)?;
        if persisted.id != id {
            return Err(PersistError::Corrupt {
                path,
                detail: format!("file claims snapshot id {}, expected {id}", persisted.id),
            });
        }
        let twin = DigitalTwin::from_state(&persisted.twin)
            .map_err(|detail| PersistError::Corrupt { path, detail })?;
        self.metrics.rehydrate_seconds.observe_duration(started.elapsed());
        Ok(Arc::new(TwinSnapshot {
            id: persisted.id,
            label: persisted.label,
            taken_at_s: persisted.taken_at_s,
            seed: persisted.seed,
            twin,
        }))
    }

    /// Drop a snapshot from every tier: the resident copy (in-flight
    /// queries holding the `Arc` finish unaffected), the disk file, and
    /// the manifest entry. The id stops resolving — and because ids are
    /// never reused, queries cached against it can never be served to a
    /// different snapshot.
    pub fn drop_snapshot(&mut self, id: u64) -> bool {
        let resident = self.snapshots.remove(&id).is_some();
        let persisted = self.persisted.remove(&id).is_some();
        if persisted {
            if let Some(dir) = self.persist_dir.as_deref() {
                let _ = std::fs::remove_file(snapshot_path(dir, id));
            }
            let _ = self.write_manifest();
        }
        resident || persisted
    }

    /// Force snapshot `id`'s current state to disk (the `Persist`
    /// protocol query). With the disk tier every adopt already persists,
    /// so this is a re-write — useful after an off-path mutation or to
    /// heal a damaged file. Fails without a disk tier or for an unknown
    /// (or spilled-and-unreadable) id.
    pub fn persist(&mut self, id: u64) -> Result<u64, String> {
        if self.persist_dir.is_none() {
            return Err("no persist directory configured".to_string());
        }
        let snapshot = self
            .get(id)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| format!("unknown snapshot id {id}"))?;
        self.persist_snapshot(&snapshot).map_err(|e| e.to_string())?;
        self.write_manifest().map_err(|e| e.to_string())?;
        Ok(self.persisted[&id].bytes)
    }

    /// Summaries of every held snapshot (resident and spilled),
    /// ascending id. Spilled entries are summarised from the manifest —
    /// listing never forces a rehydrate.
    pub fn list(&self) -> Vec<SnapshotInfo> {
        let mut out: Vec<SnapshotInfo> = Vec::with_capacity(self.len());
        let mut ids: Vec<u64> =
            self.snapshots.keys().chain(self.persisted.keys()).copied().collect();
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            if let Some(s) = self.snapshots.get(&id) {
                out.push(s.info());
            } else if let Some(e) = self.persisted.get(&id) {
                out.push(SnapshotInfo {
                    id: e.id,
                    label: e.label.clone(),
                    taken_at_s: e.taken_at_s,
                    running_jobs: e.running_jobs,
                    pending_jobs: e.pending_jobs,
                });
            }
        }
        out
    }

    /// Memory accounting across the store's tiers (the `Status` probe's
    /// capacity view). Shared/owned bytes are summed over **resident**
    /// snapshots only — spilled snapshots hold no memory, that is the
    /// point of spilling — using the copy-on-write accounting in
    /// `SimOutputs::shared_owned_bytes`: chunks a snapshot still shares
    /// with the live twin (or with sibling snapshots) read as shared,
    /// so `owned_bytes` is what dropping snapshots would actually free.
    pub fn memory_stats(&self) -> StoreMemoryStats {
        let mut shared_bytes = 0;
        let mut owned_bytes = 0;
        for snapshot in self.snapshots.values() {
            let (s, o) = snapshot.twin().outputs().shared_owned_bytes();
            shared_bytes += s;
            owned_bytes += o;
        }
        StoreMemoryStats {
            resident: self.snapshots.len(),
            spilled: self.persisted.keys().filter(|id| !self.snapshots.contains_key(id)).count(),
            shared_bytes,
            owned_bytes,
        }
    }

    /// Number of held snapshots across both tiers.
    pub fn len(&self) -> usize {
        let spilled = self.persisted.keys().filter(|id| !self.snapshots.contains_key(id)).count();
        self.snapshots.len() + spilled
    }

    /// Number of snapshots resident in memory.
    pub fn resident(&self) -> usize {
        self.snapshots.len()
    }

    /// True when no snapshot is held in any tier.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The service seed snapshot RNG bases derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exadigit_core::config::TwinConfig;

    fn live_twin() -> DigitalTwin {
        let mut twin = DigitalTwin::new(TwinConfig::frontier_power_only()).unwrap();
        twin.submit(vec![exadigit_raps::job::Job::new(1, "j", 128, 600, 5, 0.6, 0.6)]);
        twin.run(60).unwrap();
        twin
    }

    #[test]
    fn take_fork_drop_lifecycle() {
        let mut store = SnapshotStore::new(4, 7);
        let live = live_twin();
        let snap = store.take(&live, "t60".into()).unwrap();
        assert_eq!(snap.id, 1);
        assert_eq!(snap.taken_at_s, 60);
        assert_eq!(snap.info().running_jobs, 1);
        let mut fork = snap.fork().unwrap();
        fork.run(600).unwrap();
        assert_eq!(fork.report().jobs_completed, 1);
        // The frozen state is unaffected by the fork's progress.
        assert_eq!(snap.twin().now(), 60);
        assert!(store.drop_snapshot(1));
        assert!(!store.drop_snapshot(1));
        assert!(store.get(1).unwrap().is_none());
    }

    #[test]
    fn store_capacity_is_enforced() {
        let mut store = SnapshotStore::new(2, 0);
        let live = live_twin();
        store.take(&live, "a".into()).unwrap();
        store.take(&live, "b".into()).unwrap();
        let err = match store.take(&live, "c".into()) {
            Err(e) => e,
            Ok(_) => panic!("store must refuse a third snapshot"),
        };
        assert!(err.contains("full"), "{err}");
        store.drop_snapshot(1);
        // Ids keep ascending after a drop.
        assert_eq!(store.take(&live, "c".into()).unwrap().id, 3);
        assert_eq!(store.list().iter().map(|s| s.id).collect::<Vec<_>>(), vec![2, 3]);
    }

    fn scratch_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("exadigit-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn capacity_evictions_spill_to_disk_and_rehydrate() {
        let dir = scratch_dir("spill");
        let mut store =
            SnapshotStore::new(2, 7).with_persist_dir(&dir).expect("fresh dir accepts the tier");
        let metrics = StoreMetrics::default();
        store.set_metrics(metrics.clone());
        let live = live_twin();
        store.take(&live, "a".into()).unwrap();
        store.take(&live, "b".into()).unwrap();
        // With a disk tier the third take spills the oldest instead of
        // erroring.
        store.take(&live, "c".into()).unwrap();
        assert_eq!(store.len(), 3, "nothing vanished");
        assert_eq!(store.resident(), 2, "capacity still bounds memory");
        assert_eq!(
            store.list().iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "listings merge both tiers without rehydrating"
        );
        // The spilled snapshot comes back bit-identical in behaviour:
        // same id, seed, and frozen second, and its fork advances.
        let back = store.get(1).unwrap().expect("spilled id must resolve");
        assert_eq!(back.id, 1);
        assert_eq!(back.label, "a");
        assert_eq!(back.taken_at_s, 60);
        let mut fork = back.fork().unwrap();
        fork.run(600).unwrap();
        assert_eq!(fork.report().jobs_completed, 1);
        // The instruments saw every disk-tier transition: three
        // persists, two capacity spills (the third take spilled id 1;
        // rehydrating id 1 spilled id 2), one rehydrate.
        assert_eq!(metrics.persist_seconds.count(), 3);
        assert_eq!(metrics.spills.get(), 2);
        assert_eq!(metrics.rehydrate_seconds.count(), 1);
        assert!(metrics.persist_seconds.sum() > 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_restores_identity_and_lazily_rehydrates() {
        let dir = scratch_dir("recover");
        {
            let mut store = SnapshotStore::new(4, 42).with_persist_dir(&dir).unwrap();
            let live = live_twin();
            store.take(&live, "a".into()).unwrap();
            store.take(&live, "b".into()).unwrap();
            store.drop_snapshot(1);
        } // store dropped — "process death"
        let mut back = SnapshotStore::recover(&dir).unwrap();
        assert!(back.recovery_warnings().is_empty());
        assert_eq!(back.seed(), 42);
        assert_eq!(back.len(), 1);
        assert_eq!(back.resident(), 0, "recovery is O(manifest): nothing rehydrated yet");
        assert!(back.get(1).unwrap().is_none(), "dropped ids stay dropped");
        let snap = back.get(2).unwrap().expect("persisted id survives the restart");
        assert_eq!(snap.label, "b");
        // next_id survived: new snapshots never reuse a pre-restart id.
        assert_eq!(back.take(&live_twin(), "c".into()).unwrap().id, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_snapshot_file_is_a_typed_per_snapshot_error() {
        let dir = scratch_dir("torn");
        {
            let mut store = SnapshotStore::new(4, 7).with_persist_dir(&dir).unwrap();
            store.take(&live_twin(), "a".into()).unwrap();
        }
        // Tear the snapshot file: drop the tail so the payload is shorter
        // than its length prefix declares.
        let path = snapshot_path(&dir, 1);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let mut back = SnapshotStore::recover(&dir).unwrap();
        match back.get(1) {
            Err(PersistError::Truncated { .. }) => {}
            Err(e) => panic!("torn file must surface as Truncated, got {e}"),
            Ok(_) => panic!("torn file must not resolve"),
        }
        // The store itself stays usable: the damage is per snapshot.
        assert_eq!(back.take(&live_twin(), "fresh".into()).unwrap().id, 2);
        assert!(back.get(2).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_dir_with_existing_manifest_is_refused() {
        let dir = scratch_dir("refuse");
        {
            let _store = SnapshotStore::new(4, 7).with_persist_dir(&dir).unwrap();
        }
        let err = SnapshotStore::new(4, 7).with_persist_dir(&dir).err().unwrap();
        assert!(err.contains("recover"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_seeds_differ_but_are_reproducible() {
        let mut s1 = SnapshotStore::new(8, 42);
        let mut s2 = SnapshotStore::new(8, 42);
        let live = live_twin();
        let a1 = s1.take(&live, "a".into()).unwrap();
        let b1 = s1.take(&live, "b".into()).unwrap();
        let a2 = s2.take(&live, "a".into()).unwrap();
        assert_eq!(a1.seed, a2.seed, "same service seed + id ⇒ same stream base");
        assert_ne!(a1.seed, b1.seed, "snapshots get distinct stream bases");
    }
}
