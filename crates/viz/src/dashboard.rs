//! Terminal dashboard.
//!
//! Stands in for the paper's ReactJS dashboard (§III-B6): named panels
//! rendered into a bordered terminal layout, fed from a thread-safe
//! [`LiveStore`] so a simulation thread can publish values while a UI
//! thread renders — the same producer/consumer split the K8s deployment
//! uses between simulation pods and the web frontend.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A thread-safe store of named live values (latest-value semantics).
#[derive(Debug, Clone, Default)]
pub struct LiveStore {
    inner: Arc<Mutex<BTreeMap<String, f64>>>,
}

impl LiveStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a value.
    pub fn publish(&self, key: impl Into<String>, value: f64) {
        self.inner.lock().insert(key.into(), value);
    }

    /// Read a value.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.inner.lock().get(key).copied()
    }

    /// Snapshot all values (sorted by key).
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        self.inner.lock().iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Number of published keys.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// One dashboard panel: a title plus pre-rendered body lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Panel {
    /// Panel title.
    pub title: String,
    /// Body lines (already formatted).
    pub lines: Vec<String>,
}

impl Panel {
    /// Panel from a title and body text.
    pub fn new(title: impl Into<String>, body: impl Into<String>) -> Self {
        Panel { title: title.into(), lines: body.into().lines().map(str::to_string).collect() }
    }

    /// A key/value panel from live-store entries matching a prefix.
    pub fn from_store(title: impl Into<String>, store: &LiveStore, prefix: &str) -> Self {
        let lines = store
            .snapshot()
            .into_iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| format!("{k:<38} {v:>14.3}"))
            .collect();
        Panel { title: title.into(), lines }
    }
}

/// The dashboard renderer.
#[derive(Debug, Default)]
pub struct Dashboard {
    panels: Vec<Panel>,
}

impl Dashboard {
    /// Empty dashboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a panel.
    pub fn add(&mut self, panel: Panel) -> &mut Self {
        self.panels.push(panel);
        self
    }

    /// Render all panels stacked, `width` characters wide.
    pub fn render(&self, width: usize) -> String {
        let width = width.max(20);
        let inner = width - 2;
        let mut out = String::new();
        for panel in &self.panels {
            let title = truncate(&panel.title, inner.saturating_sub(4));
            out.push('╔');
            out.push_str(&format!("═ {title} "));
            let used = 3 + title.chars().count();
            out.push_str(&"═".repeat(width.saturating_sub(used + 2)));
            out.push_str("╗\n");
            for line in &panel.lines {
                let line = truncate(line, inner);
                out.push('║');
                out.push_str(&line);
                out.push_str(&" ".repeat(inner.saturating_sub(line.chars().count())));
                out.push_str("║\n");
            }
            out.push('╚');
            out.push_str(&"═".repeat(inner));
            out.push_str("╝\n");
        }
        out
    }
}

/// A gauge line: `label [#####-----] 50.0 %`.
pub fn gauge(label: &str, fraction: f64, width: usize) -> String {
    let fraction = fraction.clamp(0.0, 1.0);
    let filled = (fraction * width as f64).round() as usize;
    format!(
        "{label:<18} [{}{}] {:5.1} %",
        "#".repeat(filled),
        "-".repeat(width - filled),
        100.0 * fraction
    )
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        s.chars().take(max.saturating_sub(1)).chain(std::iter::once('…')).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_store_publish_and_get() {
        let store = LiveStore::new();
        store.publish("power.system_mw", 16.9);
        store.publish("pue", 1.05);
        assert_eq!(store.get("pue"), Some(1.05));
        assert_eq!(store.get("missing"), None);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn live_store_shared_across_clones() {
        let a = LiveStore::new();
        let b = a.clone();
        a.publish("x", 1.0);
        assert_eq!(b.get("x"), Some(1.0));
    }

    #[test]
    fn live_store_concurrent_publishers() {
        let store = LiveStore::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let st = store.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        st.publish(format!("k{t}"), i as f64);
                    }
                });
            }
        });
        assert_eq!(store.len(), 8);
        for t in 0..8 {
            assert_eq!(store.get(&format!("k{t}")), Some(99.0));
        }
    }

    #[test]
    fn panel_from_store_filters_by_prefix() {
        let store = LiveStore::new();
        store.publish("cdu.1.flow", 0.05);
        store.publish("cdu.2.flow", 0.06);
        store.publish("pue", 1.04);
        let p = Panel::from_store("CDUs", &store, "cdu.");
        assert_eq!(p.lines.len(), 2);
    }

    #[test]
    fn dashboard_renders_borders() {
        let mut d = Dashboard::new();
        d.add(Panel::new("Power", "system: 16.9 MW\nloss: 1.14 MW"));
        let r = d.render(60);
        assert!(r.contains("Power"));
        assert!(r.contains('╔') && r.contains('╝'));
        assert!(r.contains("16.9 MW"));
        // Every body line padded to the same width.
        let lines: Vec<&str> = r.lines().filter(|l| l.starts_with('║')).collect();
        assert!(lines.iter().all(|l| l.chars().count() == 60));
    }

    #[test]
    fn gauge_renders_fraction() {
        let g = gauge("utilization", 0.5, 10);
        assert!(g.contains("#####-----"));
        assert!(g.contains("50.0 %"));
        let full = gauge("x", 2.0, 4);
        assert!(full.contains("####"));
    }

    #[test]
    fn long_lines_truncated() {
        let mut d = Dashboard::new();
        d.add(Panel::new("T", "x".repeat(500)));
        let r = d.render(40);
        assert!(r.lines().all(|l| l.chars().count() <= 40));
    }
}
