//! Scenario-batch execution: the generic half of the ensemble engine.
//!
//! The paper's hottest workloads are *ensembles* — Monte-Carlo UQ over the
//! power-model parameters (§IV) and batched what-if studies (§IV-3) — all
//! of which reduce to "run N independent scenarios, each with its own RNG
//! stream, and gather the results in order". [`EnsembleRunner`] is that
//! primitive: it fans scenarios out across the thread-pool executor behind
//! the `rayon` façade and hands every scenario a [`ScenarioCtx`] carrying
//! its index and a [`Rng`] stream split deterministically from the runner
//! seed.
//!
//! Determinism: scenario `i` always receives stream `base.split(i)` and
//! results are gathered in scenario order, so output is bit-identical for
//! every pool width (`threads(1)` vs `threads(8)` — enforced by
//! `tests/ensemble_determinism.rs`). See `docs/ENSEMBLES.md` for the
//! architecture and the twin-level scenario types layered on top in
//! `exadigit_core::ensemble`.

use crate::rng::Rng;
use rayon::prelude::*;

/// Per-scenario execution context handed to every scenario closure.
#[derive(Debug, Clone)]
pub struct ScenarioCtx {
    /// Position of this scenario in the batch (0-based); also its RNG
    /// stream id.
    pub index: usize,
    /// This scenario's private random stream, `Rng::new(seed).split(index)`.
    /// Independent of every other scenario's stream and of pool width.
    pub rng: Rng,
}

/// A self-contained unit of twin work that an [`EnsembleRunner`] can batch:
/// UQ draws, what-if variants, plant-spec sweep points, …
///
/// Implementations must be pure functions of `(self, ctx)` — no global
/// state — so that batches stay reproducible under any pool width.
pub trait Scenario: Sync {
    /// What one run of this scenario produces.
    type Output: Send;

    /// Run the scenario to completion.
    fn run(&self, ctx: &mut ScenarioCtx) -> Self::Output;
}

/// Batches N independent scenarios across the thread-pool executor with
/// per-scenario RNG streams and order-deterministic gathering.
///
/// ```
/// use exadigit_sim::ensemble::EnsembleRunner;
///
/// let runner = EnsembleRunner::new(42).threads(4);
/// let draws: Vec<f64> = runner.run_draws(64, |ctx| ctx.rng.normal(0.0, 1.0));
/// assert_eq!(draws.len(), 64);
/// // Bit-identical at any width:
/// let seq: Vec<f64> = EnsembleRunner::new(42).threads(1)
///     .run_draws(64, |ctx| ctx.rng.normal(0.0, 1.0));
/// assert_eq!(draws, seq);
/// ```
#[derive(Debug, Clone)]
pub struct EnsembleRunner {
    seed: u64,
    threads: Option<usize>,
}

impl EnsembleRunner {
    /// A runner whose scenario streams derive from `seed`. Pool width
    /// defaults to the process-wide setting (`EXADIGIT_THREADS`, else
    /// `RAYON_NUM_THREADS`, else the machine's available parallelism).
    pub fn new(seed: u64) -> Self {
        EnsembleRunner { seed, threads: None }
    }

    /// Pin the pool width for this runner's batches. `1` forces the
    /// sequential reference path; larger values grow the global pool on
    /// demand.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Drop any pinned width and fall back to the process-wide default.
    pub fn threads_default(mut self) -> Self {
        self.threads = None;
        self
    }

    /// The seed scenario streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The pool width batches from this runner will use.
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(rayon::current_num_threads)
    }

    /// Run a closure under this runner's pool-width setting.
    fn with_pool<R>(&self, f: impl FnOnce() -> R) -> R {
        match self.threads {
            Some(n) => rayon::with_threads(n, f),
            None => f(),
        }
    }

    /// Batch heterogeneous inputs: apply `f` to every input in parallel,
    /// each call receiving a [`ScenarioCtx`] with its own RNG stream.
    /// Results are returned in input order.
    pub fn map<T, R, F>(&self, inputs: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&mut ScenarioCtx, T) -> R + Sync,
    {
        let base = Rng::new(self.seed);
        let indexed: Vec<(usize, T)> = inputs.into_iter().enumerate().collect();
        self.with_pool(|| {
            indexed
                .into_par_iter()
                .map(|(index, input)| {
                    let mut ctx = ScenarioCtx { index, rng: base.split(index as u64) };
                    f(&mut ctx, input)
                })
                .collect()
        })
    }

    /// Fallible batch: like [`EnsembleRunner::map`] but for scenario
    /// functions returning `Result`. All scenarios run to completion
    /// (no cross-thread short-circuit — that would make *which* error
    /// surfaces depend on pool timing); the gathered outcomes are then
    /// folded in index order, so on failure the lowest-index error is
    /// returned, matching sequential short-circuit semantics exactly.
    /// This is the shape every fidelity-selectable what-if sweep uses.
    pub fn try_map<T, R, E, F>(&self, inputs: Vec<T>, f: F) -> Result<Vec<R>, E>
    where
        T: Send,
        R: Send,
        E: Send,
        F: Fn(&mut ScenarioCtx, T) -> Result<R, E> + Sync,
    {
        self.map(inputs, f).into_iter().collect()
    }

    /// Batch `n` identical draws (the Monte-Carlo shape): `f` runs once per
    /// index with that index's RNG stream.
    pub fn run_draws<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut ScenarioCtx) -> R + Sync,
    {
        self.map((0..n).collect(), |ctx, _| f(ctx))
    }

    /// Batch a slice of [`Scenario`] values, gathering outputs in order.
    pub fn run_scenarios<S: Scenario>(&self, scenarios: &[S]) -> Vec<S::Output> {
        self.map(scenarios.iter().collect(), |ctx, scenario| scenario.run(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_bit_identical_across_widths() {
        let draw = |ctx: &mut ScenarioCtx| ctx.rng.normal(5.0, 2.0) + ctx.index as f64;
        let seq = EnsembleRunner::new(7).threads(1).run_draws(128, draw);
        for width in [2usize, 4, 8] {
            let par = EnsembleRunner::new(7).threads(width).run_draws(128, draw);
            let same = seq
                .iter()
                .zip(&par)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "width {width} changed ensemble bits");
        }
    }

    #[test]
    fn streams_are_independent_per_index() {
        let draws = EnsembleRunner::new(3).threads(1).run_draws(16, |ctx| ctx.rng.uniform());
        for (i, a) in draws.iter().enumerate() {
            for b in &draws[i + 1..] {
                assert_ne!(a, b, "two scenario streams collided");
            }
        }
    }

    #[test]
    fn map_preserves_input_order() {
        let inputs: Vec<u64> = (0..200).rev().collect();
        let out = EnsembleRunner::new(0).threads(4).map(inputs.clone(), |ctx, x| (ctx.index, x));
        for (i, (index, x)) in out.iter().enumerate() {
            assert_eq!(*index, i);
            assert_eq!(*x, inputs[i]);
        }
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        let runner = EnsembleRunner::new(0).threads(4);
        let out: Result<Vec<u64>, String> = runner.try_map((0..64u64).collect(), |_ctx, x| {
            if x % 10 == 7 {
                Err(format!("bad {x}"))
            } else {
                Ok(x * 2)
            }
        });
        assert_eq!(out, Err("bad 7".to_string()));
        let ok: Result<Vec<u64>, String> =
            runner.try_map((0..8u64).collect(), |_ctx, x| Ok(x + 1));
        assert_eq!(ok.unwrap(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn scenario_trait_batches() {
        struct Offset(f64);
        impl Scenario for Offset {
            type Output = f64;
            fn run(&self, ctx: &mut ScenarioCtx) -> f64 {
                self.0 + ctx.rng.uniform()
            }
        }
        let scenarios = [Offset(10.0), Offset(20.0), Offset(30.0)];
        let out = EnsembleRunner::new(9).threads(2).run_scenarios(&scenarios);
        assert_eq!(out.len(), 3);
        assert!(out[0] >= 10.0 && out[0] < 11.0);
        assert!(out[2] >= 30.0 && out[2] < 31.0);
    }

    #[test]
    fn effective_threads_reports_pin() {
        assert_eq!(EnsembleRunner::new(0).threads(6).effective_threads(), 6);
        assert!(EnsembleRunner::new(0).effective_threads() >= 1);
    }
}
