//! Fixed-step time series with copy-on-write chunked storage.
//!
//! Telemetry in the paper arrives at heterogeneous cadences (Table II: 1 s
//! measured power, 15 s rack power and cooling outputs, 60 s wet-bulb,
//! 10 min pump power...). `TimeSeries` stores a uniformly sampled channel
//! and supports the resampling needed to align model output with telemetry
//! for RMSE/MAE validation.
//!
//! # Storage: sealed chunks + mutable tail
//!
//! Samples live in two tiers: a list of immutable **sealed chunks** — each
//! exactly [`CHUNK_LEN`] samples behind an `Arc` — plus one small mutable
//! **tail** holding the trailing `len % CHUNK_LEN` samples. Appends only
//! ever touch the tail; the moment the tail reaches [`CHUNK_LEN`] samples
//! it is sealed into an `Arc` and a fresh tail starts. Sealed chunks are
//! *never* mutated afterwards, so cloning a series — the heart of
//! `DigitalTwin::fork` — bumps one refcount per chunk and copies only the
//! tail: O(touched-state) instead of O(recorded-history). Forks of forks
//! keep sharing every chunk sealed before the fork point.
//!
//! The chunk layout is a pure function of the sample count (a chunk seals
//! exactly at each `CHUNK_LEN` boundary, regardless of whether samples
//! arrived via [`TimeSeries::push`], [`TimeSeries::push_n`], or
//! [`TimeSeries::from_values`]), so the derived `PartialEq`/`Clone` keep
//! their value semantics and equality never depends on append history.
//!
//! Serde intentionally sees the *materialized* view — `{t0, dt, values}`
//! with a flat sample array — so the PR 7 snapshot wire format is
//! byte-identical to the pre-chunking layout and fixtures never notice
//! the representation change.

use std::cell::Cell;
use std::sync::Arc;

/// Samples per sealed chunk. A power of two so position decomposition
/// (`i / CHUNK_LEN`, `i % CHUNK_LEN`) compiles to shifts/masks. At the
/// 15 s record cadence one chunk covers ~4.3 h; a 7-day history is ~40
/// chunk refcount bumps per series to fork.
pub const CHUNK_LEN: usize = 1024;

thread_local! {
    /// Count of sealed-chunk allocations performed by this thread — the
    /// "counting allocator" hook behind the zero-copy-fork guarantee
    /// (see [`TimeSeries::sealed_chunk_allocations`]).
    static CHUNK_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A uniformly sampled time series: value `i` is the sample at
/// `t0 + i * dt` (seconds). Storage is copy-on-write chunked (see the
/// module docs); `clone()` is O(chunks + tail), not O(samples).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Time of the first sample, in seconds.
    pub t0: f64,
    /// Sample period in seconds (must be > 0).
    pub dt: f64,
    /// Immutable full chunks (each exactly `CHUNK_LEN` samples), shared
    /// by refcount across forks.
    sealed: Vec<Arc<Vec<f64>>>,
    /// The mutable trailing partial chunk (`len % CHUNK_LEN` samples).
    tail: Vec<f64>,
}

impl TimeSeries {
    /// Empty series starting at `t0` with period `dt`.
    pub fn new(t0: f64, dt: f64) -> Self {
        assert!(dt > 0.0, "sample period must be positive");
        TimeSeries { t0, dt, sealed: Vec::new(), tail: Vec::new() }
    }

    /// Empty series with pre-reserved tail capacity (avoids re-allocation
    /// in multi-day replays; anything past one chunk is irrelevant — the
    /// tail never exceeds [`CHUNK_LEN`] samples).
    pub fn with_capacity(t0: f64, dt: f64, capacity: usize) -> Self {
        assert!(dt > 0.0, "sample period must be positive");
        TimeSeries {
            t0,
            dt,
            sealed: Vec::new(),
            tail: Vec::with_capacity(capacity.min(CHUNK_LEN)),
        }
    }

    /// Build from existing samples (sealing every full chunk).
    pub fn from_values(t0: f64, dt: f64, values: Vec<f64>) -> Self {
        assert!(dt > 0.0, "sample period must be positive");
        let mut s = TimeSeries { t0, dt, sealed: Vec::new(), tail: values };
        s.seal_full_chunks();
        s
    }

    /// Seal the tail into an `Arc` chunk. Caller guarantees the tail
    /// holds exactly `CHUNK_LEN` samples.
    fn seal_tail(&mut self) {
        debug_assert_eq!(self.tail.len(), CHUNK_LEN);
        let chunk = std::mem::replace(&mut self.tail, Vec::with_capacity(CHUNK_LEN));
        self.sealed.push(Arc::new(chunk));
        CHUNK_ALLOCS.with(|c| c.set(c.get() + 1));
    }

    /// Restore the canonical layout after bulk-loading the tail: split
    /// off every full chunk, leaving `len % CHUNK_LEN` samples mutable.
    fn seal_full_chunks(&mut self) {
        if self.tail.len() < CHUNK_LEN {
            return;
        }
        let full = self.tail.len() / CHUNK_LEN * CHUNK_LEN;
        let rest = self.tail.split_off(full);
        let mut bulk = std::mem::replace(&mut self.tail, rest);
        while bulk.len() > CHUNK_LEN {
            let spill = bulk.split_off(CHUNK_LEN);
            self.sealed.push(Arc::new(bulk));
            CHUNK_ALLOCS.with(|c| c.set(c.get() + 1));
            bulk = spill;
        }
        self.sealed.push(Arc::new(bulk));
        CHUNK_ALLOCS.with(|c| c.set(c.get() + 1));
    }

    /// Append the next sample.
    #[inline]
    pub fn push(&mut self, value: f64) {
        self.tail.push(value);
        if self.tail.len() == CHUNK_LEN {
            self.seal_tail();
        }
    }

    /// Append `n` copies of the same sample in one call. Bit-identical to
    /// `n` sequential [`TimeSeries::push`] calls of `value` (no arithmetic
    /// happens — the same f64 is cloned), which is what lets the lazy
    /// record backfill in the event kernel materialise the samples of a
    /// constant-power gap without visiting each record boundary.
    #[inline]
    pub fn push_n(&mut self, value: f64, n: usize) {
        let mut remaining = n;
        while remaining > 0 {
            let take = remaining.min(CHUNK_LEN - self.tail.len());
            self.tail.resize(self.tail.len() + take, value);
            remaining -= take;
            if self.tail.len() == CHUNK_LEN {
                self.seal_tail();
            }
        }
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.sealed.len() * CHUNK_LEN + self.tail.len()
    }

    /// True when no samples are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.tail.is_empty()
    }

    /// Sample `i` (panics when out of bounds, like slice indexing).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        let chunk = i / CHUNK_LEN;
        if chunk < self.sealed.len() {
            self.sealed[chunk][i % CHUNK_LEN]
        } else {
            self.tail[i - self.sealed.len() * CHUNK_LEN]
        }
    }

    /// Last sample (None when empty).
    pub fn last(&self) -> Option<f64> {
        self.tail
            .last()
            .or_else(|| self.sealed.last().map(|c| &c[CHUNK_LEN - 1]))
            .copied()
    }

    /// Iterator over the raw samples in time order.
    pub fn samples(&self) -> impl Iterator<Item = f64> + '_ {
        self.sealed
            .iter()
            .flat_map(|c| c.iter().copied())
            .chain(self.tail.iter().copied())
    }

    /// Materialise the samples into one contiguous vector (for chart
    /// bucketing and similar slice consumers). O(samples) — not a hot
    /// path.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        for c in &self.sealed {
            out.extend_from_slice(c);
        }
        out.extend_from_slice(&self.tail);
        out
    }

    /// Time of sample `i`.
    #[inline]
    pub fn time_at(&self, i: usize) -> f64 {
        self.t0 + i as f64 * self.dt
    }

    /// Time of the last sample (None when empty).
    pub fn end_time(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.time_at(self.len() - 1))
        }
    }

    /// Linear interpolation at time `t`, clamped to the series ends.
    pub fn sample_at(&self, t: f64) -> f64 {
        assert!(!self.is_empty(), "cannot sample an empty series");
        let pos = (t - self.t0) / self.dt;
        if pos <= 0.0 {
            return self.get(0);
        }
        let last = self.len() - 1;
        if pos >= last as f64 {
            return self.get(last);
        }
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        self.get(i) * (1.0 - frac) + self.get(i + 1) * frac
    }

    /// Resample to a new period via linear interpolation, covering the same
    /// time span. Used to align e.g. 60 s wet-bulb telemetry onto the 15 s
    /// cooling-model grid.
    pub fn resample(&self, new_dt: f64) -> TimeSeries {
        assert!(new_dt > 0.0);
        assert!(!self.is_empty());
        let span = (self.len() - 1) as f64 * self.dt;
        let n = (span / new_dt).floor() as usize + 1;
        let mut out = TimeSeries::with_capacity(self.t0, new_dt, n);
        for i in 0..n {
            out.push(self.sample_at(self.t0 + i as f64 * new_dt));
        }
        out
    }

    /// Mean of all samples (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            return f64::NAN;
        }
        self.samples().sum::<f64>() / self.len() as f64
    }

    /// Minimum sample (NaN when empty).
    pub fn min(&self) -> f64 {
        self.samples().fold(f64::NAN, f64::min)
    }

    /// Maximum sample (NaN when empty).
    pub fn max(&self) -> f64 {
        self.samples().fold(f64::NAN, f64::max)
    }

    /// Integrate the series over its span using the trapezoidal rule.
    /// With values in watts and dt in seconds, this yields joules.
    pub fn integrate(&self) -> f64 {
        if self.len() < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut prev = self.get(0);
        for v in self.samples().skip(1) {
            acc += 0.5 * (prev + v) * self.dt;
            prev = v;
        }
        acc
    }

    /// Element-wise map into a new series.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> TimeSeries {
        TimeSeries::from_values(self.t0, self.dt, self.samples().map(f).collect())
    }

    /// Iterator over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.samples()
            .enumerate()
            .map(move |(i, v)| (self.time_at(i), v))
    }

    // ---- copy-on-write introspection -----------------------------------

    /// Number of sealed (immutable, refcount-shared) chunks.
    pub fn sealed_chunk_count(&self) -> usize {
        self.sealed.len()
    }

    /// Approximate heap bytes split into (shared, owned): a sealed chunk
    /// referenced by more than one series counts as shared, a uniquely
    /// held chunk and the tail count as owned. The split is what
    /// `Response::Status` reports for snapshot memory.
    pub fn shared_owned_bytes(&self) -> (usize, usize) {
        let mut shared = 0usize;
        let mut owned = self.tail.capacity() * std::mem::size_of::<f64>();
        for c in &self.sealed {
            let bytes = c.len() * std::mem::size_of::<f64>();
            if Arc::strong_count(c) > 1 {
                shared += bytes;
            } else {
                owned += bytes;
            }
        }
        (shared, owned)
    }

    /// True when every sealed chunk of `self` is pointer-identical to the
    /// corresponding chunk of `other` (the fork-sharing invariant: a
    /// fresh fork shares *all* sealed history with its parent).
    pub fn shares_sealed_chunks_with(&self, other: &TimeSeries) -> bool {
        self.sealed.len() == other.sealed.len()
            && self
                .sealed
                .iter()
                .zip(&other.sealed)
                .all(|(a, b)| Arc::ptr_eq(a, b))
    }

    /// Sealed-chunk allocations performed by the calling thread so far.
    /// A fork performs none: sample the counter before and after
    /// `fork()`/`clone()` on one thread to prove zero history bytes were
    /// copied (the aliasing-safety test in `tests/service_fork.rs`).
    pub fn sealed_chunk_allocations() -> u64 {
        CHUNK_ALLOCS.with(|c| c.get())
    }
}

impl std::ops::Index<usize> for TimeSeries {
    type Output = f64;

    #[inline]
    fn index(&self, i: usize) -> &f64 {
        let chunk = i / CHUNK_LEN;
        if chunk < self.sealed.len() {
            &self.sealed[chunk][i % CHUNK_LEN]
        } else {
            &self.tail[i - self.sealed.len() * CHUNK_LEN]
        }
    }
}

// Serde sees the materialized `{t0, dt, values}` view — byte-identical to
// the former `#[derive]` on a flat `values: Vec<f64>` field, which keeps
// the PR 7 snapshot wire format stable across the representation change.
impl serde::Serialize for TimeSeries {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("t0".to_string(), serde::Serialize::to_value(&self.t0)),
            ("dt".to_string(), serde::Serialize::to_value(&self.dt)),
            (
                "values".to_string(),
                serde::Value::Array(
                    self.samples().map(|v| serde::Serialize::to_value(&v)).collect(),
                ),
            ),
        ])
    }
}

impl serde::Deserialize for TimeSeries {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| -> Result<&serde::Value, serde::Error> {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("TimeSeries.{name}: missing")))
        };
        let t0 = f64::from_value(field("t0")?)
            .map_err(|e| serde::Error::msg(format!("TimeSeries.t0: {e}")))?;
        let dt = f64::from_value(field("dt")?)
            .map_err(|e| serde::Error::msg(format!("TimeSeries.dt: {e}")))?;
        let values = Vec::<f64>::from_value(field("values")?)
            .map_err(|e| serde::Error::msg(format!("TimeSeries.values: {e}")))?;
        if dt.is_nan() || dt <= 0.0 {
            return Err(serde::Error::msg(format!(
                "TimeSeries.dt: non-positive period {dt}"
            )));
        }
        Ok(TimeSeries::from_values(t0, dt, values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> TimeSeries {
        TimeSeries::from_values(0.0, 15.0, (0..=10).map(|i| i as f64).collect())
    }

    #[test]
    fn sample_interpolates_linearly() {
        let s = ramp();
        assert_eq!(s.sample_at(0.0), 0.0);
        assert_eq!(s.sample_at(15.0), 1.0);
        assert!((s.sample_at(22.5) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sample_clamps_at_ends() {
        let s = ramp();
        assert_eq!(s.sample_at(-100.0), 0.0);
        assert_eq!(s.sample_at(1e9), 10.0);
    }

    #[test]
    fn resample_preserves_span_and_values() {
        let s = ramp(); // spans 150 s
        let r = s.resample(5.0);
        assert_eq!(r.len(), 31);
        assert!((r.sample_at(75.0) - 5.0).abs() < 1e-12);
        assert!((r[30] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn resample_downsamples() {
        let s = ramp();
        let r = s.resample(30.0);
        assert_eq!(r.len(), 6);
        assert_eq!(r[1], 2.0);
    }

    #[test]
    fn integrate_trapezoid() {
        // Constant 2.0 over 4 samples of dt=1 -> area 6.0.
        let s = TimeSeries::from_values(0.0, 1.0, vec![2.0; 4]);
        assert!((s.integrate() - 6.0).abs() < 1e-12);
        // Ramp 0..3 over dt=1 -> area 4.5.
        let s = TimeSeries::from_values(0.0, 1.0, vec![0.0, 1.0, 2.0, 3.0]);
        assert!((s.integrate() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn summary_helpers() {
        let s = ramp();
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 10.0);
        assert!((s.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn push_n_matches_sequential_pushes() {
        let mut seq = TimeSeries::new(0.0, 15.0);
        let mut fast = TimeSeries::new(0.0, 15.0);
        seq.push(1.5);
        fast.push(1.5);
        for _ in 0..100 {
            seq.push(7.25);
        }
        fast.push_n(7.25, 100);
        assert_eq!(seq, fast);
        // Zero-count push is a no-op.
        let before = fast.clone();
        fast.push_n(999.0, 0);
        assert_eq!(fast, before);
    }

    #[test]
    fn push_n_matches_across_chunk_boundaries() {
        let mut seq = TimeSeries::new(0.0, 1.0);
        let mut fast = TimeSeries::new(0.0, 1.0);
        for _ in 0..(3 * CHUNK_LEN + 7) {
            seq.push(0.125);
        }
        fast.push_n(0.125, 3 * CHUNK_LEN + 7);
        assert_eq!(seq, fast);
        assert_eq!(seq.sealed_chunk_count(), 3);
        assert_eq!(fast.sealed_chunk_count(), 3);
    }

    #[test]
    fn map_applies_elementwise() {
        let s = ramp().map(|v| v * 2.0);
        assert_eq!(s[3], 6.0);
    }

    #[test]
    #[should_panic]
    fn zero_dt_rejected() {
        let _ = TimeSeries::new(0.0, 0.0);
    }

    #[test]
    fn chunk_layout_is_a_pure_function_of_len() {
        // The same samples loaded in one shot, pushed one by one, or
        // bulk-appended land in the same sealed/tail split.
        let n = 2 * CHUNK_LEN + 100;
        let values: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let bulk = TimeSeries::from_values(0.0, 1.0, values.clone());
        let mut pushed = TimeSeries::new(0.0, 1.0);
        for &v in &values {
            pushed.push(v);
        }
        assert_eq!(bulk, pushed);
        assert_eq!(bulk.sealed_chunk_count(), 2);
        assert_eq!(bulk.len(), n);
        assert_eq!(bulk.to_vec(), values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(bulk.get(i), v);
            assert_eq!(bulk[i], v);
        }
        assert_eq!(bulk.last(), Some(values[n - 1]));
        let collected: Vec<f64> = bulk.samples().collect();
        assert_eq!(collected, values);
    }

    #[test]
    fn clone_shares_sealed_chunks_and_allocates_none() {
        let mut s = TimeSeries::new(0.0, 1.0);
        s.push_n(2.5, 5 * CHUNK_LEN + 13);
        let before = TimeSeries::sealed_chunk_allocations();
        let fork = s.clone();
        assert_eq!(
            TimeSeries::sealed_chunk_allocations(),
            before,
            "clone must not copy any sealed chunk"
        );
        assert!(fork.shares_sealed_chunks_with(&s));
        let (shared, _) = s.shared_owned_bytes();
        assert_eq!(shared, 5 * CHUNK_LEN * std::mem::size_of::<f64>());
        drop(fork);
        let (shared, owned) = s.shared_owned_bytes();
        assert_eq!(shared, 0, "sole owner again after the fork drops");
        assert!(owned >= 5 * CHUNK_LEN * std::mem::size_of::<f64>());
    }

    #[test]
    fn diverging_after_clone_leaves_the_parent_untouched() {
        let mut parent = TimeSeries::new(0.0, 1.0);
        parent.push_n(1.0, CHUNK_LEN + 50);
        let frozen = parent.clone();
        let mut child = parent.clone();
        child.push_n(9.0, 2 * CHUNK_LEN);
        assert_eq!(parent, frozen);
        assert!(!child.shares_sealed_chunks_with(&frozen));
        assert_eq!(child.len(), 3 * CHUNK_LEN + 50);
        // The shared prefix is still pointer-identical.
        assert!(Arc::ptr_eq(&child.sealed[0], &parent.sealed[0]));
    }

    #[test]
    fn serde_round_trips_and_matches_flat_layout() {
        let mut s = TimeSeries::new(10.0, 15.0);
        s.push_n(3.75, CHUNK_LEN + 5);
        let v = serde::Serialize::to_value(&s);
        // The wire shape is the flat pre-chunking layout.
        let obj = match &v {
            serde::Value::Object(fields) => fields,
            other => panic!("expected object, got {other:?}"),
        };
        assert_eq!(obj[0].0, "t0");
        assert_eq!(obj[1].0, "dt");
        assert_eq!(obj[2].0, "values");
        match &obj[2].1 {
            serde::Value::Array(a) => assert_eq!(a.len(), CHUNK_LEN + 5),
            other => panic!("expected array, got {other:?}"),
        }
        let back = <TimeSeries as serde::Deserialize>::from_value(&v).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.sealed_chunk_count(), 1);
    }
}
