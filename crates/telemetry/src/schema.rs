//! Telemetry record types — Table II of the paper.
//!
//! RAPS inputs: a list of jobs with name, id, node count, start time, and
//! CPU/GPU **power** traces at 15 s (the paper's telemetry lacks
//! utilization, so "we linearly interpolate power to utilization").
//! RAPS output: measured total power at 1 s. Cooling-model inputs: 25 rack
//! powers at 15 s plus wet-bulb at 60 s; outputs: the CDU and CEP channels
//! listed in Table II at their native resolutions.

use exadigit_raps::config::NodePowerConfig;
use exadigit_raps::job::{Job, UtilTrace};
use exadigit_sim::TimeSeries;
use serde::{Deserialize, Serialize};

/// One job as recorded by the physical twin (Table II "RAPS inputs").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job name.
    pub job_name: String,
    /// Job id.
    pub job_id: u64,
    /// Nodes allocated.
    pub node_count: usize,
    /// Submission time, seconds from the start of the dataset.
    pub submit_time_s: u64,
    /// Recorded start time, seconds.
    pub start_time_s: u64,
    /// Wall time, seconds.
    pub wall_time_s: u64,
    /// Per-node CPU power trace, W at 15 s resolution.
    pub cpu_power_w: Vec<f32>,
    /// Per-node GPU power trace (per GPU), W at 15 s resolution.
    pub gpu_power_w: Vec<f32>,
}

impl JobRecord {
    /// Convert a power trace to a utilization trace by inverting the
    /// linear idle/max interpolation of eq. (3) — the paper's approach.
    pub fn to_job(&self, power: &NodePowerConfig) -> Job {
        let cpu_util: Vec<f32> = self
            .cpu_power_w
            .iter()
            .map(|&p| invert_linear(p as f64, power.cpu_idle_w, power.cpu_max_w) as f32)
            .collect();
        let gpu_util: Vec<f32> = self
            .gpu_power_w
            .iter()
            .map(|&p| invert_linear(p as f64, power.gpu_idle_w, power.gpu_max_w) as f32)
            .collect();
        let mut job = Job::new(
            self.job_id,
            self.job_name.clone(),
            self.node_count,
            self.wall_time_s,
            self.submit_time_s,
            0.0,
            0.0,
        );
        job.cpu_util = UtilTrace::Series { quantum_s: 15, values: cpu_util };
        job.gpu_util = UtilTrace::Series { quantum_s: 15, values: gpu_util };
        job
    }

    /// Build a record from a job by evaluating eq. (3) forward (used by
    /// the synthetic twin when "recording" its own workload).
    pub fn from_job(job: &Job, power: &NodePowerConfig, quantum_s: u32) -> JobRecord {
        let steps = (job.wall_time_s / quantum_s as u64).max(1) as usize;
        let mut cpu_power = Vec::with_capacity(steps);
        let mut gpu_power = Vec::with_capacity(steps);
        for i in 0..steps {
            let t = i as u64 * quantum_s as u64;
            let cu = job.cpu_util.at(t);
            let gu = job.gpu_util.at(t);
            cpu_power.push((power.cpu_idle_w + cu * (power.cpu_max_w - power.cpu_idle_w)) as f32);
            gpu_power.push((power.gpu_idle_w + gu * (power.gpu_max_w - power.gpu_idle_w)) as f32);
        }
        JobRecord {
            job_name: job.name.clone(),
            job_id: job.id.0,
            node_count: job.nodes,
            submit_time_s: job.submit_time_s,
            start_time_s: job.start_time_s.unwrap_or(job.submit_time_s),
            wall_time_s: job.wall_time_s,
            cpu_power_w: cpu_power,
            gpu_power_w: gpu_power,
        }
    }
}

fn invert_linear(p: f64, idle: f64, max: f64) -> f64 {
    ((p - idle) / (max - idle)).clamp(0.0, 1.0)
}

/// The cooling channels of Table II with their native resolutions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoolingChannels {
    /// Per-CDU primary flow rates, 15 s.
    pub cdu_primary_flow: Vec<TimeSeries>,
    /// Per-CDU primary return temperatures, 15 s.
    pub cdu_return_temp: Vec<TimeSeries>,
    /// Per-CDU pump speeds, 15 s.
    pub cdu_pump_speed: Vec<TimeSeries>,
    /// Per-CDU pump power, 15 s.
    pub cdu_pump_power: Vec<TimeSeries>,
    /// HTW supply pressure, 30 s.
    pub htw_supply_pressure: TimeSeries,
    /// HTW supply temperature, 60 s.
    pub htw_supply_temp: TimeSeries,
    /// HTW return temperature, 60 s.
    pub htw_return_temp: TimeSeries,
    /// Facility HTW flow, 120 s.
    pub htw_flow: TimeSeries,
    /// PUE, 15 s interpolated.
    pub pue: TimeSeries,
}

impl CoolingChannels {
    /// Empty channel set for `num_cdus` CDUs starting at `t0`.
    pub fn new(num_cdus: usize, t0: f64) -> Self {
        let series15 = || TimeSeries::new(t0, 15.0);
        CoolingChannels {
            cdu_primary_flow: (0..num_cdus).map(|_| series15()).collect(),
            cdu_return_temp: (0..num_cdus).map(|_| series15()).collect(),
            cdu_pump_speed: (0..num_cdus).map(|_| series15()).collect(),
            cdu_pump_power: (0..num_cdus).map(|_| series15()).collect(),
            htw_supply_pressure: TimeSeries::new(t0, 30.0),
            htw_supply_temp: TimeSeries::new(t0, 60.0),
            htw_return_temp: TimeSeries::new(t0, 60.0),
            htw_flow: TimeSeries::new(t0, 120.0),
            pue: TimeSeries::new(t0, 15.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exadigit_raps::config::SystemConfig;

    fn frontier_power() -> NodePowerConfig {
        SystemConfig::frontier().node_power
    }

    #[test]
    fn power_to_util_round_trip() {
        let p = frontier_power();
        let mut job = Job::new(7, "j", 16, 300, 0, 0.0, 0.0);
        job.cpu_util = UtilTrace::Series { quantum_s: 15, values: vec![0.2, 0.5, 0.9] };
        job.gpu_util = UtilTrace::Series { quantum_s: 15, values: vec![0.1, 0.79, 1.0] };
        let rec = JobRecord::from_job(&job, &p, 15);
        let back = rec.to_job(&p);
        for t in [0u64, 15, 30] {
            assert!((back.cpu_util.at(t) - job.cpu_util.at(t)).abs() < 1e-5);
            assert!((back.gpu_util.at(t) - job.gpu_util.at(t)).abs() < 1e-5);
        }
    }

    #[test]
    fn hpl_core_power_level_encoded() {
        // The HPL core phase (GPU 79 %) corresponds to ~461 W per GPU.
        let p = frontier_power();
        let job = exadigit_raps::workload::hpl_job(1, 0);
        let rec = JobRecord::from_job(&job, &p, 15);
        let mid = rec.gpu_power_w[rec.gpu_power_w.len() / 2] as f64;
        assert!((mid - (88.0 + 0.79 * 472.0)).abs() < 2.0, "mid={mid}");
    }

    #[test]
    fn out_of_range_power_clamps() {
        let p = frontier_power();
        let rec = JobRecord {
            job_name: "x".into(),
            job_id: 1,
            node_count: 1,
            submit_time_s: 0,
            start_time_s: 0,
            wall_time_s: 60,
            cpu_power_w: vec![10_000.0, -5.0],
            gpu_power_w: vec![10_000.0, 0.0],
        };
        let job = rec.to_job(&p);
        assert_eq!(job.cpu_util.at(0), 1.0);
        assert_eq!(job.cpu_util.at(15), 0.0);
        assert_eq!(job.gpu_util.at(0), 1.0);
    }

    #[test]
    fn cooling_channels_sized() {
        let c = CoolingChannels::new(25, 0.0);
        assert_eq!(c.cdu_primary_flow.len(), 25);
        assert_eq!(c.htw_supply_pressure.dt, 30.0);
        assert_eq!(c.htw_supply_temp.dt, 60.0);
        assert_eq!(c.htw_flow.dt, 120.0);
        assert_eq!(c.pue.dt, 15.0);
    }

    #[test]
    fn record_serialises() {
        let p = frontier_power();
        let job = Job::new(3, "serde", 8, 120, 5, 0.4, 0.6);
        let rec = JobRecord::from_job(&job, &p, 15);
        let json = serde_json::to_string(&rec).unwrap();
        let back: JobRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(rec, back);
    }
}
