//! Observability is simulation-inert: attaching metrics, leaving them
//! detached, or hammering the shared counters from contender threads
//! while the twin runs must leave every simulated `f64` bit-identical.
//!
//! This is the hard constraint behind the whole `exadigit_obs` layer —
//! counters are diagnostics, never state. A twin that drifts by one ULP
//! when someone scrapes `/metrics` is a broken scientific instrument.

use exadigit_core::online::OnlineSurrogateConfig;
use exadigit_core::{CoolingBackend, DigitalTwin, TwinConfig};
use exadigit_raps::metrics::KernelMetrics;
use exadigit_raps::stats::RunReport;
use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How the metrics handles are wired for one run.
enum Wiring {
    /// Fresh twin, no `set_kernel_metrics` call at all.
    Detached,
    /// Counters attached before the run.
    Attached,
    /// Counters attached, plus contender threads incrementing and
    /// reading the *same* shared atomics for the whole run.
    Contended,
}

fn run_recorded(
    cfg: TwinConfig,
    seed: u64,
    horizon: u64,
    wiring: Wiring,
) -> (RunReport, Vec<f64>, Option<f64>, KernelMetrics) {
    let mut twin = DigitalTwin::new(cfg).unwrap();
    let metrics = KernelMetrics::new();
    match wiring {
        Wiring::Detached => {}
        Wiring::Attached | Wiring::Contended => twin.set_kernel_metrics(metrics.clone()),
    }
    let mut generator = WorkloadGenerator::new(WorkloadParams::default(), seed);
    twin.submit(generator.generate_day(0));

    let stop = Arc::new(AtomicBool::new(false));
    let contenders: Vec<_> = if matches!(wiring, Wiring::Contended) {
        (0..3)
            .map(|_| {
                let shared = metrics.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    // Do-while: at least one hammer pass even if the run
                    // finishes before this thread is first scheduled
                    // (single-core CI).
                    let mut checksum = 0u64;
                    loop {
                        shared.job_arrivals.inc();
                        shared.gaps_batched.inc();
                        shared.samples_backfilled.add(7);
                        checksum = checksum
                            .wrapping_add(shared.job_arrivals.get())
                            .wrapping_add(shared.cooling_quanta.get());
                        if stop.load(Ordering::Relaxed) {
                            break checksum;
                        }
                    }
                })
            })
            .collect()
    } else {
        Vec::new()
    };

    twin.run(horizon).unwrap();
    stop.store(true, Ordering::Relaxed);
    for handle in contenders {
        assert!(handle.join().unwrap() > 0, "contenders really ran");
    }

    let pue = twin.cooling_output("pue");
    (twin.report(), twin.outputs().system_power_w.to_vec(), pue, metrics)
}

fn assert_bit_identical(label: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{label}: series lengths differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: sample {i}: {x} vs {y}");
    }
}

fn assert_pue_bit_identical(label: &str, a: Option<f64>, b: Option<f64>) {
    match (a, b) {
        (Some(x), Some(y)) => assert_eq!(x.to_bits(), y.to_bits(), "{label}: pue {x} vs {y}"),
        (x, y) => assert_eq!(x, y, "{label}: pue presence differs"),
    }
}

/// Power-only twin: detached, attached, and contended runs agree to the
/// bit, and the attached run's counters prove the instruments engaged.
#[test]
fn power_only_twin_is_bit_identical_across_metric_wirings() {
    let cfg = || TwinConfig::frontier_power_only();
    let (r_off, p_off, pue_off, _) = run_recorded(cfg(), 91, 7_200, Wiring::Detached);
    let (r_on, p_on, pue_on, metrics) = run_recorded(cfg(), 91, 7_200, Wiring::Attached);
    let (r_hot, p_hot, pue_hot, _) = run_recorded(cfg(), 91, 7_200, Wiring::Contended);

    assert_eq!(r_off, r_on);
    assert_eq!(r_off, r_hot);
    assert_bit_identical("attached", &p_off, &p_on);
    assert_bit_identical("contended", &p_off, &p_hot);
    assert_pue_bit_identical("attached", pue_off, pue_on);
    assert_pue_bit_identical("contended", pue_off, pue_hot);

    // The inert run still counted: the lazy kernel engaged.
    assert!(metrics.job_arrivals.get() > 0, "arrivals counted");
    assert!(metrics.samples_backfilled.get() > 0, "backfill counted");
}

/// The online cooling backend exercises the deepest instrumented paths
/// (cooled quanta batching, surrogate promotion, fallback counters); it
/// too must be bit-for-bit indifferent to metric wiring.
#[test]
fn online_cooling_twin_is_bit_identical_across_metric_wirings() {
    let cfg = || {
        TwinConfig::frontier()
            .with_backend(CoolingBackend::Online(OnlineSurrogateConfig::default()))
    };
    let (r_off, p_off, pue_off, _) = run_recorded(cfg(), 17, 3_600, Wiring::Detached);
    let (r_on, p_on, pue_on, metrics) = run_recorded(cfg(), 17, 3_600, Wiring::Attached);
    let (r_hot, p_hot, pue_hot, _) = run_recorded(cfg(), 17, 3_600, Wiring::Contended);

    assert_eq!(r_off, r_on);
    assert_eq!(r_off, r_hot);
    assert_bit_identical("attached", &p_off, &p_on);
    assert_bit_identical("contended", &p_off, &p_hot);
    assert_pue_bit_identical("attached", pue_off, pue_on);
    assert_pue_bit_identical("contended", pue_off, pue_hot);

    assert!(metrics.cooling_quanta.get() + metrics.cooled_quanta_batched.get() > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property form: any seed and horizon, same verdict. Power-only
    /// keeps the case budget affordable; the fixed tests above cover
    /// the coupled online backend.
    #[test]
    fn metric_wiring_never_perturbs_the_series(
        seed in 0u64..1_000,
        horizon in 600u64..5_400,
    ) {
        let cfg = || TwinConfig::frontier_power_only();
        let (r_off, p_off, pue_off, _) = run_recorded(cfg(), seed, horizon, Wiring::Detached);
        let (r_hot, p_hot, pue_hot, _) = run_recorded(cfg(), seed, horizon, Wiring::Contended);
        prop_assert_eq!(r_off, r_hot);
        prop_assert_eq!(p_off.len(), p_hot.len());
        for (a, b) in p_off.iter().zip(&p_hot) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        match (pue_off, pue_hot) {
            (Some(a), Some(b)) => prop_assert_eq!(a.to_bits(), b.to_bits()),
            (a, b) => prop_assert_eq!(a, b),
        }
    }
}
