//! Scheduling-policy integration: the policies of §III-B4 compared on a
//! common workload through the full simulator.

use exadigit_raps::config::SystemConfig;
use exadigit_raps::job::Job;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::simulation::RapsSimulation;
use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};

fn small_system(nodes: usize) -> SystemConfig {
    let mut cfg = SystemConfig::frontier();
    cfg.partitions[0].nodes = nodes;
    cfg.cooling.num_cdus = 2;
    cfg.cooling.racks_per_cdu = 4;
    cfg
}

fn run_policy(policy: Policy, jobs: &[Job], nodes: usize, horizon: u64) -> exadigit_raps::RunReport {
    let mut sim = RapsSimulation::new(small_system(nodes), PowerDelivery::StandardAC, policy, 60);
    sim.submit_jobs(jobs.to_vec());
    sim.run_until(horizon).unwrap();
    sim.report()
}

/// A queue that punishes head-of-line blocking: a filler occupies most of
/// the machine, a huge job queues behind it, and many small jobs queue
/// behind the huge one. FCFS idles 224 nodes until the filler finishes;
/// EASY backfills the small jobs into the hole.
fn blocking_workload() -> Vec<Job> {
    let mut jobs = vec![
        Job::new(0, "filler", 800, 1_200, 1, 0.8, 0.8),
        Job::new(1, "huge", 900, 3_000, 10, 0.8, 0.8),
    ];
    for i in 2..60 {
        jobs.push(Job::new(i, format!("small{i}"), 32, 600, 10 + i, 0.5, 0.7));
    }
    jobs
}

#[test]
fn backfill_beats_fcfs_on_blocking_workload() {
    // One-hour window: over a long enough horizon both policies complete
    // everything (equal node-second integrals), so the discriminators are
    // completions within the window and queue wait.
    let jobs = blocking_workload();
    let fcfs = run_policy(Policy::Fcfs, &jobs, 1024, 3_600);
    let easy = run_policy(Policy::EasyBackfill, &jobs, 1024, 3_600);
    assert!(
        easy.jobs_completed > fcfs.jobs_completed,
        "easy {} vs fcfs {}",
        easy.jobs_completed,
        fcfs.jobs_completed
    );
    assert!(
        easy.avg_utilization > fcfs.avg_utilization,
        "easy util {} vs fcfs {}",
        easy.avg_utilization,
        fcfs.avg_utilization
    );
    assert!(
        easy.avg_wait_s < fcfs.avg_wait_s,
        "easy wait {} vs fcfs {}",
        easy.avg_wait_s,
        fcfs.avg_wait_s
    );
}

#[test]
fn sjf_reduces_mean_wait_for_short_jobs() {
    // Mixed durations competing for a small machine.
    let mut jobs = Vec::new();
    for i in 0..30 {
        let wall = if i % 2 == 0 { 300 } else { 2_400 };
        jobs.push(Job::new(i, format!("j{i}"), 256, wall, 5, 0.5, 0.6));
    }
    let fcfs = run_policy(Policy::Fcfs, &jobs, 512, 6 * 3600);
    let sjf = run_policy(Policy::Sjf, &jobs, 512, 6 * 3600);
    assert!(
        sjf.avg_wait_s <= fcfs.avg_wait_s,
        "sjf wait {} vs fcfs {}",
        sjf.avg_wait_s,
        fcfs.avg_wait_s
    );
}

#[test]
fn all_policies_complete_a_feasible_workload() {
    let mut generator = WorkloadGenerator::new(
        WorkloadParams { machine_nodes: 1024, offered_load: 0.4, ..Default::default() },
        5,
    );
    let jobs: Vec<Job> = generator
        .generate_day(0)
        .into_iter()
        .filter(|j| j.submit_time_s < 2 * 3600)
        .map(|mut j| {
            j.nodes = j.nodes.min(1024);
            j
        })
        .collect();
    let n = jobs.len() as u64;
    for policy in [Policy::Fcfs, Policy::Sjf, Policy::FirstFit, Policy::EasyBackfill] {
        let report = run_policy(policy, &jobs, 1024, 12 * 3600);
        assert_eq!(
            report.jobs_completed + report.jobs_unfinished,
            n,
            "{policy:?} lost jobs"
        );
        // Twelve hours is enough to finish a 2 h submission window at
        // 40 % offered load under any sane policy.
        assert!(
            report.jobs_completed as f64 > 0.95 * n as f64,
            "{policy:?} completed only {} of {n}",
            report.jobs_completed
        );
    }
}

#[test]
fn no_policy_oversubscribes_nodes() {
    let jobs = blocking_workload();
    for policy in [Policy::Fcfs, Policy::Sjf, Policy::FirstFit, Policy::EasyBackfill] {
        let mut sim =
            RapsSimulation::new(small_system(1024), PowerDelivery::StandardAC, policy, 60);
        sim.submit_jobs(jobs.clone());
        for _ in 0..3_600 {
            sim.tick().unwrap();
            assert!(sim.utilization() <= 1.0 + 1e-12, "{policy:?} oversubscribed");
        }
    }
}
