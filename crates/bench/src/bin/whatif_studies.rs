//! Regenerates the **§IV-3 what-if results** of the paper:
//!
//! * smart load-sharing rectifiers — "a modest efficiency gain of 0.1 %
//!   ... yearly cost savings of approximately $120k";
//! * direct 380 V DC distribution — "increased the system efficiency from
//!   93.3 % to 97.3 %, a potential savings of $542k per year, while also
//!   reducing the carbon footprint by 8.2 %".
//!
//! ```sh
//! cargo run --release -p exadigit-bench --bin whatif_studies -- --days 7
//! ```

use exadigit_bench::{arg_u64, section};
use exadigit_core::surrogate::{generate_training_data, Surrogate};
use exadigit_core::whatif::{
    blockage_experiment, whatif_grid, CoolingExtensionStudy, Fidelity, PowerDeliveryStudy,
};
use exadigit_cooling::PlantSpec;
use exadigit_raps::config::SystemConfig;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};
use exadigit_sim::clock::SECONDS_PER_DAY;

fn main() {
    let days = arg_u64("--days", 7);
    let system = SystemConfig::frontier();

    section(&format!("§IV-3 what-if studies over a {days}-day replay"));
    let mut generator = WorkloadGenerator::new(WorkloadParams::default(), 0x14F);
    let jobs = generator.generate_span(days);
    println!("  {} jobs over {days} days, three delivery variants in parallel...\n", jobs.len());
    let study = PowerDeliveryStudy::run(&system, &jobs, days * SECONDS_PER_DAY, Policy::FirstFit);

    println!(
        "  {:<20} {:>9} {:>9} {:>9} {:>11} {:>13} {:>9}",
        "variant", "avg MW", "loss MW", "loss %", "η_system", "save $/yr", "ΔCO₂ %"
    );
    for outcome in &study.outcomes {
        println!(
            "  {:<20} {:>9.2} {:>9.3} {:>9.2} {:>11.4} {:>13.0} {:>9.2}",
            format!("{:?}", outcome.delivery),
            outcome.report.avg_power_mw,
            outcome.report.avg_loss_mw,
            outcome.report.loss_percent,
            outcome.report.efficiency,
            study.yearly_savings_usd(outcome.delivery, &system),
            study.carbon_delta_percent(outcome.delivery),
        );
    }
    println!("\n  paper: smart rectifiers ≈ +0.1 % η, $120k/yr; 380 V DC: 93.3→97.3 %, $542k/yr, −8.2 % CO₂");
    println!(
        "  ours : smart rectifiers {:+.2} pts, ${:.0}/yr; 380 V DC {:+.2} pts, ${:.0}/yr, {:+.1} % CO₂",
        study.efficiency_gain_points(PowerDelivery::SmartRectifiers),
        study.yearly_savings_usd(PowerDelivery::SmartRectifiers, &system),
        study.efficiency_gain_points(PowerDelivery::Direct380Vdc),
        study.yearly_savings_usd(PowerDelivery::Direct380Vdc, &system),
        study.carbon_delta_percent(PowerDelivery::Direct380Vdc),
    );

    section("Virtual prototyping — extending the CEP for a secondary system");
    let ext = CoolingExtensionStudy::run(&PlantSpec::frontier(), 0.6, 6.0, 18.0).expect("study");
    println!(
        "  {:<28} {:>12} {:>12}",
        "quantity", "baseline", "+6 MW ext."
    );
    println!(
        "  {:<28} {:>12.2} {:>12.2}",
        "HTW supply temp [degC]", ext.baseline.htws_temp_c, ext.extended.htws_temp_c
    );
    println!("  {:<28} {:>12.4} {:>12.4}", "PUE", ext.baseline.pue, ext.extended.pue);
    println!(
        "  {:<28} {:>12.0} {:>12.0}",
        "tower cells staged", ext.baseline.cells_staged, ext.extended.cells_staged
    );
    println!(
        "  {:<28} {:>12.0} {:>12.0}",
        "cooling aux power [kW]",
        ext.baseline.cooling_power_w / 1e3,
        ext.extended.cooling_power_w / 1e3
    );

    section("Diagnostics — CDU blockage injection (water-quality use case)");
    let report = blockage_experiment(&PlantSpec::frontier(), &[4, 16], 5.0, 0.6).expect("run");
    println!("  injected 5x blockage into CDUs 5 and 17 (1-based)");
    println!(
        "  detector flagged CDUs: {:?} (0-based; threshold {} of median flow)",
        report.flagged, report.threshold
    );

    section("Fidelity backends — the same what-if grid at L3 vs L4 (docs/FIDELITY.md)");
    let spec = PlantSpec::marconi100_like();
    let t_train = std::time::Instant::now();
    let samples = generate_training_data(&spec, &[0.3, 0.6, 0.9], &[10.0, 14.0, 18.0], 400)
        .expect("training sweep");
    let sur = Surrogate::fit(&samples).expect("fit");
    let train_s = t_train.elapsed().as_secs_f64();
    let loads = [0.35, 0.5, 0.65, 0.8];
    let wbs = [11.0, 13.0, 15.0, 17.0];
    let t4 = std::time::Instant::now();
    let l4 = whatif_grid(&spec, &Fidelity::Plant, &loads, &wbs).expect("L4 grid");
    let l4_s = t4.elapsed().as_secs_f64();
    let t3 = std::time::Instant::now();
    let l3 = whatif_grid(&spec, &Fidelity::Surrogate(sur), &loads, &wbs).expect("L3 grid");
    let l3_s = t3.elapsed().as_secs_f64();
    let max_err = l3
        .points
        .iter()
        .zip(&l4.points)
        .map(|(a, b)| (a.pue - b.pue).abs())
        .fold(0.0f64, f64::max);
    println!(
        "  {}-point grid: L4 {:.2} s, L3 {:.6} s (x{:.0} speedup; one-off training {:.1} s)",
        l3.points.len(),
        l4_s,
        l3_s,
        l4_s / l3_s.max(1e-12),
        train_s
    );
    let envelope_note = if l3.extrapolations == 0 {
        " (all inside the envelope)"
    } else {
        " (outside the training envelope — treat those PUEs as unreliable)"
    };
    println!(
        "  max |ΔPUE| across the grid: {max_err:.4}; extrapolated points: {}{envelope_note}",
        l3.extrapolations
    );
}
