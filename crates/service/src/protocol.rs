//! The wire protocol: newline-delimited JSON over plain TCP.
//!
//! One request per line, one response per line, strictly alternating per
//! connection. Messages are externally tagged serde JSON —
//! `{"Advance":{"seconds":3600}}`, `"Status"`, … — so any language with
//! a JSON library can speak the protocol with a socket and a line
//! reader; no framing beyond `\n`. The full grammar, with examples, is
//! in `docs/SERVICE.md`.
//!
//! Malformed lines answer [`Response::Error`] without closing the
//! connection; the protocol state machine cannot desynchronise because
//! every line is a complete message.

use crate::query::{WhatIfOutcome, WhatIfSpec};
use crate::snapshot::SnapshotInfo;
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// A client request (one JSON line).
// Wire messages are transient (one parse, one handle, dropped), so the
// spec-carrying variants' size is irrelevant next to grammar clarity.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Server and live-twin status.
    Status,
    /// Ingest telemetry and advance the live twin by `seconds`.
    Advance {
        /// Seconds of simulated time (and telemetry) to ingest.
        seconds: u64,
    },
    /// Freeze the live twin into a new snapshot.
    Snapshot {
        /// Label echoed in listings, e.g. `"noon"`.
        label: String,
    },
    /// Summaries of every held snapshot.
    ListSnapshots,
    /// Drop a snapshot (in-flight queries on it finish unaffected).
    DropSnapshot {
        /// Id to drop.
        snapshot_id: u64,
    },
    /// Answer one what-if from a snapshot (memoised).
    Query {
        /// Snapshot to branch from.
        snapshot_id: u64,
        /// The scenario.
        spec: WhatIfSpec,
    },
    /// Answer a batch of what-ifs from one snapshot in a single pool
    /// pass; outcomes return in spec order.
    QueryBatch {
        /// Snapshot to branch from.
        snapshot_id: u64,
        /// The scenarios.
        specs: Vec<WhatIfSpec>,
    },
    /// Write the live twin (feed position included) to the service's
    /// persist directory so [`crate::TwinService::recover`] can restore
    /// it after a restart. Errors without a persist directory.
    Checkpoint,
    /// Force a snapshot's state to disk. With a persist directory every
    /// snapshot is already written at take time, so this re-writes the
    /// file (healing a damaged one) and confirms durability to the
    /// client; without one it errors.
    Persist {
        /// Id to persist.
        snapshot_id: u64,
    },
    /// Stop accepting connections and shut the server down.
    Shutdown,
    /// Typed snapshot of the service's observability surface: every
    /// registry counter, gauge and histogram (with precomputed
    /// quantiles), the recent request trace, the slow-query log, and
    /// any recovery warnings. The same registry also renders as
    /// Prometheus text on the optional HTTP sidecar.
    Metrics,
}

/// Server/live-twin status (the `Status` response payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStatus {
    /// Live twin's simulated second.
    pub now_s: u64,
    /// Jobs running on the live twin.
    pub running_jobs: u64,
    /// Jobs queued on the live twin.
    pub pending_jobs: u64,
    /// Jobs ingested from the feed so far.
    pub jobs_ingested: u64,
    /// Jobs the feed still holds.
    pub feed_pending_jobs: u64,
    /// Snapshots currently held.
    pub snapshots: u64,
    /// Outcomes currently memoised.
    pub cache_entries: u64,
    /// Lifetime cache hits.
    pub cache_hits: u64,
    /// Lifetime cache misses.
    pub cache_misses: u64,
    /// Live twin's latest PUE (`None` without cooling).
    pub pue: Option<f64>,
    /// Queries the pre-trained L3 surrogate answered outside its
    /// training envelope (`None` unless the backend is
    /// `CoolingBackend::Surrogate`). Non-zero means the envelope no
    /// longer covers the operating range — retrain or switch to the
    /// online backend, whose fallback makes extrapolation structurally
    /// impossible.
    pub surrogate_extrapolations: Option<u64>,
    /// Cooling quanta the online backend served from a trusted
    /// per-regime fit (`None` unless the backend is
    /// `CoolingBackend::Online`).
    pub online_l3_steps: Option<u64>,
    /// Cooling quanta the online backend paid the L4 transient plant
    /// for — training observations plus envelope-miss fallbacks.
    pub online_l4_steps: Option<u64>,
    /// Staging regimes whose online fit is currently inside tolerance.
    pub online_trusted_regimes: Option<u64>,
    /// Snapshots resident in memory (≤ `snapshots`).
    pub snapshots_resident: u64,
    /// Snapshots held only on the disk tier (`snapshots` −
    /// `snapshots_resident`).
    pub snapshots_spilled: u64,
    /// Approximate recorded-history bytes resident snapshots share by
    /// refcount with other twins (the live twin, forks, sibling
    /// snapshots) under the copy-on-write series representation.
    pub snapshot_shared_bytes: u64,
    /// Approximate recorded-history bytes uniquely owned by resident
    /// snapshots — what dropping them would actually free.
    pub snapshot_owned_bytes: u64,
}

/// One counter sample in a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name, e.g. `exadigit_requests_total`.
    pub name: String,
    /// Label pairs, e.g. `[("type", "Query")]`.
    pub labels: Vec<(String, String)>,
    /// Monotone total.
    pub value: u64,
}

/// One gauge sample in a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name, e.g. `exadigit_queue_depth`.
    pub name: String,
    /// Label pairs.
    pub labels: Vec<(String, String)>,
    /// Last set value.
    pub value: f64,
}

/// One histogram sample in a [`MetricsReport`], summarised as count,
/// sum and precomputed quantiles (the full bucket vector is available
/// on the Prometheus surface).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name, e.g. `exadigit_request_seconds`.
    pub name: String,
    /// Label pairs, e.g. `[("type", "Query")]`.
    pub labels: Vec<(String, String)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Median, estimated from bucket counts.
    pub p50: f64,
    /// 90th percentile, estimated from bucket counts.
    pub p90: f64,
    /// 99th percentile, estimated from bucket counts.
    pub p99: f64,
}

/// One slow-query log entry in a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowQueryEntry {
    /// Microseconds since the service's observability epoch.
    pub at_us: u64,
    /// Request type name, e.g. `"QueryBatch"`.
    pub request: String,
    /// One-line request summary (e.g. snapshot id and draw count).
    pub detail: String,
    /// Microseconds spent queued before a worker picked it up.
    pub queue_us: u64,
    /// Microseconds the handler ran.
    pub handle_us: u64,
}

/// One request-lifecycle trace event in a [`MetricsReport`], oldest
/// first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Microseconds since the service's observability epoch.
    pub at_us: u64,
    /// Server-assigned connection id.
    pub conn: u64,
    /// Request sequence number within the connection.
    pub seq: u64,
    /// Request type name.
    pub request: String,
    /// Lifecycle stage: `admitted`, `executing`, `written`, `rejected`.
    pub stage: String,
    /// Microseconds spent in the previous stage (0 at admission).
    pub stage_us: u64,
}

/// Reply payload of [`Request::Metrics`]: the registry's current
/// samples plus the diagnostic rings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Every registered counter, in registration order.
    pub counters: Vec<CounterSample>,
    /// Every registered gauge, in registration order.
    pub gauges: Vec<GaugeSample>,
    /// Every registered histogram, in registration order.
    pub histograms: Vec<HistogramSample>,
    /// Slow-query log entries, oldest first.
    pub slow_queries: Vec<SlowQueryEntry>,
    /// Recent request-lifecycle trace, oldest first.
    pub trace: Vec<TraceEntry>,
    /// Damage reports from manifest recovery (empty for a clean start).
    pub recovery_warnings: Vec<String>,
}

/// A server response (one JSON line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Reply to [`Request::Status`].
    Status(ServerStatus),
    /// Reply to [`Request::Advance`].
    Advanced {
        /// Live twin's simulated second after the advance.
        now_s: u64,
        /// Jobs ingested from the feed during this advance.
        jobs_ingested: u64,
    },
    /// Reply to [`Request::Snapshot`].
    SnapshotTaken(SnapshotInfo),
    /// Reply to [`Request::ListSnapshots`].
    Snapshots(Vec<SnapshotInfo>),
    /// Reply to [`Request::DropSnapshot`].
    Dropped {
        /// The id that was dropped.
        snapshot_id: u64,
    },
    /// Reply to [`Request::Query`].
    Answer {
        /// True when served from the cache.
        cached: bool,
        /// The outcome.
        outcome: WhatIfOutcome,
    },
    /// Reply to [`Request::QueryBatch`].
    Answers {
        /// How many of the outcomes came from the cache.
        cached_hits: u64,
        /// Per-spec results in spec order: one bad spec reports its own
        /// error without discarding its siblings' outcomes.
        outcomes: Vec<BatchOutcome>,
    },
    /// Admission control refused the request: the request queue is full
    /// or this connection is over its in-flight cap. Nothing was
    /// executed; back off and resend.
    Busy {
        /// Suggested back-off before retrying, milliseconds
        /// ([`crate::ServiceClient::request_with_retry`] honours it).
        retry_after_ms: u64,
    },
    /// Reply to [`Request::Checkpoint`].
    Checkpointed {
        /// Live twin's simulated second at the checkpoint instant.
        now_s: u64,
        /// Checkpoint payload size, bytes.
        bytes: u64,
    },
    /// Reply to [`Request::Persist`].
    Persisted {
        /// The id that was written.
        snapshot_id: u64,
        /// Snapshot payload size, bytes.
        bytes: u64,
    },
    /// Reply to [`Request::Shutdown`]; the server stops accepting
    /// connections after sending it.
    ShuttingDown,
    /// Reply to [`Request::Metrics`].
    Metrics(MetricsReport),
    /// Any failure: unknown snapshot, malformed request, fork error, …
    Error {
        /// Human-readable cause.
        message: String,
    },
}

/// One slot of a [`Response::Answers`] batch, in spec order.
///
/// The vendored serde has no `Result` impls, and a dedicated enum keeps
/// the wire shape explicit anyway: `{"Ok": outcome}` or
/// `{"Err": {"message": ...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BatchOutcome {
    /// The spec's outcome (computed or served from the cache).
    Ok(WhatIfOutcome),
    /// The spec failed; sibling slots are unaffected.
    Err {
        /// Human-readable cause.
        message: String,
    },
}

impl BatchOutcome {
    /// The outcome, when this slot succeeded.
    pub fn ok(&self) -> Option<&WhatIfOutcome> {
        match self {
            BatchOutcome::Ok(outcome) => Some(outcome),
            BatchOutcome::Err { .. } => None,
        }
    }

    /// True when this slot succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self, BatchOutcome::Ok(_))
    }
}

/// Write one message as a JSON line.
pub fn write_message<T: Serialize>(writer: &mut impl Write, message: &T) -> io::Result<()> {
    let json = serde_json::to_string(message)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    writer.write_all(json.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Per-line byte cap: a spec with trace-level jobs is megabytes at
/// most, so anything beyond this is wire abuse, and an unbounded
/// `read_line` would grow a handler thread's buffer until the whole
/// server (live twin and snapshots included) is taken down.
pub const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// `read_line` with a byte cap: reads up to and including the next
/// `\n`, erroring (`InvalidData`) once a line exceeds
/// [`MAX_LINE_BYTES`] — the caller should drop the connection.
fn read_line_capped(reader: &mut impl BufRead, line: &mut Vec<u8>) -> io::Result<usize> {
    let start = line.len();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(line.len() - start); // EOF
        }
        let (chunk, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => (&buf[..=pos], true),
            None => (buf, false),
        };
        if line.len() - start + chunk.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line exceeds the {MAX_LINE_BYTES}-byte cap"),
            ));
        }
        line.extend_from_slice(chunk);
        let consumed = chunk.len();
        reader.consume(consumed);
        if done {
            return Ok(line.len() - start);
        }
    }
}

/// Read one JSON line into a message. `Ok(None)` on clean EOF;
/// `Ok(Some(Err(_)))` on a malformed line (the connection stays
/// usable); `Err` on a broken socket or a line past [`MAX_LINE_BYTES`].
#[allow(clippy::type_complexity)]
pub fn read_message<T: Deserialize>(
    reader: &mut impl BufRead,
) -> io::Result<Option<Result<T, String>>> {
    let mut line = Vec::new();
    loop {
        line.clear();
        if read_line_capped(reader, &mut line)? == 0 {
            return Ok(None);
        }
        let text = String::from_utf8_lossy(&line);
        let trimmed = text.trim();
        if !trimmed.is_empty() {
            return Ok(Some(serde_json::from_str(trimmed).map_err(|e| e.to_string())));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_the_wire_format() {
        let requests = vec![
            Request::Status,
            Request::Advance { seconds: 3_600 },
            Request::Snapshot { label: "noon".into() },
            Request::ListSnapshots,
            Request::DropSnapshot { snapshot_id: 3 },
            Request::Query { snapshot_id: 1, spec: WhatIfSpec::default() },
            Request::QueryBatch {
                snapshot_id: 1,
                specs: vec![
                    WhatIfSpec { label: "warm".into(), wet_bulb_offset_c: 4.0, ..WhatIfSpec::default() },
                    WhatIfSpec { draws: 16, ..WhatIfSpec::default() },
                ],
            },
            Request::Checkpoint,
            Request::Persist { snapshot_id: 2 },
            Request::Shutdown,
            Request::Metrics,
        ];
        for req in requests {
            let json = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(req, back, "round trip failed for {json}");
        }
    }

    #[test]
    fn line_io_round_trips_and_survives_garbage() {
        let mut wire = Vec::new();
        write_message(&mut wire, &Request::Advance { seconds: 60 }).unwrap();
        wire.extend_from_slice(b"this is not json\n");
        write_message(&mut wire, &Request::Status).unwrap();

        let mut reader = io::BufReader::new(wire.as_slice());
        let first: Request = read_message(&mut reader).unwrap().unwrap().unwrap();
        assert_eq!(first, Request::Advance { seconds: 60 });
        let garbage = read_message::<Request>(&mut reader).unwrap().unwrap();
        assert!(garbage.is_err(), "malformed line reports, not panics");
        let second: Request = read_message(&mut reader).unwrap().unwrap().unwrap();
        assert_eq!(second, Request::Status);
        assert!(read_message::<Request>(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_lines_error_instead_of_growing_without_bound() {
        // A newline-free flood must be rejected once it passes the cap,
        // not buffered until the process dies.
        struct Flood {
            served: usize,
        }
        impl io::Read for Flood {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                buf.fill(b'x');
                self.served += buf.len();
                Ok(buf.len())
            }
        }
        let mut reader = io::BufReader::new(Flood { served: 0 });
        let err = read_message::<Request>(&mut reader).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The reader stopped near the cap rather than draining forever.
        assert!(reader.get_ref().served < MAX_LINE_BYTES + 1_000_000);
    }

    #[test]
    fn busy_and_per_slot_batch_results_round_trip() {
        let outcome = WhatIfOutcome {
            label: "ok".into(),
            from_s: 0,
            to_s: 60,
            jobs_completed: 1,
            avg_power_mw: 8.0,
            power_std_mw: 0.0,
            energy_mwh: 0.13,
            energy_std_mwh: 0.0,
            final_pue: None,
            final_utilization: 0.5,
            draw_avg_power_mw: vec![],
            draw_energy_mwh: vec![],
            draws: 1,
        };
        let responses = vec![
            Response::Busy { retry_after_ms: 20 },
            Response::Checkpointed { now_s: 43_200, bytes: 9_999 },
            Response::Persisted { snapshot_id: 2, bytes: 1_234 },
            Response::Answers {
                cached_hits: 1,
                outcomes: vec![
                    BatchOutcome::Ok(outcome),
                    BatchOutcome::Err { message: "spec 1: horizon too long".into() },
                ],
            },
        ];
        for resp in responses {
            let json = serde_json::to_string(&resp).unwrap();
            let back: Response = serde_json::from_str(&json).unwrap();
            assert_eq!(resp, back, "round trip failed for {json}");
        }
        // The grammar documented in docs/SERVICE.md.
        let json = serde_json::to_string(&Response::Busy { retry_after_ms: 5 }).unwrap();
        assert!(json.contains("\"Busy\"") && json.contains("retry_after_ms"), "{json}");
    }

    #[test]
    fn metrics_report_round_trips_the_wire_format() {
        let report = MetricsReport {
            counters: vec![CounterSample {
                name: "exadigit_requests_total".into(),
                labels: vec![("type".into(), "Query".into())],
                value: 41,
            }],
            gauges: vec![GaugeSample {
                name: "exadigit_queue_depth".into(),
                labels: vec![],
                value: 3.0,
            }],
            histograms: vec![HistogramSample {
                name: "exadigit_request_seconds".into(),
                labels: vec![("type".into(), "Query".into())],
                count: 41,
                sum: 0.9,
                p50: 0.01,
                p90: 0.05,
                p99: 0.2,
            }],
            slow_queries: vec![SlowQueryEntry {
                at_us: 1_000_000,
                request: "QueryBatch".into(),
                detail: "snapshot 1, 64 specs".into(),
                queue_us: 120,
                handle_us: 450_000,
            }],
            trace: vec![TraceEntry {
                at_us: 999_000,
                conn: 2,
                seq: 7,
                request: "Query".into(),
                stage: "written".into(),
                stage_us: 840,
            }],
            recovery_warnings: vec!["manifest line 3: bad id".into()],
        };
        let resp = Response::Metrics(report);
        let json = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(resp, back, "round trip failed for {json}");
        // Label pairs ride as JSON arrays (vendored serde tuple impls).
        assert!(json.contains("[\"type\",\"Query\"]"), "{json}");
    }

    #[test]
    fn externally_tagged_shape_is_stable() {
        // The documented grammar (docs/SERVICE.md) promises this shape.
        let json = serde_json::to_string(&Request::Advance { seconds: 5 }).unwrap();
        assert!(json.contains("\"Advance\""), "{json}");
        assert!(json.contains("\"seconds\""), "{json}");
        let unit = serde_json::to_string(&Request::Status).unwrap();
        assert!(unit.contains("Status"), "{unit}");
    }
}
