//! Telemetry replay integration (Finding 8): record synthetic telemetry,
//! persist it through the readers/writers, replay it through RAPS, and
//! compare predicted vs measured power.

use exadigit_raps::config::SystemConfig;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::simulation::RapsSimulation;
use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};
use exadigit_telemetry::reader::{CsvJobReader, TelemetryReader};
use exadigit_telemetry::writer::jobs_to_csv;
use exadigit_telemetry::SyntheticTwin;

#[test]
fn replayed_power_tracks_measured_power() {
    const SPAN_S: u64 = 3_600;
    let twin = SyntheticTwin::frontier();
    let mut generator = WorkloadGenerator::new(WorkloadParams::default(), 31);
    let jobs: Vec<_> = generator
        .generate_day(0)
        .into_iter()
        .filter(|j| j.submit_time_s < SPAN_S)
        .collect();
    assert!(!jobs.is_empty());
    let telemetry = twin.record_span(jobs.clone(), SPAN_S, 0);

    // Persist through the CSV round trip, then rebuild jobs from power
    // traces — the paper's "linearly interpolate power to utilization".
    let csv = jobs_to_csv(&telemetry.jobs);
    let records = CsvJobReader.read_jobs(&csv).unwrap();
    assert_eq!(records.len(), telemetry.jobs.len());
    let nominal = SystemConfig::frontier();
    let replay_jobs: Vec<_> =
        records.iter().map(|r| r.to_job(&nominal.node_power)).collect();

    let mut sim =
        RapsSimulation::new(nominal, PowerDelivery::StandardAC, Policy::FirstFit, 15);
    sim.submit_jobs(replay_jobs);
    sim.run_until(SPAN_S).unwrap();

    // Predicted average power within a few percent of the measured mean
    // (the twin is perturbed, so exact agreement is impossible).
    let predicted = sim.report().avg_power_mw;
    let measured = telemetry.measured_power_w.mean() / 1e6;
    let err = 100.0 * (predicted - measured).abs() / measured;
    assert!(err < 6.0, "replay error {err:.2} % (pred {predicted:.2} meas {measured:.2})");
}

#[test]
fn job_records_survive_power_utilization_round_trip() {
    let twin = SyntheticTwin::frontier();
    let jobs = vec![exadigit_raps::workload::hpl_job(1, 0)];
    let telemetry = twin.record_span(jobs, 600, 1);
    let rec = &telemetry.jobs[0];
    // The record carries HPL's characteristic power plateau.
    let nominal = SystemConfig::frontier();
    let rebuilt = rec.to_job(&nominal.node_power);
    let mid = rebuilt.wall_time_s / 2;
    // GPU utilization near the 79 % core phase after the round trip
    // through the *perturbed* twin's power scale (skew ≤ ~5 %).
    let gpu = rebuilt.gpu_util.at(mid);
    assert!((gpu - 0.79).abs() < 0.06, "gpu={gpu}");
}

#[test]
fn measured_power_has_noise_but_right_level() {
    let twin = SyntheticTwin::frontier();
    let telemetry = twin.record_span(Vec::new(), 1_200, 2);
    let series = &telemetry.measured_power_w;
    // Idle Frontier with the twin's skew: 7.2-7.7 MW.
    let mean = series.mean() / 1e6;
    assert!((7.0..7.9).contains(&mean), "idle measured {mean} MW");
    // Sensor noise present: the series is not constant.
    let min = series.min();
    let max = series.max();
    assert!(max > min, "noise missing");
    // But bounded: no 10 % excursions.
    assert!((max - min) / series.mean() < 0.1, "noise too large");
}

#[test]
fn wet_bulb_forcing_recorded_at_60s() {
    let twin = SyntheticTwin::frontier();
    let telemetry = twin.record_span(Vec::new(), 600, 3);
    assert_eq!(telemetry.wet_bulb.dt, 60.0);
    assert!(telemetry.wet_bulb.len() >= 10);
    // East-Tennessee-plausible wet bulbs.
    assert!(telemetry.wet_bulb.samples().all(|t| (-10.0..35.0).contains(&t)));
}
