//! Rack heat maps.
//!
//! "Understanding temperature problems in the past and problems with
//! cooling loops by visualizing heat maps in the system" is one of the
//! §III-A use cases. The heat map lays racks out in their physical rows
//! and shades each by a per-rack value (power, temperature, flow).

/// Intensity ramp from cold to hot.
const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Render a per-rack value vector as an ASCII heat map with `per_row`
/// racks per row. Returns a bordered block with a scale legend.
pub fn rack_heatmap(values: &[f64], per_row: usize, title: &str) -> String {
    assert!(per_row > 0);
    if values.is_empty() {
        return format!("{title}: (no racks)\n");
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::EPSILON);

    let rows = values.len().div_ceil(per_row);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push('┌');
    out.push_str(&"─".repeat(per_row * 2));
    out.push_str("┐\n");
    for r in 0..rows {
        out.push('│');
        for c in 0..per_row {
            let idx = r * per_row + c;
            if idx < values.len() {
                let v = values[idx];
                let ch = if v.is_finite() {
                    let level = ((v - lo) / span * (RAMP.len() - 1) as f64).round() as usize;
                    RAMP[level.min(RAMP.len() - 1)]
                } else {
                    '?'
                };
                out.push(ch);
                out.push(ch);
            } else {
                out.push_str("  ");
            }
        }
        out.push_str("│\n");
    }
    out.push('└');
    out.push_str(&"─".repeat(per_row * 2));
    out.push_str("┘\n");
    out.push_str(&format!("scale: {lo:.1} {} {hi:.1}\n", RAMP.iter().collect::<String>()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_dimensions() {
        let values: Vec<f64> = (0..74).map(|i| i as f64).collect();
        let map = rack_heatmap(&values, 16, "rack power");
        // 74 racks in rows of 16 -> 5 rows + borders + title + scale.
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 1 + 1 + 5 + 1 + 1);
        assert!(lines[0].contains("rack power"));
    }

    #[test]
    fn hot_rack_gets_hot_glyph() {
        let mut values = vec![1.0; 32];
        values[5] = 100.0;
        let map = rack_heatmap(&values, 16, "t");
        assert!(map.contains('@'), "hottest rack must use the top ramp glyph");
    }

    #[test]
    fn uniform_values_render() {
        let map = rack_heatmap(&[3.0; 8], 4, "uniform");
        assert!(map.contains('│'));
    }

    #[test]
    fn empty_input_is_graceful() {
        let map = rack_heatmap(&[], 16, "empty");
        assert!(map.contains("no racks"));
    }

    #[test]
    fn nan_renders_question_mark() {
        let map = rack_heatmap(&[1.0, f64::NAN, 2.0], 3, "nan");
        assert!(map.contains('?'));
    }
}
