//! FMI-lite: the co-simulation boundary between RAPS and the cooling model.
//!
//! The paper wraps its Modelica cooling model in the Functional Mock-up
//! Interface (FMI) standard and imports it into RAPS via FMPy (§III-C6).
//! The essential architectural property is that the power simulator and the
//! plant model only communicate through a typed variable registry and a
//! `do_step` call — any model implementing the interface can be swapped in.
//!
//! This module reproduces that boundary as a Rust trait. It is intentionally
//! a subset of FMI 2.0 co-simulation: real-valued variables, causality
//! metadata, setup / set / step / get. That subset is exactly what ExaDigiT
//! exercises.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a variable within a model's registry (FMI "value reference").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VarRef(pub u32);

/// Causality of a variable, mirroring FMI 2.0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Causality {
    /// Set by the environment before each step.
    Input,
    /// Computed by the model, readable after each step.
    Output,
    /// Fixed at setup time.
    Parameter,
    /// Internal value exposed for inspection only.
    Local,
}

/// Static description of one model variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariableDescriptor {
    /// Value reference used in get/set calls.
    pub vr: VarRef,
    /// Dotted variable name, e.g. `cdu[3].secondary_supply_temperature`.
    pub name: String,
    /// Engineering unit, e.g. `degC`, `kg/s`, `W`, `1` for dimensionless.
    pub unit: String,
    /// Input/output/parameter/local.
    pub causality: Causality,
    /// Human-readable description.
    pub description: String,
}

/// Errors crossing the co-simulation boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum FmiError {
    /// Unknown value reference.
    UnknownVariable(VarRef),
    /// Attempted to set a non-input or get a value before stepping.
    WrongCausality {
        /// The variable whose causality did not match.
        vr: VarRef,
        /// The causality the operation required.
        expected: Causality,
    },
    /// The model's internal solver failed to converge.
    SolverFailure(String),
    /// Step arguments were invalid (negative step, time mismatch...).
    InvalidStep(String),
}

impl fmt::Display for FmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FmiError::UnknownVariable(vr) => write!(f, "unknown value reference {}", vr.0),
            FmiError::WrongCausality { vr, expected } => {
                write!(f, "variable {} does not have causality {:?}", vr.0, expected)
            }
            FmiError::SolverFailure(msg) => write!(f, "solver failure: {msg}"),
            FmiError::InvalidStep(msg) => write!(f, "invalid step: {msg}"),
        }
    }
}

impl std::error::Error for FmiError {}

/// A co-simulation model ("FMU-like"): the contract RAPS uses to talk to the
/// cooling plant, and that the master algorithm in [`crate::master`] drives.
///
/// `Send + Sync` is part of the contract: models are plain state machines
/// (no interior mutability across `&self`), which is what lets a snapshot
/// of a coupled simulation be shared between service threads and forked
/// onto the thread pool (`docs/SERVICE.md`).
pub trait CoSimModel: Send + Sync {
    /// Stable instance name for diagnostics.
    fn instance_name(&self) -> &str;

    /// The variable registry. Indices are stable for the model's lifetime.
    fn variables(&self) -> &[VariableDescriptor];

    /// Initialise internal state at `start_time` (seconds).
    fn setup(&mut self, start_time: f64);

    /// Set a real input (or tunable parameter before the first step).
    fn set_real(&mut self, vr: VarRef, value: f64) -> Result<(), FmiError>;

    /// Read any variable's current value.
    fn get_real(&self, vr: VarRef) -> Result<f64, FmiError>;

    /// Advance internal state from `current_time` by `step_size` seconds.
    /// Models may sub-step internally.
    fn do_step(&mut self, current_time: f64, step_size: f64) -> Result<(), FmiError>;

    /// Reset to the pre-`setup` state so the instance can be reused.
    fn reset(&mut self);

    /// Duplicate the model *mid-simulation*, internal state included — the
    /// snapshot/fork primitive behind twin-as-a-service what-if queries.
    ///
    /// A fork must be observationally identical to the original: stepping
    /// both with the same inputs from the fork point yields bit-identical
    /// outputs. Models that cannot capture their state return `None`
    /// (the default), in which case snapshotting a simulation coupled to
    /// them fails with an explicit error — such a twin can still run and
    /// be queried by cold-start replay, but not through the snapshot
    /// path. All built-in cooling backends (L4 plant, L3 surrogate,
    /// L2 replay) support forking.
    fn fork(&self) -> Option<Box<dyn CoSimModel>> {
        None
    }

    /// Capture the model's complete internal state as a serializable
    /// value — the durable-snapshot companion to [`CoSimModel::fork`].
    ///
    /// The contract mirrors forking, across a process boundary: a model
    /// rebuilt from this value (each backend deserializes its own state
    /// type) and stepped with the same inputs must produce bit-identical
    /// outputs to the original. Models that cannot serialize their state
    /// return `None` (the default); persisting a twin coupled to such a
    /// model fails with an explicit error rather than dropping the
    /// cooling state silently. All built-in cooling backends (L4 plant,
    /// L3 surrogate, L2 replay) support state capture.
    fn save_state(&self) -> Option<serde::Value> {
        None
    }

    /// True when, from the current state *with the current inputs held
    /// constant*, every further `do_step` would leave all outputs
    /// bit-identical and the internal state change is expressible by
    /// [`CoSimModel::repeat_step`]. A master may then collapse a run of
    /// identical-input steps into one `repeat_step(n)` call instead of
    /// `n` `do_step`s — the cooling-model analogue of closed-form gap
    /// accounting in an event-driven master.
    ///
    /// `false` (the default) is always safe: transient models (the L4
    /// plant) and time-dependent models (L2 trace replay) must keep it.
    /// Memoryless input→output maps (the L3 surrogate) and the online
    /// L3/L4 model *while a trusted fit is serving* can return `true`.
    fn quasi_static(&self) -> bool {
        false
    }

    /// Account `n` additional steps with unchanged inputs, in bulk.
    ///
    /// Contract: when [`CoSimModel::quasi_static`] returned `true` with
    /// the current inputs, `repeat_step(n)` must leave the model in
    /// exactly the state `n` consecutive `do_step` calls with those
    /// inputs would have — outputs, diagnostic counters, everything —
    /// so masters that batch steps stay bit-identical to masters that
    /// do not. No-op by default (paired with the `quasi_static`
    /// default of `false`, which makes batching unreachable).
    fn repeat_step(&mut self, _n: u64) {}

    /// Look up a variable by exact name.
    fn var_by_name(&self, name: &str) -> Option<&VariableDescriptor> {
        self.variables().iter().find(|v| v.name == name)
    }

    /// Convenience: all outputs in registry order.
    fn output_refs(&self) -> Vec<VarRef> {
        self.variables()
            .iter()
            .filter(|v| v.causality == Causality::Output)
            .map(|v| v.vr)
            .collect()
    }
}

/// Builder for variable registries; hands out sequential value references.
#[derive(Debug, Default, Clone)]
pub struct VariableRegistry {
    vars: Vec<VariableDescriptor>,
}

impl VariableRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a variable and return its value reference.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        unit: impl Into<String>,
        causality: Causality,
        description: impl Into<String>,
    ) -> VarRef {
        let vr = VarRef(self.vars.len() as u32);
        self.vars.push(VariableDescriptor {
            vr,
            name: name.into(),
            unit: unit.into(),
            causality,
            description: description.into(),
        });
        vr
    }

    /// Shorthand for inputs.
    pub fn input(&mut self, name: impl Into<String>, unit: impl Into<String>) -> VarRef {
        self.register(name, unit, Causality::Input, "")
    }

    /// Shorthand for outputs.
    pub fn output(&mut self, name: impl Into<String>, unit: impl Into<String>) -> VarRef {
        self.register(name, unit, Causality::Output, "")
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Count of variables with the given causality.
    pub fn count(&self, causality: Causality) -> usize {
        self.vars.iter().filter(|v| v.causality == causality).count()
    }

    /// Finish building and take the descriptor list.
    pub fn into_vec(self) -> Vec<VariableDescriptor> {
        self.vars
    }

    /// Borrow the descriptors.
    pub fn descriptors(&self) -> &[VariableDescriptor] {
        &self.vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial integrator model: output = ∫ input dt.
    struct Integrator {
        vars: Vec<VariableDescriptor>,
        input: f64,
        state: f64,
    }

    impl Integrator {
        fn new() -> Self {
            let mut reg = VariableRegistry::new();
            reg.input("u", "W");
            reg.output("y", "J");
            Integrator { vars: reg.into_vec(), input: 0.0, state: 0.0 }
        }
    }

    impl CoSimModel for Integrator {
        fn instance_name(&self) -> &str {
            "integrator"
        }
        fn variables(&self) -> &[VariableDescriptor] {
            &self.vars
        }
        fn setup(&mut self, _start: f64) {
            self.state = 0.0;
        }
        fn set_real(&mut self, vr: VarRef, value: f64) -> Result<(), FmiError> {
            match vr.0 {
                0 => {
                    self.input = value;
                    Ok(())
                }
                1 => Err(FmiError::WrongCausality { vr, expected: Causality::Input }),
                _ => Err(FmiError::UnknownVariable(vr)),
            }
        }
        fn get_real(&self, vr: VarRef) -> Result<f64, FmiError> {
            match vr.0 {
                0 => Ok(self.input),
                1 => Ok(self.state),
                _ => Err(FmiError::UnknownVariable(vr)),
            }
        }
        fn do_step(&mut self, _t: f64, dt: f64) -> Result<(), FmiError> {
            if dt <= 0.0 {
                return Err(FmiError::InvalidStep("non-positive dt".into()));
            }
            self.state += self.input * dt;
            Ok(())
        }
        fn reset(&mut self) {
            self.input = 0.0;
            self.state = 0.0;
        }
    }

    #[test]
    fn registry_assigns_sequential_refs() {
        let mut reg = VariableRegistry::new();
        let a = reg.input("a", "W");
        let b = reg.output("b", "degC");
        assert_eq!(a, VarRef(0));
        assert_eq!(b, VarRef(1));
        assert_eq!(reg.count(Causality::Input), 1);
        assert_eq!(reg.count(Causality::Output), 1);
    }

    #[test]
    fn integrator_steps() {
        let mut m = Integrator::new();
        m.setup(0.0);
        m.set_real(VarRef(0), 2.0).unwrap();
        m.do_step(0.0, 15.0).unwrap();
        assert_eq!(m.get_real(VarRef(1)).unwrap(), 30.0);
    }

    #[test]
    fn wrong_causality_rejected() {
        let mut m = Integrator::new();
        m.setup(0.0);
        let err = m.set_real(VarRef(1), 1.0).unwrap_err();
        assert!(matches!(err, FmiError::WrongCausality { .. }));
    }

    #[test]
    fn unknown_vr_rejected() {
        let m = Integrator::new();
        assert!(matches!(m.get_real(VarRef(99)), Err(FmiError::UnknownVariable(_))));
    }

    #[test]
    fn var_by_name_finds() {
        let m = Integrator::new();
        assert_eq!(m.var_by_name("y").unwrap().vr, VarRef(1));
        assert!(m.var_by_name("nope").is_none());
    }

    #[test]
    fn invalid_step_rejected() {
        let mut m = Integrator::new();
        m.setup(0.0);
        assert!(m.do_step(0.0, 0.0).is_err());
    }
}
