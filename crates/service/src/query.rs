//! What-if queries answered by forking a snapshot.
//!
//! A [`WhatIfSpec`] names every scenario family the service answers from
//! a frozen state: plain continuations ("what happens next?"), weather
//! variants (wet-bulb offset or override), power-delivery variants
//! ("what if we switched the conversion chain now?"), extra-load
//! injections, fidelity swaps (any [`CoolingBackend`], so an expensive
//! L4 snapshot can answer cheap L3-surrogate queries), and Monte-Carlo
//! UQ ensembles over the power-model parameters (`draws > 1`, one
//! configured base fork whose recorded history every draw shares by
//! refcount, per-draw RNG streams split from the snapshot seed).
//!
//! Every query costs O(horizon): the fork resumes from the snapshot
//! second instead of replaying from t = 0. Outcomes report *marginal*
//! quantities over the queried horizon (energy, completions, average
//! power from the fork point on), which is what a "from now" decision
//! needs — the shared history before the fork point would only dilute
//! the comparison between variants.

use crate::snapshot::TwinSnapshot;
use exadigit_core::config::CoolingBackend;
use exadigit_core::twin::DigitalTwin;
use exadigit_raps::job::Job;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::simulation::CoolingCoupling;
use exadigit_raps::uq::{self, UqPerturbations};
use exadigit_sim::ensemble::EnsembleRunner;
use exadigit_sim::{Rng, TimeSeries};
use serde::{Deserialize, Serialize};

/// One what-if scenario to branch from a snapshot.
///
/// The default spec is the plain continuation: run one hour forward with
/// nothing changed. Every field composes with every other (e.g. a warmer
/// afternoon *and* a delivery swap *and* 32 UQ draws is one spec).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WhatIfSpec {
    /// Scenario label echoed in the outcome (also part of the cache key).
    pub label: String,
    /// Seconds to advance the fork past the snapshot second.
    pub horizon_s: u64,
    /// Added to the wet-bulb forcing, °C (weather variant).
    pub wet_bulb_offset_c: f64,
    /// Replace the forcing with a constant, °C (applied before the
    /// offset).
    pub wet_bulb_c: Option<f64>,
    /// Swap the power-delivery variant from the fork point on.
    pub delivery: Option<PowerDelivery>,
    /// Extra jobs injected at the fork point (submit times at or before
    /// the snapshot second arrive immediately).
    pub extra_jobs: Vec<Job>,
    /// Swap the cooling backend (fidelity selection). The replacement
    /// model starts from its own `setup` state — physical plant state
    /// does not transfer across fidelities. `Some(CoolingBackend::None)`
    /// detaches cooling entirely.
    pub backend: Option<CoolingBackend>,
    /// Monte-Carlo ensemble size: `> 1` runs that many forks, each with
    /// power-model parameters perturbed from its own RNG stream, and
    /// reports mean/std. `0` or `1` is a single deterministic fork.
    pub draws: u64,
    /// 1-σ magnitudes for the UQ perturbation (used when `draws > 1`).
    pub perturbations: UqPerturbations,
}

impl Default for WhatIfSpec {
    fn default() -> Self {
        WhatIfSpec {
            label: String::new(),
            horizon_s: 3_600,
            wet_bulb_offset_c: 0.0,
            wet_bulb_c: None,
            delivery: None,
            extra_jobs: Vec::new(),
            backend: None,
            draws: 1,
            perturbations: UqPerturbations::default(),
        }
    }
}

/// What one what-if produced, marginal over the queried horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WhatIfOutcome {
    /// The spec's label, echoed.
    pub label: String,
    /// Fork point (snapshot second).
    pub from_s: u64,
    /// End of the queried horizon.
    pub to_s: u64,
    /// Jobs completed within the horizon.
    pub jobs_completed: u64,
    /// Average system power over the horizon, MW (ensemble mean when
    /// `draws > 1`).
    pub avg_power_mw: f64,
    /// Std of average power across draws, MW (0 for a single fork).
    pub power_std_mw: f64,
    /// Energy consumed over the horizon, MWh (ensemble mean).
    pub energy_mwh: f64,
    /// Std of horizon energy across draws, MWh (0 for a single fork).
    pub energy_std_mwh: f64,
    /// PUE at the end of the horizon (`None` without cooling), ensemble
    /// mean.
    pub final_pue: Option<f64>,
    /// Node-allocation utilization at the end of the horizon.
    pub final_utilization: f64,
    /// Per-draw average power, MW, in draw-index order — the raw
    /// ensemble behind `avg_power_mw`/`power_std_mw` (empty for a
    /// single fork, where the summary fields carry everything).
    pub draw_avg_power_mw: Vec<f64>,
    /// Per-draw horizon energy, MWh, in draw-index order (empty for a
    /// single fork).
    pub draw_energy_mwh: Vec<f64>,
    /// Ensemble size this outcome aggregates (1 for a single fork).
    pub draws: u64,
}

/// Marginal numbers from one fork run.
struct ForkRun {
    jobs_completed: u64,
    avg_power_mw: f64,
    energy_mwh: f64,
    final_pue: Option<f64>,
    final_utilization: f64,
}

/// Apply the spec's deterministic overrides to a fresh fork.
fn apply_overrides(twin: &mut DigitalTwin, spec: &WhatIfSpec) -> Result<(), String> {
    if let Some(backend) = &spec.backend {
        let num_cdus = twin.config.system.cooling.num_cdus;
        match backend.build(&twin.config.plant, num_cdus)? {
            Some(model) => {
                let coupling = CoolingCoupling::attach(model, num_cdus)?;
                twin.raps_mut().attach_cooling(coupling);
            }
            None => {
                twin.raps_mut().detach_cooling();
            }
        }
        twin.config.cooling = backend.clone();
    }
    if let Some(delivery) = spec.delivery {
        let cfg = twin.config.system.clone();
        twin.raps_mut().set_power_model(cfg, delivery)?;
        twin.config.delivery = delivery;
    }
    if let Some(constant) = spec.wet_bulb_c {
        twin.set_wet_bulb(TimeSeries::from_values(0.0, 3_600.0, vec![constant, constant]));
    }
    if spec.wet_bulb_offset_c != 0.0 {
        let off = spec.wet_bulb_offset_c;
        let shifted = twin.raps().wet_bulb().map(|v| v + off);
        twin.set_wet_bulb(shifted);
    }
    if !spec.extra_jobs.is_empty() {
        twin.submit(spec.extra_jobs.clone());
    }
    Ok(())
}

/// Fork the snapshot once and apply the spec's deterministic overrides.
///
/// This is the *shared prefix* of a UQ ensemble: every draw forks from
/// the configured twin this returns, so the override work (backend
/// rebuild, wet-bulb remap, extra-job submission) is paid once per
/// scenario and the recorded history stays refcount-shared across all
/// draws instead of being copied `draws` times.
fn configured_fork(snapshot: &TwinSnapshot, spec: &WhatIfSpec) -> Result<DigitalTwin, String> {
    let mut twin = snapshot.fork()?;
    apply_overrides(&mut twin, spec)?;
    Ok(twin)
}

/// Run one fork to the horizon and read off the marginal numbers.
fn run_fork(
    mut twin: DigitalTwin,
    spec: &WhatIfSpec,
    perturb_rng: Option<&mut Rng>,
) -> Result<ForkRun, String> {
    if let Some(rng) = perturb_rng {
        let perturbed = uq::perturb_config(&twin.config.system, &spec.perturbations, rng);
        let delivery = twin.config.delivery;
        twin.raps_mut().set_power_model(perturbed, delivery)?;
    }
    let r0 = twin.report();
    twin.run(spec.horizon_s).map_err(|e| format!("fork run failed: {e}"))?;
    let r1 = twin.report();
    let hours = spec.horizon_s as f64 / 3_600.0;
    let energy_mwh = r1.total_energy_mwh - r0.total_energy_mwh;
    Ok(ForkRun {
        jobs_completed: r1.jobs_completed - r0.jobs_completed,
        avg_power_mw: if hours > 0.0 { energy_mwh / hours } else { 0.0 },
        energy_mwh,
        final_pue: twin.cooling_output("pue"),
        final_utilization: twin.utilization(),
    })
}

/// Answer a what-if from a snapshot: fork, apply the overrides, advance
/// the horizon, and report marginal outcomes. `draws > 1` fans that many
/// forks across the pool (`threads`, `None` = process default) with
/// per-fork RNG streams split from the snapshot seed — bit-identical at
/// any pool width, which is what makes the response cacheable.
pub fn run_whatif(
    snapshot: &TwinSnapshot,
    spec: &WhatIfSpec,
    threads: Option<usize>,
) -> Result<WhatIfOutcome, String> {
    // Specs arrive over the wire: bound them before they can wedge a
    // handler thread (mirrors the Advance cap in the server).
    const MAX_HORIZON_S: u64 = 366 * 86_400;
    const MAX_DRAWS: u64 = 4_096;
    if spec.horizon_s > MAX_HORIZON_S {
        return Err(format!(
            "horizon of {} s exceeds the {MAX_HORIZON_S} s (1 year) per-query cap",
            spec.horizon_s
        ));
    }
    if spec.draws > MAX_DRAWS {
        return Err(format!("{} draws exceed the {MAX_DRAWS} per-query cap", spec.draws));
    }
    let (from_s, to_s) = (snapshot.taken_at_s, snapshot.taken_at_s + spec.horizon_s);
    if spec.draws <= 1 {
        let run = run_fork(configured_fork(snapshot, spec)?, spec, None)?;
        return Ok(WhatIfOutcome {
            label: spec.label.clone(),
            from_s,
            to_s,
            jobs_completed: run.jobs_completed,
            avg_power_mw: run.avg_power_mw,
            power_std_mw: 0.0,
            energy_mwh: run.energy_mwh,
            energy_std_mwh: 0.0,
            final_pue: run.final_pue,
            final_utilization: run.final_utilization,
            draw_avg_power_mw: Vec::new(),
            draw_energy_mwh: Vec::new(),
            draws: 1,
        });
    }

    // UQ ensemble: per-draw streams derive from the snapshot seed and the
    // scenario fingerprint, so the same question always draws the same
    // perturbations (cache coherence) while distinct scenarios and
    // snapshots stay independent. The scenario overrides are applied to
    // ONE base fork; each draw then forks that shared prefix (a refcount
    // bump per recorded series) and pays only for its own perturbed run.
    let base = configured_fork(snapshot, spec)?;
    let seed = snapshot.seed ^ crate::cache::scenario_fingerprint(spec);
    let mut runner = EnsembleRunner::new(seed);
    if let Some(n) = threads {
        runner = runner.threads(n);
    }
    let runs: Vec<Result<ForkRun, String>> =
        runner.run_draws(spec.draws as usize, |ctx| run_fork(base.fork()?, spec, Some(&mut ctx.rng)));
    let runs: Vec<ForkRun> = runs.into_iter().collect::<Result<_, _>>()?;

    // Sample std via the workspace accumulator, so `power_std_mw` means
    // the same thing here as in `exadigit_raps::uq::UqSummary`.
    let mean_std = |values: &[f64]| {
        let s = exadigit_sim::stats::Summary::of(values);
        (s.mean, s.std)
    };
    let draw_avg_power_mw: Vec<f64> = runs.iter().map(|r| r.avg_power_mw).collect();
    let draw_energy_mwh: Vec<f64> = runs.iter().map(|r| r.energy_mwh).collect();
    let (power_mean, power_std) = mean_std(&draw_avg_power_mw);
    let (energy_mean, energy_std) = mean_std(&draw_energy_mwh);
    let pues: Vec<f64> = runs.iter().filter_map(|r| r.final_pue).collect();
    Ok(WhatIfOutcome {
        label: spec.label.clone(),
        from_s,
        to_s,
        // Power perturbations do not alter scheduling, so completions are
        // identical across draws; report the first.
        jobs_completed: runs[0].jobs_completed,
        avg_power_mw: power_mean,
        power_std_mw: power_std,
        energy_mwh: energy_mean,
        energy_std_mwh: energy_std,
        final_pue: if pues.is_empty() {
            None
        } else {
            Some(pues.iter().sum::<f64>() / pues.len() as f64)
        },
        final_utilization: runs[0].final_utilization,
        draw_avg_power_mw,
        draw_energy_mwh,
        draws: spec.draws,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotStore;
    use exadigit_core::config::TwinConfig;
    use exadigit_telemetry::replay::CoolingTrace;

    fn snapshot_at(seconds: u64) -> (SnapshotStore, std::sync::Arc<TwinSnapshot>) {
        let mut twin = DigitalTwin::new(TwinConfig::frontier_power_only()).unwrap();
        twin.submit(vec![
            Job::new(1, "base", 2048, 7_200, 10, 0.7, 0.8),
            Job::new(2, "tail", 512, 1_800, 30, 0.5, 0.5),
        ]);
        twin.run(seconds).unwrap();
        let mut store = SnapshotStore::new(4, 99);
        let snap = store.take(&twin, format!("t{seconds}")).unwrap();
        (store, snap)
    }

    #[test]
    fn continuation_query_reports_marginals() {
        let (_store, snap) = snapshot_at(600);
        let out = run_whatif(&snap, &WhatIfSpec::default(), Some(1)).unwrap();
        assert_eq!(out.from_s, 600);
        assert_eq!(out.to_s, 4_200);
        assert!(out.avg_power_mw > 7.0, "loaded Frontier ≥ idle power");
        assert!(out.energy_mwh > 0.0);
        assert_eq!(out.draws, 1);
        assert_eq!(out.power_std_mw, 0.0);
    }

    #[test]
    fn identical_queries_are_bit_identical() {
        let (_store, snap) = snapshot_at(300);
        let spec = WhatIfSpec { horizon_s: 1_800, ..WhatIfSpec::default() };
        let a = run_whatif(&snap, &spec, Some(1)).unwrap();
        let b = run_whatif(&snap, &spec, Some(1)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn delivery_variant_changes_power_not_completions() {
        let (_store, snap) = snapshot_at(300);
        let base = run_whatif(&snap, &WhatIfSpec::default(), Some(1)).unwrap();
        let dc = run_whatif(
            &snap,
            &WhatIfSpec {
                delivery: Some(PowerDelivery::Direct380Vdc),
                ..WhatIfSpec::default()
            },
            Some(1),
        )
        .unwrap();
        assert_eq!(base.jobs_completed, dc.jobs_completed);
        assert!(
            dc.avg_power_mw < base.avg_power_mw,
            "380 Vdc skips a conversion stage: {} !< {}",
            dc.avg_power_mw,
            base.avg_power_mw
        );
    }

    #[test]
    fn extra_jobs_raise_power() {
        let (_store, snap) = snapshot_at(300);
        let base = run_whatif(&snap, &WhatIfSpec::default(), Some(1)).unwrap();
        let loaded = run_whatif(
            &snap,
            &WhatIfSpec {
                extra_jobs: vec![Job::new(99, "surge", 4_096, 3_000, 0, 0.9, 0.95)],
                ..WhatIfSpec::default()
            },
            Some(1),
        )
        .unwrap();
        assert!(loaded.avg_power_mw > base.avg_power_mw + 1.0);
        assert_eq!(loaded.jobs_completed, base.jobs_completed + 1);
    }

    #[test]
    fn backend_swap_serves_l2_pue_from_a_power_only_snapshot() {
        let (_store, snap) = snapshot_at(300);
        assert!(snap.twin().cooling_output("pue").is_none());
        let out = run_whatif(
            &snap,
            &WhatIfSpec {
                backend: Some(CoolingBackend::Replay(CoolingTrace::constant(1.0625, 5.0e5))),
                ..WhatIfSpec::default()
            },
            Some(1),
        )
        .unwrap();
        assert_eq!(out.final_pue, Some(1.0625));
    }

    #[test]
    fn wire_scale_abuse_is_rejected_not_run() {
        let (_store, snap) = snapshot_at(60);
        let huge_horizon = WhatIfSpec { horizon_s: u64::MAX, ..WhatIfSpec::default() };
        assert!(run_whatif(&snap, &huge_horizon, Some(1)).is_err());
        let huge_draws = WhatIfSpec { draws: u64::MAX, horizon_s: 60, ..WhatIfSpec::default() };
        assert!(run_whatif(&snap, &huge_draws, Some(1)).is_err());
    }

    #[test]
    fn uq_draws_are_width_invariant_and_spread() {
        let (_store, snap) = snapshot_at(300);
        let spec = WhatIfSpec { draws: 8, horizon_s: 1_200, ..WhatIfSpec::default() };
        let w1 = run_whatif(&snap, &spec, Some(1)).unwrap();
        let w4 = run_whatif(&snap, &spec, Some(4)).unwrap();
        assert_eq!(w1, w4, "pool width must not change the ensemble");
        assert!(w1.power_std_mw > 0.0, "perturbations must spread the ensemble");
        assert_eq!(w1.draws, 8);
        assert_eq!(w1.draw_avg_power_mw.len(), 8, "per-draw payload rides along");
        assert_eq!(w1.draw_energy_mwh.len(), 8);
        let mean = w1.draw_avg_power_mw.iter().sum::<f64>() / 8.0;
        assert!((mean - w1.avg_power_mw).abs() < 1e-9, "summary is the mean of the payload");
    }
}
