//! What-if study (§IV-3 of the paper): replay the same workload under the
//! three power-delivery variants — baseline AC, smart load-sharing
//! rectifiers, direct 380 V DC — and compare efficiency, yearly cost and
//! carbon.
//!
//! ```sh
//! cargo run --release --example whatif_power_delivery
//! ```

use exadigit_core::whatif::PowerDeliveryStudy;
use exadigit_raps::config::SystemConfig;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};

fn main() {
    println!("ExaDigiT-rs what-if study — power delivery variants (§IV-3)\n");
    let system = SystemConfig::frontier();

    // Six hours of a representative day (the paper uses the full 183-day
    // replay; see the whatif_studies bench binary for that).
    let horizon = 6 * 3_600;
    let mut generator = WorkloadGenerator::new(WorkloadParams::default(), 7);
    let jobs: Vec<_> = generator
        .generate_day(0)
        .into_iter()
        .filter(|j| j.submit_time_s < horizon)
        .collect();
    println!("replaying {} jobs over {} h under three variants...\n", jobs.len(), horizon / 3600);

    let study = PowerDeliveryStudy::run(&system, &jobs, horizon, Policy::FirstFit);

    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>14} {:>12}",
        "variant", "avg MW", "loss MW", "η_system", "yearly save $", "ΔCO₂ %"
    );
    for outcome in &study.outcomes {
        let save = study.yearly_savings_usd(outcome.delivery, &system);
        let carbon = study.carbon_delta_percent(outcome.delivery);
        println!(
            "{:<22} {:>10.2} {:>10.2} {:>12.4} {:>14.0} {:>12.2}",
            format!("{:?}", outcome.delivery),
            outcome.report.avg_power_mw,
            outcome.report.avg_loss_mw,
            outcome.report.efficiency,
            save,
            carbon,
        );
    }

    println!("\npaper reference points:");
    println!("  smart rectifiers: +0.1 % efficiency  ≈ $120k/yr");
    println!("  380 V DC:        93.3 % → 97.3 %     ≈ $542k/yr, −8.2 % CO₂");
    let dc_gain = study.efficiency_gain_points(PowerDelivery::Direct380Vdc);
    println!("\nthis run: 380 V DC efficiency gain = {dc_gain:+.2} points");
}
