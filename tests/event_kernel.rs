//! Golden equivalence guard for the discrete-event kernel.
//!
//! `RapsSimulation::run_until` jumps the clock from event to event;
//! `RapsSimulation::run_until_per_second` walks every second (Algorithm 1
//! verbatim). The two must agree *exactly* where the paper's outputs live:
//! every recorded series sample bit-identical (`f64::to_bits`), cooling
//! steps at the same quanta with the same inputs, identical completions,
//! waits, and node-pool state. Total energy differs only by float
//! reassociation (closed-form `n × P` vs `n` sequential adds), bounded at
//! 1e-9 relative.
//!
//! The pinned run is the ISSUE's acceptance scenario: 600 s on Frontier
//! with the L4 cooling plant attached, a varying wet-bulb forcing, and a
//! workload that exercises arrivals, queueing, starts, and completions.

use exadigit_cooling::CoolingModel;
use exadigit_raps::config::SystemConfig;
use exadigit_raps::job::Job;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::simulation::{CoolingCoupling, RapsSimulation};
use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};
use exadigit_sim::TimeSeries;

const HORIZON_S: u64 = 600;

/// The pinned 600 s cooled Frontier scenario.
fn cooled_sim() -> RapsSimulation {
    let mut sim = RapsSimulation::new(
        SystemConfig::frontier(),
        PowerDelivery::StandardAC,
        Policy::FirstFit,
        15,
    );
    let coupling = CoolingCoupling::attach(Box::new(CoolingModel::frontier()), 25).unwrap();
    sim.attach_cooling(coupling);
    // A moving wet-bulb so forcing breakpoints are live events.
    sim.set_wet_bulb(TimeSeries::from_values(
        0.0,
        120.0,
        vec![12.0, 14.5, 13.0, 16.0, 15.0, 17.5],
    ));
    sim.submit_jobs(golden_jobs());
    sim
}

/// Arrivals, a queue, starts, and in-horizon completions: one big early
/// job, staggered mid-run arrivals, a job completing inside the horizon,
/// and a tail job that is still running at the horizon.
fn golden_jobs() -> Vec<Job> {
    let mut jobs = vec![
        Job::new(1, "big", 2048, 450, 5, 0.7, 0.9),
        Job::new(2, "short", 256, 120, 30, 0.5, 0.4),
        Job::new(3, "tail", 512, 10_000, 200, 0.9, 0.8),
    ];
    let mut generator = WorkloadGenerator::new(WorkloadParams::default(), 424242);
    jobs.extend(
        generator
            .generate_day(0)
            .into_iter()
            .filter(|j| j.submit_time_s < 500)
            .take(20),
    );
    jobs
}

fn assert_series_bits_equal(name: &str, a: &TimeSeries, b: &TimeSeries) {
    assert_eq!(a.len(), b.len(), "{name}: length mismatch");
    for (i, (x, y)) in a.samples().zip(b.samples()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{name} sample {i}: event-driven {x} vs per-second {y}"
        );
    }
}

#[test]
fn event_kernel_matches_per_second_loop_on_cooled_frontier_run() {
    let mut per_second = cooled_sim();
    per_second.run_until_per_second(HORIZON_S).unwrap();
    let mut event_driven = cooled_sim();
    event_driven.run_until(HORIZON_S).unwrap();

    assert_eq!(event_driven.now(), per_second.now());

    // Recorded series bit-identical at every record boundary.
    let (ev, ps) = (event_driven.outputs(), per_second.outputs());
    assert_series_bits_equal("system_power_w", &ev.system_power_w, &ps.system_power_w);
    assert_series_bits_equal("loss_w", &ev.loss_w, &ps.loss_w);
    assert_series_bits_equal("utilization", &ev.utilization, &ps.utilization);
    assert_series_bits_equal("efficiency", &ev.efficiency, &ps.efficiency);
    assert_series_bits_equal("pue", &ev.pue, &ps.pue);
    assert!(!ev.pue.is_empty(), "cooling must actually have stepped");

    // The live snapshot and the stateful cooling plant saw identical
    // inputs at identical times, so their outputs carry identical bits.
    assert_eq!(
        event_driven.snapshot().system_w.to_bits(),
        per_second.snapshot().system_w.to_bits()
    );
    let supply = |sim: &RapsSimulation| {
        let model = sim.cooling_model().unwrap();
        model.get_real(model.var_by_name("cdu[1].secondary_supply_temp").unwrap().vr).unwrap()
    };
    assert_eq!(supply(&event_driven).to_bits(), supply(&per_second).to_bits());

    // Total energy: closed-form integration within 1e-9 relative.
    let (e_ev, e_ps) = (ev.energy_j, ps.energy_j);
    assert!(e_ps > 0.0);
    assert!(
        ((e_ev - e_ps) / e_ps).abs() < 1e-9,
        "energy drift: event-driven {e_ev} vs per-second {e_ps}"
    );

    // Discrete state: completions, queue, waits, and the node pool.
    let (r_ev, r_ps) = (event_driven.report(), per_second.report());
    assert_eq!(r_ev.jobs_completed, r_ps.jobs_completed);
    assert!(r_ps.jobs_completed >= 2, "scenario must complete jobs in-horizon");
    assert_eq!(r_ev.jobs_unfinished, r_ps.jobs_unfinished);
    assert_eq!(event_driven.running_count(), per_second.running_count());
    assert_eq!(event_driven.pending_count(), per_second.pending_count());
    assert_eq!(ev.wait_stats.count(), ps.wait_stats.count());
    assert_eq!(ev.wait_stats.mean().to_bits(), ps.wait_stats.mean().to_bits());
    assert_eq!(event_driven.pool(), per_second.pool());

    // Per-second summary statistics agree to weighted-update rounding.
    assert_eq!(ev.power_stats.count(), ps.power_stats.count());
    assert!((r_ev.avg_power_mw - r_ps.avg_power_mw).abs() / r_ps.avg_power_mw < 1e-9);
    assert_eq!(r_ev.max_power_mw.to_bits(), r_ps.max_power_mw.to_bits());
    assert_eq!(r_ev.avg_pue, r_ps.avg_pue, "pue stats are event-aligned, hence exact");
}

#[test]
fn event_kernel_matches_per_second_loop_without_cooling() {
    // The no-cooling path additionally exercises the skipped-quantum
    // optimization (no cooling step forces nothing at the quantum).
    let run = |event_driven: bool| {
        let mut sim = RapsSimulation::new(
            SystemConfig::frontier(),
            PowerDelivery::StandardAC,
            Policy::EasyBackfill,
            60,
        );
        sim.submit_jobs(golden_jobs());
        if event_driven {
            sim.run_until(HORIZON_S).unwrap();
        } else {
            sim.run_until_per_second(HORIZON_S).unwrap();
        }
        sim
    };
    let ps = run(false);
    let ev = run(true);
    assert_series_bits_equal(
        "system_power_w",
        &ev.outputs().system_power_w,
        &ps.outputs().system_power_w,
    );
    assert_series_bits_equal("utilization", &ev.outputs().utilization, &ps.outputs().utilization);
    assert_eq!(ev.report().jobs_completed, ps.report().jobs_completed);
    assert_eq!(ev.pool(), ps.pool());
    let (e_ev, e_ps) = (ev.outputs().energy_j, ps.outputs().energy_j);
    assert!(((e_ev - e_ps) / e_ps).abs() < 1e-9);
}

#[test]
fn replay_backend_stays_trace_quantum_aligned() {
    // L2 telemetry replay: the trace is sampled at do_step time, so the
    // event kernel must present exactly the per-second loop's
    // (current_time, 15 s) step sequence — a ramping trace makes any
    // misalignment visible in the recorded PUE series.
    use exadigit_telemetry::replay::{CoolingTrace, ReplayCoolingModel};
    let run = |event_driven: bool| {
        let mut sim = RapsSimulation::new(
            SystemConfig::frontier(),
            PowerDelivery::StandardAC,
            Policy::FirstFit,
            15,
        );
        let ramp: Vec<f64> = (0..40).map(|i| 1.05 + 0.002 * i as f64).collect();
        let trace = CoolingTrace::new(
            TimeSeries::from_values(0.0, 15.0, ramp),
            TimeSeries::from_values(0.0, 15.0, vec![4.0e5; 40]),
        );
        let coupling =
            CoolingCoupling::attach(Box::new(ReplayCoolingModel::new(trace, 25)), 25).unwrap();
        sim.attach_cooling(coupling);
        sim.submit_jobs(golden_jobs());
        if event_driven {
            sim.run_until(HORIZON_S).unwrap();
        } else {
            sim.run_until_per_second(HORIZON_S).unwrap();
        }
        sim
    };
    let ps = run(false);
    let ev = run(true);
    assert_eq!(ev.outputs().pue.len(), HORIZON_S as usize / 15);
    assert_series_bits_equal("pue", &ev.outputs().pue, &ps.outputs().pue);
    // The ramp means consecutive samples differ — alignment is load-bearing.
    assert!(ev.outputs().pue[1] > ev.outputs().pue[0]);
}

#[test]
fn interleaved_horizons_and_modes_stay_consistent() {
    // run_until must be resumable in pieces and mixable with tick():
    // tick() keeps the event calendar consistent (completion events are
    // scheduled at job start in both modes).
    let mut reference = cooled_sim();
    reference.run_until_per_second(HORIZON_S).unwrap();

    let mut mixed = cooled_sim();
    mixed.run_until(100).unwrap();
    for _ in 0..50 {
        mixed.tick().unwrap();
    }
    mixed.run_until(480).unwrap();
    mixed.run_until(HORIZON_S).unwrap();

    assert_eq!(mixed.now(), reference.now());
    let (a, b) = (mixed.outputs(), reference.outputs());
    assert_series_bits_equal("system_power_w", &a.system_power_w, &b.system_power_w);
    assert_series_bits_equal("pue", &a.pue, &b.pue);
    assert_eq!(mixed.report().jobs_completed, reference.report().jobs_completed);
    assert_eq!(mixed.pool(), reference.pool());
}
