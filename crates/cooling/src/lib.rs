//! Transient cooling-plant model for ExaDigiT-rs.
//!
//! The Rust equivalent of the paper's Modelica cooling model (§III-C):
//! a system-level transient thermo-fluid model of Frontier's Central
//! Energy Plant and the 25 CDU-rack loops, exported across an FMI-style
//! co-simulation boundary and stepped every 15 s by RAPS.
//!
//! * [`spec`] — the [`spec::PlantSpec`] JSON schema: the AutoCSM input
//!   format of §V ("inputs a JSON input specification of the architecture
//!   of the system, and outputs an initial model"). `PlantSpec::frontier()`
//!   reproduces Fig. 5; alternative specs model Setonix/Marconi100-like
//!   plants.
//! * [`plant`] — the assembled plant: three hydraulic loops (cooling-tower
//!   loop, primary HTW loop, per-CDU secondary loops), ε-NTU heat
//!   exchangers, tower cells, thermal volumes and transport delays.
//! * [`controls`] — the §III-C5 control system: per-CDU valve and pump
//!   PIDs, HTWP/CTWP pressure PIDs with hysteresis staging, tower cell
//!   staging driven by header pressure and the lagged HTWS temperature
//!   gradient ("delay transfer function").
//! * [`model`] — [`model::CoolingModel`]: the `CoSimModel` wrapper with the
//!   317-variable output registry of §III-C4 (11 per CDU × 25, primary
//!   loop staging/pumps, tower loop staging/pumps/fans, facility
//!   temperatures/pressures/flows, PUE).
//! * [`stations`] — the Fig. 5 station registry mapping output names to
//!   the numbered measurement locations.

#![warn(missing_docs)]

pub mod controls;
pub mod model;
pub mod plant;
pub mod spec;
pub mod stations;

pub use model::CoolingModel;
pub use spec::PlantSpec;
