//! Full-day replay throughput — the paper's headline claim, head to head.
//!
//! §IV: "Each 24-hour replay takes about nine minutes to run with
//! cooling, or just three minutes without". This bench replays 24 h
//! Frontier days through both advancement kernels:
//!
//! * `per_second/*` — the literal Algorithm 1 loop (86,400 `TICK`s), the
//!   executable specification;
//! * `event_driven/*` — the discrete-event kernel (`run_until`), which
//!   jumps between job arrivals/completions, 15 s quanta, and record
//!   boundaries, integrating energy in closed form across the gaps.
//!
//! Three no-cooling day profiles span the event-density axis the kernel's
//! advantage depends on:
//!
//! * `hpl_day` — the paper's §IV-B verification workload: one
//!   full-machine HPL run. Near-zero events; the kernel's home turf.
//! * `capability_day` — ~100 multi-hour leadership-class jobs.
//! * `shared_load_day` — 1,700+ short jobs at 0.82 offered load
//!   (the paper's Fig. 9 day has 1,238). Here both kernels spend most of
//!   their time on *real* work (job starts/stops force power recomputes
//!   in both), so the gap narrows to the per-tick overhead — reported
//!   honestly rather than hidden.
//!
//! Acceptance (ISSUE 4): event-driven ≥ 10× on a 24 h no-cooling replay —
//! pinned to `hpl_day` **only**: `capability_day` measures 9.9–10.6×
//! across runs on the single-core CI host, and a criterion that flips on
//! run-to-run noise is a flake, not a gate. The cooling-attached pair
//! shows the bound moving to the 15 s plant stepping, which both kernels
//! share — and `capability_day_cooling_online_warm` shows the PR 8
//! online trainer taking that bound back off the critical path once its
//! regimes are trusted. `month_28d_15s` exercises the lazy record
//! backfill: 28 days at the paper's 15 s recording cadence used to mean
//! 161,280 irreducible record-boundary events; now the samples are
//! backfilled in closed form and the horizon costs O(events).
//! Baseline: `BENCH_day_replay.json`; output equivalence between
//! the kernels is pinned by the `event_kernel` golden test, so this file
//! only measures, never validates.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use exadigit_cooling::CoolingModel;
use exadigit_core::{CoolingBackend, DigitalTwin, OnlineSurrogateConfig, TwinConfig};
use exadigit_raps::config::SystemConfig;
use exadigit_raps::job::Job;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::simulation::{CoolingCoupling, RapsSimulation};
use exadigit_raps::workload::{hpl_job, WorkloadGenerator, WorkloadParams};
use std::hint::black_box;
use std::time::Duration;

const DAY_S: u64 = 86_400;

fn shared_load_day() -> Vec<Job> {
    WorkloadGenerator::new(WorkloadParams::default(), 77).generate_day(0)
}

fn capability_params() -> WorkloadParams {
    WorkloadParams {
        tavg_median_s: 1_400.0,
        runtime_mean_s: 4.0 * 3600.0,
        runtime_std_s: 1.5 * 3600.0,
        runtime_range_s: (3600.0, 12.0 * 3600.0),
        single_node_fraction: 0.05,
        ..WorkloadParams::default()
    }
}

fn capability_day() -> Vec<Job> {
    WorkloadGenerator::new(capability_params(), 77).generate_day(0)
}

fn hpl_day() -> Vec<Job> {
    vec![hpl_job(1, 3_600)]
}

fn day_sim(jobs: Vec<Job>, cooling: bool, record_every_s: u64) -> RapsSimulation {
    let mut sim = RapsSimulation::new(
        SystemConfig::frontier(),
        PowerDelivery::StandardAC,
        Policy::FirstFit,
        record_every_s,
    );
    if cooling {
        let coupling =
            CoolingCoupling::attach(Box::new(CoolingModel::frontier()), 25).unwrap();
        sim.attach_cooling(coupling);
    }
    sim.submit_jobs(jobs);
    sim
}

fn bench_day_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("day_replay");
    group.measurement_time(Duration::from_secs(10)).sample_size(10);

    // Recording stays at the paper's 15 s telemetry quantum throughout.
    for (name, jobs) in [
        ("hpl_day", hpl_day()),
        ("capability_day", capability_day()),
        ("shared_load_day", shared_load_day()),
    ] {
        group.bench_function(format!("event_driven/{name}"), |b| {
            b.iter_batched(
                || day_sim(jobs.clone(), false, 15),
                |mut sim| {
                    sim.run_until(DAY_S).unwrap();
                    black_box(sim.report().total_energy_mwh)
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("per_second/{name}"), |b| {
            b.iter_batched(
                || day_sim(jobs.clone(), false, 15),
                |mut sim| {
                    sim.run_until_per_second(DAY_S).unwrap();
                    black_box(sim.report().total_energy_mwh)
                },
                BatchSize::LargeInput,
            )
        });
    }

    // Cooling attached: both kernels step the L4 plant 5,760 times, so
    // the plant bounds both and the gap collapses to the loop overhead.
    group.bench_function("event_driven/capability_day_cooling", |b| {
        b.iter(|| {
            let mut sim = day_sim(capability_day(), true, 15);
            sim.run_until(DAY_S).unwrap();
            black_box(sim.report().avg_pue)
        })
    });
    group.bench_function("per_second/capability_day_cooling", |b| {
        b.iter(|| {
            let mut sim = day_sim(capability_day(), true, 15);
            sim.run_until_per_second(DAY_S).unwrap();
            black_box(sim.report().avg_pue)
        })
    });

    // Online L3/L4 backend, warm: two training days grow the per-regime
    // fits and their envelopes (paid once, outside the measurement),
    // then every iteration forks the trained twin and serves a fresh
    // day — the steady-state cost of a cooled replay on a long-lived
    // service, once the workload's operating range has been seen.
    let warm = {
        let cfg = TwinConfig::frontier()
            .with_backend(CoolingBackend::Online(OnlineSurrogateConfig::default()));
        let mut twin = DigitalTwin::new(cfg).expect("online frontier twin builds");
        let mut generator = WorkloadGenerator::new(capability_params(), 77);
        for day in 0..2 {
            twin.submit(generator.generate_day(day));
            twin.run(DAY_S).expect("training day runs");
        }
        twin
    };
    let day1 = WorkloadGenerator::new(capability_params(), 78).generate_day(2);
    group.bench_function("event_driven/capability_day_cooling_online_warm", |b| {
        b.iter_batched(
            || {
                let mut twin = warm.fork().expect("online twin forks");
                twin.submit(day1.clone());
                twin
            },
            |mut twin| {
                twin.run(DAY_S).unwrap();
                black_box(twin.cooling_output("pue"))
            },
            BatchSize::LargeInput,
        )
    });

    // 28 days, no cooling, at the paper's 15 s recording cadence: the
    // lazy-backfill stressor. 161,280 record boundaries used to be
    // irreducible events; now they are 9.7M closed-form samples.
    let month: Vec<Vec<Job>> = {
        let mut generator = WorkloadGenerator::new(capability_params(), 99);
        (0..28).map(|day| generator.generate_day(day)).collect()
    };
    group.bench_function("event_driven/month_28d_15s", |b| {
        b.iter_batched(
            || {
                let mut sim = day_sim(Vec::new(), false, 15);
                for day_jobs in &month {
                    sim.submit_jobs(day_jobs.clone());
                }
                sim
            },
            |mut sim| {
                sim.run_until(28 * DAY_S).unwrap();
                black_box(sim.report().total_energy_mwh)
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_day_replay);
criterion_main!(benches);
