//! Telemetry substrate for ExaDigiT-rs.
//!
//! The paper validates its twin by replaying six months of Frontier
//! telemetry (Table II lists the exact channels and resolutions). That
//! data is proprietary, so — per the substitution rule in DESIGN.md — this
//! crate provides a **synthetic physical twin**: the same plant and power
//! models run with perturbed parameters and sensor noise, producing an
//! independent "measured" signal with realistic model-vs-telemetry
//! discrepancy. The V&V pipelines (RMSE/MAE of Fig. 7, %-error of
//! Table III, the Fig. 9 overlay) are exercised identically.
//!
//! * [`schema`] — the Table II record types and resolutions;
//! * [`generator`] — the synthetic physical twin;
//! * [`reader`] — pluggable telemetry readers (§V: "a pluggable
//!   architecture was developed for reading different types of bespoke
//!   telemetry datasets"), including a PM100-like adapter;
//! * [`writer`] — CSV/JSON writers for generated datasets;
//! * [`validate`] — channel-comparison metrics for V&V reports;
//! * [`replay`] — the L2 cooling backend: a `CoSimModel` that answers
//!   the FMI boundary from a recorded trace instead of simulating the
//!   plant (see `docs/FIDELITY.md`).

#![warn(missing_docs)]

pub mod generator;
pub mod reader;
pub mod replay;
pub mod schema;
pub mod validate;
pub mod writer;

pub use generator::{SyntheticTwin, TelemetryDay, TwinParams};
pub use replay::{CoolingTrace, ReplayCoolingModel};
pub use schema::{CoolingChannels, JobRecord};
pub use validate::{compare_channels, ChannelComparison};
