//! Event-driven day replay: the discrete-event kernel vs Algorithm 1.
//!
//! Replays a 24 h Frontier capability day through both advancement
//! kernels, checks they agree (and fails if the event kernel ever
//! regresses below the per-second loop — CI runs this example), then
//! shows what the event kernel newly makes cheap: a four-week scenario
//! horizon in a few milliseconds, and a cooled replay whose online
//! surrogate trainer retires most of the L4 plant steps as it learns.
//!
//! Run with: `cargo run --release --example day_replay`

use exadigit_core::{CoolingBackend, DigitalTwin, OnlineSurrogateConfig, TwinConfig};
use exadigit_raps::config::SystemConfig;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::simulation::RapsSimulation;
use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};
use std::time::Instant;

const DAY_S: u64 = 86_400;

fn capability_params() -> WorkloadParams {
    WorkloadParams {
        tavg_median_s: 1_400.0,
        runtime_mean_s: 4.0 * 3600.0,
        runtime_std_s: 1.5 * 3600.0,
        runtime_range_s: (3600.0, 12.0 * 3600.0),
        single_node_fraction: 0.05,
        ..WorkloadParams::default()
    }
}

fn main() {
    // --- One day, both kernels -----------------------------------------
    let jobs = WorkloadGenerator::new(capability_params(), 77).generate_day(0);
    println!("24 h Frontier capability day: {} jobs", jobs.len());

    let mut event_driven = RapsSimulation::new(
        SystemConfig::frontier(),
        PowerDelivery::StandardAC,
        Policy::FirstFit,
        15,
    );
    event_driven.submit_jobs(jobs.clone());
    let t = Instant::now();
    event_driven.run_until(DAY_S).expect("no cooling attached");
    let t_event = t.elapsed();

    let mut per_second = RapsSimulation::new(
        SystemConfig::frontier(),
        PowerDelivery::StandardAC,
        Policy::FirstFit,
        15,
    );
    per_second.submit_jobs(jobs);
    let t = Instant::now();
    per_second.run_until_per_second(DAY_S).expect("no cooling attached");
    let t_tick = t.elapsed();

    let (re, rp) = (event_driven.report(), per_second.report());
    assert_eq!(re.jobs_completed, rp.jobs_completed, "kernels disagree on completions");
    let energy_drift = ((re.total_energy_mwh - rp.total_energy_mwh) / rp.total_energy_mwh).abs();
    assert!(energy_drift < 1e-9, "energy drift {energy_drift}");

    println!(
        "  event-driven: {:>9.3} ms   per-second: {:>9.3} ms   speedup: {:.1}x",
        t_event.as_secs_f64() * 1e3,
        t_tick.as_secs_f64() * 1e3,
        t_tick.as_secs_f64() / t_event.as_secs_f64()
    );
    println!(
        "  agree: {} jobs completed, {:.2} MWh (drift {energy_drift:.1e}), avg {:.2} MW",
        re.jobs_completed, re.total_energy_mwh, re.avg_power_mw
    );
    // CI smoke gate: the event kernel must never lose to the loop it
    // replaced (it currently wins by ~10×, so this only trips on a
    // genuine regression, not scheduler jitter).
    assert!(
        t_event.as_secs_f64() < t_tick.as_secs_f64(),
        "event kernel regressed below the per-second loop: {:.3} ms vs {:.3} ms",
        t_event.as_secs_f64() * 1e3,
        t_tick.as_secs_f64() * 1e3
    );

    // --- Four weeks in one run ------------------------------------------
    // Multi-week horizons are the scenarios the per-second loop priced
    // out; record hourly, as a capacity-planning study would.
    let mut generator = WorkloadGenerator::new(capability_params(), 99);
    let mut month = RapsSimulation::new(
        SystemConfig::frontier(),
        PowerDelivery::StandardAC,
        Policy::EasyBackfill,
        3_600,
    );
    let mut total_jobs = 0usize;
    for day in 0..28 {
        let day_jobs = generator.generate_day(day);
        total_jobs += day_jobs.len();
        month.submit_jobs(day_jobs);
    }
    let t = Instant::now();
    month.run_until(28 * DAY_S).expect("no cooling attached");
    let t_month = t.elapsed();
    let r = month.report();
    println!("\n28-day horizon ({total_jobs} jobs, hourly recording):");
    println!(
        "  event-driven wall time: {:.1} ms   ({:.0}x faster than simulated time x1e6)",
        t_month.as_secs_f64() * 1e3,
        28.0 * DAY_S as f64 / t_month.as_secs_f64() / 1e6
    );
    println!(
        "  {} jobs completed, {:.0} MWh, avg {:.2} MW, utilization {:.0}%",
        r.jobs_completed,
        r.total_energy_mwh,
        r.avg_power_mw,
        100.0 * r.avg_utilization
    );

    // --- Cooled replay with the online trainer --------------------------
    // The L4 plant used to make cooled replays ~80× the cost of
    // power-only ones. The online backend pays L4 only while learning a
    // regime, then serves it from the trusted fit; this smoke slice
    // shows the split (the full cooled-day measurement lives in
    // `cargo bench -p exadigit_bench --bench day_replay`).
    const SMOKE_S: u64 = 4 * 3_600;
    let jobs = WorkloadGenerator::new(capability_params(), 77).generate_day(0);
    let cfg = TwinConfig::frontier()
        .with_backend(CoolingBackend::Online(OnlineSurrogateConfig::default()));
    let mut cooled = DigitalTwin::new(cfg).expect("frontier online twin builds");
    cooled.submit(jobs);
    let t = Instant::now();
    cooled.run(SMOKE_S).expect("cooled replay runs");
    let t_cooled = t.elapsed();
    let l3 = cooled.cooling_output("online.l3_steps").unwrap_or(0.0);
    let l4 = cooled.cooling_output("online.l4_steps").unwrap_or(0.0);
    let trusted = cooled.cooling_output("online.trusted_regimes").unwrap_or(0.0);
    println!("\nCooled 4 h replay (online L3/L4 backend):");
    println!(
        "  wall time: {:.1} ms   pue: {:.4}   quanta served L3: {:.0} / L4: {:.0} ({:.0} trusted regimes)",
        t_cooled.as_secs_f64() * 1e3,
        cooled.cooling_output("pue").unwrap_or(f64::NAN),
        l3,
        l4,
        trusted
    );
    assert_eq!(l3 + l4, (SMOKE_S / 15) as f64, "every cooling quantum is L3 or L4");
}
