//! Fidelity-selectable cooling backends (docs/FIDELITY.md): run the
//! same twin at L4/L3/L2 by swapping `TwinConfig`'s `CoolingBackend`,
//! then show the L3 payoff — the same what-if grid served by the
//! surrogate at a tiny fraction of the L4 cost.
//!
//! ```sh
//! cargo run --release --example fidelity_sweep
//! ```

use exadigit_core::surrogate::{generate_training_data, Surrogate};
use exadigit_core::whatif::{whatif_grid, Fidelity};
use exadigit_core::{CoolingBackend, DigitalTwin, SurrogateSource, TwinConfig};
use exadigit_raps::job::Job;
use exadigit_telemetry::replay::CoolingTrace;
use std::time::Instant;

fn main() {
    println!("ExaDigiT-rs fidelity sweep — one FMI boundary, three cooling backends\n");

    // ------------------------------------------------------------------
    // 1. Backend selection: the same Frontier twin at three fidelities.
    //    Each backend materialises as a CoSimModel behind the identical
    //    coupling — the run loop never knows which one is attached.
    // ------------------------------------------------------------------
    let job = || vec![Job::new(1, "load", 4096, 1500, 5, 0.8, 0.9)];

    // L4: the comprehensive transient plant (the paper's configuration).
    let t0 = Instant::now();
    let mut l4 = DigitalTwin::new(TwinConfig::frontier()).expect("L4 twin");
    l4.submit(job());
    l4.run(1800).expect("run");
    let l4_s = t0.elapsed().as_secs_f64();

    // L3: a surrogate trained from the same plant spec, then served as
    // a polynomial. Training is a one-off L4 cost; here we use a coarse
    // envelope so the example stays fast.
    let t0 = Instant::now();
    let plant = TwinConfig::frontier().plant;
    let samples = generate_training_data(&plant, &[0.3, 0.6, 0.9], &[10.0, 14.0, 18.0], 200)
        .expect("training sweep");
    let surrogate = Surrogate::fit(&samples).expect("fit");
    let train_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let cfg = TwinConfig::frontier()
        .with_backend(CoolingBackend::Surrogate(SurrogateSource::Fitted(surrogate.clone())));
    let mut l3 = DigitalTwin::new(cfg).expect("L3 twin");
    l3.submit(job());
    l3.run(1800).expect("run");
    let l3_s = t0.elapsed().as_secs_f64();

    // L2: replay a recorded trace (here: the PUE the L4 run just
    // produced, as a stand-in for real telemetry).
    let trace = CoolingTrace::new(
        l4.outputs().pue.clone(),
        l4.outputs().pue.map(|p| (p - 1.0) * 20.0e6),
    );
    let t0 = Instant::now();
    let mut l2 = DigitalTwin::new(
        TwinConfig::frontier().with_backend(CoolingBackend::Replay(trace)),
    )
    .expect("L2 twin");
    l2.submit(job());
    l2.run(1800).expect("run");
    let l2_s = t0.elapsed().as_secs_f64();

    println!("  backend                      level   avg PUE   wall s");
    for (name, twin, secs) in [
        ("Plant (comprehensive)", &l4, l4_s),
        ("Surrogate (predictive)", &l3, l3_s),
        ("Replay (informative)", &l2, l2_s),
    ] {
        println!(
            "  {name:<28} {}      {:.4}   {secs:>6.2}",
            twin.cooling_level().map(|l| l.index()).unwrap_or(0),
            twin.report().avg_pue.unwrap_or(f64::NAN),
        );
    }
    let extrapolations = l3.cooling_output("surrogate.extrapolation_count").unwrap_or(0.0);
    println!("  (L3 one-off training: {train_s:.1} s; extrapolated steps: {extrapolations})\n");

    // ------------------------------------------------------------------
    // 2. The payoff: a what-if grid at L3 vs L4 on a small plant.
    // ------------------------------------------------------------------
    let spec = exadigit_cooling::PlantSpec::marconi100_like();
    let samples = generate_training_data(&spec, &[0.3, 0.6, 0.9], &[10.0, 14.0, 18.0], 400)
        .expect("training sweep");
    let small_surrogate = Surrogate::fit(&samples).expect("fit");
    let loads = [0.35, 0.5, 0.65, 0.8];
    let wbs = [11.0, 13.0, 15.0, 17.0];
    let t0 = Instant::now();
    let g4 = whatif_grid(&spec, &Fidelity::Plant, &loads, &wbs).expect("L4 grid");
    let g4_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let g3 = whatif_grid(&spec, &Fidelity::Surrogate(small_surrogate), &loads, &wbs)
        .expect("L3 grid");
    let g3_s = t0.elapsed().as_secs_f64();
    let max_err = g3
        .points
        .iter()
        .zip(&g4.points)
        .map(|(a, b)| (a.pue - b.pue).abs())
        .fold(0.0f64, f64::max);
    println!("what-if grid ({} points, Marconi100-like plant):", g3.points.len());
    println!("  L4 plant     {g4_s:>10.3} s");
    println!("  L3 surrogate {g3_s:>10.6} s   (x{:.0} faster)", g4_s / g3_s.max(1e-12));
    println!("  max |dPUE| {max_err:.4}, extrapolated points {}", g3.extrapolations);
}
