//! ε-NTU counterflow heat exchangers.
//!
//! Two heat-exchanger families appear in Fig. 5 of the paper: the five
//! intermediate heat exchangers (EHX1-5) joining the cooling-tower loop to
//! the primary loop, and the HEX-1600 inside each of the 25 CDUs joining
//! the primary loop to the rack secondary loop. Both are liquid-liquid
//! plate exchangers, well captured by the counterflow effectiveness-NTU
//! method with a flow-dependent UA.

use crate::fluid::Fluid;
use serde::{Deserialize, Serialize};

/// Counterflow effectiveness for capacity ratio `cr = Cmin/Cmax` and `ntu`.
pub fn effectiveness_counterflow(ntu: f64, cr: f64) -> f64 {
    debug_assert!(ntu >= 0.0 && (0.0..=1.0).contains(&cr));
    if ntu == 0.0 {
        return 0.0;
    }
    if (1.0 - cr).abs() < 1e-9 {
        ntu / (1.0 + ntu)
    } else {
        let e = (-ntu * (1.0 - cr)).exp();
        (1.0 - e) / (1.0 - cr * e)
    }
}

/// Inverse of [`effectiveness_counterflow`]: NTU required for a target
/// effectiveness at capacity ratio `cr`. Used to size UA from design data.
pub fn ntu_counterflow(effectiveness: f64, cr: f64) -> f64 {
    assert!((0.0..1.0).contains(&effectiveness));
    if (1.0 - cr).abs() < 1e-9 {
        effectiveness / (1.0 - effectiveness)
    } else {
        (1.0 / (cr - 1.0)) * ((effectiveness - 1.0) / (effectiveness * cr - 1.0)).ln()
    }
}

/// Result of one heat-exchanger evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HxResult {
    /// Heat transferred hot→cold, W (non-negative in normal operation).
    pub heat_w: f64,
    /// Hot-side outlet temperature, °C.
    pub t_hot_out: f64,
    /// Cold-side outlet temperature, °C.
    pub t_cold_out: f64,
    /// Effectiveness achieved (0..1).
    pub effectiveness: f64,
}

/// A counterflow liquid-liquid heat exchanger sized from a design point.
///
/// UA varies with flow as `UA = UA_design · (m_avg / m_design)^0.7`, a
/// standard plate-HX scaling that keeps part-load behaviour realistic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeatExchanger {
    /// Identifier, e.g. `EHX3` or `CDU17.HEX-1600`.
    pub name: String,
    /// Design-point UA, W/K.
    pub ua_design: f64,
    /// Design mean mass flow (average of both sides), kg/s.
    pub mdot_design: f64,
    /// Hot-side fluid.
    pub hot_fluid: Fluid,
    /// Cold-side fluid.
    pub cold_fluid: Fluid,
}

impl HeatExchanger {
    /// Size an exchanger that achieves `design_effectiveness` with equal
    /// design mass flows `mdot_design` (kg/s) on both sides.
    pub fn from_design(
        name: impl Into<String>,
        design_effectiveness: f64,
        mdot_design: f64,
        hot_fluid: Fluid,
        cold_fluid: Fluid,
    ) -> Self {
        // With equal capacity rates cr = 1: NTU = ε/(1-ε); UA = NTU·Cmin.
        let cp = hot_fluid.specific_heat(30.0).min(cold_fluid.specific_heat(30.0));
        let ntu = ntu_counterflow(design_effectiveness, 1.0);
        HeatExchanger {
            name: name.into(),
            ua_design: ntu * mdot_design * cp,
            mdot_design,
            hot_fluid,
            cold_fluid,
        }
    }

    /// UA at the given side mass flows (kg/s).
    pub fn ua(&self, mdot_hot: f64, mdot_cold: f64) -> f64 {
        let m_avg = 0.5 * (mdot_hot + mdot_cold);
        if m_avg <= 0.0 {
            return 0.0;
        }
        self.ua_design * (m_avg / self.mdot_design).powf(0.7)
    }

    /// Evaluate the exchanger for the given inlet conditions.
    ///
    /// `mdot_*` are mass flows in kg/s; temperatures in °C. Zero flow on
    /// either side transfers no heat.
    pub fn evaluate(
        &self,
        t_hot_in: f64,
        mdot_hot: f64,
        t_cold_in: f64,
        mdot_cold: f64,
    ) -> HxResult {
        if mdot_hot <= 1e-9 || mdot_cold <= 1e-9 {
            return HxResult {
                heat_w: 0.0,
                t_hot_out: t_hot_in,
                t_cold_out: t_cold_in,
                effectiveness: 0.0,
            };
        }
        let t_mean = 0.5 * (t_hot_in + t_cold_in);
        let c_hot = mdot_hot * self.hot_fluid.specific_heat(t_mean);
        let c_cold = mdot_cold * self.cold_fluid.specific_heat(t_mean);
        let (c_min, c_max) = if c_hot < c_cold { (c_hot, c_cold) } else { (c_cold, c_hot) };
        let cr = c_min / c_max;
        let ntu = self.ua(mdot_hot, mdot_cold) / c_min;
        let eff = effectiveness_counterflow(ntu, cr);
        let q = eff * c_min * (t_hot_in - t_cold_in);
        HxResult {
            heat_w: q,
            t_hot_out: t_hot_in - q / c_hot,
            t_cold_out: t_cold_in + q / c_cold,
            effectiveness: eff,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effectiveness_limits() {
        assert_eq!(effectiveness_counterflow(0.0, 0.5), 0.0);
        // NTU -> inf, cr < 1 -> ε -> 1.
        assert!((effectiveness_counterflow(50.0, 0.5) - 1.0).abs() < 1e-9);
        // cr = 1: ε = NTU/(1+NTU).
        assert!((effectiveness_counterflow(3.0, 1.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ntu_inverts_effectiveness() {
        for &cr in &[0.0, 0.3, 0.7, 1.0] {
            for &eps in &[0.1, 0.5, 0.8, 0.95] {
                let ntu = ntu_counterflow(eps, cr);
                let back = effectiveness_counterflow(ntu, cr);
                assert!((back - eps).abs() < 1e-9, "cr={cr} eps={eps} back={back}");
            }
        }
    }

    #[test]
    fn design_point_recovers_effectiveness() {
        let hx = HeatExchanger::from_design("EHX1", 0.85, 300.0, Fluid::Water, Fluid::Water);
        let r = hx.evaluate(30.0, 300.0, 20.0, 300.0);
        assert!((r.effectiveness - 0.85).abs() < 0.01, "eff={}", r.effectiveness);
    }

    #[test]
    fn energy_balance_holds() {
        let hx = HeatExchanger::from_design("EHX1", 0.8, 200.0, Fluid::Water, Fluid::Water);
        let r = hx.evaluate(35.0, 180.0, 22.0, 210.0);
        let t_mean = 0.5 * (35.0 + 22.0);
        let q_hot = 180.0 * Fluid::Water.specific_heat(t_mean) * (35.0 - r.t_hot_out);
        let q_cold = 210.0 * Fluid::Water.specific_heat(t_mean) * (r.t_cold_out - 22.0);
        assert!((q_hot - r.heat_w).abs() / r.heat_w < 1e-9);
        assert!((q_cold - r.heat_w).abs() / r.heat_w < 1e-9);
    }

    #[test]
    fn no_flow_no_heat() {
        let hx = HeatExchanger::from_design("EHX1", 0.8, 200.0, Fluid::Water, Fluid::Water);
        let r = hx.evaluate(35.0, 0.0, 22.0, 210.0);
        assert_eq!(r.heat_w, 0.0);
        assert_eq!(r.t_hot_out, 35.0);
        assert_eq!(r.t_cold_out, 22.0);
    }

    #[test]
    fn outlet_temps_bracketed_by_inlets() {
        let hx = HeatExchanger::from_design("X", 0.9, 100.0, Fluid::Water, Fluid::Water);
        let r = hx.evaluate(40.0, 80.0, 18.0, 120.0);
        assert!(r.t_hot_out > 18.0 && r.t_hot_out < 40.0);
        assert!(r.t_cold_out > 18.0 && r.t_cold_out < 40.0);
    }

    #[test]
    fn part_load_ua_reduces_effectiveness_gently() {
        let hx = HeatExchanger::from_design("X", 0.85, 200.0, Fluid::Water, Fluid::Water);
        let full = hx.evaluate(35.0, 200.0, 20.0, 200.0);
        let part = hx.evaluate(35.0, 50.0, 20.0, 50.0);
        // At part flow NTU rises (UA falls slower than mdot) so ε improves.
        assert!(part.effectiveness > full.effectiveness);
    }

    #[test]
    fn reversed_gradient_transfers_negative_heat() {
        // Cold side hotter than hot side: heat flows the other way, the
        // ε-NTU algebra handles it with a sign change.
        let hx = HeatExchanger::from_design("X", 0.8, 100.0, Fluid::Water, Fluid::Water);
        let r = hx.evaluate(20.0, 100.0, 30.0, 100.0);
        assert!(r.heat_w < 0.0);
        assert!(r.t_hot_out > 20.0);
        assert!(r.t_cold_out < 30.0);
    }
}
