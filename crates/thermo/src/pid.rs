//! PID controllers.
//!
//! §III-C5 of the paper: "A PID controller is used to regulate the CDU
//! relative percent pump speeds based on the loop differential pressure",
//! plus PID regulation of the HTWPs and CTWP header pressure. "Most of the
//! PID parameters have been taken from the physical controller where
//! available, and tuned using telemetry data where parameters were not
//! available." This implementation uses the standard parallel form with
//! derivative-on-measurement (avoids setpoint-kick) and conditional-
//! integration anti-windup (stops integrating when the output saturates in
//! the same direction) — the behaviour industrial PLC blocks exhibit.

use serde::{Deserialize, Serialize};

/// A discrete PID controller in parallel form.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pid {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain (1/s).
    pub ki: f64,
    /// Derivative gain (s).
    pub kd: f64,
    /// Output lower bound.
    pub out_min: f64,
    /// Output upper bound.
    pub out_max: f64,
    /// Setpoint.
    pub setpoint: f64,
    /// `true` for reverse-acting loops (increase output when measurement is
    /// above setpoint — e.g. open a cooling valve on rising temperature).
    pub reverse_acting: bool,
    integral: f64,
    prev_measurement: Option<f64>,
}

impl Pid {
    /// New controller with the given gains and output limits.
    pub fn new(kp: f64, ki: f64, kd: f64, out_min: f64, out_max: f64) -> Self {
        assert!(out_max > out_min);
        Pid {
            kp,
            ki,
            kd,
            out_min,
            out_max,
            setpoint: 0.0,
            reverse_acting: false,
            integral: 0.0,
            prev_measurement: None,
        }
    }

    /// Builder-style setpoint.
    pub fn with_setpoint(mut self, sp: f64) -> Self {
        self.setpoint = sp;
        self
    }

    /// Builder-style reverse action.
    pub fn reverse(mut self) -> Self {
        self.reverse_acting = true;
        self
    }

    /// Pre-load the integral term so the loop starts at `output` — bumpless
    /// start at a known operating point (the paper's model begins after the
    /// plant's start-up sequence completes).
    pub fn initialize_output(&mut self, output: f64) {
        self.integral = output.clamp(self.out_min, self.out_max);
        self.prev_measurement = None;
    }

    /// Advance the controller by `dt` seconds given the `measurement`;
    /// returns the clamped actuator command.
    pub fn update(&mut self, measurement: f64, dt: f64) -> f64 {
        assert!(dt > 0.0);
        let sign = if self.reverse_acting { -1.0 } else { 1.0 };
        let error = sign * (self.setpoint - measurement);

        // Derivative on measurement (sign-adjusted), first call uses zero.
        let derivative = match self.prev_measurement {
            Some(prev) => -sign * (measurement - prev) / dt,
            None => 0.0,
        };
        self.prev_measurement = Some(measurement);

        let unclamped = self.kp * error + self.integral + self.ki * error * dt + self.kd * derivative;
        let output = unclamped.clamp(self.out_min, self.out_max);

        // Conditional integration: only integrate when not pushing further
        // into saturation.
        let saturated_high = unclamped > self.out_max && error > 0.0;
        let saturated_low = unclamped < self.out_min && error < 0.0;
        if !saturated_high && !saturated_low {
            self.integral += self.ki * error * dt;
            self.integral = self.integral.clamp(self.out_min, self.out_max);
        }

        output
    }

    /// Current integral state (for diagnostics/tests).
    pub fn integral(&self) -> f64 {
        self.integral
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First-order plant: y' = (u - y)/tau.
    fn simulate(pid: &mut Pid, y0: f64, tau: f64, steps: usize, dt: f64) -> Vec<f64> {
        let mut y = y0;
        let mut trace = Vec::with_capacity(steps);
        for _ in 0..steps {
            let u = pid.update(y, dt);
            y += (u - y) / tau * dt;
            trace.push(y);
        }
        trace
    }

    #[test]
    fn converges_to_setpoint() {
        let mut pid = Pid::new(2.0, 0.5, 0.0, 0.0, 100.0).with_setpoint(50.0);
        let trace = simulate(&mut pid, 10.0, 5.0, 2000, 0.1);
        let last = *trace.last().unwrap();
        assert!((last - 50.0).abs() < 0.1, "last={last}");
    }

    #[test]
    fn output_respects_limits() {
        let mut pid = Pid::new(100.0, 10.0, 0.0, 0.0, 1.0).with_setpoint(1000.0);
        for _ in 0..100 {
            let u = pid.update(0.0, 1.0);
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn anti_windup_limits_integral() {
        let mut pid = Pid::new(1.0, 1.0, 0.0, 0.0, 1.0).with_setpoint(1000.0);
        for _ in 0..1000 {
            pid.update(0.0, 1.0);
        }
        // Integral must be clamped at out_max, not 1e6.
        assert!(pid.integral() <= 1.0 + 1e-12);
        // Recovery: setpoint drops below measurement, output must unwind fast.
        pid.setpoint = 0.0;
        let mut steps_to_zero = 0;
        for _ in 0..100 {
            let u = pid.update(10.0, 1.0);
            steps_to_zero += 1;
            if u <= 0.0 + 1e-9 {
                break;
            }
        }
        assert!(steps_to_zero < 20, "windup recovery too slow: {steps_to_zero}");
    }

    #[test]
    fn reverse_acting_increases_output_above_setpoint() {
        // Cooling loop: measurement above setpoint must raise the command.
        let mut pid = Pid::new(1.0, 0.1, 0.0, 0.0, 1.0).with_setpoint(30.0).reverse();
        let hot = pid.update(35.0, 1.0);
        let mut pid2 = Pid::new(1.0, 0.1, 0.0, 0.0, 1.0).with_setpoint(30.0).reverse();
        let cold = pid2.update(25.0, 1.0);
        assert!(hot > cold);
    }

    #[test]
    fn derivative_opposes_measurement_rise() {
        let mut no_d = Pid::new(1.0, 0.0, 0.0, -10.0, 10.0).with_setpoint(0.0);
        let mut with_d = Pid::new(1.0, 0.0, 2.0, -10.0, 10.0).with_setpoint(0.0);
        no_d.update(0.0, 1.0);
        with_d.update(0.0, 1.0);
        // Measurement jumps up: the D term must pull the output down
        // relative to the derivative-free controller.
        let u1 = no_d.update(1.0, 1.0);
        let u2 = with_d.update(1.0, 1.0);
        assert!(u2 < u1, "u1={u1} u2={u2}");
    }

    #[test]
    fn no_derivative_kick_on_setpoint_change() {
        // Derivative acts on the measurement, so a setpoint step with a
        // constant measurement must produce no D contribution at all.
        let mut pid = Pid::new(1.0, 0.0, 5.0, -100.0, 100.0).with_setpoint(0.0);
        pid.update(10.0, 1.0);
        pid.setpoint = 50.0;
        let u = pid.update(10.0, 1.0);
        // Pure proportional response: kp * (50 - 10) = 40, no kd spike.
        assert!((u - 40.0).abs() < 1e-9, "u={u}");
    }

    #[test]
    fn bumpless_initialization() {
        let mut pid = Pid::new(1.0, 0.05, 0.0, 0.0, 1.0).with_setpoint(20.0);
        pid.initialize_output(0.6);
        // At setpoint, the first output should be exactly the preload.
        let u = pid.update(20.0, 1.0);
        assert!((u - 0.6).abs() < 1e-9, "u={u}");
    }
}
