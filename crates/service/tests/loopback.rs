//! End-to-end loopback: a real TCP server, concurrent clients, the full
//! snapshot → fork → query → cache lifecycle over the wire — plus the
//! serving-tier contracts (bounded worker pool, Busy backpressure,
//! drain-on-shutdown, LRU cache behaviour).

use exadigit_core::config::TwinConfig;
use exadigit_service::{
    BatchOutcome, Request, Response, ServiceClient, TelemetryFeed, TwinServer, TwinService,
    WhatIfOutcome, WhatIfSpec,
};
use std::time::Duration;

fn service() -> TwinService {
    TwinService::new(
        TwinConfig::frontier_power_only(),
        TelemetryFeed::synthetic(123, 1),
        123,
    )
    .unwrap()
    .with_threads(2)
}

fn spawn_server() -> exadigit_service::ServerHandle {
    TwinServer::bind(service(), "127.0.0.1:0").unwrap().spawn()
}

#[test]
fn full_lifecycle_over_tcp() {
    let handle = spawn_server();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();

    // Ingest one synthetic hour.
    let r = client.request(&Request::Advance { seconds: 3_600 }).unwrap();
    let Response::Advanced { now_s, jobs_ingested } = r else { panic!("{r:?}") };
    assert_eq!(now_s, 3_600);
    assert!(jobs_ingested > 0);

    // Snapshot, then query it twice: compute once, hit the cache once.
    let Response::SnapshotTaken(info) =
        client.request(&Request::Snapshot { label: "t1h".into() }).unwrap()
    else {
        panic!()
    };
    let query = Request::Query {
        snapshot_id: info.id,
        spec: WhatIfSpec { horizon_s: 900, ..WhatIfSpec::default() },
    };
    let Response::Answer { cached: false, outcome: first } =
        client.request(&query).unwrap()
    else {
        panic!("first ask computes")
    };
    let Response::Answer { cached: true, outcome: second } =
        client.request(&query).unwrap()
    else {
        panic!("second ask hits the cache")
    };
    assert_eq!(first, second);

    // Listing sees the snapshot; dropping it frees the id.
    let Response::Snapshots(list) = client.request(&Request::ListSnapshots).unwrap() else {
        panic!()
    };
    assert_eq!(list.len(), 1);
    let Response::Dropped { snapshot_id } =
        client.request(&Request::DropSnapshot { snapshot_id: info.id }).unwrap()
    else {
        panic!()
    };
    assert_eq!(snapshot_id, info.id);

    handle.shutdown();
}

#[test]
fn concurrent_clients_get_identical_deterministic_answers() {
    let handle = spawn_server();
    let addr = handle.addr();

    {
        let mut setup = ServiceClient::connect(addr).unwrap();
        setup.request(&Request::Advance { seconds: 1_800 }).unwrap();
        let Response::SnapshotTaken(info) =
            setup.request(&Request::Snapshot { label: "base".into() }).unwrap()
        else {
            panic!()
        };
        assert_eq!(info.id, 1);
    }

    // Three clients ask the same three questions concurrently.
    let specs = |i: u64| WhatIfSpec {
        label: format!("q{i}"),
        horizon_s: 600 + 300 * i,
        ..WhatIfSpec::default()
    };
    let workers: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).unwrap();
                (0..3u64)
                    .map(|i| {
                        let r = client
                            .request(&Request::Query { snapshot_id: 1, spec: specs(i) })
                            .unwrap();
                        match r {
                            Response::Answer { outcome, .. } => outcome,
                            other => panic!("{other:?}"),
                        }
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let results: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    assert_eq!(results[0], results[1], "concurrent clients must agree");
    assert_eq!(results[1], results[2]);
    assert!(results[0][0].to_s < results[0][2].to_s);

    handle.shutdown();
}

#[test]
fn malformed_lines_answer_errors_without_dropping_the_connection() {
    use std::io::{BufRead, BufReader, Write};
    let handle = spawn_server();
    let stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    writer.write_all(b"{not json}\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("Error"), "{line}");

    // The connection is still usable afterwards.
    writer.write_all(b"\"Status\"\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("Status"), "{line}");

    handle.shutdown();
}

#[test]
fn shutdown_request_stops_the_server() {
    let handle = spawn_server();
    let addr = handle.addr();
    let mut client = ServiceClient::connect(addr).unwrap();
    let r = client.request(&Request::Shutdown).unwrap();
    assert_eq!(r, Response::ShuttingDown);
    handle.shutdown(); // idempotent: joins the already-draining tier
}

/// Regression for the detached-handler bug: `shutdown()` used to return
/// while a handler thread mid-`Advance` could still be mutating the
/// live twin. The drain contract: the in-flight advance *finishes*, its
/// response is written, and after `shutdown()` returns the twin never
/// moves again.
#[test]
fn shutdown_drains_in_flight_work_then_freezes_the_twin() {
    let handle = spawn_server();
    let addr = handle.addr();
    let service = handle.service();
    let in_flight = std::thread::spawn(move || {
        let mut client = ServiceClient::connect(addr).unwrap();
        client.request(&Request::Advance { seconds: 86_400 })
    });
    // Let the advance be admitted and start mutating the live twin.
    std::thread::sleep(Duration::from_millis(10));
    handle.shutdown();
    // Every worker is joined, so the twin cannot move any more.
    let Response::Status(a) = service.handle(&Request::Status) else { panic!() };
    std::thread::sleep(Duration::from_millis(50));
    let Response::Status(b) = service.handle(&Request::Status) else { panic!() };
    assert_eq!(a.now_s, b.now_s, "state changed after shutdown returned");
    // And the admitted request was drained, not abandoned: the client
    // got its real answer, matching the frozen clock.
    match in_flight.join().unwrap() {
        Ok(Response::Advanced { now_s, .. }) => assert_eq!(now_s, a.now_s),
        other => panic!("in-flight advance must finish through the drain: {other:?}"),
    }
}

/// Duplicate specs inside one batch are a benign race on the same cache
/// key: both slots answer, identically, and later batches hit the cache
/// for every slot.
#[test]
fn duplicate_specs_in_one_batch_agree_and_cache_once() {
    let handle = spawn_server();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    client.request(&Request::Advance { seconds: 900 }).unwrap();
    let Response::SnapshotTaken(info) =
        client.request(&Request::Snapshot { label: "base".into() }).unwrap()
    else {
        panic!()
    };
    let twin_spec = WhatIfSpec { label: "twin".into(), horizon_s: 300, ..WhatIfSpec::default() };
    let other = WhatIfSpec { label: "other".into(), horizon_s: 600, ..WhatIfSpec::default() };
    let batch = Request::QueryBatch {
        snapshot_id: info.id,
        specs: vec![twin_spec.clone(), twin_spec, other],
    };
    let Response::Answers { cached_hits, outcomes } = client.request(&batch).unwrap() else {
        panic!()
    };
    assert_eq!(cached_hits, 0);
    let unwrap_ok = |o: &BatchOutcome| -> WhatIfOutcome { o.ok().expect("ok").clone() };
    assert_eq!(unwrap_ok(&outcomes[0]), unwrap_ok(&outcomes[1]), "duplicates must agree");
    // Re-ask: every slot, duplicates included, is a cache hit now.
    let Response::Answers { cached_hits, .. } = client.request(&batch).unwrap() else {
        panic!()
    };
    assert_eq!(cached_hits, 3);
    handle.shutdown();
}

/// One bad spec reports per-slot; siblings keep their outcomes, over
/// the wire.
#[test]
fn batch_error_is_per_slot_over_the_wire() {
    let handle = spawn_server();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    client.request(&Request::Advance { seconds: 600 }).unwrap();
    let Response::SnapshotTaken(info) =
        client.request(&Request::Snapshot { label: "base".into() }).unwrap()
    else {
        panic!()
    };
    let Response::Answers { outcomes, .. } = client
        .request(&Request::QueryBatch {
            snapshot_id: info.id,
            specs: vec![
                WhatIfSpec { label: "ok".into(), horizon_s: 300, ..WhatIfSpec::default() },
                WhatIfSpec { label: "bad".into(), draws: u64::MAX, ..WhatIfSpec::default() },
            ],
        })
        .unwrap()
    else {
        panic!()
    };
    assert!(outcomes[0].is_ok());
    assert!(matches!(&outcomes[1], BatchOutcome::Err { message } if message.contains("draws")));
    handle.shutdown();
}

/// LRU semantics observed through the wire's `cached` flag: a hit
/// promotes, so the promoted entry survives an eviction that claims the
/// stalest entry instead.
#[test]
fn cache_promotes_on_hit_and_evicts_lru_over_the_wire() {
    let svc = service().with_cache_capacity(2);
    let handle = TwinServer::bind(svc, "127.0.0.1:0").unwrap().spawn();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    client.request(&Request::Advance { seconds: 600 }).unwrap();
    let Response::SnapshotTaken(info) =
        client.request(&Request::Snapshot { label: "base".into() }).unwrap()
    else {
        panic!()
    };
    let spec = |label: &str, horizon_s: u64| WhatIfSpec {
        label: label.into(),
        horizon_s,
        ..WhatIfSpec::default()
    };
    let cached_flag = |client: &mut ServiceClient, s: WhatIfSpec| -> bool {
        match client.request(&Request::Query { snapshot_id: info.id, spec: s }).unwrap() {
            Response::Answer { cached, .. } => cached,
            other => panic!("{other:?}"),
        }
    };
    assert!(!cached_flag(&mut client, spec("a", 300))); // miss: {a}
    assert!(!cached_flag(&mut client, spec("b", 600))); // miss: {a, b}
    assert!(cached_flag(&mut client, spec("a", 300))); // hit promotes a
    assert!(!cached_flag(&mut client, spec("c", 900))); // evicts b, not a
    assert!(cached_flag(&mut client, spec("a", 300)), "promoted entry survived");
    assert!(!cached_flag(&mut client, spec("b", 600)), "stale entry was evicted");
    handle.shutdown();
}

/// Snapshot memory accounting observed through the wire: resident vs
/// spilled counts plus the copy-on-write shared/owned byte split. A
/// snapshot of a twin with sealed history must read as mostly *shared*
/// (its chunks are refcount-aliased with the live twin), and dropping
/// it must return the accounting to zero.
#[test]
fn status_reports_snapshot_memory_accounting() {
    let handle = spawn_server();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();

    let status = |client: &mut ServiceClient| match client.request(&Request::Status).unwrap() {
        Response::Status(s) => s,
        other => panic!("{other:?}"),
    };
    let s0 = status(&mut client);
    assert_eq!(s0.snapshots_resident, 0);
    assert_eq!(s0.snapshots_spilled, 0);
    assert_eq!(s0.snapshot_shared_bytes + s0.snapshot_owned_bytes, 0);

    // Record enough history to seal chunks (15 s cadence ⇒ the 1024th
    // sample lands at ~4.3 h), then freeze it.
    client.request(&Request::Advance { seconds: 18_000 }).unwrap();
    let Response::SnapshotTaken(info) =
        client.request(&Request::Snapshot { label: "deep".into() }).unwrap()
    else {
        panic!()
    };
    let s1 = status(&mut client);
    assert_eq!(s1.snapshots_resident, 1);
    assert_eq!(s1.snapshots_spilled, 0);
    // Four power-only series each sealed one 1024-sample chunk, and
    // every one of those chunks is aliased with the live twin.
    assert!(
        s1.snapshot_shared_bytes >= 4 * 1024 * 8,
        "sealed history must be refcount-shared with the live twin ({} B)",
        s1.snapshot_shared_bytes
    );
    assert!(
        s1.snapshot_owned_bytes < s1.snapshot_shared_bytes,
        "a fresh snapshot owns only unsealed tails ({} owned vs {} shared)",
        s1.snapshot_owned_bytes,
        s1.snapshot_shared_bytes
    );

    // Dropping the snapshot frees its accounting.
    client.request(&Request::DropSnapshot { snapshot_id: info.id }).unwrap();
    let s2 = status(&mut client);
    assert_eq!(s2.snapshots_resident, 0);
    assert_eq!(s2.snapshot_shared_bytes + s2.snapshot_owned_bytes, 0);
    handle.shutdown();
}

/// Byte-budget eviction observed through the wire: with room for only
/// one outcome, every distinct question evicts the previous answer.
#[test]
fn cache_byte_budget_bounds_residency_over_the_wire() {
    let one_outcome = exadigit_service::outcome_bytes(&WhatIfOutcome {
        label: "a".into(),
        from_s: 0,
        to_s: 0,
        jobs_completed: 0,
        avg_power_mw: 0.0,
        power_std_mw: 0.0,
        energy_mwh: 0.0,
        energy_std_mwh: 0.0,
        final_pue: None,
        final_utilization: 0.0,
        draw_avg_power_mw: vec![],
        draw_energy_mwh: vec![],
        draws: 1,
    });
    let svc = service().with_cache_bytes(one_outcome + one_outcome / 2);
    let handle = TwinServer::bind(svc, "127.0.0.1:0").unwrap().spawn();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    client.request(&Request::Advance { seconds: 600 }).unwrap();
    let Response::SnapshotTaken(info) =
        client.request(&Request::Snapshot { label: "base".into() }).unwrap()
    else {
        panic!()
    };
    let spec = |label: &str, horizon_s: u64| WhatIfSpec {
        label: label.into(),
        horizon_s,
        ..WhatIfSpec::default()
    };
    let cached_flag = |client: &mut ServiceClient, s: WhatIfSpec| -> bool {
        match client.request(&Request::Query { snapshot_id: info.id, spec: s }).unwrap() {
            Response::Answer { cached, .. } => cached,
            other => panic!("{other:?}"),
        }
    };
    assert!(!cached_flag(&mut client, spec("a", 300)));
    assert!(cached_flag(&mut client, spec("a", 300)), "fits the budget alone");
    assert!(!cached_flag(&mut client, spec("b", 600)), "second outcome computes");
    assert!(!cached_flag(&mut client, spec("a", 300)), "and evicted the first by bytes");
    handle.shutdown();
}

/// Over-capacity pipelining answers `Busy` instead of queueing without
/// bound — and the refusals come back in request order, interleaved
/// with the real answers, leaving the connection usable.
#[test]
fn pipelined_overload_answers_busy_in_order() {
    use std::io::{BufRead, BufReader, Write};
    let svc = service();
    let handle = TwinServer::bind(svc, "127.0.0.1:0")
        .unwrap()
        .with_workers(1)
        .with_queue_depth(1)
        .with_per_client_inflight(2)
        .spawn();
    let mut setup = ServiceClient::connect(handle.addr()).unwrap();
    setup.request(&Request::Advance { seconds: 600 }).unwrap();
    let Response::SnapshotTaken(info) =
        setup.request(&Request::Snapshot { label: "base".into() }).unwrap()
    else {
        panic!()
    };

    // Fire 8 uncached queries down one socket without reading a single
    // response: with 1 worker, queue depth 1, and in-flight cap 2, most
    // must be refused.
    let stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    for i in 0..8u64 {
        let spec = WhatIfSpec {
            label: format!("storm{i}"),
            horizon_s: 1_800 + i,
            ..WhatIfSpec::default()
        };
        let line =
            serde_json::to_string(&Request::Query { snapshot_id: info.id, spec }).unwrap();
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
    }
    writer.flush().unwrap();
    let mut answers = 0;
    let mut busy = 0;
    for _ in 0..8 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let response: Response = serde_json::from_str(line.trim()).unwrap();
        match response {
            Response::Answer { .. } => answers += 1,
            Response::Busy { retry_after_ms } => {
                assert!(retry_after_ms > 0, "hint must be actionable");
                busy += 1;
            }
            other => panic!("{other:?}"),
        }
    }
    assert!(answers >= 1, "admitted work still completes");
    assert!(busy >= 1, "over-capacity load must see Busy");
    assert_eq!(answers + busy, 8, "every request is answered exactly once");

    // The connection survives the storm.
    writer.write_all(b"\"Status\"\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("Status"), "{line}");
    handle.shutdown();
}

/// A client storm beyond worker capacity: every request eventually
/// succeeds through `request_with_retry`, backpressure (not queue
/// growth) absorbing the overload.
#[test]
fn client_storm_converges_through_retry_on_busy() {
    let svc = service();
    let handle = TwinServer::bind(svc, "127.0.0.1:0")
        .unwrap()
        .with_workers(2)
        .with_queue_depth(2)
        .spawn();
    let addr = handle.addr();
    let mut setup = ServiceClient::connect(addr).unwrap();
    setup.request(&Request::Advance { seconds: 600 }).unwrap();
    let Response::SnapshotTaken(info) =
        setup.request(&Request::Snapshot { label: "base".into() }).unwrap()
    else {
        panic!()
    };

    let workers: Vec<_> = (0..16u64)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).unwrap();
                let mut busy_seen = 0u64;
                for j in 0..3u64 {
                    let spec = WhatIfSpec {
                        label: format!("storm{}", (i + j) % 4),
                        horizon_s: 900 + 60 * ((i + j) % 4),
                        ..WhatIfSpec::default()
                    };
                    loop {
                        match client
                            .request(&Request::Query { snapshot_id: info.id, spec: spec.clone() })
                            .unwrap()
                        {
                            Response::Answer { .. } => break,
                            Response::Busy { retry_after_ms } => {
                                busy_seen += 1;
                                std::thread::sleep(Duration::from_millis(retry_after_ms.min(50)));
                            }
                            other => panic!("{other:?}"),
                        }
                    }
                }
                busy_seen
            })
        })
        .collect();
    let _total_busy: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    // Convergence is the assertion: every storm client got every
    // answer. (Busy counts vary with scheduling; the pipelined test
    // above pins that refusals actually happen under overload.)
    handle.shutdown();
}

/// The `Metrics` verb over the wire: one registry observed every layer,
/// so the typed report carries live per-request histograms, cache
/// counters that agree with `Status`, and a request trace whose events
/// name this very connection's requests.
#[test]
fn metrics_verb_reports_live_instruments_over_the_wire() {
    let handle = spawn_server();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    client.request(&Request::Advance { seconds: 900 }).unwrap();
    let Response::SnapshotTaken(info) =
        client.request(&Request::Snapshot { label: "base".into() }).unwrap()
    else {
        panic!()
    };
    let query = Request::Query {
        snapshot_id: info.id,
        spec: WhatIfSpec { horizon_s: 300, ..WhatIfSpec::default() },
    };
    client.request(&query).unwrap(); // miss
    client.request(&query).unwrap(); // hit
    let Response::Status(status) = client.request(&Request::Status).unwrap() else { panic!() };
    let Response::Metrics(report) = client.request(&Request::Metrics).unwrap() else {
        panic!("Metrics verb must answer Response::Metrics")
    };

    let counter = |name: &str, label: Option<(&str, &str)>| -> u64 {
        report
            .counters
            .iter()
            .find(|c| {
                c.name == name
                    && label.is_none_or(|(k, v)| {
                        c.labels.iter().any(|(lk, lv)| lk == k && lv == v)
                    })
            })
            .unwrap_or_else(|| panic!("missing counter {name}"))
            .value
    };
    // Request accounting: exactly what this client sent (plus nothing —
    // the loopback server has no other clients).
    assert_eq!(counter("exadigit_requests_total", Some(("type", "Advance"))), 1);
    assert_eq!(counter("exadigit_requests_total", Some(("type", "Query"))), 2);
    assert_eq!(counter("exadigit_requests_total", Some(("type", "Status"))), 1);
    // Cache counters agree with the Status probe taken on the same
    // connection (single source of truth).
    assert_eq!(counter("exadigit_cache_hits_total", None), status.cache_hits);
    assert_eq!(counter("exadigit_cache_misses_total", None), status.cache_misses);
    assert!(status.cache_hits >= 1 && status.cache_misses >= 1);
    // The kernel's counters crossed the service boundary: a synthetic
    // 15 min of Frontier ingest sees arrivals and record boundaries.
    assert!(counter("exadigit_kernel_events_total", Some(("kind", "job_arrival"))) > 0);

    // Per-type latency histograms hold one observation per request.
    let hist = report
        .histograms
        .iter()
        .find(|h| {
            h.name == "exadigit_request_seconds"
                && h.labels.iter().any(|(k, v)| k == "type" && v == "Query")
        })
        .expect("Query latency histogram");
    assert_eq!(hist.count, 2);
    assert!(hist.sum > 0.0);
    assert!(hist.p50 <= hist.p90 && hist.p90 <= hist.p99);

    // Live gauges mirrored from the status collection.
    let gauge = |name: &str| -> f64 {
        report
            .gauges
            .iter()
            .find(|g| g.name == name)
            .unwrap_or_else(|| panic!("missing gauge {name}"))
            .value
    };
    assert_eq!(gauge("exadigit_live_now_seconds"), status.now_s as f64);
    assert_eq!(gauge("exadigit_snapshots"), 1.0);

    // The trace ring saw this connection's lifecycle: every request
    // admitted, executed, written.
    assert!(!report.trace.is_empty());
    assert!(report.trace.iter().any(|t| t.request == "Query" && t.stage == "executing"));
    assert!(report.trace.iter().any(|t| t.request == "Advance" && t.stage == "written"));
    let mut stages: Vec<&str> = report
        .trace
        .iter()
        .filter(|t| t.request == "Advance")
        .map(|t| t.stage.as_str())
        .collect();
    stages.dedup();
    assert_eq!(stages, vec!["admitted", "executing", "written"]);

    // A power-only twin exposes no cooling gauges and a clean start has
    // no recovery warnings.
    assert!(!report.gauges.iter().any(|g| g.name == "exadigit_pue"));
    assert!(report.recovery_warnings.is_empty());
    handle.shutdown();
}

/// The Prometheus sidecar scraped over real HTTP: same registry as the
/// `Metrics` verb, rendered in text exposition format 0.0.4.
#[test]
fn http_sidecar_serves_prometheus_text() {
    use std::io::{Read, Write};
    let handle = TwinServer::bind(service(), "127.0.0.1:0")
        .unwrap()
        .with_metrics_http("127.0.0.1:0")
        .unwrap()
        .spawn();
    let metrics_addr = handle.metrics_addr().expect("sidecar was configured");
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    client.request(&Request::Advance { seconds: 600 }).unwrap();
    client.request(&Request::Status).unwrap();

    let scrape = |path: &str| -> String {
        let mut stream = std::net::TcpStream::connect(metrics_addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        body
    };
    let response = scrape("/metrics");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("text/plain; version=0.0.4"), "{response}");
    assert!(response.contains("# TYPE exadigit_requests_total counter"), "{response}");
    assert!(response.contains("exadigit_requests_total{type=\"Advance\"} 1"), "{response}");
    assert!(response.contains("exadigit_request_seconds_bucket"), "{response}");
    assert!(response.contains("exadigit_live_now_seconds 600"), "{response}");
    assert!(scrape("/nope").starts_with("HTTP/1.1 404"), "unknown paths 404");
    handle.shutdown();
}

/// Observability off is a real off switch: the hot-path instruments
/// stop moving while the service keeps answering correctly.
#[test]
fn disabled_observability_stops_the_counters_not_the_service() {
    let svc = service().with_observability(false);
    let handle = TwinServer::bind(svc, "127.0.0.1:0").unwrap().spawn();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    let Response::Advanced { now_s, .. } =
        client.request(&Request::Advance { seconds: 300 }).unwrap()
    else {
        panic!()
    };
    assert_eq!(now_s, 300);
    let Response::Metrics(report) = client.request(&Request::Metrics).unwrap() else {
        panic!()
    };
    let advances = report
        .counters
        .iter()
        .find(|c| {
            c.name == "exadigit_requests_total"
                && c.labels.iter().any(|(k, v)| k == "type" && v == "Advance")
        })
        .expect("instrument stays registered")
        .value;
    assert_eq!(advances, 0, "disabled instrumentation must not count");
    assert!(report.trace.is_empty(), "no trace events when disabled");
    handle.shutdown();
}
