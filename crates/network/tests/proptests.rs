//! Property-based tests for the hydraulic solver: conservation laws must
//! hold on randomly generated networks, not just the hand-built ones.

use exadigit_network::hydraulic::{BranchElement, HydraulicNetwork};
use exadigit_thermo::pump::Pump;
use exadigit_thermo::HydraulicResistance;
use proptest::prelude::*;

/// Build a pump feeding `n_legs` parallel resistances with random sizing.
fn parallel_network(
    n_legs: usize,
    pump_q: f64,
    pump_h: f64,
    ks: &[f64],
) -> (HydraulicNetwork, Vec<exadigit_network::hydraulic::BranchId>) {
    let mut net = HydraulicNetwork::new();
    let a = net.add_node("supply");
    let b = net.add_node("return");
    net.set_reference(a, 100_000.0);
    let pump = Pump::from_design_point("P", pump_q, pump_h, 0.8);
    net.add_branch("pump", b, a, vec![BranchElement::Pump { pump, speed: 1.0 }]);
    let mut legs = Vec::with_capacity(n_legs);
    for (i, &k) in ks.iter().take(n_legs).enumerate() {
        legs.push(net.add_branch(
            format!("leg{i}"),
            a,
            b,
            vec![BranchElement::Resistance(HydraulicResistance { k })],
        ));
    }
    (net, legs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mass is conserved: pump flow equals the sum of leg flows, and all
    /// leg flows are non-negative, for any random parallel network.
    #[test]
    fn parallel_network_conserves_mass(
        n_legs in 1usize..12,
        pump_q in 0.05f64..1.0,
        pump_h in 10.0f64..50.0,
        ks in prop::collection::vec(1e4f64..1e8, 12),
    ) {
        let (mut net, legs) = parallel_network(n_legs, pump_q, pump_h, &ks);
        let sol = net.solve(25.0).expect("parallel network must converge");
        let pump_flow = sol.flows()[0];
        let leg_total: f64 = legs.iter().map(|&b| sol.flow(b)).sum();
        prop_assert!((pump_flow - leg_total).abs() < 1e-7,
            "pump {pump_flow} vs legs {leg_total}");
        for &b in &legs {
            prop_assert!(sol.flow(b) >= -1e-9);
        }
        prop_assert!(pump_flow > 0.0);
    }

    /// Pressure balance holds along every leg: ΔP across the leg equals
    /// k·Q² within tolerance.
    #[test]
    fn leg_pressure_balance(
        n_legs in 1usize..8,
        pump_q in 0.05f64..1.0,
        ks in prop::collection::vec(1e4f64..1e8, 8),
    ) {
        let (mut net, legs) = parallel_network(n_legs, pump_q, 30.0, &ks);
        let sol = net.solve(25.0).expect("converges");
        // Node 0 = supply (reference, 100 kPa), node 1 = return.
        let dp = sol.pressure(exadigit_network::hydraulic::NodeId(0))
            - sol.pressure(exadigit_network::hydraulic::NodeId(1));
        for (i, &b) in legs.iter().enumerate() {
            let q = sol.flow(b);
            let drop = ks[i] * q * q;
            prop_assert!((drop - dp).abs() <= 1.0 + 1e-6 * dp.abs(),
                "leg {i}: drop {drop} vs dp {dp}");
        }
    }

    /// Higher-resistance legs carry less flow (flow ordering follows
    /// conductance ordering).
    #[test]
    fn flow_ordering_matches_conductance(
        pump_q in 0.05f64..1.0,
        k_lo in 1e4f64..1e6,
        ratio in 1.5f64..50.0,
    ) {
        let ks = vec![k_lo, k_lo * ratio];
        let (mut net, legs) = parallel_network(2, pump_q, 30.0, &ks);
        let sol = net.solve(25.0).expect("converges");
        prop_assert!(sol.flow(legs[0]) > sol.flow(legs[1]),
            "low-k leg must carry more flow");
    }

    /// The solve is idempotent: warm-started re-solve returns the same
    /// state.
    #[test]
    fn solve_idempotent(
        n_legs in 1usize..8,
        pump_q in 0.05f64..1.0,
        ks in prop::collection::vec(1e4f64..1e8, 8),
    ) {
        let (mut net, legs) = parallel_network(n_legs, pump_q, 30.0, &ks);
        let first = net.solve(25.0).expect("converges");
        let second = net.solve(25.0).expect("converges");
        for &b in &legs {
            prop_assert!((first.flow(b) - second.flow(b)).abs() < 1e-9);
        }
    }
}
