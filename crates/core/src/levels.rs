//! Digital-twin maturity levels (Fig. 2 of the paper).
//!
//! The paper classifies each module against the five-level taxonomy of
//! ref. \[36\] (Autodesk): descriptive, informative, predictive, comprehensive,
//! autonomous, and positions itself at L1 (visualization), L2 (telemetry
//! validation) and L4 (modeling & simulation), with L3/L5 as future work.
//! This reproduction additionally reaches L3: the surrogate cooling
//! backend ([`crate::config::CoolingBackend::Surrogate`]) serves a
//! machine-learned model across the same FMI boundary as the L4 plant
//! (see `docs/FIDELITY.md` for the level → module mapping).

use serde::{Deserialize, Serialize};

/// The five digital-twin levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TwinLevel {
    /// L1 — models the physical assets (CAD/game engines; here: the
    /// scene graph of `exadigit_viz::scene`).
    Descriptive,
    /// L2 — incorporates telemetry for real-time insight (here: the
    /// synthetic-twin replay of `exadigit_telemetry`).
    Informative,
    /// L3 — data-driven AI/ML predictive models. Future work in the
    /// paper; reachable here through the surrogate cooling backend
    /// (`CoolingBackend::Surrogate` serving
    /// [`crate::surrogate::Surrogate`] across the FMI boundary).
    Predictive,
    /// L4 — modeling & simulation for what-if scenarios (here: RAPS and
    /// the cooling plant).
    Comprehensive,
    /// L5 — autonomous control via e.g. reinforcement learning (paper:
    /// future work).
    Autonomous,
}

impl TwinLevel {
    /// All levels in ascending maturity.
    pub const ALL: [TwinLevel; 5] = [
        TwinLevel::Descriptive,
        TwinLevel::Informative,
        TwinLevel::Predictive,
        TwinLevel::Comprehensive,
        TwinLevel::Autonomous,
    ];

    /// Level index as used in the paper (L1..L5).
    pub fn index(&self) -> u8 {
        match self {
            TwinLevel::Descriptive => 1,
            TwinLevel::Informative => 2,
            TwinLevel::Predictive => 3,
            TwinLevel::Comprehensive => 4,
            TwinLevel::Autonomous => 5,
        }
    }

    /// One-line description from §III of the paper.
    pub fn description(&self) -> &'static str {
        match self {
            TwinLevel::Descriptive => {
                "models the physical assets using CAD models and game engines"
            }
            TwinLevel::Informative => {
                "incorporates telemetry data for real-time insights into the physical twin"
            }
            TwinLevel::Predictive => {
                "utilizes telemetry data to develop data-driven AI/ML predictive models"
            }
            TwinLevel::Comprehensive => {
                "leverages modeling and simulation for virtual prototyping and what-if scenarios"
            }
            TwinLevel::Autonomous => {
                "learns to make autonomous decisions for system optimization"
            }
        }
    }

    /// Whether this reproduction implements the level. The paper covers
    /// L1, L2 and L4 with L3/L5 as future work; here L3 is also
    /// implemented, via the surrogate cooling backend. Only L5
    /// (autonomous control) remains open.
    pub fn implemented(&self) -> bool {
        !matches!(self, TwinLevel::Autonomous)
    }
}

impl std::fmt::Display for TwinLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{} ({:?})", self.index(), self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_one_through_five() {
        let idx: Vec<u8> = TwinLevel::ALL.iter().map(|l| l.index()).collect();
        assert_eq!(idx, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn paper_coverage_pattern() {
        // Paper: "This paper covers using L1 for visualization, L2 for
        // validation, and L4 for modeling and simulation." This
        // reproduction goes one further: L3 is reachable through the
        // surrogate cooling backend. L5 remains future work.
        assert!(TwinLevel::Descriptive.implemented());
        assert!(TwinLevel::Informative.implemented());
        assert!(TwinLevel::Predictive.implemented());
        assert!(TwinLevel::Comprehensive.implemented());
        assert!(!TwinLevel::Autonomous.implemented());
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", TwinLevel::Comprehensive), "L4 (Comprehensive)");
    }

    #[test]
    fn levels_ordered_by_maturity() {
        assert!(TwinLevel::Descriptive < TwinLevel::Autonomous);
    }
}
