//! # ExaDigiT-rs
//!
//! A Rust reproduction of **ExaDigiT** — the open-source digital-twin
//! framework for liquid-cooled supercomputers presented in *"A Digital
//! Twin Framework for Liquid-cooled Supercomputers as Demonstrated at
//! Exascale"* (SC 2024) and demonstrated on Frontier.
//!
//! The framework couples three modules (Fig. 1 of the paper):
//!
//! 1. **RAPS** — the Resource Allocator and Power Simulator
//!    ([`exadigit_raps`]): job scheduling, per-node dynamic power from
//!    utilization traces, rectification and DC-DC conversion losses;
//! 2. a **transient thermo-fluidic cooling model**
//!    ([`exadigit_cooling`]): the central energy plant of Fig. 5 with its
//!    control system, stepped every 15 s across an FMI-style boundary
//!    ([`exadigit_sim::fmi`]);
//! 3. **visual analytics** ([`exadigit_viz`]): a scene graph with JSON
//!    export plus terminal dashboards (the AR/UE5 substitution — see
//!    DESIGN.md).
//!
//! This crate is the façade: [`DigitalTwin`] wires the modules together,
//! [`TwinConfig`] is the JSON-loadable description of a whole system
//! (§V generalisation) whose [`CoolingBackend`] selects the cooling
//! fidelity served across the FMI boundary — the L4 plant, the L3
//! surrogate, an L2 telemetry replay, or none (see `docs/FIDELITY.md`),
//! [`whatif`] hosts the §IV-3 experiments (smart
//! load-sharing rectifiers, 380 V DC distribution, cooling-system
//! extension, CDU blockage injection, thermal-throttle scans), and
//! [`ensemble`] batches heterogeneous twin scenarios — UQ draws, what-if
//! variants, plant-spec sweeps — across the thread-pool executor with
//! bit-deterministic results at any pool width (see `docs/ENSEMBLES.md`).
//!
//! ## Quickstart
//!
//! ```no_run
//! use exadigit_core::{DigitalTwin, TwinConfig};
//! use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};
//!
//! let mut twin = DigitalTwin::new(TwinConfig::frontier()).unwrap();
//! let mut generator = WorkloadGenerator::new(WorkloadParams::default(), 42);
//! twin.submit(generator.generate_day(0));
//! twin.run(3_600).unwrap();
//! println!("{}", twin.report());
//! ```

// Every public item must be documented; CI turns this (and all rustdoc
// warnings) into errors via `cargo doc` with RUSTDOCFLAGS=-Dwarnings.
#![warn(missing_docs)]

pub mod config;
pub mod ensemble;
pub mod levels;
pub mod online;
pub mod surrogate;
pub mod twin;
pub mod whatif;

pub use config::{CoolingBackend, SurrogateSource, TwinConfig};
pub use online::{OnlineCoolingModel, OnlineSurrogateConfig};
pub use ensemble::{EnsembleRunner, ScenarioOutcome, TwinScenario};
pub use levels::TwinLevel;
pub use surrogate::Surrogate;
pub use twin::{DigitalTwin, SNAPSHOT_FORMAT_VERSION};

// Re-export the module crates under their paper names.
pub use exadigit_cooling as cooling;
pub use exadigit_network as network;
pub use exadigit_raps as raps;
pub use exadigit_sim as sim;
pub use exadigit_telemetry as telemetry;
pub use exadigit_thermo as thermo;
pub use exadigit_viz as viz;
