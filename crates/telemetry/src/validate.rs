//! Validation metrics — the Fig. 7 / Table III comparison machinery.
//!
//! §IV of the paper: "Overall, both the root mean square error (RMSE) and
//! the mean absolute error (MAE) of the parameters shown in Fig. 7 are
//! within reasonable bounds" and "The model-predicted PUE is within 1.4
//! percent of the telemetry-based PUE". This module aligns a predicted
//! channel against a measured channel (resampling across Table II's mixed
//! cadences) and reports RMSE / MAE / MAPE.

use exadigit_sim::stats::{mae, mape, rmse};
use exadigit_sim::TimeSeries;
use serde::{Deserialize, Serialize};

/// Comparison result for one telemetry channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelComparison {
    /// Channel name (e.g. `cdu[3].primary_flow`).
    pub name: String,
    /// Samples compared after alignment.
    pub samples: usize,
    /// Root mean square error (channel units).
    pub rmse: f64,
    /// Mean absolute error (channel units).
    pub mae: f64,
    /// Mean absolute percentage error, %.
    pub mape_percent: f64,
    /// Mean of the measured channel (for normalising).
    pub measured_mean: f64,
    /// Mean of the predicted channel.
    pub predicted_mean: f64,
}

impl ChannelComparison {
    /// RMSE normalised by the measured mean, %.
    pub fn nrmse_percent(&self) -> f64 {
        if self.measured_mean.abs() < f64::EPSILON {
            f64::NAN
        } else {
            100.0 * self.rmse / self.measured_mean.abs()
        }
    }

    /// Relative bias of the means, % (the Fig. 7d PUE criterion).
    pub fn mean_bias_percent(&self) -> f64 {
        if self.measured_mean.abs() < f64::EPSILON {
            f64::NAN
        } else {
            100.0 * (self.predicted_mean - self.measured_mean) / self.measured_mean
        }
    }
}

/// Align two channels on the coarser of their cadences over their common
/// span and compute the error metrics. Leading `skip_s` seconds are
/// discarded (model spin-up, per Finding 8's replay methodology).
pub fn compare_channels(
    name: impl Into<String>,
    predicted: &TimeSeries,
    measured: &TimeSeries,
    skip_s: f64,
) -> ChannelComparison {
    assert!(!predicted.is_empty() && !measured.is_empty(), "empty channel");
    let dt = predicted.dt.max(measured.dt);
    let t_start = (predicted.t0.max(measured.t0) + skip_s).max(0.0);
    let t_end = predicted
        .end_time()
        .expect("non-empty")
        .min(measured.end_time().expect("non-empty"));
    assert!(t_end > t_start, "channels do not overlap after skip");
    let n = ((t_end - t_start) / dt).floor() as usize + 1;
    let mut p = Vec::with_capacity(n);
    let mut m = Vec::with_capacity(n);
    for i in 0..n {
        let t = t_start + i as f64 * dt;
        p.push(predicted.sample_at(t));
        m.push(measured.sample_at(t));
    }
    let p_mean = p.iter().sum::<f64>() / n as f64;
    let m_mean = m.iter().sum::<f64>() / n as f64;
    ChannelComparison {
        name: name.into(),
        samples: n,
        rmse: rmse(&p, &m),
        mae: mae(&p, &m),
        mape_percent: mape(&p, &m),
        measured_mean: m_mean,
        predicted_mean: p_mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_channels_have_zero_error() {
        let s = TimeSeries::from_values(0.0, 15.0, (0..100).map(|i| 30.0 + i as f64 * 0.01).collect());
        let c = compare_channels("t", &s, &s, 0.0);
        assert_eq!(c.rmse, 0.0);
        assert_eq!(c.mae, 0.0);
        assert!(c.mean_bias_percent().abs() < 1e-12);
    }

    #[test]
    fn constant_offset_detected() {
        let m = TimeSeries::from_values(0.0, 15.0, vec![10.0; 50]);
        let p = m.map(|v| v + 0.5);
        let c = compare_channels("t", &p, &m, 0.0);
        assert!((c.rmse - 0.5).abs() < 1e-12);
        assert!((c.mae - 0.5).abs() < 1e-12);
        assert!((c.mape_percent - 5.0).abs() < 1e-9);
        assert!((c.mean_bias_percent() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_cadence_alignment() {
        // 15 s predicted vs 60 s measured: aligned on 60 s.
        let p = TimeSeries::from_values(0.0, 15.0, (0..241).map(|i| i as f64).collect());
        let m = TimeSeries::from_values(0.0, 60.0, (0..61).map(|i| (i * 4) as f64).collect());
        let c = compare_channels("t", &p, &m, 0.0);
        assert!(c.rmse < 1e-9, "rmse={}", c.rmse);
        assert_eq!(c.samples, 61);
    }

    #[test]
    fn skip_discards_spinup() {
        let mut values = vec![99.0; 10];
        values.extend(vec![1.0; 90]);
        let m = TimeSeries::from_values(0.0, 15.0, vec![1.0; 100]);
        let p = TimeSeries::from_values(0.0, 15.0, values);
        let with_spinup = compare_channels("t", &p, &m, 0.0);
        let skipped = compare_channels("t", &p, &m, 10.0 * 15.0);
        assert!(skipped.rmse < with_spinup.rmse);
        assert!(skipped.rmse < 1e-9);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn non_overlapping_channels_panic() {
        let a = TimeSeries::from_values(0.0, 15.0, vec![1.0; 4]);
        let b = TimeSeries::from_values(1e6, 15.0, vec![1.0; 4]);
        compare_channels("t", &a, &b, 0.0);
    }
}
