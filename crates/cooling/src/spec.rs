//! Plant specification — the AutoCSM input format.
//!
//! §V of the paper: "an automated cooling system model (AutoCSM) method was
//! developed that automates much of the process of developing cooling
//! systems for digital twins. AutoCSM ... inputs a JSON input specification
//! of the architecture of the system, and outputs an initial model of the
//! system". [`PlantSpec`] is that JSON schema; [`crate::CoolingModel::new`]
//! is the generator. Component sizing (pump curves, exchanger UA, tower
//! cells) is derived from the design heat load exactly the way AutoCSM
//! derives its initial model from the architecture description.

use serde::{Deserialize, Serialize};

/// Primary- or tower-loop pump group description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PumpGroupSpec {
    /// Number of pumps installed.
    pub count: usize,
    /// Total loop design flow with all pumps running, m³/s.
    pub total_design_flow_m3s: f64,
    /// Design head per pump, m.
    pub design_head_m: f64,
    /// Pumps running at start-up.
    pub initial_staged: u32,
    /// Minimum pumps online.
    pub min_staged: u32,
}

/// Cooling-tower bank description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TowerSpec {
    /// Independent cells (paper: 5 towers × 4 cells = 20).
    pub cells: usize,
    /// Fan power output channels exposed in the registry (paper: 16).
    pub fan_outputs: usize,
    /// Rated fan power per cell, W.
    pub fan_power_rated_w: f64,
    /// Tower basin (cold water) temperature setpoint, °C.
    pub basin_setpoint_c: f64,
    /// Cells staged at start-up.
    pub initial_staged: u32,
    /// Minimum cells online.
    pub min_staged: u32,
}

/// Intermediate heat-exchanger bank (EHX1-5 in Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EhxSpec {
    /// Number of exchangers installed.
    pub count: usize,
    /// Design effectiveness of each exchanger.
    pub effectiveness: f64,
}

/// Per-CDU loop description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CduSpec {
    /// Design secondary (rack-side) flow per CDU, m³/s.
    pub secondary_design_flow_m3s: f64,
    /// Design secondary pump head, m.
    pub secondary_design_head_m: f64,
    /// Design primary flow share per CDU, m³/s.
    pub primary_design_flow_m3s: f64,
    /// Secondary supply temperature setpoint, °C.
    pub supply_setpoint_c: f64,
    /// HEX-1600 design effectiveness.
    pub hex_effectiveness: f64,
    /// Thermal volume per CDU loop side, kg of coolant.
    pub loop_volume_kg: f64,
}

/// Site piping volumes (the transport delays between CEP and data hall).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipingSpec {
    /// Supply-side pipe volume CEP → data hall, m³.
    pub supply_volume_m3: f64,
    /// Return-side pipe volume data hall → CEP, m³.
    pub return_volume_m3: f64,
    /// Tower basin volume, m³.
    pub basin_volume_m3: f64,
}

/// The full plant specification — the AutoCSM JSON schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantSpec {
    /// Plant name.
    pub name: String,
    /// Number of CDUs.
    pub num_cdus: usize,
    /// Design total heat load, W (sizes exchangers and towers).
    pub design_heat_w: f64,
    /// Primary (HTW) pump group.
    pub primary_pumps: PumpGroupSpec,
    /// Tower (CTW) pump group.
    pub tower_pumps: PumpGroupSpec,
    /// Cooling-tower bank.
    pub towers: TowerSpec,
    /// Intermediate exchanger bank.
    pub ehx: EhxSpec,
    /// CDU loop parameters.
    pub cdu: CduSpec,
    /// Piping and basin volumes.
    pub piping: PipingSpec,
    /// Primary supply header pressure setpoint, Pa.
    pub primary_pressure_setpoint_pa: f64,
    /// Tower-loop supply header pressure setpoint, Pa.
    pub tower_pressure_setpoint_pa: f64,
    /// Internal thermal sub-step, s (the 15 s macro step is subdivided).
    pub thermal_substep_s: f64,
}

impl PlantSpec {
    /// The Frontier plant of Fig. 5: 25 CDUs, HTWP1-4 at 5000-6000 gpm,
    /// CTWP1-4 at 9000-10000 gpm, EHX1-5, five towers of four cells.
    pub fn frontier() -> Self {
        let gpm = |v: f64| v * 3.785_411_784e-3 / 60.0;
        PlantSpec {
            name: "frontier-cep".to_string(),
            num_cdus: 25,
            design_heat_w: 27.0e6,
            // The paper quotes "approximately 5000-6000 gpm" per HTWP and
            // "9000-10000 gpm" per CTWP; energy balance across the CDU
            // exchangers requires the per-pump reading (see DESIGN.md §5).
            primary_pumps: PumpGroupSpec {
                count: 4,
                total_design_flow_m3s: gpm(4.0 * 5_500.0),
                design_head_m: 32.0,
                initial_staged: 2,
                min_staged: 1,
            },
            tower_pumps: PumpGroupSpec {
                count: 4,
                total_design_flow_m3s: gpm(4.0 * 9_500.0),
                design_head_m: 26.0,
                initial_staged: 2,
                min_staged: 1,
            },
            towers: TowerSpec {
                cells: 20,
                fan_outputs: 16,
                fan_power_rated_w: 11_000.0,
                basin_setpoint_c: 24.0,
                initial_staged: 8,
                min_staged: 2,
            },
            ehx: EhxSpec { count: 5, effectiveness: 0.85 },
            cdu: CduSpec {
                secondary_design_flow_m3s: 0.033,
                secondary_design_head_m: 21.0,
                primary_design_flow_m3s: gpm(4.0 * 5_500.0) / 25.0,
                supply_setpoint_c: 32.0,
                hex_effectiveness: 0.80,
                loop_volume_kg: 600.0,
            },
            piping: PipingSpec {
                supply_volume_m3: 18.0,
                return_volume_m3: 18.0,
                basin_volume_m3: 60.0,
            },
            primary_pressure_setpoint_pa: 330_000.0,
            tower_pressure_setpoint_pa: 280_000.0,
            thermal_substep_s: 5.0,
        }
    }

    /// A Setonix-like plant (§V): smaller machine, 8 CDUs, ~4 MW.
    pub fn setonix_like() -> Self {
        let mut s = PlantSpec::frontier();
        s.name = "setonix-like-cep".to_string();
        s.num_cdus = 8;
        s.design_heat_w = 4.2e6;
        s.primary_pumps.total_design_flow_m3s *= 0.18;
        s.tower_pumps.total_design_flow_m3s *= 0.18;
        s.towers.cells = 8;
        s.towers.fan_outputs = 8;
        s.towers.initial_staged = 3;
        s.ehx.count = 2;
        s.cdu.primary_design_flow_m3s = s.primary_pumps.total_design_flow_m3s / 8.0;
        s.piping.supply_volume_m3 = 6.0;
        s.piping.return_volume_m3 = 6.0;
        s.piping.basin_volume_m3 = 15.0;
        s
    }

    /// A Marconi100-like plant (§V): ~2 MW, 5 CDUs.
    pub fn marconi100_like() -> Self {
        let mut s = PlantSpec::setonix_like();
        s.name = "marconi100-like-cep".to_string();
        s.num_cdus = 5;
        s.design_heat_w = 2.2e6;
        s.towers.cells = 6;
        s.towers.fan_outputs = 6;
        s.cdu.primary_design_flow_m3s = s.primary_pumps.total_design_flow_m3s / 5.0;
        s
    }

    /// Design heat per CDU, W.
    pub fn heat_per_cdu_w(&self) -> f64 {
        self.design_heat_w / self.num_cdus as f64
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialises")
    }

    /// Parse from JSON (the AutoCSM entry point).
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Sanity-check the spec before model generation.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cdus == 0 {
            return Err("num_cdus must be positive".into());
        }
        if self.design_heat_w <= 0.0 {
            return Err("design_heat_w must be positive".into());
        }
        if self.towers.cells == 0 || self.towers.fan_outputs > self.towers.cells {
            return Err("tower cells/fan_outputs inconsistent".into());
        }
        if self.primary_pumps.count == 0 || self.tower_pumps.count == 0 {
            return Err("pump groups need at least one pump".into());
        }
        if !(0.0..1.0).contains(&self.ehx.effectiveness)
            || !(0.0..1.0).contains(&self.cdu.hex_effectiveness)
        {
            return Err("effectiveness must be in (0,1)".into());
        }
        if self.thermal_substep_s <= 0.0 {
            return Err("thermal_substep_s must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_spec_matches_paper_figures() {
        let s = PlantSpec::frontier();
        assert_eq!(s.num_cdus, 25);
        assert_eq!(s.primary_pumps.count, 4); // HTWP1-4
        assert_eq!(s.tower_pumps.count, 4); // CTWP1-4
        assert_eq!(s.ehx.count, 5); // EHX1-5
        assert_eq!(s.towers.cells, 20); // 5 towers × 4 cells
        assert_eq!(s.towers.fan_outputs, 16); // paper: 16 CT fan channels
        // 5000-6000 gpm per HTWP, 9000-10000 gpm per CTWP.
        let gpm = |q: f64| q * 60.0 / 3.785_411_784e-3;
        let per_htwp = gpm(s.primary_pumps.total_design_flow_m3s) / 4.0;
        let per_ctwp = gpm(s.tower_pumps.total_design_flow_m3s) / 4.0;
        assert!((5_000.0..6_000.0).contains(&per_htwp), "{per_htwp}");
        assert!((9_000.0..10_000.0).contains(&per_ctwp), "{per_ctwp}");
        s.validate().unwrap();
    }

    #[test]
    fn json_round_trip() {
        let s = PlantSpec::frontier();
        let back = PlantSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn alternative_specs_validate() {
        PlantSpec::setonix_like().validate().unwrap();
        PlantSpec::marconi100_like().validate().unwrap();
    }

    #[test]
    fn validation_catches_nonsense() {
        let mut s = PlantSpec::frontier();
        s.num_cdus = 0;
        assert!(s.validate().is_err());
        let mut s = PlantSpec::frontier();
        s.towers.fan_outputs = 99;
        assert!(s.validate().is_err());
        let mut s = PlantSpec::frontier();
        s.ehx.effectiveness = 1.5;
        assert!(s.validate().is_err());
    }

    #[test]
    fn heat_per_cdu() {
        let s = PlantSpec::frontier();
        assert!((s.heat_per_cdu_w() - 1.08e6).abs() < 1e4);
    }
}
