//! Regenerates **Table IV** of the paper: "Daily statistics of DT from
//! telemetry replay of 183 days" — min / avg / max / std of the daily
//! aggregates over a 183-day synthetic workload, replayed through the
//! coupled twin. Days run as one scenario batch on the thread-pool
//! executor, exactly like the paper runs "the different days in parallel
//! on a single Frontier node"; set `EXADIGIT_THREADS` to control the
//! pool width.
//!
//! The cooling side is fidelity-selectable (`--backend none|plant|
//! surrogate`, see docs/FIDELITY.md): `plant` is the paper's L4
//! configuration, `surrogate` trains one L3 model up front and shares
//! the fitted polynomial across every day of the replay — the
//! fast-model/slow-model split that makes large sweeps tractable.
//!
//! ```sh
//! cargo run --release -p exadigit-bench --bin table4_daily_stats -- --days 183 --backend surrogate
//! ```

use exadigit_bench::{arg_str, arg_u64, section};
use exadigit_core::{CoolingBackend, DigitalTwin, SurrogateSource, TwinConfig};
use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};
use exadigit_sim::clock::SECONDS_PER_DAY;
use exadigit_sim::{EnsembleRunner, Summary, Welford};
use exadigit_telemetry::SyntheticTwin;

#[derive(Debug, Clone, Copy)]
struct DayStats {
    tavg_s: f64,
    nodes_per_job: f64,
    runtime_min: f64,
    jobs_completed: f64,
    throughput: f64,
    avg_power_mw: f64,
    loss_mw: f64,
    loss_pct: f64,
    energy_mwh: f64,
    co2_tons: f64,
    pue: f64,
}

fn run_day(day: u64, backend: &CoolingBackend) -> DayStats {
    let mut generator = WorkloadGenerator::new(WorkloadParams::default(), 0xEADD);
    let mut jobs = generator.generate_day(day);
    let day_start = day * SECONDS_PER_DAY;
    for j in &mut jobs {
        j.submit_time_s -= day_start;
    }
    let n_jobs = jobs.len().max(1) as f64;
    let tavg = SECONDS_PER_DAY as f64 / n_jobs;
    let nodes_avg = jobs.iter().map(|j| j.nodes as f64).sum::<f64>() / n_jobs;
    let runtime_avg = jobs.iter().map(|j| j.wall_time_s as f64).sum::<f64>() / n_jobs / 60.0;

    let mut cfg = TwinConfig::frontier().with_backend(backend.clone());
    cfg.record_every_s = 300;
    let mut twin = DigitalTwin::new(cfg).expect("frontier config with backend");
    if !matches!(backend, CoolingBackend::None) {
        twin.set_wet_bulb(SyntheticTwin::frontier().wet_bulb_day(day));
    }
    twin.submit(jobs);
    twin.run(SECONDS_PER_DAY).expect("day replay");
    let r = twin.report();
    DayStats {
        tavg_s: tavg,
        nodes_per_job: nodes_avg,
        runtime_min: runtime_avg,
        jobs_completed: r.jobs_completed as f64,
        throughput: r.throughput_jobs_per_hour,
        avg_power_mw: r.avg_power_mw,
        loss_mw: r.avg_loss_mw,
        loss_pct: r.loss_percent,
        energy_mwh: r.total_energy_mwh,
        co2_tons: r.co2_tons,
        pue: r.avg_pue.unwrap_or(f64::NAN),
    }
}

/// Resolve `--backend` into a `CoolingBackend`, training the shared L3
/// surrogate up front when asked for.
fn select_backend(name: &str) -> CoolingBackend {
    match name {
        "none" => CoolingBackend::None,
        "plant" => CoolingBackend::Plant,
        "surrogate" => {
            println!("  training the L3 surrogate once (shared across all days)...");
            let t0 = std::time::Instant::now();
            let sur = exadigit_core::surrogate::train_default(&TwinConfig::frontier().plant)
                .expect("frontier surrogate trains");
            println!("  trained in {:.1} s\n", t0.elapsed().as_secs_f64());
            CoolingBackend::Surrogate(SurrogateSource::Fitted(sur))
        }
        other => {
            eprintln!("unknown --backend {other} (expected none|plant|surrogate)");
            std::process::exit(2);
        }
    }
}

fn main() {
    // The pre-backend `--cooling 0|1` flag is retired; unknown flags are
    // otherwise ignored silently, so reject it loudly rather than run
    // the wrong fidelity.
    if std::env::args().any(|a| a == "--cooling") {
        eprintln!("--cooling is retired: use --backend none|plant|surrogate");
        std::process::exit(2);
    }
    let days = arg_u64("--days", 183);
    let backend_name = arg_str("--backend", "plant");
    section(&format!(
        "Table IV — Daily statistics from telemetry replay of {days} days (backend: {backend_name})"
    ));
    let backend = select_backend(&backend_name);
    let t0 = std::time::Instant::now();
    let stats: Vec<DayStats> =
        EnsembleRunner::new(0).map((0..days).collect(), |_ctx, d| run_day(d, &backend));
    let elapsed = t0.elapsed();

    let summarise = |f: fn(&DayStats) -> f64| -> Summary {
        let mut w = Welford::new();
        for s in &stats {
            w.push(f(s));
        }
        w.summary()
    };

    // (label, extractor, paper (min, avg, max, std))
    type Row = (&'static str, fn(&DayStats) -> f64, (f64, f64, f64, f64));
    let rows: Vec<Row> = vec![
        ("Avg Arrival Rate, tavg (s)", |s| s.tavg_s, (17.0, 138.0, 2988.0, 331.0)),
        ("Avg Nodes per Job", |s| s.nodes_per_job, (39.0, 268.0, 5441.0, 626.0)),
        ("Avg Runtime (m)", |s| s.runtime_min, (17.0, 39.0, 101.0, 14.0)),
        ("Jobs Completed", |s| s.jobs_completed, (32.0, 1575.0, 5157.0, 1171.0)),
        ("Throughput (jobs/hr)", |s| s.throughput, (1.3, 66.0, 215.0, 49.0)),
        ("Avg Power (MW)", |s| s.avg_power_mw, (10.2, 16.9, 23.0, 2.4)),
        ("Loss (MW)", |s| s.loss_mw, (0.52, 1.14, 1.84, 0.15)),
        ("Loss (%)", |s| s.loss_pct, (6.26, 6.74, 8.36, 0.11)),
        ("Total Energy (MW-hr)", |s| s.energy_mwh, (129.0, 405.0, 553.0, 64.0)),
        ("Carbon Emissions (t CO2)", |s| s.co2_tons, (53.0, 168.0, 229.0, 26.0)),
    ];

    println!(
        "  {:<28} {:>8} {:>8} {:>8} {:>8}   paper(min/avg/max/std)",
        "Parameter", "Min", "Avg", "Max", "Std"
    );
    for (label, f, (p_min, p_avg, p_max, p_std)) in rows {
        let s = summarise(f);
        println!(
            "  {label:<28} {:>8.1} {:>8.1} {:>8.1} {:>8.1}   {p_min}/{p_avg}/{p_max}/{p_std}",
            s.min, s.mean, s.max, s.std
        );
    }
    if !matches!(backend, CoolingBackend::None) {
        let pue = summarise(|s| s.pue);
        println!(
            "  {:<28} {:>8.3} {:>8.3} {:>8.3} {:>8.3}   (backend: {backend_name})",
            "Avg PUE", pue.min, pue.mean, pue.max, pue.std
        );
    }

    // Finding 9 headline: average and maximum conversion loss + cost.
    let loss = summarise(|s| s.loss_mw);
    let yearly_loss_cost = loss.mean * 8_766.0 * 90.0;
    println!("\n  Finding 9: avg conversion loss {:.2} MW (paper 1.14), max {:.2} MW (paper 1.84)", loss.mean, loss.max);
    println!("  yearly loss cost at 90 $/MWh: ${yearly_loss_cost:.0} (paper ≈ $900k)");
    println!(
        "\n  replayed {days} days in {:.1} s wall ({:.2} s/day; paper: ~9 min/day with cooling on one Frontier node)",
        elapsed.as_secs_f64(),
        elapsed.as_secs_f64() / days as f64
    );
}
