//! General-purpose ODE integrators.
//!
//! Modelica hides the solver behind its acausal front end; here the solver
//! is explicit. The cooling model mostly uses exact exponential updates for
//! its linear thermal states (see `exadigit-thermo::pipe::ThermalVolume`),
//! but nonlinear states (tower basin coupling, controller filters under
//! saturation) and the AutoCSM-generated plants integrate with these
//! fixed-step or adaptive schemes.

/// Right-hand side of `dy/dt = f(t, y)`, writing the derivative into `dydt`.
pub trait OdeSystem {
    /// Evaluate the derivative at time `t` for state `y`.
    fn derivative(&self, t: f64, y: &[f64], dydt: &mut [f64]);
}

impl<F> OdeSystem for F
where
    F: Fn(f64, &[f64], &mut [f64]),
{
    fn derivative(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        self(t, y, dydt)
    }
}

/// One explicit Euler step (first order).
pub fn euler_step(sys: &impl OdeSystem, t: f64, y: &mut [f64], dt: f64, scratch: &mut [f64]) {
    sys.derivative(t, y, scratch);
    for (yi, di) in y.iter_mut().zip(scratch.iter()) {
        *yi += di * dt;
    }
}

/// One classical Runge–Kutta 4 step (fourth order).
pub fn rk4_step(sys: &impl OdeSystem, t: f64, y: &mut [f64], dt: f64) {
    let n = y.len();
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut tmp = vec![0.0; n];

    sys.derivative(t, y, &mut k1);
    for i in 0..n {
        tmp[i] = y[i] + 0.5 * dt * k1[i];
    }
    sys.derivative(t + 0.5 * dt, &tmp, &mut k2);
    for i in 0..n {
        tmp[i] = y[i] + 0.5 * dt * k2[i];
    }
    sys.derivative(t + 0.5 * dt, &tmp, &mut k3);
    for i in 0..n {
        tmp[i] = y[i] + dt * k3[i];
    }
    sys.derivative(t + dt, &tmp, &mut k4);
    for i in 0..n {
        y[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

/// Integrate from `t0` to `t1` with RK4 using at most `max_dt` sub-steps.
pub fn rk4_integrate(sys: &impl OdeSystem, t0: f64, t1: f64, y: &mut [f64], max_dt: f64) {
    assert!(t1 >= t0 && max_dt > 0.0);
    let span = t1 - t0;
    if span == 0.0 {
        return;
    }
    let steps = (span / max_dt).ceil() as usize;
    let dt = span / steps as f64;
    let mut t = t0;
    for _ in 0..steps {
        rk4_step(sys, t, y, dt);
        t += dt;
    }
}

/// Adaptive Runge–Kutta–Fehlberg 4(5): integrates from `t0` to `t1`
/// keeping the per-step error estimate below `tol` (mixed abs/rel).
/// Returns the number of accepted steps.
pub fn rkf45_integrate(
    sys: &impl OdeSystem,
    t0: f64,
    t1: f64,
    y: &mut [f64],
    tol: f64,
) -> usize {
    assert!(t1 >= t0 && tol > 0.0);
    let n = y.len();
    let mut t = t0;
    let mut dt = (t1 - t0) / 16.0;
    let min_dt = (t1 - t0) * 1e-10;
    let mut accepted = 0usize;

    let mut k = vec![vec![0.0; n]; 6];
    let mut tmp = vec![0.0; n];

    // Fehlberg coefficients.
    const A: [f64; 6] = [0.0, 0.25, 3.0 / 8.0, 12.0 / 13.0, 1.0, 0.5];
    const B: [[f64; 5]; 6] = [
        [0.0, 0.0, 0.0, 0.0, 0.0],
        [0.25, 0.0, 0.0, 0.0, 0.0],
        [3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0],
        [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0, 0.0, 0.0],
        [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0, 0.0],
        [-8.0 / 27.0, 2.0, -3544.0 / 2565.0, 1859.0 / 4104.0, -11.0 / 40.0],
    ];
    const C4: [f64; 6] = [25.0 / 216.0, 0.0, 1408.0 / 2565.0, 2197.0 / 4104.0, -0.2, 0.0];
    const C5: [f64; 6] =
        [16.0 / 135.0, 0.0, 6656.0 / 12825.0, 28561.0 / 56430.0, -9.0 / 50.0, 2.0 / 55.0];

    while t < t1 {
        if t + dt > t1 {
            dt = t1 - t;
        }
        // Evaluate the six stages.
        for s in 0..6 {
            for i in 0..n {
                let mut acc = y[i];
                for (j, kj) in k.iter().enumerate().take(s) {
                    acc += dt * B[s][j] * kj[i];
                }
                tmp[i] = acc;
            }
            let (head, tail) = k.split_at_mut(s);
            let _ = head;
            sys.derivative(t + A[s] * dt, &tmp, &mut tail[0]);
        }
        // 4th/5th order solutions and error estimate.
        let mut err: f64 = 0.0;
        for i in 0..n {
            let mut y4 = y[i];
            let mut y5 = y[i];
            for s in 0..6 {
                y4 += dt * C4[s] * k[s][i];
                y5 += dt * C5[s] * k[s][i];
            }
            let scale = tol * (1.0 + y[i].abs());
            err = err.max((y5 - y4).abs() / scale);
            tmp[i] = y5;
        }
        if err <= 1.0 || dt <= min_dt {
            y.copy_from_slice(&tmp);
            t += dt;
            accepted += 1;
        }
        // Standard step-size controller with safety factor.
        let factor = if err > 0.0 { 0.9 * err.powf(-0.2) } else { 2.0 };
        dt *= factor.clamp(0.2, 4.0);
        if dt < min_dt {
            dt = min_dt;
        }
    }
    accepted
}

/// One backward-Euler step for stiff systems: solves the implicit relation
/// `g(y1) = y1 − y0 − dt·f(t+dt, y1) = 0` by Newton iteration with a
/// finite-difference Jacobian and dense LU solve. Returns `false` when the
/// Newton loop does not meet `tol` within `max_iters`.
pub fn backward_euler_step(
    sys: &impl OdeSystem,
    t: f64,
    y: &mut [f64],
    dt: f64,
    max_iters: usize,
    tol: f64,
) -> bool {
    use crate::linalg::Matrix;
    let n = y.len();
    let y0 = y.to_vec();
    let mut f = vec![0.0; n];
    let mut f_pert = vec![0.0; n];

    for _ in 0..max_iters {
        sys.derivative(t + dt, y, &mut f);
        // Residual g(y) = y - y0 - dt f(y).
        let g: Vec<f64> = (0..n).map(|i| y[i] - y0[i] - dt * f[i]).collect();
        let norm = g.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if norm < tol {
            return true;
        }
        // Finite-difference Jacobian of g: I - dt * df/dy.
        let mut jac = Matrix::zeros(n, n);
        for j in 0..n {
            let h = 1e-7 * (1.0 + y[j].abs());
            let saved = y[j];
            y[j] = saved + h;
            sys.derivative(t + dt, y, &mut f_pert);
            y[j] = saved;
            for i in 0..n {
                let dfij = (f_pert[i] - f[i]) / h;
                jac[(i, j)] = if i == j { 1.0 } else { 0.0 } - dt * dfij;
            }
        }
        let neg_g: Vec<f64> = g.iter().map(|v| -v).collect();
        let Some(delta) = jac.solve(&neg_g) else { return false };
        for i in 0..n {
            y[i] += delta[i];
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// dy/dt = -y, y(0)=1 -> y(t) = e^-t.
    fn decay(_t: f64, y: &[f64], dydt: &mut [f64]) {
        dydt[0] = -y[0];
    }

    /// Harmonic oscillator: y'' = -y as a 2-state system.
    fn oscillator(_t: f64, y: &[f64], dydt: &mut [f64]) {
        dydt[0] = y[1];
        dydt[1] = -y[0];
    }

    #[test]
    fn euler_first_order_accuracy() {
        let mut y = [1.0];
        let mut scratch = [0.0];
        let dt = 1e-4;
        for i in 0..10_000 {
            euler_step(&decay, i as f64 * dt, &mut y, dt, &mut scratch);
        }
        assert!((y[0] - (-1.0f64).exp()).abs() < 1e-4);
    }

    #[test]
    fn rk4_fourth_order_accuracy() {
        let mut y = [1.0];
        rk4_integrate(&decay, 0.0, 1.0, &mut y, 0.1);
        assert!((y[0] - (-1.0f64).exp()).abs() < 1e-6);
    }

    #[test]
    fn rk4_oscillator_conserves_energy_approximately() {
        let mut y = [1.0, 0.0];
        rk4_integrate(&oscillator, 0.0, 2.0 * std::f64::consts::PI, &mut y, 0.01);
        // One full period: back to the start.
        assert!((y[0] - 1.0).abs() < 1e-8, "y0={}", y[0]);
        assert!(y[1].abs() < 1e-8, "y1={}", y[1]);
    }

    #[test]
    fn rkf45_meets_tolerance() {
        let mut y = [1.0];
        let steps = rkf45_integrate(&decay, 0.0, 5.0, &mut y, 1e-8);
        assert!((y[0] - (-5.0f64).exp()).abs() < 1e-6);
        assert!(steps > 0);
    }

    #[test]
    fn rkf45_adapts_step_count_to_tolerance() {
        let mut y1 = [1.0, 0.0];
        let loose = rkf45_integrate(&oscillator, 0.0, 10.0, &mut y1, 1e-3);
        let mut y2 = [1.0, 0.0];
        let tight = rkf45_integrate(&oscillator, 0.0, 10.0, &mut y2, 1e-10);
        assert!(tight > loose, "tight={tight} loose={loose}");
    }

    #[test]
    fn backward_euler_stable_on_stiff_decay() {
        // dt = 10 with lambda = -1: explicit Euler would explode
        // (|1 - 10| = 9 > 1); backward Euler must stay bounded.
        let mut y = [1.0];
        for i in 0..10 {
            let ok = backward_euler_step(&decay, i as f64 * 10.0, &mut y, 10.0, 200, 1e-12);
            assert!(ok);
        }
        assert!(y[0].abs() < 1.0);
        assert!(y[0] >= 0.0);
    }

    #[test]
    fn closure_implements_system_trait() {
        let sys = |_t: f64, y: &[f64], d: &mut [f64]| {
            d[0] = 2.0 * y[0];
        };
        let mut y = [1.0];
        rk4_integrate(&sys, 0.0, 0.5, &mut y, 0.01);
        assert!((y[0] - 1.0f64.exp()).abs() < 1e-6);
    }
}
