//! The synthetic physical twin.
//!
//! Substitutes for the proprietary Frontier telemetry (see DESIGN.md): the
//! "physical machine" is the same pair of models (RAPS power + cooling
//! plant) run with *perturbed parameters* — the real machine never matches
//! the digital twin's datasheet values — plus AR(1) multiplicative sensor
//! noise on every recorded channel. Replaying the recorded workload
//! through the **unperturbed** models then yields exactly the
//! model-vs-telemetry discrepancies the paper's V&V studies quantify
//! (Table III % errors, Fig. 7 RMSE/MAE, Fig. 9 overlay).
//!
//! The default perturbation is signed the way Frontier's Table III reads:
//! measured idle power sits *above* the model (telemetry 7.4 vs RAPS
//! 7.24 MW) while measured HPL/peak power sits *below* it (21.3 vs 22.3,
//! 27.4 vs 28.2) — i.e. the physical machine idles hotter and peaks lower
//! than the datasheet.

use crate::schema::{CoolingChannels, JobRecord};
use exadigit_cooling::{CoolingModel, PlantSpec};
use exadigit_raps::config::SystemConfig;
use exadigit_raps::job::Job;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::simulation::{CoolingCoupling, RapsSimulation};
use exadigit_raps::stats::RunReport;
use exadigit_sim::clock::SECONDS_PER_DAY;
use exadigit_sim::{Rng, TimeSeries};
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic physical twin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwinParams {
    /// RNG seed for all twin-side randomness.
    pub seed: u64,
    /// Relative skew of idle component powers (physical machine idles
    /// hotter: positive).
    pub idle_power_skew: f64,
    /// Relative skew of max component powers (physical machine peaks
    /// lower: negative).
    pub peak_power_skew: f64,
    /// Relative random perturbation of cooling-plant parameters.
    pub plant_skew: f64,
    /// Multiplicative sensor-noise σ.
    pub sensor_noise: f64,
    /// AR(1) correlation of the sensor noise.
    pub ar1_rho: f64,
    /// Mean wet-bulb temperature, °C.
    pub wet_bulb_mean_c: f64,
    /// Diurnal wet-bulb amplitude, °C.
    pub wet_bulb_amplitude_c: f64,
}

impl Default for TwinParams {
    fn default() -> Self {
        TwinParams {
            seed: 0xF0E1_D2C3,
            idle_power_skew: 0.022,
            peak_power_skew: -0.030,
            plant_skew: 0.03,
            sensor_noise: 0.006,
            ar1_rho: 0.95,
            wet_bulb_mean_c: 15.0,
            wet_bulb_amplitude_c: 4.5,
        }
    }
}

/// One recorded day of synthetic telemetry.
#[derive(Debug, Clone)]
pub struct TelemetryDay {
    /// Job records with power traces (Table II RAPS inputs).
    pub jobs: Vec<JobRecord>,
    /// Measured total system power, W, 1 s resolution.
    pub measured_power_w: TimeSeries,
    /// Wet-bulb temperature, °C, 60 s resolution.
    pub wet_bulb: TimeSeries,
    /// Measured cooling channels at Table II cadences.
    pub cooling: CoolingChannels,
    /// Ground-truth run report of the physical twin.
    pub truth: RunReport,
}

/// AR(1) multiplicative noise channel.
#[derive(Debug, Clone)]
struct Ar1 {
    state: f64,
    rho: f64,
    sigma: f64,
}

impl Ar1 {
    fn new(rho: f64, sigma: f64) -> Self {
        Ar1 { state: 0.0, rho, sigma }
    }
    fn next(&mut self, rng: &mut Rng) -> f64 {
        let innov = (1.0 - self.rho * self.rho).sqrt() * self.sigma;
        self.state = self.rho * self.state + rng.normal(0.0, innov);
        self.state
    }
    fn apply(&mut self, rng: &mut Rng, x: f64) -> f64 {
        x * (1.0 + self.next(rng))
    }
}

/// The synthetic physical twin: perturbed configurations + recording.
pub struct SyntheticTwin {
    /// Nominal (digital-twin side) system configuration.
    pub nominal_system: SystemConfig,
    /// Nominal plant specification.
    pub nominal_plant: PlantSpec,
    /// Twin parameters.
    pub params: TwinParams,
}

impl SyntheticTwin {
    /// Twin for the given nominal models.
    pub fn new(system: SystemConfig, plant: PlantSpec, params: TwinParams) -> Self {
        SyntheticTwin { nominal_system: system, nominal_plant: plant, params }
    }

    /// Frontier twin with default parameters.
    pub fn frontier() -> Self {
        SyntheticTwin::new(SystemConfig::frontier(), PlantSpec::frontier(), TwinParams::default())
    }

    /// The physical machine's "true" system configuration: datasheet
    /// values skewed as a real machine would be.
    pub fn perturbed_system(&self) -> SystemConfig {
        let mut cfg = self.nominal_system.clone();
        let mut rng = Rng::new(self.params.seed ^ 0x5157_EA17);
        let idle = 1.0 + self.params.idle_power_skew;
        let peak = 1.0 + self.params.peak_power_skew;
        let np = &mut cfg.node_power;
        np.cpu_idle_w *= idle;
        np.gpu_idle_w *= idle;
        np.cpu_max_w *= peak;
        np.gpu_max_w *= peak;
        np.ram_w *= 1.0 + rng.normal(0.0, 0.01);
        // The real conversion chain is slightly less efficient than spec.
        cfg.conversion.rectifier_peak_efficiency -= 0.0015;
        cfg.conversion.sivoc_full_load_efficiency -= 0.001;
        cfg
    }

    /// The physical plant's "true" specification.
    pub fn perturbed_plant(&self) -> PlantSpec {
        let mut spec = self.nominal_plant.clone();
        let mut rng = Rng::new(self.params.seed ^ 0x9AB3_11F7);
        let s = self.params.plant_skew;
        let mut rel = |v: &mut f64| *v *= 1.0 + rng.normal(0.0, s);
        rel(&mut spec.primary_pumps.total_design_flow_m3s);
        rel(&mut spec.tower_pumps.total_design_flow_m3s);
        rel(&mut spec.primary_pumps.design_head_m);
        rel(&mut spec.tower_pumps.design_head_m);
        rel(&mut spec.cdu.secondary_design_flow_m3s);
        rel(&mut spec.towers.fan_power_rated_w);
        spec.ehx.effectiveness = (spec.ehx.effectiveness * (1.0 + rng.normal(0.0, s))).clamp(0.5, 0.97);
        spec.cdu.hex_effectiveness =
            (spec.cdu.hex_effectiveness * (1.0 + rng.normal(0.0, s))).clamp(0.5, 0.97);
        spec.towers.basin_setpoint_c += rng.normal(0.0, 0.25);
        spec.cdu.supply_setpoint_c += rng.normal(0.0, 0.15);
        spec
    }

    /// Diurnal wet-bulb profile for `day_index`, 60 s cadence, with
    /// weather noise.
    pub fn wet_bulb_day(&self, day_index: u64) -> TimeSeries {
        let mut rng = Rng::new(self.params.seed ^ 0x77EA_7E12 ^ day_index.wrapping_mul(0x9E37));
        let mut series = TimeSeries::with_capacity(0.0, 60.0, 1441);
        let mut drift = Ar1::new(0.995, 0.6);
        let day_mean = self.params.wet_bulb_mean_c + rng.normal(0.0, 2.0);
        for i in 0..=1440 {
            let frac = (i % 1440) as f64 / 1440.0;
            let base = exadigit_thermo_diurnal(day_mean, self.params.wet_bulb_amplitude_c, frac);
            series.push(base + drift.next(&mut rng));
        }
        series
    }

    /// Record one day of telemetry: run the perturbed twin over `jobs`
    /// (with the cooling plant attached) and log every Table II channel
    /// with sensor noise.
    pub fn record_day(&self, jobs: Vec<Job>, day_index: u64) -> TelemetryDay {
        self.record_span(jobs, SECONDS_PER_DAY, day_index)
    }

    /// Record an arbitrary span (seconds) of telemetry — `record_day`
    /// without the fixed 24 h horizon, for tests and short validations.
    pub fn record_span(&self, jobs: Vec<Job>, span_s: u64, day_index: u64) -> TelemetryDay {
        let params = self.params;
        let mut rng = Rng::new(params.seed ^ (0xDA7A + day_index));
        let sys = self.perturbed_system();
        let plant = self.perturbed_plant();
        let num_cdus = sys.cooling.num_cdus;

        let mut sim =
            RapsSimulation::new(sys.clone(), PowerDelivery::StandardAC, Policy::FirstFit, 15);
        let cooling = CoolingModel::new(plant).expect("perturbed plant must be valid");
        let coupling = CoolingCoupling::attach(Box::new(cooling), num_cdus)
            .expect("cooling variable names are the contract");
        sim.attach_cooling(coupling);
        let wet_bulb = self.wet_bulb_day(day_index);
        sim.set_wet_bulb(wet_bulb.clone());
        sim.submit_jobs(jobs.clone());

        // Noise channels.
        let mut n_power = Ar1::new(params.ar1_rho, params.sensor_noise);
        let mut n_flow = Ar1::new(params.ar1_rho, params.sensor_noise);
        let mut n_temp = Ar1::new(params.ar1_rho, params.sensor_noise * 0.4);
        let mut n_press = Ar1::new(params.ar1_rho, params.sensor_noise * 1.5);
        let mut n_pue = Ar1::new(params.ar1_rho, params.sensor_noise * 0.5);

        let mut measured_power = TimeSeries::with_capacity(0.0, 1.0, span_s as usize);
        let mut channels = CoolingChannels::new(num_cdus, 0.0);

        // Resolve the output names once.
        let model = sim.cooling_model().expect("attached");
        let mut flow_vrs = Vec::with_capacity(num_cdus);
        let mut temp_vrs = Vec::with_capacity(num_cdus);
        let mut speed_vrs = Vec::with_capacity(num_cdus);
        let mut pump_vrs = Vec::with_capacity(num_cdus);
        for i in 1..=num_cdus {
            flow_vrs.push(model.var_by_name(&format!("cdu[{i}].primary_flow")).unwrap().vr);
            temp_vrs.push(model.var_by_name(&format!("cdu[{i}].primary_return_temp")).unwrap().vr);
            pump_vrs.push(model.var_by_name(&format!("cdu[{i}].pump_power")).unwrap().vr);
        }
        // The registry exposes pump *power* (the paper's "work done by the
        // CDU pump"); Table II's pump-speed channel is reconstructed from
        // the cube law against the ~9.9 kW rated point.
        let pump_rated_w = 9_900.0;
        speed_vrs.clone_from(&pump_vrs);
        let vr_press = model.var_by_name("facility.htw_supply_pressure").unwrap().vr;
        let vr_tsup = model.var_by_name("facility.htw_supply_temp").unwrap().vr;
        let vr_tret = model.var_by_name("facility.htw_return_temp").unwrap().vr;
        let vr_flow = model.var_by_name("facility.htw_flow").unwrap().vr;
        let vr_pue = model.var_by_name("pue").unwrap().vr;

        // This loop deliberately uses the per-second reference path, not
        // the event kernel: the physical twin samples *noisy* 1 s power,
        // so every second genuinely is an event here.
        for sec in 0..span_s {
            sim.tick().expect("twin run cannot fail");
            // 1 s measured power with sensor noise.
            measured_power.push(n_power.apply(&mut rng, sim.snapshot().system_w));
            let t = sec + 1;
            let model = sim.cooling_model().expect("attached");
            if t % 15 == 0 {
                for i in 0..num_cdus {
                    let f = model.get_real(flow_vrs[i]).unwrap();
                    let tp = model.get_real(temp_vrs[i]).unwrap();
                    let pw = model.get_real(pump_vrs[i]).unwrap();
                    let speed = (pw.max(0.0) / pump_rated_w).cbrt().min(1.2);
                    channels.cdu_primary_flow[i].push(n_flow.apply(&mut rng, f));
                    channels.cdu_return_temp[i].push(tp + n_temp.next(&mut rng) * 30.0 * 0.02);
                    channels.cdu_pump_speed[i].push(speed);
                    channels.cdu_pump_power[i].push(pw);
                }
                channels.pue.push(n_pue.apply(&mut rng, model.get_real(vr_pue).unwrap()));
            }
            if t % 30 == 0 {
                channels
                    .htw_supply_pressure
                    .push(n_press.apply(&mut rng, model.get_real(vr_press).unwrap()));
            }
            if t % 60 == 0 {
                channels
                    .htw_supply_temp
                    .push(model.get_real(vr_tsup).unwrap() + n_temp.next(&mut rng) * 0.5);
                channels
                    .htw_return_temp
                    .push(model.get_real(vr_tret).unwrap() + n_temp.next(&mut rng) * 0.5);
            }
            if t % 120 == 0 {
                channels.htw_flow.push(n_flow.apply(&mut rng, model.get_real(vr_flow).unwrap()));
            }
        }

        // Job records as the twin observed them.
        let power_cfg = sys.node_power;
        let jobs_rec: Vec<JobRecord> =
            jobs.iter().map(|j| JobRecord::from_job(j, &power_cfg, 15)).collect();

        TelemetryDay {
            jobs: jobs_rec,
            measured_power_w: measured_power,
            wet_bulb,
            cooling: channels,
            truth: sim.report(),
        }
    }

    /// Measured steady-state power (W) at uniform utilization — the
    /// "Telemetry" column of Table III.
    pub fn measured_uniform_power(&self, cpu_util: f64, gpu_util: f64) -> f64 {
        let sys = self.perturbed_system();
        let model = exadigit_raps::power::PowerModel::new(sys, PowerDelivery::StandardAC);
        model.uniform_power(cpu_util, gpu_util).system_w
    }
}

/// Diurnal wet-bulb shape (re-exported from the thermo crate's
/// psychrometrics to avoid a circular dependency in doc examples).
fn exadigit_thermo_diurnal(mean: f64, amplitude: f64, day_fraction: f64) -> f64 {
    use std::f64::consts::PI;
    mean + amplitude * (2.0 * PI * (day_fraction - 0.375)).sin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perturbed_system_reproduces_table3_sign_pattern() {
        // Telemetry idle ABOVE model idle; telemetry HPL/peak BELOW model.
        let twin = SyntheticTwin::frontier();
        let nominal =
            exadigit_raps::power::PowerModel::new(twin.nominal_system.clone(), PowerDelivery::StandardAC);
        let idle_model = nominal.uniform_power(0.0, 0.0).system_w;
        let peak_model = nominal.uniform_power(1.0, 1.0).system_w;
        let hpl_model = nominal.uniform_power(0.33, 0.79).system_w;
        let idle_meas = twin.measured_uniform_power(0.0, 0.0);
        let peak_meas = twin.measured_uniform_power(1.0, 1.0);
        let hpl_meas = twin.measured_uniform_power(0.33, 0.79);
        assert!(idle_meas > idle_model, "idle: {idle_meas} vs {idle_model}");
        assert!(peak_meas < peak_model, "peak: {peak_meas} vs {peak_model}");
        assert!(hpl_meas < hpl_model, "hpl: {hpl_meas} vs {hpl_model}");
        // Percent errors in the Table III ballpark (2-5 %).
        let pe = |m: f64, t: f64| (100.0 * (m - t) / t).abs();
        assert!(pe(idle_model, idle_meas) < 6.0);
        assert!(pe(peak_model, peak_meas) < 6.0);
        assert!(pe(hpl_model, hpl_meas) < 7.0);
    }

    #[test]
    fn wet_bulb_day_is_diurnal_and_deterministic() {
        let twin = SyntheticTwin::frontier();
        let a = twin.wet_bulb_day(3);
        let b = twin.wet_bulb_day(3);
        assert_eq!(a, b);
        assert_eq!(a.dt, 60.0);
        // Afternoon warmer than pre-dawn on average.
        let afternoon = a.sample_at(15.0 * 3600.0);
        let predawn = a.sample_at(4.0 * 3600.0);
        assert!(afternoon > predawn, "afternoon {afternoon} predawn {predawn}");
    }

    #[test]
    fn perturbed_plant_differs_but_validates() {
        let twin = SyntheticTwin::frontier();
        let p = twin.perturbed_plant();
        assert_ne!(p, twin.nominal_plant);
        p.validate().unwrap();
    }

    #[test]
    fn ar1_noise_is_bounded_and_correlated() {
        let mut rng = Rng::new(5);
        let mut ch = Ar1::new(0.95, 0.01);
        let samples: Vec<f64> = (0..5000).map(|_| ch.next(&mut rng)).collect();
        let std = exadigit_sim::stats::Summary::of(&samples).std;
        assert!((std - 0.01).abs() < 0.004, "std={std}");
        // Lag-1 autocorrelation near rho.
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum();
        let cov: f64 = samples.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
        let rho = cov / var;
        assert!(rho > 0.85, "rho={rho}");
    }
}
