//! The work-distributing executor behind the `par_iter` façade.
//!
//! A process-global pool of persistent worker threads executes indexed
//! parallel loops. Work distribution is *self-scheduling*: every worker
//! (plus the calling thread, which always participates) claims the next
//! unprocessed index from a shared atomic counter, so load balancing is
//! dynamic at item granularity — the degenerate, contention-friendly form
//! of work stealing for indexed loops, where the "deque" is the single
//! shared pile of remaining indices.
//!
//! ## Determinism
//!
//! The executor only ever decides *which thread* computes item `i`; the
//! result of item `i` lands in slot `i` regardless. All reductions
//! downstream (`sum`, `collect`, first-`Err` selection) run sequentially
//! in index order on the calling thread, so output is bit-identical to a
//! single-threaded run — see `docs/ENSEMBLES.md` for the full contract.
//!
//! ## Blocking and nesting
//!
//! The caller participates in its own loop and never parks while work it
//! could do remains, so a task always makes progress even when every
//! worker is busy elsewhere. Parallel calls *from inside a worker* run
//! inline (sequentially) instead of re-entering the pool; this trades
//! nested parallelism for a structural no-deadlock guarantee.
//!
//! ## Sizing
//!
//! The default width is `EXADIGIT_THREADS`, else `RAYON_NUM_THREADS`,
//! else [`std::thread::available_parallelism`]. [`with_threads`] overrides
//! it for the duration of a closure (growing the pool on demand), which is
//! what `EnsembleRunner::threads` and the thread-scaling benches use.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

thread_local! {
    /// Set for the lifetime of a pool worker thread: parallel calls made
    /// while it is set run inline instead of re-entering the pool.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Per-thread width override installed by [`with_threads`].
    static THREAD_CAP: Cell<Option<usize>> = const { Cell::new(None) };
}

/// One queued parallel loop. `func` borrows the caller's stack frame; the
/// caller must not return before every handle is retired (see the safety
/// argument on [`run`]).
struct Task {
    /// Type- and lifetime-erased `&(dyn Fn(usize) + Sync)` running one item.
    func: *const (dyn Fn(usize) + Sync),
    /// Total number of items.
    n: usize,
    /// Next unclaimed index; `>= n` means exhausted (or cancelled).
    next: AtomicUsize,
    /// Worker handles not yet retired (popped-and-finished or reclaimed).
    pending: AtomicUsize,
    /// First panic observed in any item, to be re-thrown on the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Signalled when `pending` reaches zero.
    done: Condvar,
}

// SAFETY: `func` is a raw pointer only because the borrow it erases cannot
// be named with a 'static task type. It is dereferenced exclusively between
// queue pop and handle retirement, and `run` does not return (or unwind)
// until `pending == 0`, so the pointee outlives every dereference. All other
// fields are Sync by construction.
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    /// Claim-and-run loop shared by workers and the calling thread. Panics
    /// in an item are captured (first wins) and cancel the remaining items.
    fn run_items(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                break;
            }
            // SAFETY: see `unsafe impl Send for Task`.
            let func = unsafe { &*self.func };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| func(i))) {
                self.next.store(self.n, Ordering::Relaxed);
                let mut slot = self.panic.lock().expect("panic slot poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
    }

    /// Retire `k` handles; on the last one, wake the waiting caller.
    fn retire(&self, k: usize) {
        if k > 0 && self.pending.fetch_sub(k, Ordering::AcqRel) == k {
            // Lock/unlock pairs with the caller's wait loop so the notify
            // cannot slip between its condition check and its park.
            drop(self.panic.lock().expect("panic slot poisoned"));
            self.done.notify_all();
        }
    }
}

/// State shared between the workers and submitting threads.
struct Shared {
    queue: Mutex<VecDeque<Arc<Task>>>,
    available: Condvar,
}

/// The global pool: shared queue plus a grow-only worker census.
struct Registry {
    shared: Arc<Shared>,
    /// Number of worker threads spawned so far (they never exit).
    spawned: Mutex<usize>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        shared: Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }),
        spawned: Mutex::new(0),
    })
}

impl Registry {
    /// Grow the pool so at least `target` workers exist.
    fn ensure_workers(&self, target: usize) {
        let mut spawned = self.spawned.lock().expect("spawn census poisoned");
        while *spawned < target {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("exadigit-par-{spawned}"))
                .spawn(move || worker_loop(shared))
                .expect("spawning a pool worker failed");
            *spawned += 1;
        }
    }

    fn workers(&self) -> usize {
        *self.spawned.lock().expect("spawn census poisoned")
    }
}

/// Body of every pool worker: pop a task handle, drain indices, retire.
fn worker_loop(shared: Arc<Shared>) {
    IN_POOL_WORKER.with(|f| f.set(true));
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("task queue poisoned");
            loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                queue = shared.available.wait(queue).expect("task queue poisoned");
            }
        };
        task.run_items();
        task.retire(1);
    }
}

/// Parse the first well-formed positive integer among the supported
/// thread-count environment variables.
fn env_threads() -> Option<usize> {
    ["EXADIGIT_THREADS", "RAYON_NUM_THREADS"].iter().find_map(|var| {
        std::env::var(var).ok().and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n > 0)
    })
}

/// The pool width used when [`with_threads`] is not in effect:
/// `EXADIGIT_THREADS`, else `RAYON_NUM_THREADS`, else the machine's
/// available parallelism.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        env_threads()
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// The width the *next* parallel call on this thread will use: the
/// [`with_threads`] override if one is installed, else [`default_threads`].
/// (Mirrors `rayon::current_num_threads`.)
pub fn current_num_threads() -> usize {
    THREAD_CAP.with(|c| c.get()).unwrap_or_else(default_threads)
}

/// True when a parallel call made right now would actually fan out rather
/// than run inline on this thread.
pub fn would_parallelize(n: usize) -> bool {
    n > 1 && current_num_threads() > 1 && !IN_POOL_WORKER.with(|f| f.get())
}

/// Run `f` with every parallel call on this thread using a pool of exactly
/// `threads` threads (the caller plus `threads - 1` workers), growing the
/// global pool if needed. `threads == 1` forces sequential execution —
/// the reference path for determinism tests. Restored on unwind.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_CAP.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_CAP.with(|c| c.replace(Some(threads.max(1)))));
    f()
}

/// Execute `f(0..n)` across the pool, blocking until every item completed.
/// Items run exactly once each, on an arbitrary thread; panics propagate to
/// the caller after all in-flight items finish (remaining items are
/// cancelled). Runs inline when `n <= 1`, when the effective width is 1, or
/// when called from a pool worker.
pub fn run<F: Fn(usize) + Sync>(n: usize, f: F) {
    if !would_parallelize(n) {
        for i in 0..n {
            f(i);
        }
        return;
    }

    let registry = registry();
    registry.ensure_workers(current_num_threads() - 1);
    let helpers = (current_num_threads() - 1).min(n - 1).min(registry.workers());

    let func: &(dyn Fn(usize) + Sync) = &f;
    let task = Arc::new(Task {
        // SAFETY: erased borrow of this frame; `run` waits for pending == 0
        // (even on the panic path) before returning, so no worker can hold
        // a dangling pointer.
        func: unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(func)
        },
        n,
        next: AtomicUsize::new(0),
        pending: AtomicUsize::new(helpers),
        panic: Mutex::new(None),
        done: Condvar::new(),
    });

    {
        let mut queue = registry.shared.queue.lock().expect("task queue poisoned");
        for _ in 0..helpers {
            queue.push_back(Arc::clone(&task));
        }
    }
    registry.shared.available.notify_all();

    // The caller works too — guaranteed progress even with a busy pool.
    task.run_items();

    // Reclaim handles no worker picked up (the loop is already exhausted,
    // so they would only burn a pop); then wait out the in-flight workers.
    {
        let mut queue = registry.shared.queue.lock().expect("task queue poisoned");
        let before = queue.len();
        queue.retain(|t| !Arc::ptr_eq(t, &task));
        let reclaimed = before - queue.len();
        drop(queue);
        task.retire(reclaimed);
    }
    let mut panic_slot = task.panic.lock().expect("panic slot poisoned");
    while task.pending.load(Ordering::Acquire) > 0 {
        panic_slot = task.done.wait(panic_slot).expect("panic slot poisoned");
    }
    if let Some(payload) = panic_slot.take() {
        drop(panic_slot);
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_index_exactly_once() {
        let hits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        with_threads(4, || {
            run(hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sequential_when_width_is_one() {
        with_threads(1, || {
            assert!(!would_parallelize(64));
            let order = Mutex::new(Vec::new());
            run(8, |i| order.lock().unwrap().push(i));
            assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
        });
    }

    #[test]
    fn with_threads_restores_on_exit_and_unwind() {
        let outer = current_num_threads();
        with_threads(3, || assert_eq!(current_num_threads(), 3));
        assert_eq!(current_num_threads(), outer);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            with_threads(5, || panic!("boom"));
        }));
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_threads(4, || {
                run(64, |i| {
                    if i == 17 {
                        panic!("item 17 exploded");
                    }
                });
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "item 17 exploded");
    }

    #[test]
    fn nested_calls_run_inline() {
        with_threads(4, || {
            run(4, |_| {
                // From a pool worker (or the caller mid-loop is fine too):
                // a nested call must complete without re-entering the pool.
                run(8, |_| {});
            });
        });
    }

    #[test]
    fn pool_survives_many_rounds() {
        with_threads(4, || {
            for round in 0..100usize {
                let total = AtomicUsize::new(0);
                run(round % 7 + 1, |i| {
                    total.fetch_add(i + 1, Ordering::Relaxed);
                });
                let n = round % 7 + 1;
                assert_eq!(total.load(Ordering::Relaxed), n * (n + 1) / 2);
            }
        });
    }
}
