//! AutoCSM (§V of the paper): generate a cooling-system model from a JSON
//! specification and exercise it. Demonstrates the generalisation path
//! the paper describes for Setonix and Marconi100.
//!
//! ```sh
//! cargo run --release --example autocsm_generate
//! ```

use exadigit_cooling::{CoolingModel, PlantSpec};
use exadigit_sim::fmi::{CoSimModel, VarRef};

fn exercise(spec_json: &str) {
    // The AutoCSM pipeline: JSON spec → validated spec → runnable model.
    let spec = PlantSpec::from_json(spec_json).expect("valid JSON spec");
    spec.validate().expect("spec validates");
    let mut model = CoolingModel::new(spec.clone()).expect("model generates");
    println!(
        "── {}: {} CDUs, {} tower cells, {} EHX, {} outputs",
        spec.name,
        spec.num_cdus,
        spec.towers.cells,
        spec.ehx.count,
        model.output_count(),
    );

    // Drive it at 75 % design load for two simulated hours.
    model.setup(0.0);
    let heat = spec.heat_per_cdu_w() * 0.75;
    for i in 0..spec.num_cdus {
        model.set_real(VarRef(i as u32), heat).unwrap();
    }
    let wb = model.var_by_name("wet_bulb").unwrap().vr;
    model.set_real(wb, 17.0).unwrap();
    for k in 0..480 {
        model.do_step(k as f64 * 15.0, 15.0).expect("step");
    }

    for name in [
        "facility.htw_supply_temp",
        "facility.htw_return_temp",
        "cdu[1].secondary_supply_temp",
        "ct.num_cells_staged",
        "pue",
    ] {
        println!("   {name:<32} {:9.3}", model.output_by_name(name).unwrap());
    }
    println!(
        "   heat balance: injected {:.2} MW, rejected {:.2} MW\n",
        heat * spec.num_cdus as f64 / 1e6,
        model.plant().state.heat_rejected_w / 1e6
    );
}

fn main() {
    println!("ExaDigiT-rs AutoCSM — cooling models generated from JSON specs\n");

    // The three built-in architectures, passed through their JSON form to
    // prove the exchange format carries everything.
    for spec in [PlantSpec::frontier(), PlantSpec::setonix_like(), PlantSpec::marconi100_like()] {
        exercise(&spec.to_json());
    }

    // A custom plant written as literal JSON — the §V user path.
    let custom = PlantSpec {
        name: "my-future-system".to_string(),
        num_cdus: 12,
        design_heat_w: 9.0e6,
        ..PlantSpec::setonix_like()
    };
    let mut custom = custom;
    custom.cdu.primary_design_flow_m3s = custom.primary_pumps.total_design_flow_m3s / 12.0;
    exercise(&custom.to_json());

    println!("(see crates/cooling/src/spec.rs for the full JSON schema)");
}
