//! End-to-end integration: the fully coupled twin (RAPS + cooling plant
//! across the FMI boundary) running a realistic workload fragment.

use exadigit_core::{DigitalTwin, TwinConfig};
use exadigit_raps::job::Job;
use exadigit_raps::workload::{hpl_job, WorkloadGenerator, WorkloadParams};
use exadigit_sim::TimeSeries;

#[test]
fn coupled_twin_runs_mixed_workload() {
    let mut twin = DigitalTwin::new(TwinConfig::frontier()).unwrap();
    let mut generator = WorkloadGenerator::new(WorkloadParams::default(), 2024);
    let mut jobs = generator.generate_day(0);
    jobs.retain(|j| j.submit_time_s < 3600);
    twin.submit(jobs);
    twin.run(3600).unwrap();

    let report = twin.report();
    // Power between idle (7.24 MW) and peak (28.2 MW).
    assert!(report.avg_power_mw > 7.0, "avg={}", report.avg_power_mw);
    assert!(report.max_power_mw < 28.5);
    // Losses in the Finding 9 band.
    assert!(report.loss_percent > 3.0 && report.loss_percent < 9.0);
    // PUE present and physical.
    let pue = report.avg_pue.expect("cooling attached");
    assert!((1.0..1.3).contains(&pue), "pue={pue}");
    // Energy consistency: avg power × time ≈ energy.
    let expect_mwh = report.avg_power_mw * report.sim_seconds as f64 / 3600.0;
    assert!((report.total_energy_mwh - expect_mwh).abs() / expect_mwh < 0.02);
}

#[test]
fn hpl_block_heats_the_plant() {
    // Fig. 8 behaviour: an HPL launch raises system power and, with a
    // delay, the primary return temperature.
    let mut twin = DigitalTwin::new(TwinConfig::frontier()).unwrap();
    twin.set_wet_bulb(TimeSeries::from_values(0.0, 3600.0, vec![16.0, 16.0, 16.0]));
    twin.run(900).unwrap(); // settle at idle
    let t_ret_idle = twin.cooling_output("facility.htw_return_temp").unwrap();
    let p_idle = twin.snapshot().system_w;

    twin.submit(vec![hpl_job(1, 901)]);
    twin.run(2700).unwrap(); // into the core phase
    let t_ret_loaded = twin.cooling_output("facility.htw_return_temp").unwrap();
    let p_loaded = twin.snapshot().system_w;

    assert!(p_loaded > 2.5 * p_idle, "power must surge under HPL");
    assert!(
        t_ret_loaded > t_ret_idle + 1.0,
        "return temp must rise: idle {t_ret_idle} loaded {t_ret_loaded}"
    );
}

#[test]
fn utilization_and_queue_dynamics() {
    let mut twin = DigitalTwin::new(TwinConfig::frontier_power_only()).unwrap();
    // Saturate the machine, then watch the queue drain.
    let jobs: Vec<Job> = (0..12)
        .map(|i| Job::new(i, format!("slab{i}"), 2048, 600, 1, 0.7, 0.9))
        .collect();
    twin.submit(jobs);
    twin.run(60).unwrap();
    // 4 slabs fit (8192 of 9472); the rest wait.
    let (running, pending) = twin.queue_state();
    assert_eq!(running, 4);
    assert_eq!(pending, 8);
    assert!((twin.utilization() - 8192.0 / 9472.0).abs() < 0.01);
    // After three generations the queue must be empty.
    twin.run(2000).unwrap();
    let (_, pending) = twin.queue_state();
    assert_eq!(pending, 0);
    assert_eq!(twin.report().jobs_completed, 12);
}

#[test]
fn cooling_outputs_exposed_through_twin() {
    let mut twin = DigitalTwin::new(TwinConfig::frontier()).unwrap();
    twin.submit(vec![Job::new(1, "load", 6000, 1200, 1, 0.8, 0.8)]);
    twin.run(1200).unwrap();
    // All 317 outputs readable; a few spot checks.
    for name in [
        "cdu[1].primary_flow",
        "cdu[25].secondary_supply_temp",
        "primary.num_pumps_staged",
        "ct.num_cells_staged",
        "facility.htw_supply_pressure",
        "pue",
    ] {
        let v = twin.cooling_output(name).unwrap_or_else(|| panic!("missing {name}"));
        assert!(v.is_finite(), "{name} not finite");
    }
    let staged = twin.cooling_output("primary.num_pumps_staged").unwrap();
    assert!((1.0..=4.0).contains(&staged));
}
