//! What-if studies at Frontier scale — the §IV-3 experiments.

use exadigit_core::whatif::{
    blockage_experiment, CoolingExtensionStudy, PowerDeliveryStudy,
};
use exadigit_cooling::PlantSpec;
use exadigit_raps::config::SystemConfig;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};

#[test]
fn dc380_study_reproduces_paper_shape() {
    // Paper: 380 V DC raises system efficiency from 93.3 % to 97.3 %,
    // saves ≈$542k/yr and cuts carbon by 8.2 %.
    let cfg = SystemConfig::frontier();
    let mut generator = WorkloadGenerator::new(WorkloadParams::default(), 11);
    let jobs: Vec<_> =
        generator.generate_day(0).into_iter().filter(|j| j.submit_time_s < 7_200).collect();
    let study = PowerDeliveryStudy::run(&cfg, &jobs, 7_200, Policy::FirstFit);

    let eff_base = study.baseline().report.efficiency;
    let eff_dc = study.outcome(PowerDelivery::Direct380Vdc).report.efficiency;
    assert!((0.925..0.95).contains(&eff_base), "baseline eff {eff_base}");
    assert!((eff_dc - 0.973).abs() < 0.005, "dc eff {eff_dc}");

    // Yearly savings of the right order (paper: $542k at full utilization
    // profile; any mid-load day must land in the hundreds of k$).
    let savings = study.yearly_savings_usd(PowerDelivery::Direct380Vdc, &cfg);
    assert!(
        (150_000.0..1_200_000.0).contains(&savings),
        "dc yearly savings {savings}"
    );

    // Carbon reduction of several percent (paper: −8.2 %).
    let carbon = study.carbon_delta_percent(PowerDelivery::Direct380Vdc);
    assert!((-12.0..-4.0).contains(&carbon), "carbon delta {carbon} %");
}

#[test]
fn smart_rectifiers_modest_but_positive() {
    // Paper: "this modification yielded only a modest efficiency gain of
    // 0.1 %, it translates into ... approximately $120k" per year.
    let cfg = SystemConfig::frontier();
    let mut generator = WorkloadGenerator::new(WorkloadParams::default(), 13);
    let jobs: Vec<_> =
        generator.generate_day(0).into_iter().filter(|j| j.submit_time_s < 7_200).collect();
    let study = PowerDeliveryStudy::run(&cfg, &jobs, 7_200, Policy::FirstFit);

    let gain = study.efficiency_gain_points(PowerDelivery::SmartRectifiers);
    assert!(gain > 0.0, "smart rectifiers must help: {gain}");
    assert!(gain < 1.5, "gain should be modest: {gain} points");

    let savings = study.yearly_savings_usd(PowerDelivery::SmartRectifiers, &cfg);
    assert!((20_000.0..400_000.0).contains(&savings), "smart savings {savings}");

    // Ordering: DC beats smart rectifiers.
    assert!(
        study.yearly_savings_usd(PowerDelivery::Direct380Vdc, &cfg) > savings,
        "DC must dominate"
    );
}

#[test]
fn cooling_extension_prototyping() {
    // §III-A use case: virtually extend the plant with a future secondary
    // system and evaluate the impact on the current one.
    let study = CoolingExtensionStudy::run(&PlantSpec::frontier(), 0.6, 6.0, 18.0).unwrap();
    // More load: more cooling effort and (weakly) warmer supply.
    assert!(
        study.extended.cooling_power_w > study.baseline.cooling_power_w,
        "aux power must rise: {} -> {}",
        study.baseline.cooling_power_w,
        study.extended.cooling_power_w
    );
    assert!(study.extended.cells_staged >= study.baseline.cells_staged);
    assert!(study.extended.htws_temp_c > study.baseline.htws_temp_c - 0.5);
    // The plant still copes: PUE stays physical.
    assert!((1.0..1.3).contains(&study.extended.pue), "pue {}", study.extended.pue);
}

#[test]
fn blockage_injection_detected() {
    // §III-A water-quality use case: inject blockages into CDUs 5 and 17
    // and require the detector to flag exactly them.
    let report =
        blockage_experiment(&PlantSpec::frontier(), &[4, 16], 5.0, 0.6).unwrap();
    assert_eq!(report.flagged, vec![4, 16], "flows: {:?}", report.flows_m3s);
}

#[test]
fn clean_plant_yields_no_blockage_flags() {
    let report = blockage_experiment(&PlantSpec::frontier(), &[], 2.0, 0.6).unwrap();
    assert!(report.flagged.is_empty(), "false positives: {:?}", report.flagged);
}
