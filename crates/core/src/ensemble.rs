//! The twin's scenario-batch API: heterogeneous ensembles over one pool.
//!
//! [`EnsembleRunner`] (re-exported from [`exadigit_sim::ensemble`], where
//! the generic engine lives below the domain crates) batches N independent
//! scenarios across the thread-pool executor with per-scenario RNG streams
//! and order-deterministic gathering. This module layers the twin-level
//! vocabulary on top: [`TwinScenario`] names every scenario family the
//! paper exercises — Monte-Carlo UQ draws (§IV), power-delivery what-ifs
//! (§IV-3), and plant-spec sweep points (§III-A) — and [`run_batch`]
//! executes an arbitrary mix of them in a single pool pass. Grid-point
//! scenarios carry their own [`whatif::Fidelity`], so one batch can mix
//! L3-surrogate and L4-plant evaluations (see `docs/FIDELITY.md`).
//!
//! To add a new scenario type, add a [`TwinScenario`] variant plus a
//! matching [`ScenarioOutcome`] arm, and dispatch to a *single-scenario*
//! function (the pattern set by [`whatif::run_delivery_variant`] and
//! [`uq::run_member`]); the executor, RNG streaming, and determinism
//! guarantees come for free. See `docs/ENSEMBLES.md` for the full guide.
//!
//! ```no_run
//! use exadigit_core::ensemble::{run_batch, EnsembleRunner, TwinScenario};
//! use exadigit_raps::config::SystemConfig;
//! use exadigit_raps::job::Job;
//! use exadigit_raps::uq::UqPerturbations;
//!
//! let system = SystemConfig::frontier();
//! let jobs = vec![Job::new(1, "load", 128, 1800, 1, 0.8, 0.8)];
//! let scenarios: Vec<TwinScenario> = (0..64)
//!     .map(|_| TwinScenario::UqDraw {
//!         system: system.clone(),
//!         jobs: jobs.clone(),
//!         horizon_s: 1800,
//!         perturbations: UqPerturbations::default(),
//!     })
//!     .collect();
//! let outcomes = run_batch(&EnsembleRunner::new(42).threads(4), &scenarios);
//! assert_eq!(outcomes.len(), 64);
//! ```

pub use exadigit_sim::ensemble::{EnsembleRunner, Scenario, ScenarioCtx};

use crate::whatif::{
    self, evaluate_grid_point, run_delivery_variant, settle_setpoint, settle_weather_point,
    DeliveryOutcome, Fidelity, GridOutcome, SetpointCandidate, WeatherPoint,
};
use exadigit_cooling::PlantSpec;
use exadigit_raps::config::SystemConfig;
use exadigit_raps::job::Job;
use exadigit_raps::power::PowerDelivery;
use exadigit_raps::scheduler::Policy;
use exadigit_raps::uq::{self, EnsembleMember, UqPerturbations};

/// One self-contained twin scenario, ready to be batched by [`run_batch`].
///
/// Every variant owns its full input state, so a batch can mix scenario
/// families and system configurations freely — e.g. 64 UQ draws, three
/// delivery variants, and a 10-point setpoint sweep in a single pool pass.
#[derive(Debug, Clone, PartialEq)]
pub enum TwinScenario {
    /// One Monte-Carlo UQ draw (§IV): perturb the power-model parameters
    /// with the scenario's private RNG stream and replay the workload.
    UqDraw {
        /// System description to perturb.
        system: SystemConfig,
        /// Workload to replay.
        jobs: Vec<Job>,
        /// Replay horizon, seconds.
        horizon_s: u64,
        /// 1-σ perturbation magnitudes.
        perturbations: UqPerturbations,
    },
    /// One power-delivery what-if variant (§IV-3): replay the workload
    /// under the given conversion chain.
    DeliveryVariant {
        /// System description (unperturbed).
        system: SystemConfig,
        /// Workload to replay.
        jobs: Vec<Job>,
        /// Replay horizon, seconds.
        horizon_s: u64,
        /// Scheduling policy.
        policy: Policy,
        /// Conversion-chain variant to evaluate.
        delivery: PowerDelivery,
    },
    /// One basin-setpoint candidate of the L5-precursor grid search:
    /// settle the plant and read off the PUE objective.
    PlantSetpoint {
        /// Cooling-plant specification.
        spec: PlantSpec,
        /// Tower basin setpoint to try, °C.
        setpoint_c: f64,
        /// Heat load as a fraction of plant design heat.
        load_fraction: f64,
        /// Ambient wet-bulb temperature, °C.
        wet_bulb_c: f64,
    },
    /// One wet-bulb point of the weather-correlation sweep (§III-A).
    WeatherPoint {
        /// Cooling-plant specification.
        spec: PlantSpec,
        /// Ambient wet-bulb temperature, °C.
        wet_bulb_c: f64,
        /// Heat load as a fraction of plant design heat.
        load_fraction: f64,
    },
    /// One point of a fidelity-selectable what-if grid. Because every
    /// scenario owns its [`Fidelity`], one batch can mix L3 and L4
    /// evaluations of the same operating points in a single pool pass —
    /// e.g. a cheap surrogate sweep with plant-fidelity spot checks.
    GridPoint {
        /// Cooling-plant specification.
        spec: PlantSpec,
        /// Model fidelity answering this point.
        fidelity: Fidelity,
        /// Heat load as a fraction of plant design heat.
        load_fraction: f64,
        /// Ambient wet-bulb temperature, °C.
        wet_bulb_c: f64,
    },
}

/// What one [`TwinScenario`] produced, mirroring its variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioOutcome {
    /// Headline outputs of a UQ draw.
    Uq(EnsembleMember),
    /// Run report of a delivery variant.
    Delivery(DeliveryOutcome),
    /// Settled plant condition of a setpoint candidate.
    Setpoint(SetpointCandidate),
    /// Settled plant condition of a weather point.
    Weather(WeatherPoint),
    /// Evaluated what-if grid point (either fidelity).
    Grid(GridOutcome),
}

impl Scenario for TwinScenario {
    type Output = Result<ScenarioOutcome, String>;

    fn run(&self, ctx: &mut ScenarioCtx) -> Self::Output {
        match self {
            TwinScenario::UqDraw { system, jobs, horizon_s, perturbations } => Ok(
                ScenarioOutcome::Uq(uq::run_member(system, jobs, *horizon_s, perturbations, ctx)),
            ),
            TwinScenario::DeliveryVariant { system, jobs, horizon_s, policy, delivery } => {
                Ok(ScenarioOutcome::Delivery(run_delivery_variant(
                    system, jobs, *horizon_s, *policy, *delivery,
                )))
            }
            TwinScenario::PlantSetpoint { spec, setpoint_c, load_fraction, wet_bulb_c } => {
                settle_setpoint(spec, *setpoint_c, *load_fraction, *wet_bulb_c)
                    .map(ScenarioOutcome::Setpoint)
            }
            TwinScenario::WeatherPoint { spec, wet_bulb_c, load_fraction } => {
                settle_weather_point(spec, *wet_bulb_c, *load_fraction)
                    .map(ScenarioOutcome::Weather)
            }
            TwinScenario::GridPoint { spec, fidelity, load_fraction, wet_bulb_c } => {
                evaluate_grid_point(spec, fidelity, *load_fraction, *wet_bulb_c)
                    .map(ScenarioOutcome::Grid)
            }
        }
    }
}

/// Execute a batch of twin scenarios across the runner's pool, outcomes in
/// scenario order. Bit-identical for every pool width: scenario `i` draws
/// from RNG stream `i` and lands in slot `i` regardless of which thread
/// ran it. A failing scenario yields its own `Err` without disturbing the
/// others.
pub fn run_batch(
    runner: &EnsembleRunner,
    scenarios: &[TwinScenario],
) -> Vec<Result<ScenarioOutcome, String>> {
    runner.run_scenarios(scenarios)
}

/// Convenience for sweep-style batches: build one scenario per sweep point
/// with `make`, run the batch, and unwrap outcomes with the lowest-index
/// error (matching sequential short-circuit semantics).
pub fn run_sweep<T: Clone>(
    runner: &EnsembleRunner,
    points: &[T],
    make: impl Fn(T) -> TwinScenario,
) -> Result<Vec<ScenarioOutcome>, String> {
    let scenarios: Vec<TwinScenario> = points.iter().cloned().map(make).collect();
    run_batch(runner, &scenarios).into_iter().collect()
}

/// Re-exported what-if study types most batches want in scope.
pub use whatif::PowerDeliveryStudy;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_system() -> SystemConfig {
        let mut cfg = SystemConfig::frontier();
        cfg.partitions[0].nodes = 128;
        cfg.cooling.num_cdus = 1;
        cfg.cooling.racks_per_cdu = 1;
        cfg
    }

    #[test]
    fn mixed_batch_runs_every_family() {
        let system = tiny_system();
        let jobs = vec![Job::new(1, "load", 64, 600, 1, 0.6, 0.6)];
        let spec = exadigit_cooling::PlantSpec::marconi100_like();
        let scenarios = vec![
            TwinScenario::UqDraw {
                system: system.clone(),
                jobs: jobs.clone(),
                horizon_s: 600,
                perturbations: UqPerturbations::default(),
            },
            TwinScenario::DeliveryVariant {
                system: system.clone(),
                jobs: jobs.clone(),
                horizon_s: 600,
                policy: Policy::FirstFit,
                delivery: PowerDelivery::Direct380Vdc,
            },
            TwinScenario::PlantSetpoint {
                spec: spec.clone(),
                setpoint_c: 24.0,
                load_fraction: 0.5,
                wet_bulb_c: 16.0,
            },
            TwinScenario::WeatherPoint { spec, wet_bulb_c: 12.0, load_fraction: 0.5 },
        ];
        let outcomes = run_batch(&EnsembleRunner::new(11).threads(2), &scenarios);
        assert_eq!(outcomes.len(), 4);
        assert!(matches!(outcomes[0], Ok(ScenarioOutcome::Uq(_))));
        assert!(matches!(outcomes[1], Ok(ScenarioOutcome::Delivery(_))));
        assert!(matches!(outcomes[2], Ok(ScenarioOutcome::Setpoint(_))));
        assert!(matches!(outcomes[3], Ok(ScenarioOutcome::Weather(_))));
    }

    #[test]
    fn mixed_fidelity_grid_batch_in_one_pool_pass() {
        // The same operating point at L3 and L4 in a single batch — the
        // heterogeneous-fidelity ensemble the backend layer exists for.
        let spec = exadigit_cooling::PlantSpec::marconi100_like();
        let samples = crate::surrogate::generate_training_data(
            &spec,
            &[0.3, 0.6, 0.9],
            &[10.0, 14.0, 18.0],
            400, // match the grid's L4 settle protocol
        )
        .unwrap();
        let sur = crate::surrogate::Surrogate::fit(&samples).unwrap();
        let scenarios = vec![
            TwinScenario::GridPoint {
                spec: spec.clone(),
                fidelity: Fidelity::Surrogate(sur.clone()),
                load_fraction: 0.6,
                wet_bulb_c: 14.0,
            },
            TwinScenario::GridPoint {
                spec: spec.clone(),
                fidelity: Fidelity::Plant,
                load_fraction: 0.6,
                wet_bulb_c: 14.0,
            },
            TwinScenario::GridPoint {
                spec,
                fidelity: Fidelity::Surrogate(sur),
                load_fraction: 1.5, // outside the envelope
                wet_bulb_c: 18.0,
            },
        ];
        let outcomes = run_batch(&EnsembleRunner::new(3).threads(2), &scenarios);
        let grid = |o: &Result<ScenarioOutcome, String>| match o {
            Ok(ScenarioOutcome::Grid(g)) => *g,
            other => panic!("unexpected outcome {other:?}"),
        };
        let (l3, l4, extrap) = (grid(&outcomes[0]), grid(&outcomes[1]), grid(&outcomes[2]));
        assert!(!l3.extrapolated);
        assert!(!l4.extrapolated);
        assert!((l3.pue - l4.pue).abs() < 0.05, "L3 {} vs L4 {}", l3.pue, l4.pue);
        assert!(extrap.extrapolated, "out-of-envelope point must be flagged");
    }

    #[test]
    fn batch_outcomes_are_width_invariant() {
        let system = tiny_system();
        let jobs = vec![Job::new(1, "load", 32, 300, 1, 0.5, 0.5)];
        let scenarios: Vec<TwinScenario> = (0..6)
            .map(|_| TwinScenario::UqDraw {
                system: system.clone(),
                jobs: jobs.clone(),
                horizon_s: 300,
                perturbations: UqPerturbations::default(),
            })
            .collect();
        let seq = run_batch(&EnsembleRunner::new(5).threads(1), &scenarios);
        let par = run_batch(&EnsembleRunner::new(5).threads(4), &scenarios);
        assert_eq!(seq, par);
    }

    #[test]
    fn run_sweep_gathers_setpoints_in_order() {
        let spec = exadigit_cooling::PlantSpec::marconi100_like();
        let outcomes = run_sweep(
            &EnsembleRunner::new(0).threads(2),
            &[20.0, 24.0],
            |sp| TwinScenario::PlantSetpoint {
                spec: spec.clone(),
                setpoint_c: sp,
                load_fraction: 0.5,
                wet_bulb_c: 16.0,
            },
        )
        .expect("sweep runs");
        match (&outcomes[0], &outcomes[1]) {
            (ScenarioOutcome::Setpoint(a), ScenarioOutcome::Setpoint(b)) => {
                assert_eq!(a.basin_setpoint_c, 20.0);
                assert_eq!(b.basin_setpoint_c, 24.0);
            }
            other => panic!("unexpected outcomes: {other:?}"),
        }
    }
}
