//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! (a) load-dependent vs flat conversion-efficiency curves — the paper
//!     quotes flat 0.96/0.98 "within one percent", but Table III is only
//!     reproducible with the droop curve;
//! (b) thermal sub-step size in the plant model — Finding 6's
//!     fidelity-vs-cost trade;
//! (c) hydraulic warm-starting — the solver-cost lever that keeps the
//!     15 s cooling step cheap;
//! (d) L3 surrogate training envelope — how far the fitted polynomial
//!     can be trusted, and what happens at a tower-staging cliff and
//!     outside the envelope (docs/FIDELITY.md).

use exadigit_bench::{mw, section};
use exadigit_cooling::{CoolingModel, PlantSpec};
use exadigit_raps::config::SystemConfig;
use exadigit_raps::power::{PowerDelivery, PowerModel};
use exadigit_sim::fmi::{CoSimModel, VarRef};

fn main() {
    // ---------------- (a) conversion-efficiency curve ----------------
    section("Ablation (a) — flat vs load-dependent conversion efficiency");
    let curve = PowerModel::new(SystemConfig::frontier(), PowerDelivery::StandardAC);
    let mut flat_cfg = SystemConfig::frontier();
    // Flatten: constant η_R = 0.96, η_S = 0.98 (the paper's simplified
    // quotes).
    flat_cfg.conversion.rectifier_droop_low = 0.0;
    flat_cfg.conversion.rectifier_droop_high = 0.0;
    flat_cfg.conversion.rectifier_peak_efficiency = 0.96;
    flat_cfg.conversion.sivoc_idle_droop = 0.0;
    let flat = PowerModel::new(flat_cfg, PowerDelivery::StandardAC);

    println!("  {:<16} {:>10} {:>10} {:>10}", "test", "paper MW", "curve MW", "flat MW");
    let idle_paper = 7.24;
    let peak_paper = 28.2;
    let rows = [
        ("idle", idle_paper, curve.uniform_power(0.0, 0.0), flat.uniform_power(0.0, 0.0)),
        ("peak", peak_paper, curve.uniform_power(1.0, 1.0), flat.uniform_power(1.0, 1.0)),
    ];
    for (name, paper, with_curve, with_flat) in rows {
        println!(
            "  {name:<16} {paper:>10.2} {:>10.2} {:>10.2}",
            mw(with_curve.system_w),
            mw(with_flat.system_w)
        );
    }
    let idle_err_curve = (mw(curve.uniform_power(0.0, 0.0).system_w) - idle_paper).abs();
    let idle_err_flat = (mw(flat.uniform_power(0.0, 0.0).system_w) - idle_paper).abs();
    println!(
        "\n  idle error: curve {idle_err_curve:.3} MW vs flat {idle_err_flat:.3} MW — the droop\n  near idle (\"efficiency drops 1-2%\") is required to reproduce Table III."
    );

    // ---------------- (b) thermal sub-step ----------------
    section("Ablation (b) — thermal sub-step of the plant model (Finding 6)");
    println!("  {:>10} {:>14} {:>14} {:>12}", "substep s", "T_htws degC", "pue", "wall ms/step");
    let mut reference_t: Option<f64> = None;
    for substep in [2.5f64, 5.0, 15.0] {
        let mut spec = PlantSpec::frontier();
        spec.thermal_substep_s = substep;
        let mut model = CoolingModel::new(spec.clone()).unwrap();
        model.setup(0.0);
        let heat = spec.heat_per_cdu_w() * 0.8;
        for i in 0..25 {
            model.set_real(VarRef(i), heat).unwrap();
        }
        let t0 = std::time::Instant::now();
        let steps = 400;
        for k in 0..steps {
            model.do_step(k as f64 * 15.0, 15.0).unwrap();
        }
        let per_step_ms = t0.elapsed().as_secs_f64() * 1e3 / steps as f64;
        let t_htws = model.output_by_name("facility.htw_supply_temp").unwrap();
        let pue = model.output_by_name("pue").unwrap();
        println!("  {substep:>10.1} {t_htws:>14.3} {pue:>14.4} {per_step_ms:>12.3}");
        if let Some(reference) = reference_t {
            let drift = (t_htws - reference).abs();
            assert!(drift < 0.5, "substep {substep}: {drift} K drift vs reference");
        } else {
            reference_t = Some(t_htws);
        }
    }
    println!("  → 5 s sub-steps match 2.5 s within noise; exact exponential volume\n    updates keep even 15 s stable (Finding 6's balance point).");

    // ---------------- (c) hydraulic warm start ----------------
    section("Ablation (c) — hydraulic Newton warm start");
    let mut spec = PlantSpec::frontier();
    spec.thermal_substep_s = 5.0;
    let mut model = CoolingModel::new(spec.clone()).unwrap();
    model.setup(0.0);
    let heat = spec.heat_per_cdu_w() * 0.7;
    for i in 0..25 {
        model.set_real(VarRef(i), heat).unwrap();
    }
    // Cold: first step after setup; warm: steady cycling.
    let t0 = std::time::Instant::now();
    model.do_step(0.0, 15.0).unwrap();
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    for k in 1..50 {
        model.do_step(k as f64 * 15.0, 15.0).unwrap();
    }
    let t1 = std::time::Instant::now();
    for k in 50..250 {
        model.do_step(k as f64 * 15.0, 15.0).unwrap();
    }
    let warm_ms = t1.elapsed().as_secs_f64() * 1e3 / 200.0;
    println!("  first step (cold Jacobians): {cold_ms:>8.3} ms");
    println!("  steady step (warm started):  {warm_ms:>8.3} ms");
    println!(
        "  speedup ×{:.1} — warm starting keeps the 15 s plant step far below\n  real time (paper: 24 h replay ≈ 9 min with the Modelica FMU).",
        cold_ms / warm_ms.max(1e-9)
    );

    // ---------------- (d) surrogate training envelope ----------------
    section("Ablation (d) — L3 surrogate training envelope");
    use exadigit_core::surrogate::{generate_training_data, Surrogate};
    use exadigit_core::whatif::{evaluate_grid_point, Fidelity};
    let spec = PlantSpec::marconi100_like();
    let samples = generate_training_data(&spec, &[0.3, 0.6, 0.9], &[10.0, 14.0, 18.0], 400)
        .expect("training sweep");
    let sur = Surrogate::fit(&samples).expect("fit");
    let fidelity = Fidelity::Surrogate(sur.clone());
    println!(
        "  trained on load [0.3, 0.9] × wet-bulb [10, 18] degC (one staging regime); rmse {:.5}",
        sur.pue_train_rmse
    );
    println!("  {:>8} {:>8} {:>10} {:>10} {:>8} {:>8}", "load", "wb degC", "L3 pue", "L4 pue", "|err|", "extrap");
    for (load, wb, note) in [
        (0.45, 12.0, "interior"),
        (0.75, 16.0, "interior"),
        (0.6, 22.0, "staging cliff: extrapolation flagged"),
        (1.3, 14.0, "overload: extrapolation flagged"),
    ] {
        let l3 = evaluate_grid_point(&spec, &fidelity, load, wb).expect("L3 point");
        let l4 = evaluate_grid_point(&spec, &Fidelity::Plant, load, wb).expect("L4 point");
        println!(
            "  {load:>8.2} {wb:>8.1} {:>10.4} {:>10.4} {:>8.4} {:>8}   {note}",
            l3.pue,
            l4.pue,
            (l3.pue - l4.pue).abs(),
            l3.extrapolated,
        );
    }
    println!(
        "  → inside the envelope the quadratic tracks the plant to ~1e-2 PUE; at the\n    tower-staging cliff and beyond the envelope it is answered-but-flagged —\n    the paper's caveat that L3 models \"do not extrapolate well\", as a counter."
    );
}
