//! Hydraulic resistances, transport delay, and thermal volumes.
//!
//! These are the "volumes (reservoirs) for mass sources, resistances for
//! pressure drops ... and sensors" the paper assembles its sub-models from
//! (§III-C4, citing the templated layout of Greenwood et al.). The
//! hydraulic side is quadratic (`ΔP = k·Q·|Q|`, turbulent regime — plant
//! piping Reynolds numbers are ≫ 10⁴); the thermal side combines plug-flow
//! transport delay with well-mixed lumped capacitance.

use crate::fluid::Fluid;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A fixed quadratic hydraulic resistance: `ΔP = k · Q · |Q|`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HydraulicResistance {
    /// Resistance coefficient, Pa/(m³/s)².
    pub k: f64,
}

impl HydraulicResistance {
    /// Resistance from a design point (`dp_design` Pa at `q_design` m³/s).
    pub fn from_design(q_design: f64, dp_design: f64) -> Self {
        assert!(q_design > 0.0 && dp_design >= 0.0);
        HydraulicResistance { k: dp_design / (q_design * q_design) }
    }

    /// Pressure drop at flow `q` (signed).
    #[inline]
    pub fn pressure_drop(&self, q: f64) -> f64 {
        self.k * q * q.abs()
    }

    /// d(ΔP)/dQ — for the Newton hydraulic solver. Regularised near zero
    /// flow so the Jacobian never becomes singular.
    #[inline]
    pub fn dpressure_dflow(&self, q: f64) -> f64 {
        const Q_EPS: f64 = 1e-6;
        2.0 * self.k * q.abs().max(Q_EPS)
    }

    /// Flow through the resistance for a given pressure drop (inverse).
    pub fn flow_for_drop(&self, dp: f64) -> f64 {
        let mag = (dp.abs() / self.k).sqrt();
        if dp >= 0.0 {
            mag
        } else {
            -mag
        }
    }
}

/// Plug-flow transport delay: what goes in comes out `volume/flow` seconds
/// later. Models the long site piping between the CEP and the data hall —
/// the source of the staging lag the control model must handle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransportDelay {
    /// Pipe internal volume, m³.
    pub volume_m3: f64,
    /// Buffered (temperature, fluid-volume) slugs, oldest at the front.
    slugs: VecDeque<(f64, f64)>,
    /// Total fluid volume currently buffered.
    buffered_m3: f64,
    /// Outlet temperature when the buffer has never been filled.
    initial_temp: f64,
}

impl TransportDelay {
    /// New delay line initially filled with fluid at `initial_temp` °C.
    pub fn new(volume_m3: f64, initial_temp: f64) -> Self {
        assert!(volume_m3 > 0.0);
        let mut slugs = VecDeque::new();
        slugs.push_back((initial_temp, volume_m3));
        TransportDelay { volume_m3, slugs, buffered_m3: volume_m3, initial_temp }
    }

    /// Push fluid at `t_in` °C flowing at `q` m³/s for `dt` s; returns the
    /// flow-weighted outlet temperature over the interval.
    pub fn step(&mut self, t_in: f64, q: f64, dt: f64) -> f64 {
        let vol_in = (q * dt).max(0.0);
        if vol_in <= 0.0 {
            // No flow: outlet holds the oldest temperature.
            return self.slugs.front().map_or(self.initial_temp, |s| s.0);
        }
        self.slugs.push_back((t_in, vol_in));
        self.buffered_m3 += vol_in;
        // Drain the same volume from the oldest slugs.
        let mut to_drain = vol_in;
        let mut t_weighted = 0.0;
        while to_drain > 0.0 {
            let Some(front) = self.slugs.front_mut() else { break };
            if front.1 <= to_drain {
                t_weighted += front.0 * front.1;
                to_drain -= front.1;
                self.buffered_m3 -= front.1;
                self.slugs.pop_front();
            } else {
                t_weighted += front.0 * to_drain;
                front.1 -= to_drain;
                self.buffered_m3 -= to_drain;
                to_drain = 0.0;
            }
        }
        t_weighted / vol_in
    }

    /// Current mean temperature of the buffered fluid.
    pub fn mean_temperature(&self) -> f64 {
        if self.buffered_m3 <= 0.0 {
            return self.initial_temp;
        }
        self.slugs.iter().map(|(t, v)| t * v).sum::<f64>() / self.buffered_m3
    }
}

/// A well-mixed thermal volume (lumped capacitance):
/// `M·cp·dT/dt = ṁ·cp·(T_in − T) + Q_ext`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalVolume {
    /// Fluid mass in the volume, kg.
    pub mass_kg: f64,
    /// Fluid for property evaluation.
    pub fluid: Fluid,
    /// Current temperature, °C.
    pub temperature: f64,
}

impl ThermalVolume {
    /// New volume at `initial_temp` °C holding `mass_kg` of `fluid`.
    pub fn new(mass_kg: f64, fluid: Fluid, initial_temp: f64) -> Self {
        assert!(mass_kg > 0.0);
        ThermalVolume { mass_kg, fluid, temperature: initial_temp }
    }

    /// Advance by `dt` seconds with inlet `t_in` °C at `mdot` kg/s and
    /// external heat `q_ext_w` W (positive heats the volume). Uses the
    /// exact exponential update for the linear ODE so arbitrarily long
    /// steps remain stable (important: the cooling model steps at 15 s but
    /// CDU volumes have time constants of the same order).
    pub fn step(&mut self, t_in: f64, mdot: f64, q_ext_w: f64, dt: f64) {
        let cp = self.fluid.specific_heat(self.temperature);
        let c_thermal = self.mass_kg * cp;
        if mdot <= 1e-12 {
            // Pure integration of external heat.
            self.temperature += q_ext_w * dt / c_thermal;
            return;
        }
        // dT/dt = a(T_inf - T) with a = mdot/M, T_inf = t_in + q/(mdot cp)
        let a = mdot / self.mass_kg;
        let t_inf = t_in + q_ext_w / (mdot * cp);
        let decay = (-a * dt).exp();
        self.temperature = t_inf + (self.temperature - t_inf) * decay;
    }

    /// Outlet temperature (well-mixed: equals the volume temperature).
    pub fn outlet_temperature(&self) -> f64 {
        self.temperature
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistance_design_point() {
        let r = HydraulicResistance::from_design(0.3, 90_000.0);
        assert!((r.pressure_drop(0.3) - 90_000.0).abs() < 1e-9);
        assert!((r.flow_for_drop(90_000.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn resistance_sign_convention() {
        let r = HydraulicResistance::from_design(0.3, 90_000.0);
        assert!(r.pressure_drop(-0.3) < 0.0);
        assert!((r.flow_for_drop(-90_000.0) + 0.3).abs() < 1e-12);
    }

    #[test]
    fn jacobian_never_zero() {
        let r = HydraulicResistance::from_design(0.3, 90_000.0);
        assert!(r.dpressure_dflow(0.0) > 0.0);
    }

    #[test]
    fn transport_delay_delays() {
        // 1 m³ pipe at 20 °C, 0.1 m³/s -> 10 s residence time.
        let mut d = TransportDelay::new(1.0, 20.0);
        // For the first ~10 s the outlet must still show 20 °C fluid.
        let early = d.step(50.0, 0.1, 5.0);
        assert!((early - 20.0).abs() < 1e-9);
        // After a further 10 s the hot front has arrived.
        d.step(50.0, 0.1, 5.0);
        let late = d.step(50.0, 0.1, 5.0);
        assert!(late > 45.0, "late={late}");
    }

    #[test]
    fn transport_delay_conserves_volume() {
        let mut d = TransportDelay::new(2.0, 15.0);
        for i in 0..100 {
            d.step(15.0 + i as f64 * 0.1, 0.05, 3.0);
        }
        assert!((d.buffered_m3 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn no_flow_holds_outlet() {
        let mut d = TransportDelay::new(1.0, 22.0);
        assert_eq!(d.step(80.0, 0.0, 15.0), 22.0);
    }

    #[test]
    fn thermal_volume_approaches_inlet() {
        let mut v = ThermalVolume::new(500.0, Fluid::Water, 20.0);
        for _ in 0..1000 {
            v.step(35.0, 10.0, 0.0, 1.0);
        }
        assert!((v.temperature - 35.0).abs() < 0.01);
    }

    #[test]
    fn thermal_volume_heat_raises_steady_state() {
        // Steady state: T = T_in + Q/(mdot cp).
        let mut v = ThermalVolume::new(500.0, Fluid::Water, 20.0);
        let q = 100_000.0;
        let mdot = 5.0;
        for _ in 0..5000 {
            v.step(20.0, mdot, q, 1.0);
        }
        let cp = Fluid::Water.specific_heat(v.temperature);
        let expected = 20.0 + q / (mdot * cp);
        assert!((v.temperature - expected).abs() < 0.05, "T={}", v.temperature);
    }

    #[test]
    fn thermal_volume_stable_at_long_steps() {
        // Exponential update must not overshoot even when dt >> tau.
        let mut v = ThermalVolume::new(10.0, Fluid::Water, 20.0);
        v.step(40.0, 100.0, 0.0, 3600.0);
        assert!((v.temperature - 40.0).abs() < 1e-6);
        assert!(v.temperature <= 40.0 + 1e-9);
    }

    #[test]
    fn thermal_volume_no_flow_integrates_heat() {
        let mut v = ThermalVolume::new(100.0, Fluid::Water, 20.0);
        let cp = Fluid::Water.specific_heat(20.0);
        v.step(99.0, 0.0, 1000.0, 60.0);
        let expected = 20.0 + 1000.0 * 60.0 / (100.0 * cp);
        assert!((v.temperature - expected).abs() < 1e-6);
    }
}
