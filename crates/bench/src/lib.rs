//! Shared helpers for the table/figure regeneration binaries.
//!
//! One binary per paper artifact (see DESIGN.md §4 for the index):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1_components` | Table I + Fig. 3 topology |
//! | `table3_power_verification` | Table III |
//! | `table4_daily_stats` | Table IV (183-day replay) |
//! | `fig4_power_breakdown` | Fig. 4 |
//! | `fig7_cooling_validation` | Fig. 7 + Table II + Fig. 5 stations |
//! | `fig8_synthetic_benchmarks` | Fig. 8 |
//! | `fig9_telemetry_replay` | Fig. 9 |
//! | `whatif_studies` | §IV-3 what-if results |

#![warn(missing_docs)]

/// Print a boxed section title.
pub fn section(title: &str) {
    let width = title.chars().count() + 4;
    println!("┌{}┐", "─".repeat(width));
    println!("│  {title}  │");
    println!("└{}┘", "─".repeat(width));
}

/// One "paper vs measured" comparison row.
pub fn compare_row(label: &str, paper: f64, ours: f64, unit: &str) {
    let err = if paper.abs() > f64::EPSILON {
        format!("{:+6.1} %", 100.0 * (ours - paper) / paper)
    } else {
        "      —".to_string()
    };
    println!("  {label:<38} paper {paper:>10.2} {unit:<6} ours {ours:>10.2} {unit:<6} {err}");
}

/// Parse `--flag value` style integer arguments (tiny, no deps).
pub fn arg_u64(flag: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parse `--flag value` style string arguments (tiny, no deps).
pub fn arg_str(flag: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

/// Format watts as megawatts.
pub fn mw(w: f64) -> f64 {
    w / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parse_default() {
        assert_eq!(arg_u64("--not-present", 42), 42);
        assert_eq!(arg_str("--not-present", "plant"), "plant");
    }

    #[test]
    fn mw_scales() {
        assert_eq!(mw(28.2e6), 28.2);
    }
}
