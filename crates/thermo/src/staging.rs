//! Staging logic and signal conditioning.
//!
//! The plant control system stages equipment up and down: "The HTWPs are
//! staged up/down depending on the relative percent pump speeds of the
//! running pumps", "the CTs are staged up/down based on header pressure
//! and the gradient of the hot temperature water supply temperature", and
//! the loop-to-loop coupling is handled "via a delay transfer function"
//! (§III-C5). This module provides the three blocks those sentences
//! describe: a hysteresis stager with hold-off timers, a first-order lag,
//! and a rate-of-change estimator.

use serde::{Deserialize, Serialize};

/// Hysteresis staging state machine with minimum hold times.
///
/// Stage up when the signal stays above `up_threshold` for `up_delay_s`;
/// stage down when it stays below `down_threshold` for `down_delay_s`.
/// Count is clamped to `[min_count, max_count]`. Hold-off timers prevent
/// short-cycling the machinery — the real plant enforces the same.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HysteresisStager {
    /// Signal level that requests another unit.
    pub up_threshold: f64,
    /// Signal level that allows dropping a unit.
    pub down_threshold: f64,
    /// Seconds the up condition must persist.
    pub up_delay_s: f64,
    /// Seconds the down condition must persist.
    pub down_delay_s: f64,
    /// Minimum units online.
    pub min_count: u32,
    /// Maximum units available.
    pub max_count: u32,
    count: u32,
    up_timer: f64,
    down_timer: f64,
}

impl HysteresisStager {
    /// New stager starting with `initial` units online.
    pub fn new(
        up_threshold: f64,
        down_threshold: f64,
        up_delay_s: f64,
        down_delay_s: f64,
        min_count: u32,
        max_count: u32,
        initial: u32,
    ) -> Self {
        assert!(up_threshold > down_threshold, "thresholds must not overlap");
        assert!(min_count <= max_count);
        HysteresisStager {
            up_threshold,
            down_threshold,
            up_delay_s,
            down_delay_s,
            min_count,
            max_count,
            count: initial.clamp(min_count, max_count),
            up_timer: 0.0,
            down_timer: 0.0,
        }
    }

    /// Units currently online.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Advance by `dt` seconds with the current staging `signal`; returns
    /// the (possibly updated) unit count.
    pub fn update(&mut self, signal: f64, dt: f64) -> u32 {
        if signal > self.up_threshold {
            self.up_timer += dt;
            self.down_timer = 0.0;
            if self.up_timer >= self.up_delay_s && self.count < self.max_count {
                self.count += 1;
                self.up_timer = 0.0;
            }
        } else if signal < self.down_threshold {
            self.down_timer += dt;
            self.up_timer = 0.0;
            if self.down_timer >= self.down_delay_s && self.count > self.min_count {
                self.count -= 1;
                self.down_timer = 0.0;
            }
        } else {
            self.up_timer = 0.0;
            self.down_timer = 0.0;
        }
        self.count
    }

    /// Force a count (used when initialising from telemetry).
    pub fn set_count(&mut self, count: u32) {
        self.count = count.clamp(self.min_count, self.max_count);
        self.up_timer = 0.0;
        self.down_timer = 0.0;
    }
}

/// First-order lag (`tau · y' + y = u`) — the "delay transfer function"
/// coupling the primary pump loop to the cooling-tower loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FirstOrderLag {
    /// Time constant, s.
    pub tau_s: f64,
    state: f64,
}

impl FirstOrderLag {
    /// New lag with time constant `tau_s`, initial output `y0`.
    pub fn new(tau_s: f64, y0: f64) -> Self {
        assert!(tau_s > 0.0);
        FirstOrderLag { tau_s, state: y0 }
    }

    /// Advance by `dt` with input `u` (exact exponential update).
    pub fn update(&mut self, u: f64, dt: f64) -> f64 {
        let decay = (-dt / self.tau_s).exp();
        self.state = u + (self.state - u) * decay;
        self.state
    }

    /// Current output.
    pub fn output(&self) -> f64 {
        self.state
    }
}

/// Finite-difference rate-of-change estimator with a smoothing lag —
/// used for the HTWS temperature gradient in the CT staging criterion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateEstimator {
    lag: FirstOrderLag,
    prev: Option<f64>,
}

impl RateEstimator {
    /// New estimator smoothing over `tau_s` seconds.
    pub fn new(tau_s: f64) -> Self {
        RateEstimator { lag: FirstOrderLag::new(tau_s, 0.0), prev: None }
    }

    /// Advance with a new sample; returns the smoothed derivative (units/s).
    pub fn update(&mut self, sample: f64, dt: f64) -> f64 {
        let raw = match self.prev {
            Some(prev) => (sample - prev) / dt,
            None => 0.0,
        };
        self.prev = Some(sample);
        self.lag.update(raw, dt)
    }

    /// Current smoothed rate.
    pub fn rate(&self) -> f64 {
        self.lag.output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_up_after_delay() {
        let mut s = HysteresisStager::new(0.9, 0.4, 30.0, 60.0, 1, 4, 2);
        // 29 s above threshold: no change yet.
        for _ in 0..29 {
            s.update(0.95, 1.0);
        }
        assert_eq!(s.count(), 2);
        s.update(0.95, 1.0);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn stages_down_after_delay() {
        let mut s = HysteresisStager::new(0.9, 0.4, 30.0, 60.0, 1, 4, 3);
        for _ in 0..60 {
            s.update(0.2, 1.0);
        }
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn deadband_resets_timers() {
        let mut s = HysteresisStager::new(0.9, 0.4, 30.0, 60.0, 1, 4, 2);
        for _ in 0..29 {
            s.update(0.95, 1.0);
        }
        s.update(0.5, 1.0); // into the deadband: timer must reset
        for _ in 0..29 {
            s.update(0.95, 1.0);
        }
        assert_eq!(s.count(), 2, "timer should have been reset by deadband");
    }

    #[test]
    fn respects_bounds() {
        let mut s = HysteresisStager::new(0.9, 0.4, 1.0, 1.0, 1, 3, 3);
        for _ in 0..100 {
            s.update(1.0, 1.0);
        }
        assert_eq!(s.count(), 3);
        for _ in 0..1000 {
            s.update(0.0, 1.0);
        }
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn repeated_staging_walks_one_at_a_time() {
        let mut s = HysteresisStager::new(0.9, 0.4, 10.0, 10.0, 0, 4, 0);
        let mut counts = Vec::new();
        for _ in 0..45 {
            counts.push(s.update(1.0, 1.0));
        }
        // Steps at 10, 20, 30, 40 s.
        assert_eq!(*counts.last().unwrap(), 4);
        for w in counts.windows(2) {
            assert!(w[1] - w[0] <= 1);
        }
    }

    #[test]
    fn lag_converges_exponentially() {
        let mut lag = FirstOrderLag::new(10.0, 0.0);
        lag.update(1.0, 10.0);
        // After one time constant: 1 - e^-1 ≈ 0.632.
        assert!((lag.output() - 0.632).abs() < 0.001);
        for _ in 0..10 {
            lag.update(1.0, 10.0);
        }
        assert!((lag.output() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn lag_stable_for_huge_steps() {
        let mut lag = FirstOrderLag::new(1.0, 0.0);
        let y = lag.update(5.0, 1e6);
        assert!((y - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rate_estimator_tracks_slope() {
        let mut r = RateEstimator::new(5.0);
        // Ramp 2 units/s sampled at 1 s.
        let mut t = 0.0;
        for _ in 0..100 {
            t += 1.0;
            r.update(2.0 * t, 1.0);
        }
        assert!((r.rate() - 2.0).abs() < 0.01, "rate={}", r.rate());
    }

    #[test]
    fn rate_estimator_zero_on_constant() {
        let mut r = RateEstimator::new(5.0);
        for _ in 0..50 {
            r.update(42.0, 1.0);
        }
        assert!(r.rate().abs() < 1e-9);
    }
}
