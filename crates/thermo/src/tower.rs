//! Evaporative cooling-tower cells.
//!
//! Frontier's cooling-tower loop circulates through five towers of four
//! cells each — 20 independent cells (§III-C1). The paper uses the
//! variable-fan-speed tower from the Modelica Buildings Library; we
//! implement the equivalent Braun ε-NTU formulation: the tower is treated
//! as a counterflow exchanger between the water stream and an air stream
//! whose effective specific heat is the local slope of the saturated-air
//! enthalpy curve. Fan speed scales air mass flow linearly and fan power
//! cubically.

use crate::hx::effectiveness_counterflow;
use crate::psychro;
use serde::{Deserialize, Serialize};

/// Result of evaluating one tower cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TowerResult {
    /// Water outlet temperature, °C.
    pub t_water_out: f64,
    /// Heat rejected to ambient, W.
    pub heat_rejected_w: f64,
    /// Fan electrical power, W.
    pub fan_power_w: f64,
    /// Approach to wet-bulb (T_water_out − T_wb), K.
    pub approach_k: f64,
}

/// One cooling-tower cell with a variable-speed fan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoolingTowerCell {
    /// Identifier, e.g. `CT3.cell2`.
    pub name: String,
    /// Design water mass flow per cell, kg/s.
    pub mdot_water_design: f64,
    /// Design air mass flow at full fan speed, kg/s.
    pub mdot_air_design: f64,
    /// NTU at design flows (mass-transfer units).
    pub ntu_design: f64,
    /// Fan motor power at full speed, W.
    pub fan_power_rated: f64,
    /// Minimum fan speed when running (VFD floor).
    pub min_fan_speed: f64,
}

impl CoolingTowerCell {
    /// A cell sized for the given design water flow. Air flow is set for a
    /// typical liquid-to-gas ratio of ~1.2 and NTU for a ~2-3 K approach.
    pub fn from_design(name: impl Into<String>, mdot_water_design: f64, fan_power_rated: f64) -> Self {
        CoolingTowerCell {
            name: name.into(),
            mdot_water_design,
            mdot_air_design: mdot_water_design / 1.2,
            ntu_design: 3.0,
            fan_power_rated,
            min_fan_speed: 0.2,
        }
    }

    /// NTU scaling with flows: `NTU ∝ (mdot_air / design)^0.6 ·
    /// (mdot_water/design)^-0.4` (Braun's exponent pair).
    fn ntu(&self, mdot_water: f64, mdot_air: f64) -> f64 {
        if mdot_water <= 0.0 || mdot_air <= 0.0 {
            return 0.0;
        }
        self.ntu_design
            * (mdot_air / self.mdot_air_design).powf(0.6)
            * (mdot_water / self.mdot_water_design).powf(-0.4)
    }

    /// Evaluate the cell.
    ///
    /// * `t_water_in` — entering water temperature, °C;
    /// * `mdot_water` — water mass flow through the cell, kg/s;
    /// * `t_wet_bulb` — ambient wet-bulb, °C;
    /// * `fan_speed` — relative fan speed in `[0, 1]` (0 = fan off;
    ///   natural-draft effect is approximated as 10 % of design air flow).
    pub fn evaluate(
        &self,
        t_water_in: f64,
        mdot_water: f64,
        t_wet_bulb: f64,
        fan_speed: f64,
    ) -> TowerResult {
        let fan_speed = fan_speed.clamp(0.0, 1.0);
        if mdot_water <= 1e-9 {
            return TowerResult {
                t_water_out: t_water_in,
                heat_rejected_w: 0.0,
                fan_power_w: 0.0,
                approach_k: t_water_in - t_wet_bulb,
            };
        }
        // Air flow: fan-driven plus a small natural-draft floor.
        let air_frac = (0.1 + 0.9 * fan_speed).min(1.0);
        let mdot_air = self.mdot_air_design * air_frac;

        // Braun's effective saturation specific heat over the span between
        // wet-bulb and entering water temperature.
        let cs = psychro::saturation_specific_heat(t_wet_bulb, t_water_in.max(t_wet_bulb + 0.5));
        let cp_w = crate::fluid::Fluid::Water.specific_heat(t_water_in);

        let c_water = mdot_water * cp_w;
        let c_air = mdot_air * cs;
        let (c_min, c_max) = if c_water < c_air { (c_water, c_air) } else { (c_air, c_water) };
        let cr = c_min / c_max;
        let ntu = self.ntu(mdot_water, mdot_air);
        let eff = effectiveness_counterflow(ntu, cr);

        let q = (eff * c_min * (t_water_in - t_wet_bulb)).max(0.0);
        let t_out = t_water_in - q / c_water;
        let fan_power = if fan_speed > 0.0 {
            let s = fan_speed.max(self.min_fan_speed);
            self.fan_power_rated * s * s * s
        } else {
            0.0
        };
        TowerResult {
            t_water_out: t_out,
            heat_rejected_w: q,
            fan_power_w: fan_power,
            approach_k: t_out - t_wet_bulb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> CoolingTowerCell {
        // Frontier-scale: ~30 MW over 20 cells -> ~1.5 MW/cell at ~5 K range,
        // water flow ~ 1.5e6/(4186*5) ≈ 72 kg/s per cell... the real plant
        // runs ~9500 gpm total ≈ 600 kg/s over 20 cells = 30 kg/s/cell at
        // larger range. Use 30 kg/s design.
        CoolingTowerCell::from_design("CT1.cell1", 30.0, 11_000.0)
    }

    #[test]
    fn cools_toward_wet_bulb() {
        let c = cell();
        let r = c.evaluate(30.0, 30.0, 18.0, 1.0);
        assert!(r.t_water_out < 30.0);
        assert!(r.t_water_out > 18.0, "cannot cool below wet-bulb");
        assert!(r.approach_k > 0.0);
    }

    #[test]
    fn full_fan_small_approach() {
        let c = cell();
        let r = c.evaluate(28.0, 30.0, 16.0, 1.0);
        // A well-sized cell at design flow should approach within ~2-5 K.
        assert!(r.approach_k < 5.0, "approach={}", r.approach_k);
    }

    #[test]
    fn fan_off_still_cools_a_little() {
        let c = cell();
        let on = c.evaluate(30.0, 30.0, 18.0, 1.0);
        let off = c.evaluate(30.0, 30.0, 18.0, 0.0);
        assert!(off.heat_rejected_w > 0.0);
        assert!(off.heat_rejected_w < on.heat_rejected_w);
        assert_eq!(off.fan_power_w, 0.0);
    }

    #[test]
    fn fan_power_cubic() {
        let c = cell();
        let full = c.evaluate(30.0, 30.0, 18.0, 1.0).fan_power_w;
        let half = c.evaluate(30.0, 30.0, 18.0, 0.5).fan_power_w;
        assert!((half / full - 0.125).abs() < 1e-9);
    }

    #[test]
    fn heat_balance_consistent_with_temperature_drop() {
        let c = cell();
        let r = c.evaluate(32.0, 25.0, 20.0, 0.8);
        let cp = crate::fluid::Fluid::Water.specific_heat(32.0);
        let q_from_dt = 25.0 * cp * (32.0 - r.t_water_out);
        assert!((q_from_dt - r.heat_rejected_w).abs() / r.heat_rejected_w < 1e-9);
    }

    #[test]
    fn no_water_flow_passthrough() {
        let c = cell();
        let r = c.evaluate(30.0, 0.0, 18.0, 1.0);
        assert_eq!(r.heat_rejected_w, 0.0);
        assert_eq!(r.t_water_out, 30.0);
    }

    #[test]
    fn hotter_wet_bulb_less_rejection() {
        let c = cell();
        let cool_day = c.evaluate(30.0, 30.0, 12.0, 1.0);
        let hot_day = c.evaluate(30.0, 30.0, 24.0, 1.0);
        assert!(hot_day.heat_rejected_w < cool_day.heat_rejected_w);
    }
}
