//! Property-based tests for RAPS: scheduler allocation invariants, power
//! bounds, and workload generator validity under arbitrary inputs.

use exadigit_raps::config::{PartitionConfig, SystemConfig};
use exadigit_raps::job::{Job, UtilTrace};
use exadigit_raps::power::{PowerDelivery, PowerModel};
use exadigit_raps::scheduler::{schedule_jobs, NodePool, Policy, RunningRelease};
use exadigit_raps::simulation::RapsSimulation;
use exadigit_raps::workload::{WorkloadGenerator, WorkloadParams};
use proptest::prelude::*;
use std::collections::HashSet;

fn small_config(nodes: usize) -> SystemConfig {
    let mut cfg = SystemConfig::frontier();
    cfg.partitions =
        vec![PartitionConfig { name: "batch".into(), nodes, gpus_per_node: 4 }];
    cfg
}

fn arbitrary_jobs(max_nodes: usize) -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (1usize..=max_nodes, 60u64..7_200, 0u64..600, 0.0f32..1.0, 0.0f32..1.0),
        0..40,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (nodes, wall, submit, cu, gu))| {
                Job::new(i as u64, format!("j{i}"), nodes, wall, submit, cu, gu)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No policy ever double-allocates a node or exceeds capacity, for any
    /// job mix.
    #[test]
    fn schedulers_never_double_allocate(
        jobs in arbitrary_jobs(200),
        policy_idx in 0usize..4,
    ) {
        let policy = [Policy::Fcfs, Policy::Sjf, Policy::FirstFit, Policy::EasyBackfill][policy_idx];
        let cfg = small_config(128);
        let mut pool = NodePool::new(&cfg);
        let decisions = schedule_jobs(policy, &jobs, &mut pool, 0, &[]);
        let mut seen = HashSet::new();
        let mut total = 0usize;
        for d in &decisions {
            prop_assert_eq!(d.nodes.len(), jobs[d.job_index].nodes);
            for &n in &d.nodes {
                prop_assert!(seen.insert(n), "node {} double-allocated", n);
            }
            total += d.nodes.len();
        }
        prop_assert!(total <= 128);
        prop_assert_eq!(pool.available(0), 128 - total);
    }

    /// Each pending job is started at most once per pass.
    #[test]
    fn schedulers_start_jobs_at_most_once(
        jobs in arbitrary_jobs(64),
        policy_idx in 0usize..4,
    ) {
        let policy = [Policy::Fcfs, Policy::Sjf, Policy::FirstFit, Policy::EasyBackfill][policy_idx];
        let cfg = small_config(256);
        let mut pool = NodePool::new(&cfg);
        let decisions = schedule_jobs(policy, &jobs, &mut pool, 0, &[]);
        let mut idx = HashSet::new();
        for d in &decisions {
            prop_assert!(idx.insert(d.job_index), "job {} started twice", d.job_index);
        }
    }

    /// EASY backfill never starts a job that could delay the head job's
    /// reservation (soundness of the reservation arithmetic): after the
    /// pass, either the head started, or every started job fits the
    /// backfill rule.
    #[test]
    fn backfill_reservation_sound(
        jobs in arbitrary_jobs(100),
        running_nodes in 1usize..100,
        end_time in 100u64..5_000,
    ) {
        let cfg = small_config(128);
        let mut pool = NodePool::new(&cfg);
        let held = pool.allocate(0, running_nodes).unwrap();
        let running = [RunningRelease { end_time_s: end_time, partition: 0, nodes: held.len() }];
        let free_before = pool.available(0);
        let decisions = schedule_jobs(Policy::EasyBackfill, &jobs, &mut pool, 0, &running);
        if let Some(head) = jobs.first() {
            let head_started = decisions.iter().any(|d| d.job_index == 0);
            if !head_started && head.nodes <= 128 {
                // Shadow time exists; spare = free_before + released − head.
                let spare = (free_before + running_nodes).saturating_sub(head.nodes);
                for d in &decisions {
                    let j = &jobs[d.job_index];
                    let ends_before = j.wall_time_s <= end_time;
                    let within_spare = j.nodes <= spare;
                    prop_assert!(
                        ends_before || within_spare,
                        "job {} ({} nodes, {} s) violates the reservation",
                        d.job_index, j.nodes, j.wall_time_s
                    );
                }
            }
        }
    }

    /// Node power is always within [idle, peak] for any utilization pair.
    #[test]
    fn node_power_bounded(cu in -1.0f64..2.0, gu in -1.0f64..2.0) {
        let model = PowerModel::new(SystemConfig::frontier(), PowerDelivery::StandardAC);
        let p = model.node_power(cu, gu, 4);
        prop_assert!((626.0 - 1e-9..=2704.0 + 1e-9).contains(&p), "p={p}");
    }

    /// System power is monotone in utilization and bounded by the
    /// idle/peak anchors for every delivery variant.
    #[test]
    fn system_power_monotone_and_bounded(
        u in 0.0f64..1.0,
        du in 0.0f64..0.5,
        delivery_idx in 0usize..3,
    ) {
        let delivery = [
            PowerDelivery::StandardAC,
            PowerDelivery::SmartRectifiers,
            PowerDelivery::Direct380Vdc,
        ][delivery_idx];
        let mut cfg = small_config(256);
        cfg.cooling.num_cdus = 1;
        let model = PowerModel::new(cfg, delivery);
        let lo = model.uniform_power(0.0, 0.0).system_w;
        let hi = model.uniform_power(1.0, 1.0).system_w;
        let p1 = model.uniform_power(u, u).system_w;
        let p2 = model.uniform_power((u + du).min(1.0), (u + du).min(1.0)).system_w;
        prop_assert!(p1 >= lo - 1e-6 && p1 <= hi + 1e-6);
        prop_assert!(p2 >= p1 - 1e-6, "power must be monotone in utilization");
    }

    /// Conversion losses are non-negative and efficiency ≤ 1 everywhere.
    #[test]
    fn losses_non_negative(u in 0.0f64..1.0, delivery_idx in 0usize..3) {
        let delivery = [
            PowerDelivery::StandardAC,
            PowerDelivery::SmartRectifiers,
            PowerDelivery::Direct380Vdc,
        ][delivery_idx];
        let mut cfg = small_config(512);
        cfg.cooling.num_cdus = 1;
        let model = PowerModel::new(cfg, delivery);
        let snap = model.uniform_power(u, u);
        prop_assert!(snap.loss_w >= 0.0);
        prop_assert!(snap.efficiency <= 1.0 + 1e-12);
        prop_assert!(snap.efficiency > 0.85);
        // CDU heats sum to the scaled rack+switch power.
        let heat: f64 = snap.cdu_heat_w.iter().sum();
        let expect = 0.945 * (snap.node_ac_w + snap.switch_w);
        prop_assert!((heat - expect).abs() <= 1e-6 * expect);
    }

    /// Utilization traces stay in [0, 1] whatever the raw samples.
    #[test]
    fn util_trace_clamped(samples in prop::collection::vec(-2.0f32..3.0, 0..50), t in 0u64..10_000) {
        let trace = UtilTrace::Series { quantum_s: 15, values: samples };
        let u = trace.at(t);
        prop_assert!((0.0..=1.0).contains(&u));
        prop_assert!((0.0..=1.0).contains(&trace.mean()));
    }

    /// Event-driven and per-second stepping are the *same simulation*:
    /// identical completed-job counts, wait statistics, and final
    /// node-pool state on randomized workloads across all four scheduler
    /// policies. Wall times start at zero to cover the degenerate
    /// completes-one-second-after-start case.
    #[test]
    fn event_kernel_equivalent_to_per_second_stepping(
        specs in prop::collection::vec(
            (1usize..=96, 0u64..2_000, 0u64..900, 0.0f32..1.0, 0.0f32..1.0),
            1..24,
        ),
        policy_idx in 0usize..4,
        // Per-second recording (nothing to backfill), telemetry-grade
        // cadences (on- and off-grid), and hourly multi-week cadence
        // (whole runs inside one record gap) all pin bit-identical.
        record_every in prop::sample::select(vec![1u64, 15, 60, 97, 120, 3_600]),
    ) {
        let policy = [Policy::Fcfs, Policy::Sjf, Policy::FirstFit, Policy::EasyBackfill][policy_idx];
        let jobs: Vec<Job> = specs
            .into_iter()
            .enumerate()
            .map(|(i, (nodes, wall, submit, cu, gu))| {
                Job::new(i as u64, format!("j{i}"), nodes, wall, submit, cu, gu)
            })
            .collect();
        let run = |event_driven: bool| {
            let mut sim = RapsSimulation::new(
                small_config(128),
                PowerDelivery::StandardAC,
                policy,
                record_every,
            );
            sim.submit_jobs(jobs.clone());
            if event_driven {
                sim.run_until(2_400).unwrap();
            } else {
                sim.run_until_per_second(2_400).unwrap();
            }
            sim
        };
        let ps = run(false);
        let ev = run(true);
        let (rp, re) = (ps.report(), ev.report());
        prop_assert_eq!(re.jobs_completed, rp.jobs_completed);
        prop_assert_eq!(re.jobs_unfinished, rp.jobs_unfinished);
        prop_assert_eq!(ev.running_count(), ps.running_count());
        prop_assert_eq!(ev.pending_count(), ps.pending_count());
        // Wait statistics are pushed at the same event seconds with the
        // same values in the same order: exact equality, not tolerance.
        let (we, wp) = (&ev.outputs().wait_stats, &ps.outputs().wait_stats);
        prop_assert_eq!(we.count(), wp.count());
        prop_assert_eq!(we.mean().to_bits(), wp.mean().to_bits());
        prop_assert_eq!(we.max().to_bits(), wp.max().to_bits());
        // Final free-list state of the node pool.
        prop_assert_eq!(ev.pool(), ps.pool());
        prop_assert_eq!(ev.pool().free_nodes(0), ps.pool().free_nodes(0));
        // Every recorded series rides along bit-identically — the lazy
        // backfill's samples are the same f64s the eager kernel records.
        let (oe, op) = (ev.outputs(), ps.outputs());
        for (a, b) in [
            (&oe.utilization, &op.utilization),
            (&oe.system_power_w, &op.system_power_w),
            (&oe.loss_w, &op.loss_w),
            (&oe.efficiency, &op.efficiency),
        ] {
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.samples().zip(b.samples()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// Interleaving per-second `tick()` stretches with event-driven
    /// `run_until` jumps is still the same simulation as a pure
    /// per-second loop: the record cursor is derived from series length
    /// and clock, so switching stepping modes mid-gap can neither skip
    /// nor duplicate a boundary. Recorded series pin bit-identical.
    #[test]
    fn mixed_tick_and_event_stepping_bit_identical(
        specs in prop::collection::vec(
            (1usize..=96, 0u64..1_500, 0u64..900, 0.0f32..1.0, 0.0f32..1.0),
            1..16,
        ),
        policy_idx in 0usize..4,
        record_every in prop::sample::select(vec![1u64, 15, 60, 97, 120, 3_600]),
        segments in prop::collection::vec((any::<bool>(), 1u64..600), 1..12),
    ) {
        let policy = [Policy::Fcfs, Policy::Sjf, Policy::FirstFit, Policy::EasyBackfill][policy_idx];
        let jobs: Vec<Job> = specs
            .into_iter()
            .enumerate()
            .map(|(i, (nodes, wall, submit, cu, gu))| {
                Job::new(i as u64, format!("j{i}"), nodes, wall, submit, cu, gu)
            })
            .collect();
        let new_sim = || {
            let mut sim = RapsSimulation::new(
                small_config(128),
                PowerDelivery::StandardAC,
                policy,
                record_every,
            );
            sim.submit_jobs(jobs.clone());
            sim
        };
        let mut mixed = new_sim();
        let mut total = 0u64;
        for &(event_mode, len) in &segments {
            total += len;
            if event_mode {
                mixed.run_until(total).unwrap();
            } else {
                for _ in 0..len {
                    mixed.tick().unwrap();
                }
            }
        }
        let mut reference = new_sim();
        reference.run_until_per_second(total).unwrap();
        let (rm, rr) = (mixed.report(), reference.report());
        prop_assert_eq!(rm.jobs_completed, rr.jobs_completed);
        prop_assert_eq!(rm.jobs_unfinished, rr.jobs_unfinished);
        prop_assert_eq!(mixed.pool(), reference.pool());
        let (om, or) = (mixed.outputs(), reference.outputs());
        for (a, b) in [
            (&om.utilization, &or.utilization),
            (&om.system_power_w, &or.system_power_w),
            (&om.loss_w, &or.loss_w),
            (&om.efficiency, &or.efficiency),
        ] {
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.samples().zip(b.samples()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// The workload generator emits valid jobs for arbitrary (sane)
    /// parameters and seeds.
    #[test]
    fn generator_emits_valid_jobs(
        seed in any::<u64>(),
        tavg in 20.0f64..600.0,
        load in 0.1f64..0.95,
    ) {
        let params = WorkloadParams {
            tavg_median_s: tavg,
            offered_load: load,
            ..WorkloadParams::default()
        };
        let mut generator = WorkloadGenerator::new(params, seed);
        let jobs = generator.generate_day(0);
        for j in &jobs {
            prop_assert!(j.nodes >= 1 && j.nodes <= 9_472);
            prop_assert!(j.wall_time_s >= 60);
            prop_assert!(j.submit_time_s < 86_400);
        }
    }
}
