//! Cooling-plant performance: one 15 s plant step at Frontier scale,
//! model generation (AutoCSM), and the settle transient. The paper's
//! Modelica FMU makes a 24 h replay take ~9 min vs ~3 min without cooling
//! — i.e. the plant step dominates; these benches quantify ours.

use criterion::{criterion_group, criterion_main, Criterion};
use exadigit_cooling::{CoolingModel, PlantSpec};
use exadigit_sim::fmi::{CoSimModel, VarRef};
use std::hint::black_box;
use std::time::Duration;

fn settled_model(load: f64) -> CoolingModel {
    let mut model = CoolingModel::frontier();
    model.setup(0.0);
    let heat = model.spec().heat_per_cdu_w() * load;
    for i in 0..25 {
        model.set_real(VarRef(i), heat).unwrap();
    }
    for k in 0..100 {
        model.do_step(k as f64 * 15.0, 15.0).unwrap();
    }
    model
}

fn bench_plant_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("cooling_step");
    group.measurement_time(Duration::from_secs(4)).sample_size(30);
    for (name, load) in [("at_30pct_load", 0.3), ("at_80pct_load", 0.8)] {
        group.bench_function(name, |b| {
            let mut model = settled_model(load);
            let mut t = 10_000.0;
            b.iter(|| {
                model.do_step(t, 15.0).unwrap();
                t += 15.0;
                black_box(model.output_by_name("pue"))
            })
        });
    }
    group.finish();
}

fn bench_autocsm_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("autocsm");
    group.measurement_time(Duration::from_secs(3)).sample_size(30);
    group.bench_function("generate_frontier_model", |b| {
        b.iter(|| black_box(CoolingModel::new(PlantSpec::frontier()).unwrap().output_count()))
    });
    let json = PlantSpec::frontier().to_json();
    group.bench_function("parse_spec_json", |b| {
        b.iter(|| black_box(PlantSpec::from_json(&json).unwrap()))
    });
    group.finish();
}

fn bench_setup_settle(c: &mut Criterion) {
    let mut group = c.benchmark_group("cooling_setup");
    group.measurement_time(Duration::from_secs(5)).sample_size(10);
    group.bench_function("setup_with_40_settle_steps", |b| {
        b.iter(|| {
            let mut model = CoolingModel::frontier();
            model.setup(0.0);
            black_box(model.output_by_name("pue"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_plant_step, bench_autocsm_generation, bench_setup_settle);
criterion_main!(benches);
